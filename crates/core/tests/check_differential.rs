//! Differential property test: the polynomial saturation checker
//! (`litsynth_models::check`) must agree with the enumeration oracle
//! (`litsynth_models::oracle`) on every execution of every seeded `diy`
//! test, under every bundled model — and on the outcome-level verdict,
//! including relaxation-perturbed variants.
//!
//! This is the exactness pin for the whole CHECK serving path: any
//! disagreement here is a checker bug (over-saturation) or an oracle bug,
//! never tolerable drift.

use litsynth_litmus::diy::{DiyConfig, DiyGenerator};
use litsynth_litmus::{Execution, LitmusTest, Outcome};
use litsynth_models::{check, oracle, MemoryModel, Power, Sc, Scc, Tso, C11};

fn seeded_tests(seed: u64, n: usize) -> Vec<(LitmusTest, Outcome)> {
    DiyGenerator::new(seed, DiyConfig::default()).generate(n)
}

fn assert_agreement<M: MemoryModel>(model: &M, test: &LitmusTest, outcome: &Outcome) {
    // Per-execution: check_execution vs oracle::allows, over the full
    // streamed enumeration.
    for e in Execution::iter(test) {
        let v = check::check_execution(model, test, &e);
        let allowed = oracle::allows(model, test, &e);
        assert_eq!(
            v.is_consistent(),
            allowed,
            "{} under {}: checker {:?} but oracle allows={} for exec {:?}",
            test.name(),
            model.name(),
            v,
            allowed,
            e,
        );
    }
    // Outcome-level: observable must agree exactly.
    assert_eq!(
        check::observable(model, test, outcome),
        oracle::observable(model, test, outcome),
        "{} under {}: outcome observability disagrees",
        test.name(),
        model.name(),
    );
}

fn run_differential(seed: u64, n: usize) {
    let sc = Sc::new();
    let tso = Tso::new();
    let power = Power::new();
    let armv7 = Power::armv7();
    let scc = Scc::new();
    let c11 = C11::new();
    for (test, outcome) in seeded_tests(seed, n) {
        assert_agreement(&sc, &test, &outcome);
        assert_agreement(&tso, &test, &outcome);
        assert_agreement(&power, &test, &outcome);
        assert_agreement(&armv7, &test, &outcome);
        assert_agreement(&scc, &test, &outcome);
        assert_agreement(&c11, &test, &outcome);
    }
}

#[test]
fn checker_agrees_with_enumeration_on_seeded_diy_tests() {
    run_differential(0xd1f7_0001, 12);
}

#[test]
fn checker_agrees_with_enumeration_on_second_seed() {
    run_differential(0xd1f7_0002, 12);
}

#[test]
fn checker_agrees_with_enumeration_under_relaxations() {
    // Relaxation-perturbed variants: apply each admissible relaxation to a
    // seeded test and re-run the outcome-level differential. This covers
    // weakened orders, dropped fences/deps, and unconstrained reads — the
    // shapes synthesis actually emits.
    let tso = Tso::new();
    let c11 = C11::new();
    let power = Power::new();
    for (test, outcome) in seeded_tests(0xd1f7_0003, 4) {
        for (name, model) in [
            ("tso", &tso as &dyn ModelDyn),
            ("c11", &c11),
            ("power", &power),
        ] {
            for app in model.applications_of(&test) {
                let (t2, o2) = litsynth_core::apply(&test, &outcome, app);
                assert_eq!(
                    model.check_observable(&t2, &o2),
                    model.oracle_observable(&t2, &o2),
                    "{} relaxed by {} under {name}: observability disagrees",
                    t2.name(),
                    app.describe(),
                );
            }
        }
    }
}

/// Object-safe shim so the relaxation sweep can iterate heterogeneous
/// models without monomorphizing the whole loop body per model.
trait ModelDyn {
    fn applications_of(&self, test: &LitmusTest) -> Vec<litsynth_core::Application>;
    fn check_observable(&self, test: &LitmusTest, outcome: &Outcome) -> bool;
    fn oracle_observable(&self, test: &LitmusTest, outcome: &Outcome) -> bool;
}

impl<M: MemoryModel> ModelDyn for M {
    fn applications_of(&self, test: &LitmusTest) -> Vec<litsynth_core::Application> {
        litsynth_core::applications(self, test)
    }
    fn check_observable(&self, test: &LitmusTest, outcome: &Outcome) -> bool {
        check::observable(self, test, outcome)
    }
    fn oracle_observable(&self, test: &LitmusTest, outcome: &Outcome) -> bool {
        oracle::observable(self, test, outcome)
    }
}
