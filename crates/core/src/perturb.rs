//! Symbolic instruction relaxations: perturbed execution contexts (the
//! paper's `_p` relations, Figure 6).
//!
//! For each concrete (relaxation, event) pair the synthesis builds a
//! perturbed copy of the base context — a circuit-level function of the
//! base relations — plus an *applicability guard* (the paper's
//! `relaxation_applies`). The Figure 5c minimality formula then asserts
//! `guard ⇒ model(perturbed)` for every pair.

use crate::symbolic::{Shape, SymbolicTest};
use litsynth_litmus::{FenceKind, MemOrder};
use litsynth_models::{Ctx, MemoryModel, RelAlg, SymAlg};
use litsynth_relalg::{Bit, Circuit, Matrix2};

/// One symbolic relaxation application.
pub struct SymApplication {
    /// Human-readable label (for diagnostics and logs).
    pub label: String,
    /// `relaxation_applies[r, e]` as a circuit bit.
    pub guard: Bit,
    /// The perturbed context.
    pub ctx: Ctx<SymAlg>,
}

/// Zeroes row and column `e` of a relation.
fn drop_event_rel(m: &Matrix2, e: usize) -> Matrix2 {
    let mut out = m.clone();
    for j in 0..m.cols() {
        out.set(e, j, Circuit::FALSE);
    }
    for i in 0..m.rows() {
        out.set(i, e, Circuit::FALSE);
    }
    out
}

/// The RI perturbation: event `e` vanishes from every set and relation.
///
/// `co` needs no Figure 8 repair here because well-formedness already
/// constrains it to be transitive, so removing one element of a chain
/// leaves the rest related. Reads that were sourcing from `e` become
/// *orphans*: their value is left unconstrained rather than snapped to the
/// initial value (the paper's §4.3 choice, which avoids false negatives
/// like CoWR at the cost of occasional harmless false positives).
fn exclude_event(
    alg: &mut SymAlg,
    ctx: &Ctx<SymAlg>,
    e: usize,
    orphan_unconstrained: bool,
) -> Ctx<SymAlg> {
    let mut p = ctx.clone();
    if orphan_unconstrained {
        let n = ctx.n;
        for r in 0..n {
            if r != e {
                let was = p.orphan.get(r);
                let src = ctx.rf.get(e, r);
                let now = alg.circuit.or(was, src);
                p.orphan.set(r, now);
            }
        }
    }
    for set in [
        &mut p.read,
        &mut p.write,
        &mut p.fence_full,
        &mut p.fence_lw,
        &mut p.fence_acqrel,
        &mut p.fence_acq,
        &mut p.fence_rel,
        &mut p.acquire,
        &mut p.release,
        &mut p.seqcst,
        &mut p.consume,
    ] {
        set.set(e, Circuit::FALSE);
    }
    for rel in [
        &mut p.po,
        &mut p.loc,
        &mut p.rf,
        &mut p.co,
        &mut p.addr_dep,
        &mut p.data_dep,
        &mut p.ctrl_dep,
        &mut p.ctrlisync_dep,
        &mut p.rmw,
        &mut p.sc,
        &mut p.int,
        &mut p.ext,
    ] {
        let d = drop_event_rel(rel, e);
        *rel = d;
    }
    p
}

/// Builds every symbolic relaxation application for `model` on `st`.
pub fn symbolic_applications<M: MemoryModel>(
    alg: &mut SymAlg,
    model: &M,
    st: &SymbolicTest,
) -> Vec<SymApplication> {
    symbolic_applications_opts(alg, model, st, true)
}

/// [`symbolic_applications`] with the orphan-read policy explicit:
/// `orphan_unconstrained = false` snaps RI-orphaned reads to the initial
/// value instead (the ablation measured in EXPERIMENTS.md).
pub fn symbolic_applications_opts<M: MemoryModel>(
    alg: &mut SymAlg,
    model: &M,
    st: &SymbolicTest,
    orphan_unconstrained: bool,
) -> Vec<SymApplication> {
    let n = st.n;
    let base = &st.ctx;
    let mut out = Vec::new();

    // RI: applies to every event unconditionally.
    for e in 0..n {
        let ctx = exclude_event(alg, base, e, orphan_unconstrained);
        out.push(SymApplication {
            label: format!("RI@{e}"),
            guard: Circuit::TRUE,
            ctx,
        });
    }

    // DMO: for each event and each demotable vocabulary shape.
    for e in 0..n {
        for (v, &shape) in st.vocab.iter().enumerate() {
            let demotions: Vec<MemOrder> = match shape {
                Shape::Load(o) => model
                    .order_demotions(litsynth_litmus::Instr::load_ord(0, o))
                    .into_iter()
                    .collect(),
                Shape::Store(o) => model
                    .order_demotions(litsynth_litmus::Instr::store_ord(0, o))
                    .into_iter()
                    .collect(),
                Shape::Fence(_) => Vec::new(),
            };
            for to in demotions {
                let guard = st.kind[e][v];
                let mut ctx = base.clone();
                let (read_side, write_side) = match shape {
                    Shape::Load(_) => (true, false),
                    Shape::Store(_) => (false, true),
                    Shape::Fence(_) => unreachable!(),
                };
                if read_side {
                    let acq = matches!(to, MemOrder::Acquire | MemOrder::AcqRel | MemOrder::SeqCst);
                    let cons = matches!(to, MemOrder::Consume);
                    ctx.acquire
                        .set(e, if acq { Circuit::TRUE } else { Circuit::FALSE });
                    ctx.consume
                        .set(e, if cons { Circuit::TRUE } else { Circuit::FALSE });
                    ctx.seqcst.set(
                        e,
                        if to == MemOrder::SeqCst {
                            Circuit::TRUE
                        } else {
                            Circuit::FALSE
                        },
                    );
                }
                if write_side {
                    let rel = matches!(to, MemOrder::Release | MemOrder::AcqRel | MemOrder::SeqCst);
                    ctx.release
                        .set(e, if rel { Circuit::TRUE } else { Circuit::FALSE });
                    ctx.seqcst.set(
                        e,
                        if to == MemOrder::SeqCst {
                            Circuit::TRUE
                        } else {
                            Circuit::FALSE
                        },
                    );
                }
                out.push(SymApplication {
                    label: format!("DMO@{e}:{shape:?}→{to:?}"),
                    guard,
                    ctx,
                });
            }
        }
    }

    // DF: fence-strength demotions.
    for e in 0..n {
        for (v, &shape) in st.vocab.iter().enumerate() {
            let Shape::Fence(k) = shape else { continue };
            for to in model.fence_demotions(k) {
                let guard = st.kind[e][v];
                let mut ctx = base.clone();
                set_fence_membership(&mut ctx, e, k, Circuit::FALSE);
                set_fence_membership(&mut ctx, e, to, Circuit::TRUE);
                if k == FenceKind::Full {
                    // A demoted FenceSC leaves the sc order.
                    ctx.sc = drop_event_rel(&ctx.sc, e);
                }
                out.push(SymApplication {
                    label: format!("DF@{e}:{k:?}→{to:?}"),
                    guard,
                    ctx,
                });
            }
        }
    }

    // RD: applies when some dependency originates at `e`.
    if !model.dep_kinds().is_empty() {
        for e in 0..n {
            let mut outgoing: Vec<Bit> = Vec::new();
            for m in st.deps.values() {
                for j in 0..n {
                    outgoing.push(m.get(e, j));
                }
            }
            let guard = alg.circuit.or_many(outgoing);
            let mut ctx = base.clone();
            for rel in [
                &mut ctx.addr_dep,
                &mut ctx.data_dep,
                &mut ctx.ctrl_dep,
                &mut ctx.ctrlisync_dep,
            ] {
                for j in 0..n {
                    rel.set(e, j, Circuit::FALSE);
                }
            }
            out.push(SymApplication {
                label: format!("RD@{e}"),
                guard,
                ctx,
            });
        }
    }

    // DRMW: applies when `e` is the load of an rmw pair; removes the edge.
    if st.has_rmw {
        for e in 0..n.saturating_sub(1) {
            let guard = st.rmw.get(e, e + 1);
            let mut ctx = base.clone();
            let mut rmw = ctx.rmw.clone();
            rmw.set(e, e + 1, Circuit::FALSE);
            ctx.rmw = rmw;
            out.push(SymApplication {
                label: format!("DRMW@{e}"),
                guard,
                ctx,
            });
        }
    }

    out
}

fn set_fence_membership(ctx: &mut Ctx<SymAlg>, e: usize, kind: FenceKind, value: Bit) {
    match kind {
        FenceKind::Full => ctx.fence_full.set(e, value),
        FenceKind::Lightweight => ctx.fence_lw.set(e, value),
        FenceKind::AcqRel => ctx.fence_acqrel.set(e, value),
        FenceKind::Acquire => ctx.fence_acq.set(e, value),
        FenceKind::Release => ctx.fence_rel.set(e, value),
    }
}

/// The Figure 5c minimality formula for one axiom: well-formedness, the
/// target axiom violated on the base context, and — under every guard — the
/// full model satisfied on the perturbed context.
pub fn minimality_asserts<M: MemoryModel>(
    alg: &mut SymAlg,
    model: &M,
    st: &SymbolicTest,
    axiom: &str,
) -> Vec<Bit> {
    minimality_asserts_opts(alg, model, st, axiom, true)
}

/// [`minimality_asserts`] with the orphan-read policy explicit.
pub fn minimality_asserts_opts<M: MemoryModel>(
    alg: &mut SymAlg,
    model: &M,
    st: &SymbolicTest,
    axiom: &str,
    orphan_unconstrained: bool,
) -> Vec<Bit> {
    let mut asserts = st.wellformed.clone();
    let base_ok = model.synthesis_axiom(alg, &st.ctx, axiom);
    asserts.push(alg.not(base_ok));
    for app in symbolic_applications_opts(alg, model, st, orphan_unconstrained) {
        let valid = model.synthesis_valid(alg, &app.ctx);
        let imp = alg.circuit.implies(app.guard, valid);
        asserts.push(imp);
    }
    asserts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbolic::SynthConfig;
    use litsynth_models::{Sc, Scc, Tso};

    #[test]
    fn application_counts_match_vocabularies() {
        let cfg = SynthConfig::new(4);

        let mut alg = SymAlg::new();
        let st = SymbolicTest::build(&mut alg, &Sc::new(), &cfg);
        let apps = symbolic_applications(&mut alg, &Sc::new(), &st);
        assert_eq!(apps.len(), 4, "SC: RI only");

        let mut alg = SymAlg::new();
        let st = SymbolicTest::build(&mut alg, &Tso::new(), &cfg);
        let apps = symbolic_applications(&mut alg, &Tso::new(), &st);
        // RI×4 + DRMW×3 (adjacent positions).
        assert_eq!(apps.len(), 7);

        let mut alg = SymAlg::new();
        let st = SymbolicTest::build(&mut alg, &Scc::new(), &cfg);
        let apps = symbolic_applications(&mut alg, &Scc::new(), &st);
        // RI×4 + DMO (acquire-load + release-store demote) ×4×2
        // + DF (FenceSC→FenceAcqRel) ×4 + RD×4 + DRMW×3.
        assert_eq!(apps.len(), 4 + 8 + 4 + 4 + 3);
    }

    #[test]
    fn ri_guard_is_unconditional_and_dmo_guard_is_kind_bit() {
        let cfg = SynthConfig::new(3);
        let mut alg = SymAlg::new();
        let st = SymbolicTest::build(&mut alg, &Scc::new(), &cfg);
        let apps = symbolic_applications(&mut alg, &Scc::new(), &st);
        for a in &apps {
            if a.label.starts_with("RI@") {
                assert_eq!(a.guard, Circuit::TRUE);
            }
            if a.label.starts_with("DMO@") {
                assert_ne!(a.guard, Circuit::TRUE);
            }
        }
    }
}
