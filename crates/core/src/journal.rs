//! Crash-safe checkpointing of completed synthesis queries.
//!
//! Every completed (model, axiom, bound) query can be journaled: its
//! canonical suite is serialized to one file under the journal directory
//! via write-to-temp + atomic rename, so a kill at any instant leaves
//! either the complete entry or nothing — never a truncated file. A
//! resumed run ([`Journal::lookup`]) replays journaled queries without
//! re-running them and reproduces byte-identical final suites, because the
//! journal stores the exact canonical keys and the litmus text round-trip
//! preserves every field the canonical serialization reads.
//!
//! Entries are validated on load: a version/config-fingerprint mismatch, a
//! bad content checksum, or a parse failure makes the entry count as
//! absent (the query simply re-runs). Only complete queries are recorded —
//! truncated or degraded results are never journaled, so resume can only
//! substitute answers that a clean run would also have produced.

use crate::symbolic::SynthConfig;
use crate::synth::CanonicalSuite;
use litsynth_litmus::format::{from_text, to_text};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The journal-entry format version; bump on any layout change.
const VERSION: &str = "litsynth-journal v1";

/// FNV-1a, the same dependency-free content hash used elsewhere in the
/// repo; good enough to detect torn or hand-edited entries.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The canonical (model, axiom, bound) query key, e.g. `tso/sc_per_loc/2`.
/// Used both as the journal entry name and as the fault-plan coordinate.
pub fn query_key(model: &str, axiom: &str, bound: usize) -> String {
    format!("{}/{}/{}", model.to_lowercase(), axiom, bound)
}

/// Fingerprint of the suite-relevant configuration. Two configs with the
/// same fingerprint provably enumerate the same canonical suite, so a
/// journal entry recorded under one is valid for the other. Parallelism
/// knobs (threads, cube bits, exchange, adaptive cubes) are deliberately
/// excluded: suites are byte-identical across them by construction.
pub fn config_fingerprint(model: &str, axiom: &str, cfg: &SynthConfig) -> u64 {
    let desc = format!(
        "{model}|{axiom}|events={}|max_threads={}|max_addrs={}|exact_canon={}|\
         orphan_unconstrained={}|max_instances={}|time_budget_ms={}",
        cfg.events,
        cfg.max_threads,
        cfg.max_addrs,
        cfg.exact_canon,
        cfg.orphan_unconstrained,
        cfg.max_instances,
        cfg.time_budget_ms,
    );
    fnv1a(desc.as_bytes())
}

/// Writes `contents` to `path` atomically: a unique temp file in the same
/// directory is written, flushed, and renamed over the target, so readers
/// (and a kill at any point) see either the old file or the complete new
/// one — never a truncated mix.
pub fn atomic_write(path: &Path, contents: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let stem = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "file".to_string());
    // A per-process, per-call unique temp name: two processes (or threads)
    // journaling the same query must not clobber each other's temp file.
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let tmp = dir.join(format!(
        ".{}.tmp.{}.{}",
        stem,
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(contents)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// A directory of journaled query suites.
#[derive(Debug)]
pub struct Journal {
    dir: PathBuf,
}

impl Journal {
    /// Opens (creating if needed) a journal at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Arc<Journal>> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Arc::new(Journal { dir }))
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, key: &str) -> PathBuf {
        // Keys are `model/axiom/bound`; flatten to one file per query.
        self.dir.join(format!("{}.journal", key.replace('/', "-")))
    }

    /// Number of entries currently journaled (any `.journal` file counts,
    /// valid or not).
    pub fn entries(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .filter(|e| e.path().extension().is_some_and(|x| x == "journal"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// The journaled suite for `key`, if a complete, checksum-valid entry
    /// recorded under the same config fingerprint exists. Any corruption
    /// or mismatch reads as "not journaled".
    pub fn lookup(&self, key: &str, fingerprint: u64) -> Option<CanonicalSuite> {
        let text = std::fs::read_to_string(self.entry_path(key)).ok()?;
        let mut lines = text.splitn(5, '\n');
        if lines.next()? != VERSION {
            return None;
        }
        let config = lines.next()?.strip_prefix("config ")?;
        if u64::from_str_radix(config, 16).ok()? != fingerprint {
            return None;
        }
        let checksum = lines.next()?.strip_prefix("checksum ")?;
        let checksum = u64::from_str_radix(checksum, 16).ok()?;
        let count: usize = lines.next()?.strip_prefix("tests ")?.parse().ok()?;
        let body = lines.next()?;
        if fnv1a(body.as_bytes()) != checksum {
            return None;
        }
        let mut suite = CanonicalSuite::new();
        for block in body.split("\n%%\n") {
            let block = block.trim_end_matches('\n');
            if block.is_empty() {
                continue;
            }
            let (key_line, test_text) = block.split_once('\n')?;
            let key = key_line.strip_prefix("#key ")?;
            let (test, outcome) = from_text(test_text).ok()?;
            suite.insert(key.to_string(), (test, outcome));
        }
        if suite.len() != count {
            return None;
        }
        Some(suite)
    }

    /// Journals the complete suite for `key` atomically. Errors are
    /// returned (the caller logs and continues — a failed checkpoint only
    /// costs re-running the query on resume, never correctness).
    pub fn record(
        &self,
        key: &str,
        fingerprint: u64,
        suite: &CanonicalSuite,
    ) -> std::io::Result<()> {
        let mut body = String::new();
        for (k, (test, outcome)) in suite {
            body.push_str("#key ");
            body.push_str(k);
            body.push('\n');
            let text = to_text(test, outcome);
            body.push_str(&text);
            if !text.ends_with('\n') {
                body.push('\n');
            }
            body.push_str("%%\n");
        }
        let entry = format!(
            "{VERSION}\nconfig {fingerprint:016x}\nchecksum {:016x}\ntests {}\n{body}",
            fnv1a(body.as_bytes()),
            suite.len(),
        );
        atomic_write(&self.entry_path(key), entry.as_bytes())
    }
}

/// The journal configured by the environment: active when
/// `LITSYNTH_RESUME` is set to a truthy value (`1`, `true`, `yes`, `on`),
/// rooted at `LITSYNTH_JOURNAL` (default `suites_out/journal`). Returns
/// `None` when resume is off or the directory cannot be created.
pub fn env_journal() -> Option<Arc<Journal>> {
    let resume = std::env::var("LITSYNTH_RESUME").ok()?;
    if !matches!(resume.trim(), "1" | "true" | "yes" | "on") {
        return None;
    }
    let dir =
        std::env::var("LITSYNTH_JOURNAL").unwrap_or_else(|_| "suites_out/journal".to_string());
    match Journal::open(&dir) {
        Ok(j) => Some(j),
        Err(e) => {
            eprintln!("warning: cannot open journal at {dir}: {e}; resume disabled");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use litsynth_litmus::serialize;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "litsynth-journal-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// A real synthesized suite, so the round-trip covers deps, rmw pairs,
    /// rf edges, and final values as they actually occur.
    fn sample_suite() -> CanonicalSuite {
        use crate::synth::synthesize_axiom;
        use litsynth_models::Tso;
        let cfg = SynthConfig::new(3);
        synthesize_axiom(&Tso::new(), "sc_per_loc", &cfg).tests
    }

    #[test]
    fn record_then_lookup_roundtrips_byte_identically() {
        let dir = temp_dir("roundtrip");
        let j = Journal::open(&dir).expect("journal opens");
        let suite = sample_suite();
        assert!(!suite.is_empty());
        j.record("tso/sc_per_loc/3", 42, &suite).expect("record");
        assert_eq!(j.entries(), 1);
        let back = j.lookup("tso/sc_per_loc/3", 42).expect("entry exists");
        assert_eq!(
            suite.keys().collect::<Vec<_>>(),
            back.keys().collect::<Vec<_>>()
        );
        for (k, (t, o)) in &suite {
            let (bt, bo) = &back[k];
            assert_eq!(serialize(t, o), serialize(bt, bo), "{k}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_mismatch_reads_as_absent() {
        let dir = temp_dir("fp");
        let j = Journal::open(&dir).expect("journal opens");
        j.record("tso/sc_per_loc/3", 42, &sample_suite())
            .expect("record");
        assert!(j.lookup("tso/sc_per_loc/3", 43).is_none());
        assert!(j.lookup("tso/causality/3", 42).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entry_reads_as_absent() {
        let dir = temp_dir("corrupt");
        let j = Journal::open(&dir).expect("journal opens");
        j.record("tso/sc_per_loc/3", 42, &sample_suite())
            .expect("record");
        let path = j.entry_path("tso/sc_per_loc/3");
        // Truncate mid-body: the checksum must catch it.
        let text = std::fs::read_to_string(&path).expect("read entry");
        std::fs::write(&path, &text[..text.len() / 2]).expect("truncate");
        assert!(j.lookup("tso/sc_per_loc/3", 42).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_replaces_whole_file() {
        let dir = temp_dir("atomic");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("out.txt");
        atomic_write(&path, b"first version").expect("write 1");
        atomic_write(&path, b"second").expect("write 2");
        assert_eq!(std::fs::read(&path).expect("read"), b"second");
        // No temp litter left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("readdir")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn config_fingerprint_tracks_suite_relevant_fields_only() {
        let m = "TSO";
        let base = SynthConfig::new(3);
        let fp = config_fingerprint(m, "causality", &base);
        // Parallelism knobs don't change the fingerprint.
        let mut par = base.clone();
        par.threads = 8;
        par.cube_bits = 3;
        par.exchange = false;
        assert_eq!(config_fingerprint(m, "causality", &par), fp);
        // Suite-relevant bounds do.
        let mut wider = base.clone();
        wider.max_addrs += 1;
        assert_ne!(config_fingerprint(m, "causality", &wider), fp);
        assert_ne!(config_fingerprint(m, "sc_per_loc", &base), fp);
        assert_ne!(config_fingerprint("SC", "causality", &base), fp);
    }

    #[test]
    fn query_key_is_lowercased_and_slash_joined() {
        assert_eq!(query_key("TSO", "sc_per_loc", 2), "tso/sc_per_loc/2");
    }
}
