//! Crash-safe checkpointing of completed synthesis queries.
//!
//! Every completed (model, axiom, bound) query can be journaled: its
//! canonical suite is serialized to one file under the journal directory
//! via write-to-temp + atomic rename, so a kill at any instant leaves
//! either the complete entry or nothing — never a truncated file. A
//! resumed run ([`Journal::lookup`]) replays journaled queries without
//! re-running them and reproduces byte-identical final suites, because the
//! journal stores the exact canonical keys and the litmus text round-trip
//! preserves every field the canonical serialization reads.
//!
//! Entries are validated on load: a version/config-fingerprint mismatch, a
//! bad content checksum, or a parse failure makes the entry count as
//! absent (the query simply re-runs). Only complete queries are recorded —
//! truncated or degraded results are never journaled, so resume can only
//! substitute answers that a clean run would also have produced.

use crate::symbolic::SynthConfig;
use crate::synth::{CanonicalSuite, SynthResult};
use litsynth_litmus::format::{from_text, to_text};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The journal-entry format version; bump on any layout change.
const VERSION: &str = "litsynth-journal v1";

/// FNV-1a, the same dependency-free content hash used elsewhere in the
/// repo; good enough to detect torn or hand-edited entries, and the hash
/// behind every wire/journal integrity checksum (the serve protocol's
/// frame trailers reuse it, so one implementation is the whole story).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The canonical (model, axiom, bound) query key, e.g. `tso/sc_per_loc/2`.
/// Used both as the journal entry name and as the fault-plan coordinate.
pub fn query_key(model: &str, axiom: &str, bound: usize) -> String {
    format!("{}/{}/{}", model.to_lowercase(), axiom, bound)
}

/// Fingerprint of the suite-relevant configuration. Two configs with the
/// same fingerprint provably enumerate the same canonical suite, so a
/// journal entry recorded under one is valid for the other. Parallelism
/// knobs (threads, cube bits, exchange, adaptive cubes) are deliberately
/// excluded: suites are byte-identical across them by construction.
pub fn config_fingerprint(model: &str, axiom: &str, cfg: &SynthConfig) -> u64 {
    let desc = format!(
        "{model}|{axiom}|events={}|max_threads={}|max_addrs={}|exact_canon={}|\
         orphan_unconstrained={}|max_instances={}|time_budget_ms={}",
        cfg.events,
        cfg.max_threads,
        cfg.max_addrs,
        cfg.exact_canon,
        cfg.orphan_unconstrained,
        cfg.max_instances,
        cfg.time_budget_ms,
    );
    fnv1a(desc.as_bytes())
}

/// Writes `contents` to `path` atomically: a unique temp file in the same
/// directory is written, flushed, and renamed over the target, so readers
/// (and a kill at any point) see either the old file or the complete new
/// one — never a truncated mix.
pub fn atomic_write(path: &Path, contents: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let stem = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "file".to_string());
    // A per-process, per-call unique temp name: two processes (or threads)
    // journaling the same query must not clobber each other's temp file.
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let tmp = dir.join(format!(
        ".{}.tmp.{}.{}",
        stem,
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(contents)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// A directory of journaled query suites — per-run scratch when opened
/// with [`Journal::open`], a persistent size-capped cache tier when opened
/// with [`Journal::open_capped`] (the serving layer's second tier: a
/// restarted server re-serves journaled queries with zero solver work).
#[derive(Debug)]
pub struct Journal {
    dir: PathBuf,
    /// Total-size cap in bytes; `None` = unbounded (the classic
    /// per-run-scratch behavior).
    cap_bytes: Option<u64>,
    /// Entries evicted to honor the cap, over this handle's lifetime.
    evictions: std::sync::atomic::AtomicU64,
}

impl Journal {
    /// Opens (creating if needed) an unbounded journal at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Arc<Journal>> {
        Self::open_with_cap(dir, None)
    }

    /// Opens (creating if needed) a journal at `dir` capped at `cap_bytes`
    /// total entry size. After every [`Journal::record`] the oldest
    /// entries (by modification time, ties broken by file name) are
    /// evicted until the total fits — except the entry just written, so a
    /// single oversized suite is still recorded and served once.
    pub fn open_capped(dir: impl Into<PathBuf>, cap_bytes: u64) -> std::io::Result<Arc<Journal>> {
        Self::open_with_cap(dir, Some(cap_bytes))
    }

    fn open_with_cap(
        dir: impl Into<PathBuf>,
        cap_bytes: Option<u64>,
    ) -> std::io::Result<Arc<Journal>> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Arc::new(Journal {
            dir,
            cap_bytes,
            evictions: std::sync::atomic::AtomicU64::new(0),
        }))
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Entries evicted by the size cap over this handle's lifetime.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(std::sync::atomic::Ordering::Relaxed)
    }

    fn entry_path(&self, key: &str) -> PathBuf {
        // Keys are `model/axiom/bound`; flatten to one file per query.
        // The readable flattened key alone is ambiguous (`a/b` and `a-b`
        // both flatten to `a-b`), so the key's FNV hash is appended:
        // distinct keys always map to distinct files.
        self.dir.join(format!(
            "{}-{:016x}.journal",
            key.replace('/', "-"),
            fnv1a(key.as_bytes())
        ))
    }

    /// Number of entries currently journaled (any `.journal` file counts,
    /// valid or not).
    pub fn entries(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .filter(|e| e.path().extension().is_some_and(|x| x == "journal"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// The journaled suite for `key`, if a complete, checksum-valid entry
    /// recorded under the same config fingerprint exists. Any corruption
    /// or mismatch reads as "not journaled".
    pub fn lookup(&self, key: &str, fingerprint: u64) -> Option<CanonicalSuite> {
        let text = std::fs::read_to_string(self.entry_path(key)).ok()?;
        let mut lines = text.splitn(5, '\n');
        if lines.next()? != VERSION {
            return None;
        }
        let config = lines.next()?.strip_prefix("config ")?;
        if u64::from_str_radix(config, 16).ok()? != fingerprint {
            return None;
        }
        let checksum = lines.next()?.strip_prefix("checksum ")?;
        let checksum = u64::from_str_radix(checksum, 16).ok()?;
        let count: usize = lines.next()?.strip_prefix("tests ")?.parse().ok()?;
        let body = lines.next()?;
        if fnv1a(body.as_bytes()) != checksum {
            return None;
        }
        let suite = decode_suite_body(body)?;
        if suite.len() != count {
            return None;
        }
        Some(suite)
    }

    /// Journals the complete suite for `key` atomically. Errors are
    /// returned (the caller logs and continues — a failed checkpoint only
    /// costs re-running the query on resume, never correctness).
    pub fn record(
        &self,
        key: &str,
        fingerprint: u64,
        suite: &CanonicalSuite,
    ) -> std::io::Result<()> {
        let body = encode_suite_body(suite);
        let entry = format!(
            "{VERSION}\nconfig {fingerprint:016x}\nchecksum {:016x}\ntests {}\n{body}",
            fnv1a(body.as_bytes()),
            suite.len(),
        );
        let path = self.entry_path(key);
        atomic_write(&path, entry.as_bytes())?;
        self.evict_to_cap(&path);
        Ok(())
    }

    /// Total bytes of `.journal` entries currently on disk.
    pub fn total_bytes(&self) -> u64 {
        std::fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .filter(|e| e.path().extension().is_some_and(|x| x == "journal"))
                    .filter_map(|e| e.metadata().ok())
                    .map(|m| m.len())
                    .sum()
            })
            .unwrap_or(0)
    }

    /// Evicts oldest-first until the total entry size fits the cap,
    /// sparing `just_written`. Best-effort: an unreadable directory or a
    /// failed remove is skipped — the cap is a cache policy, never a
    /// correctness condition.
    fn evict_to_cap(&self, just_written: &Path) {
        let Some(cap) = self.cap_bytes else {
            return;
        };
        let Ok(rd) = std::fs::read_dir(&self.dir) else {
            return;
        };
        // (mtime, name, path, size) per entry, oldest first. Names break
        // mtime ties so the eviction order is stable across runs on
        // filesystems with coarse timestamps.
        let mut entries: Vec<(std::time::SystemTime, std::ffi::OsString, PathBuf, u64)> = rd
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "journal"))
            .filter_map(|e| {
                let meta = e.metadata().ok()?;
                let mtime = meta.modified().unwrap_or(std::time::SystemTime::UNIX_EPOCH);
                Some((mtime, e.file_name(), e.path(), meta.len()))
            })
            .collect();
        entries.sort();
        let mut total: u64 = entries.iter().map(|(_, _, _, size)| size).sum();
        for (_, _, path, size) in entries {
            if total <= cap {
                break;
            }
            if path == just_written {
                continue;
            }
            if std::fs::remove_file(&path).is_ok() {
                total = total.saturating_sub(size);
                self.evictions
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        }
    }
}

/// Serializes one completed (axiom, bound) unit result for the remote
/// worker wire: the journal entry's own header discipline (config
/// fingerprint, FNV content checksum, test count) plus the work counters a
/// coordinator folds into the merged reply, a blank line, and the suite in
/// [`encode_suite_body`] format. [`decode_unit_result`] round-trips it and
/// rejects any corruption or config skew — a remote worker's answer is
/// merged only if it provably ran the same query under the same config.
pub fn encode_unit_result(fingerprint: u64, r: &SynthResult) -> String {
    let body = encode_suite_body(&r.tests);
    format!(
        "config {fingerprint:016x}\nchecksum {:016x}\ntests {}\ncompilations {}\n\
         retries {}\ntruncated {}\ndegraded {}\n\n{body}",
        fnv1a(body.as_bytes()),
        r.tests.len(),
        r.compilations,
        r.retries,
        r.truncated,
        r.degraded,
    )
}

/// Parses an [`encode_unit_result`] payload, validating the declared
/// config fingerprint against `expect_fingerprint` and the FNV checksum
/// against the body that actually arrived. A stale (wrong-config) or
/// corrupt result is an `Err` naming the expected/actual values — never a
/// partial or silently-wrong suite.
pub fn decode_unit_result(text: &str, expect_fingerprint: u64) -> Result<SynthResult, String> {
    let (header, body) = text
        .split_once("\n\n")
        .ok_or_else(|| "unit result has no blank line after the header".to_string())?;
    let mut fingerprint = None;
    let mut checksum = None;
    let mut tests = None;
    let mut r = SynthResult::carrying(CanonicalSuite::new());
    for line in header.lines() {
        let (k, v) = line
            .split_once(' ')
            .ok_or_else(|| format!("unit-result header line {line:?} is not `key value`"))?;
        let err = || format!("unit-result field {k} {v:?} is malformed");
        match k {
            "config" => fingerprint = Some(u64::from_str_radix(v, 16).map_err(|_| err())?),
            "checksum" => checksum = Some(u64::from_str_radix(v, 16).map_err(|_| err())?),
            "tests" => tests = Some(v.parse::<usize>().map_err(|_| err())?),
            "compilations" => r.compilations = v.parse().map_err(|_| err())?,
            "retries" => r.retries = v.parse().map_err(|_| err())?,
            "truncated" => r.truncated = v.parse().map_err(|_| err())?,
            "degraded" => r.degraded = v.parse().map_err(|_| err())?,
            other => return Err(format!("unknown unit-result field {other:?}")),
        }
    }
    let fingerprint = fingerprint.ok_or("unit result is missing the config line")?;
    if fingerprint != expect_fingerprint {
        return Err(format!(
            "config fingerprint mismatch: expected {expect_fingerprint:016x}, \
             actual {fingerprint:016x}"
        ));
    }
    let checksum = checksum.ok_or("unit result is missing the checksum line")?;
    let actual = fnv1a(body.as_bytes());
    if actual != checksum {
        return Err(format!(
            "content checksum mismatch: expected {checksum:016x}, actual {actual:016x}"
        ));
    }
    let tests = tests.ok_or("unit result is missing the tests line")?;
    let suite = decode_suite_body(body).ok_or("unit-result suite body does not parse")?;
    if suite.len() != tests {
        return Err(format!(
            "unit result declares {tests} tests but the body holds {}",
            suite.len()
        ));
    }
    r.tests = suite;
    Ok(r)
}

/// Serializes a canonical suite to the journal/wire body format: per test,
/// a `#key <canonical key>` line, the litmus text, and a `%%` terminator.
/// The exact format [`Journal::record`] checksums and the serve protocol
/// ships — [`decode_suite_body`] round-trips it byte-identically at the
/// suite level (canonical keys and every field `serialize` reads).
pub fn encode_suite_body(suite: &CanonicalSuite) -> String {
    let mut body = String::new();
    for (k, (test, outcome)) in suite {
        body.push_str("#key ");
        body.push_str(k);
        body.push('\n');
        let text = to_text(test, outcome);
        body.push_str(&text);
        if !text.ends_with('\n') {
            body.push('\n');
        }
        body.push_str("%%\n");
    }
    body
}

/// Parses an [`encode_suite_body`] body back into a canonical suite.
/// `None` on any malformed block (callers treat the whole body as absent —
/// a torn entry must never yield a partial suite).
pub fn decode_suite_body(body: &str) -> Option<CanonicalSuite> {
    let mut suite = CanonicalSuite::new();
    for block in body.split("\n%%\n") {
        let block = block.trim_end_matches('\n');
        if block.is_empty() {
            continue;
        }
        let (key_line, test_text) = block.split_once('\n')?;
        let key = key_line.strip_prefix("#key ")?;
        let (test, outcome) = from_text(test_text).ok()?;
        suite.insert(key.to_string(), (test, outcome));
    }
    Some(suite)
}

/// The journal configured by the environment: active when
/// `LITSYNTH_RESUME` is set to a truthy value (`1`, `true`, `yes`, `on`),
/// rooted at `LITSYNTH_JOURNAL` (default `suites_out/journal`). Returns
/// `None` when resume is off or the directory cannot be created.
pub fn env_journal() -> Option<Arc<Journal>> {
    let resume = std::env::var("LITSYNTH_RESUME").ok()?;
    if !matches!(resume.trim(), "1" | "true" | "yes" | "on") {
        return None;
    }
    let dir =
        std::env::var("LITSYNTH_JOURNAL").unwrap_or_else(|_| "suites_out/journal".to_string());
    match Journal::open(&dir) {
        Ok(j) => Some(j),
        Err(e) => {
            eprintln!("warning: cannot open journal at {dir}: {e}; resume disabled");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use litsynth_litmus::serialize;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "litsynth-journal-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// A real synthesized suite, so the round-trip covers deps, rmw pairs,
    /// rf edges, and final values as they actually occur.
    fn sample_suite() -> CanonicalSuite {
        use crate::synth::synthesize_axiom;
        use litsynth_models::Tso;
        let cfg = SynthConfig::new(3);
        synthesize_axiom(&Tso::new(), "sc_per_loc", &cfg).tests
    }

    #[test]
    fn record_then_lookup_roundtrips_byte_identically() {
        let dir = temp_dir("roundtrip");
        let j = Journal::open(&dir).expect("journal opens");
        let suite = sample_suite();
        assert!(!suite.is_empty());
        j.record("tso/sc_per_loc/3", 42, &suite).expect("record");
        assert_eq!(j.entries(), 1);
        let back = j.lookup("tso/sc_per_loc/3", 42).expect("entry exists");
        assert_eq!(
            suite.keys().collect::<Vec<_>>(),
            back.keys().collect::<Vec<_>>()
        );
        for (k, (t, o)) in &suite {
            let (bt, bo) = &back[k];
            assert_eq!(serialize(t, o), serialize(bt, bo), "{k}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_mismatch_reads_as_absent() {
        let dir = temp_dir("fp");
        let j = Journal::open(&dir).expect("journal opens");
        j.record("tso/sc_per_loc/3", 42, &sample_suite())
            .expect("record");
        assert!(j.lookup("tso/sc_per_loc/3", 43).is_none());
        assert!(j.lookup("tso/causality/3", 42).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entry_reads_as_absent() {
        let dir = temp_dir("corrupt");
        let j = Journal::open(&dir).expect("journal opens");
        j.record("tso/sc_per_loc/3", 42, &sample_suite())
            .expect("record");
        let path = j.entry_path("tso/sc_per_loc/3");
        // Truncate mid-body: the checksum must catch it.
        let text = std::fs::read_to_string(&path).expect("read entry");
        std::fs::write(&path, &text[..text.len() / 2]).expect("truncate");
        assert!(j.lookup("tso/sc_per_loc/3", 42).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_replaces_whole_file() {
        let dir = temp_dir("atomic");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("out.txt");
        atomic_write(&path, b"first version").expect("write 1");
        atomic_write(&path, b"second").expect("write 2");
        assert_eq!(std::fs::read(&path).expect("read"), b"second");
        // No temp litter left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("readdir")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn config_fingerprint_tracks_suite_relevant_fields_only() {
        let m = "TSO";
        let base = SynthConfig::new(3);
        let fp = config_fingerprint(m, "causality", &base);
        // Parallelism knobs don't change the fingerprint.
        let mut par = base.clone();
        par.threads = 8;
        par.cube_bits = 3;
        par.exchange = false;
        assert_eq!(config_fingerprint(m, "causality", &par), fp);
        // Suite-relevant bounds do.
        let mut wider = base.clone();
        wider.max_addrs += 1;
        assert_ne!(config_fingerprint(m, "causality", &wider), fp);
        assert_ne!(config_fingerprint(m, "sc_per_loc", &base), fp);
        assert_ne!(config_fingerprint("SC", "causality", &base), fp);
    }

    #[test]
    fn query_key_is_lowercased_and_slash_joined() {
        assert_eq!(query_key("TSO", "sc_per_loc", 2), "tso/sc_per_loc/2");
    }

    #[test]
    fn distinct_keys_never_share_an_entry_file() {
        // Regression: plain `/`→`-` flattening mapped `a/b` and `a-b` to
        // the same file, so recording one clobbered (and then served) the
        // other. The appended key hash keeps them apart.
        let dir = temp_dir("collision");
        let j = Journal::open(&dir).expect("journal opens");
        assert_ne!(j.entry_path("a/b"), j.entry_path("a-b"));
        let suite = sample_suite();
        let empty = CanonicalSuite::new();
        j.record("a/b", 7, &suite).expect("record a/b");
        j.record("a-b", 7, &empty).expect("record a-b");
        assert_eq!(j.entries(), 2, "two keys, two files");
        let back = j.lookup("a/b", 7).expect("a/b survives a-b's record");
        assert_eq!(back.len(), suite.len());
        assert_eq!(j.lookup("a-b", 7).expect("a-b entry").len(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn size_cap_evicts_oldest_entries_but_never_the_newest() {
        let dir = temp_dir("evict");
        let suite = sample_suite();
        let one_entry = {
            let j = Journal::open(&dir).expect("journal opens");
            j.record("probe/size/0", 1, &suite).expect("record");
            j.total_bytes()
        };
        let _ = std::fs::remove_dir_all(&dir);
        assert!(one_entry > 0);

        // Cap at ~2.5 entries: the third record must evict the oldest.
        let j = Journal::open_capped(&dir, one_entry * 5 / 2).expect("journal opens");
        for (i, key) in ["tso/a/2", "tso/b/2", "tso/c/2"].iter().enumerate() {
            j.record(key, i as u64, &suite).expect("record");
            // Distinct mtimes even on coarse-timestamp filesystems.
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        assert!(j.evictions() >= 1, "the cap must have evicted");
        assert!(j.total_bytes() <= one_entry * 5 / 2);
        assert!(j.lookup("tso/a/2", 0).is_none(), "oldest entry evicted");
        assert!(
            j.lookup("tso/c/2", 2).is_some(),
            "the just-written entry is never evicted"
        );

        // A cap smaller than a single entry still records (and keeps) the
        // entry just written.
        let _ = std::fs::remove_dir_all(&dir);
        let j = Journal::open_capped(&dir, 1).expect("journal opens");
        j.record("tso/solo/2", 9, &suite).expect("record");
        assert!(j.lookup("tso/solo/2", 9).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn suite_body_round_trips_through_encode_and_decode() {
        let suite = sample_suite();
        let body = encode_suite_body(&suite);
        let back = decode_suite_body(&body).expect("decodes");
        assert_eq!(
            suite.keys().collect::<Vec<_>>(),
            back.keys().collect::<Vec<_>>()
        );
        for (k, (t, o)) in &suite {
            let (bt, bo) = &back[k];
            assert_eq!(serialize(t, o), serialize(bt, bo), "{k}");
        }
        // And a torn body reads as absent, never as a partial suite.
        assert!(decode_suite_body(&body[..body.len() / 2]).is_none());
    }

    #[test]
    fn unit_result_round_trips_and_rejects_skew_and_corruption() {
        let mut r = SynthResult::carrying(sample_suite());
        r.compilations = 2;
        r.retries = 3;
        r.truncated = false;
        r.degraded = 0;
        let text = encode_unit_result(0x1234, &r);
        let back = decode_unit_result(&text, 0x1234).expect("round-trips");
        assert_eq!(back.compilations, 2);
        assert_eq!(back.retries, 3);
        assert_eq!(
            encode_suite_body(&back.tests),
            encode_suite_body(&r.tests),
            "suite bytes survive the round-trip"
        );

        // Config skew: a result computed under another fingerprint is
        // stale and must be rejected, naming both values.
        let err = decode_unit_result(&text, 0x9999).expect_err("stale result rejected");
        assert!(
            err.contains("0000000000009999") && err.contains("0000000000001234"),
            "{err}"
        );

        // Corruption: flip one byte of the suite body — the checksum must
        // catch it and the error must name expected/actual digests.
        let flipped = text.replacen("%%", "%$", 1);
        assert_ne!(flipped, text, "sample suite must be non-empty");
        let err = decode_unit_result(&flipped, 0x1234).expect_err("corrupt result rejected");
        assert!(err.contains("checksum mismatch"), "{err}");
        assert!(err.contains("expected") && err.contains("actual"), "{err}");

        // Truncation: a torn payload never yields a partial suite.
        assert!(decode_unit_result(&text[..text.len() / 2], 0x1234).is_err());
    }

    #[test]
    fn config_fingerprint_golden_value_is_pinned() {
        // The fingerprint is a *network-visible* cache key (journal tier
        // and serve-protocol suite cache): accidental drift silently
        // invalidates every cached suite in the fleet, so the exact value
        // is pinned here. If this fails because the fingerprinted field
        // set deliberately changed, bump the journal VERSION and update
        // the constant.
        let fp = config_fingerprint("TSO", "sc_per_loc", &SynthConfig::new(3));
        assert_eq!(fp, 0xa995_49ce_ee79_66bf, "got {fp:#018x}");

        // Every parallelism/serving knob must be excluded: these are
        // byte-identity-preserving by construction, so two configs that
        // differ only here share cache entries.
        let mut cfg = SynthConfig::new(3);
        cfg.threads = 16;
        cfg.cube_bits = 4;
        cfg.exchange = false;
        cfg.exchange_max_lbd = 2;
        cfg.exchange_max_len = 5;
        cfg.adaptive_cubes = false;
        cfg.probe_conflicts = 9;
        cfg.incremental = false;
        cfg.vault = false;
        cfg.lazy = false;
        cfg.shelve = false;
        cfg.domain = false;
        cfg.max_attempts = 7;
        cfg.retry_backoff_ms = 99;
        cfg.adaptive_engage = false;
        cfg.engage_below = 99;
        cfg.progress = Some(crate::symbolic::ProgressSink::new(|_| {}));
        assert_eq!(config_fingerprint("TSO", "sc_per_loc", &cfg), fp);
    }
}
