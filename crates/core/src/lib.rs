//! # litsynth-core
//!
//! The paper's contribution: comprehensive-by-construction litmus test
//! suite synthesis from an axiomatic memory-model specification.
//!
//! * [`relax`] — instruction relaxations (RI, DMO, DF, DRMW, RD) applied at
//!   the test level.
//! * [`minimal`] — the exact (exists-forall) minimality criterion, decided
//!   by explicit enumeration.
//! * [`symbolic`] — the symbolic test encoding over `litsynth-relalg`.
//! * [`perturb`] — context perturbations (the paper's `_p` relations).
//! * [`synth`] — the SAT-based synthesis loop (Figure 5c + Figure 19).
//! * [`subtest`] — subtest containment via relaxation reachability
//!   (Table 4).
//! * [`allprogs`] — all-programs counting (Figure 13a's upper line).
//! * [`journal`] — the crash-safe checkpoint journal behind
//!   `--resume`: completed (axiom, bound) queries are recorded with
//!   atomic writes and replayed byte-identically on the next run.

pub mod allprogs;
pub mod journal;
pub mod minimal;
pub mod perturb;
pub mod relax;
pub mod subtest;
pub mod symbolic;
pub mod synth;

pub use allprogs::count_programs;
pub use journal::{
    atomic_write, config_fingerprint, decode_suite_body, decode_unit_result, encode_suite_body,
    encode_unit_result, env_journal, fnv1a, query_key, Journal,
};
pub use minimal::{check_minimal, minimal_for_some_axiom, MinimalityVerdict};
pub use relax::{applications, apply, Application};
pub use subtest::{contains_subtest, covering_subtests, program_key};
pub use symbolic::{vocabulary, ProgressEvent, ProgressSink, Shape, SymbolicTest, SynthConfig};
pub use synth::{
    engage_downgrades, merge_unit_suites, plan_units, run_unit, synthesize_axiom, synthesize_union,
    synthesize_union_up_to, synthesize_union_up_to_with_stats, CanonicalSuite, SweepStats,
    SynthResult, UnitPlan, WorkerStats,
};
