//! Instruction relaxations (paper §3): transformations that weaken one
//! instruction's synchronization, applied at the *test* level.
//!
//! These concrete applications drive the exact (exists-forall) minimality
//! oracle and the subtest-containment analysis of Table 4. The symbolic
//! synthesis applies the same relaxations as context perturbations instead
//! (see [`crate::perturb`]), mirroring the paper's `_p` relations.

use litsynth_litmus::{Addr, DepKind, FenceKind, Instr, LitmusTest, MemOrder, Outcome};
use litsynth_models::MemoryModel;
use std::collections::BTreeMap;

/// One concrete relaxation application: a kind, a target event (global id),
/// and the demotion target where relevant.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Application {
    /// Remove instruction `gid`.
    Ri {
        /// Target event.
        gid: usize,
    },
    /// Demote the memory order of `gid` to `to`.
    Dmo {
        /// Target event.
        gid: usize,
        /// Demotion target.
        to: MemOrder,
    },
    /// Demote the fence `gid` to kind `to`.
    Df {
        /// Target event.
        gid: usize,
        /// Demotion target.
        to: FenceKind,
    },
    /// Remove all dependencies originating at `gid`.
    Rd {
        /// Target event.
        gid: usize,
    },
    /// Decompose the RMW at `gid` (a single-instruction RMW, or the load of
    /// a two-instruction pair).
    Drmw {
        /// Target event.
        gid: usize,
    },
}

impl Application {
    /// The targeted event.
    pub fn gid(&self) -> usize {
        match *self {
            Application::Ri { gid }
            | Application::Dmo { gid, .. }
            | Application::Df { gid, .. }
            | Application::Rd { gid }
            | Application::Drmw { gid } => gid,
        }
    }

    /// Short display form, e.g. `RI@3` or `DMO@1→relaxed`.
    pub fn describe(&self) -> String {
        match *self {
            Application::Ri { gid } => format!("RI@{gid}"),
            Application::Dmo { gid, to } => format!("DMO@{gid}→{to:?}"),
            Application::Df { gid, to } => format!("DF@{gid}→{to:?}"),
            Application::Rd { gid } => format!("RD@{gid}"),
            Application::Drmw { gid } => format!("DRMW@{gid}"),
        }
    }
}

/// Enumerates every relaxation application the model admits on `test`
/// (the paper's `relaxation_applies` guard, concretely).
pub fn applications<M: MemoryModel>(model: &M, test: &LitmusTest) -> Vec<Application> {
    let mut out = Vec::new();
    for gid in 0..test.num_events() {
        let instr = test.instr(gid);
        // RI applies to every instruction.
        out.push(Application::Ri { gid });
        // DMO: every in-vocabulary demotion step.
        for to in model.order_demotions(instr) {
            out.push(Application::Dmo { gid, to });
        }
        // DF: fence-strength demotions.
        if let Instr::Fence { kind, .. } = instr {
            for to in model.fence_demotions(kind) {
                out.push(Application::Df { gid, to });
            }
        }
        // RD: only when dependencies actually originate here.
        let tid = test.thread_of(gid);
        let idx = test.index_of(gid);
        if test.deps().iter().any(|d| d.tid == tid && d.from == idx) {
            out.push(Application::Rd { gid });
        }
        // DRMW: single-instruction RMWs and pair loads.
        if matches!(instr, Instr::Rmw { .. }) {
            out.push(Application::Drmw { gid });
        }
        if test
            .rmw_pairs()
            .iter()
            .any(|p| p.tid == tid && p.load == idx)
        {
            out.push(Application::Drmw { gid });
        }
    }
    out
}

/// Applies one relaxation, producing the relaxed test and the projected
/// outcome (components referring to removed structure are dropped — the
/// paper's "leave the read unconstrained" rule, §4.3).
pub fn apply(test: &LitmusTest, outcome: &Outcome, app: Application) -> (LitmusTest, Outcome) {
    match app {
        Application::Ri { gid } => apply_ri(test, outcome, gid),
        Application::Dmo { gid, to } => {
            let t = rebuild_with(test, gid, |i| i.with_order(to));
            (t, outcome.clone())
        }
        Application::Df { gid, to } => {
            let t = rebuild_with(test, gid, |i| match i {
                Instr::Fence { scope, .. } => Instr::Fence { kind: to, scope },
                other => other,
            });
            (t, outcome.clone())
        }
        Application::Rd { gid } => {
            let tid = test.thread_of(gid);
            let idx = test.index_of(gid);
            let mut t = LitmusTest::new(test.name().to_string(), test.threads().to_vec());
            for d in test.deps() {
                if !(d.tid == tid && d.from == idx) {
                    t = t.with_dep(d.tid, d.from, d.to, d.kind);
                }
            }
            for p in test.rmw_pairs() {
                t = t.with_rmw_pair(p.tid, p.load);
            }
            (t, outcome.clone())
        }
        Application::Drmw { gid } => apply_drmw(test, outcome, gid),
    }
}

fn rebuild_with(test: &LitmusTest, gid: usize, f: impl Fn(Instr) -> Instr) -> LitmusTest {
    let mut threads = test.threads().to_vec();
    threads[test.thread_of(gid)][test.index_of(gid)] = f(test.instr(gid));
    let mut t = LitmusTest::new(test.name().to_string(), threads);
    for d in test.deps() {
        t = t.with_dep(d.tid, d.from, d.to, d.kind);
    }
    for p in test.rmw_pairs() {
        t = t.with_rmw_pair(p.tid, p.load);
    }
    t
}

fn apply_ri(test: &LitmusTest, outcome: &Outcome, gid: usize) -> (LitmusTest, Outcome) {
    let rm_tid = test.thread_of(gid);
    let rm_idx = test.index_of(gid);
    let mut threads = test.threads().to_vec();
    threads[rm_tid].remove(rm_idx);
    // Drop a now-empty thread entirely.
    let drop_thread = threads[rm_tid].is_empty();
    if drop_thread {
        threads.remove(rm_tid);
    }
    let mut t = LitmusTest::new(test.name().to_string(), threads);

    let map_tid = |tid: usize| -> Option<usize> {
        if drop_thread {
            if tid == rm_tid {
                None
            } else if tid > rm_tid {
                Some(tid - 1)
            } else {
                Some(tid)
            }
        } else {
            Some(tid)
        }
    };
    let map_idx = |tid: usize, idx: usize| -> Option<usize> {
        if tid == rm_tid {
            if idx == rm_idx {
                None
            } else if idx > rm_idx {
                Some(idx - 1)
            } else {
                Some(idx)
            }
        } else {
            Some(idx)
        }
    };
    for d in test.deps() {
        if let (Some(tid), Some(from), Some(to)) =
            (map_tid(d.tid), map_idx(d.tid, d.from), map_idx(d.tid, d.to))
        {
            t = t.with_dep(tid, from, to, d.kind);
        }
    }
    for p in test.rmw_pairs() {
        if let (Some(tid), Some(load), Some(store)) = (
            map_tid(p.tid),
            map_idx(p.tid, p.load),
            map_idx(p.tid, p.store),
        ) {
            // The pair survives only if it is still adjacent.
            if store == load + 1 {
                t = t.with_rmw_pair(tid, load);
            }
        }
    }

    // Global-id remapping.
    let map_gid = |g: usize| -> Option<usize> {
        if g == gid {
            return None;
        }
        let tid = test.thread_of(g);
        let idx = test.index_of(g);
        Some(t.gid(map_tid(tid)?, map_idx(tid, idx)?))
    };
    let mut rf: BTreeMap<usize, Option<usize>> = BTreeMap::new();
    for (&r, &w) in &outcome.rf {
        let Some(r2) = map_gid(r) else { continue };
        match w {
            None => {
                rf.insert(r2, None);
            }
            Some(w) => {
                // If the source write was removed, the read becomes
                // unconstrained (paper Figure 3d): drop the entry.
                if let Some(w2) = map_gid(w) {
                    rf.insert(r2, Some(w2));
                }
            }
        }
    }
    let mut finals: BTreeMap<Addr, usize> = BTreeMap::new();
    for (&a, &w) in &outcome.finals {
        if let Some(w2) = map_gid(w) {
            finals.insert(a, w2);
        }
    }
    (t, Outcome { rf, finals })
}

fn apply_drmw(test: &LitmusTest, outcome: &Outcome, gid: usize) -> (LitmusTest, Outcome) {
    let tid = test.thread_of(gid);
    let idx = test.index_of(gid);
    // Pair form: just drop the rmw edge.
    if test
        .rmw_pairs()
        .iter()
        .any(|p| p.tid == tid && p.load == idx)
    {
        let mut t = LitmusTest::new(test.name().to_string(), test.threads().to_vec());
        for d in test.deps() {
            t = t.with_dep(d.tid, d.from, d.to, d.kind);
        }
        for p in test.rmw_pairs() {
            if !(p.tid == tid && p.load == idx) {
                t = t.with_rmw_pair(p.tid, p.load);
            }
        }
        // Decomposition keeps the data dependency between the halves.
        let t = t.with_dep(tid, idx, idx + 1, DepKind::Data);
        return (t, outcome.clone());
    }
    // Single-instruction form: split into Ld;St with a data dependency.
    let Instr::Rmw { addr, order, scope } = test.instr(gid) else {
        panic!("DRMW target {gid} is not an RMW");
    };
    let load_order = match order {
        MemOrder::SeqCst => MemOrder::SeqCst,
        MemOrder::AcqRel | MemOrder::Acquire => MemOrder::Acquire,
        MemOrder::Consume => MemOrder::Consume,
        _ => MemOrder::Relaxed,
    };
    let store_order = match order {
        MemOrder::SeqCst => MemOrder::SeqCst,
        MemOrder::AcqRel | MemOrder::Release => MemOrder::Release,
        _ => MemOrder::Relaxed,
    };
    let mut threads = test.threads().to_vec();
    threads[tid][idx] = Instr::Load {
        addr,
        order: load_order,
        scope,
    };
    threads[tid].insert(
        idx + 1,
        Instr::Store {
            addr,
            order: store_order,
            scope,
        },
    );
    let mut t = LitmusTest::new(test.name().to_string(), threads);
    let shift_idx = |d_tid: usize, i: usize| if d_tid == tid && i > idx { i + 1 } else { i };
    for d in test.deps() {
        t = t.with_dep(
            d.tid,
            shift_idx(d.tid, d.from),
            shift_idx(d.tid, d.to),
            d.kind,
        );
    }
    for p in test.rmw_pairs() {
        t = t.with_rmw_pair(p.tid, shift_idx(p.tid, p.load));
    }
    t = t.with_dep(tid, idx, idx + 1, DepKind::Data);

    // Gid remapping: reads at the old RMW stay at `gid` (the load); writes
    // move to `gid + 1` (the store); everything after shifts by one.
    let map_read = |g: usize| if g > gid { g + 1 } else { g };
    let map_write = |g: usize| if g >= gid { g + 1 } else { g };
    let rf = outcome
        .rf
        .iter()
        .map(|(&r, &w)| (map_read(r), w.map(map_write)))
        .collect();
    let finals = outcome
        .finals
        .iter()
        .map(|(&a, &w)| (a, map_write(w)))
        .collect();
    (t, Outcome { rf, finals })
}

#[cfg(test)]
mod tests {
    use super::*;
    use litsynth_litmus::suites::classics;
    use litsynth_models::{Scc, Tso};

    #[test]
    fn ri_on_mp_store_matches_fig3() {
        // Figure 3a: removing the store to [data] leaves the (r=1, r2=0)
        // residue with the data-read unconstrained — here rf keeps (flag
        // read ← flag write) and the x-read's init entry.
        let (t, o) = classics::mp();
        let (t2, o2) = apply(&t, &o, Application::Ri { gid: 0 });
        assert_eq!(t2.num_events(), 3);
        assert_eq!(o2.rf.len(), 2);
        // Figure 3d: removing the store to [flag] orphans the flag read.
        let (t3, o3) = apply(&t, &o, Application::Ri { gid: 1 });
        assert_eq!(t3.num_events(), 3);
        // The flag read's rf entry is dropped (unconstrained)…
        assert_eq!(o3.rf.len(), 1);
        // …while the data read keeps its init entry.
        assert!(o3.rf.values().any(|w| w.is_none()));
    }

    #[test]
    fn ri_drops_empty_threads_and_remaps() {
        let (t, o) = classics::wrc();
        // Remove the lone store in thread 0.
        let (t2, o2) = apply(&t, &o, Application::Ri { gid: 0 });
        assert_eq!(t2.num_threads(), 2);
        assert_eq!(t2.num_events(), 4);
        for (&r, &w) in &o2.rf {
            assert!(r < 4);
            if let Some(w) = w {
                assert!(w < 4);
            }
        }
    }

    #[test]
    fn dmo_demotes_in_place() {
        let (t, o) = classics::mp_rel_acq();
        let (t2, o2) = apply(
            &t,
            &o,
            Application::Dmo {
                gid: 1,
                to: MemOrder::Relaxed,
            },
        );
        assert_eq!(t2.instr(1).order(), Some(MemOrder::Relaxed));
        assert_eq!(o2, o);
        assert_eq!(t2.num_events(), t.num_events());
    }

    #[test]
    fn rd_strips_only_the_targeted_source() {
        let (t, o) = classics::lb_addrs();
        let (t2, _) = apply(&t, &o, Application::Rd { gid: 0 });
        assert_eq!(t2.deps().len(), 1);
        assert_eq!(t2.deps()[0].tid, 1);
        let _ = o;
    }

    #[test]
    fn drmw_splits_single_instruction_rmw() {
        let (t, o) = classics::rmw_st();
        let (t2, o2) = apply(&t, &o, Application::Drmw { gid: 0 });
        assert_eq!(t2.num_events(), 3);
        assert!(t2.instr(0).is_read() && !t2.instr(0).is_write());
        assert!(t2.instr(1).is_write() && !t2.instr(1).is_read());
        // The data dependency between the halves remains (§3.2).
        assert_eq!(t2.deps().len(), 1);
        assert_eq!(t2.deps()[0].kind, DepKind::Data);
        // The outcome's read entry stays on the load; the final moves to
        // the store.
        assert!(o2.rf.contains_key(&0));
        assert_eq!(o2.finals[&Addr(0)], 1);
        let _ = o;
    }

    #[test]
    fn drmw_on_pair_drops_the_edge() {
        let t = LitmusTest::new(
            "pair",
            vec![vec![Instr::load(0), Instr::store(0)], vec![Instr::store(0)]],
        )
        .with_rmw_pair(0, 0);
        let o = classics::oc([(0, None)], [(0, 1)]);
        let (t2, o2) = apply(&t, &o, Application::Drmw { gid: 0 });
        assert!(t2.rmw_pairs().is_empty());
        assert_eq!(t2.num_events(), t.num_events());
        assert_eq!(t2.deps().len(), 1);
        assert_eq!(o2, o);
    }

    #[test]
    fn applications_respect_vocabulary() {
        let tso = Tso::new();
        let (t, _) = classics::sb_fences();
        let apps = applications(&tso, &t);
        // RI on all 6 events; no DF (TSO has one fence kind), no DMO, no RD.
        assert_eq!(apps.len(), 6);
        assert!(apps.iter().all(|a| matches!(a, Application::Ri { .. })));

        let scc = Scc::new();
        let (t, _) = classics::mp_rel_acq();
        let apps = applications(&scc, &t);
        // RI×4 + DMO on the release and the acquire.
        assert_eq!(apps.len(), 6);
        assert_eq!(
            apps.iter()
                .filter(|a| matches!(a, Application::Dmo { .. }))
                .count(),
            2
        );
    }

    #[test]
    fn df_applies_to_scc_fencesc() {
        let scc = Scc::new();
        let (t, _) = classics::sb_fences();
        let apps = applications(&scc, &t);
        let dfs: Vec<_> = apps
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    Application::Df {
                        to: FenceKind::AcqRel,
                        ..
                    }
                )
            })
            .collect();
        assert_eq!(dfs.len(), 2);
    }
}
