//! The synthesis loop (paper §5): enumerate every instance of the
//! minimality criterion, canonicalize, and deduplicate — in parallel.
//!
//! # The parallel engine
//!
//! Every (axiom, bound) query is an independent SAT enumeration, so the
//! drivers fan queries out across a scoped-thread worker pool
//! ([`SynthConfig::threads`]). On top of that, one query can be
//! *cube-split* ([`SynthConfig::cube_bits`]): `b` instruction-kind
//! selector bits are pinned to each of the `2^b` boolean patterns as extra
//! assumptions, partitioning the observable space into disjoint subqueries
//! that enumerate concurrently and merge through the canonical-key dedup.
//!
//! Since the portfolio subsystem (`litsynth-portfolio`), a query's cube
//! workers cooperate instead of running blind:
//!
//! * the circuit is Tseitin-compiled **once** per query into a shared
//!   clause arena (whichever worker arrives first pays, through a
//!   `OnceLock`); every worker attaches a private solver to it,
//! * workers trade learnt clauses over a bounded **exchange bus**
//!   ([`SynthConfig::exchange`]), which prunes search but provably never
//!   changes the enumerated class set, and
//! * the pinned bits are chosen **adaptively** from a probing run's VSIDS
//!   activity ([`SynthConfig::adaptive_cubes`]) rather than slot order.
//!
//! Results are deterministic by construction — byte-identical across any
//! `threads`/`cube_bits`/`exchange` choice:
//!
//! * tasks are merged in a fixed (bound, axiom, cube) order, never in
//!   completion order,
//! * the representative stored for a canonical key is a pure function of
//!   the key (the exact canonicalizer's normal form; for the hash-based
//!   ablation canonicalizer, the lexicographically least serialization),
//!   not whichever isomorphic variant a worker happened to enumerate
//!   first,
//! * cube pins are a pure function of the compiled query (the probe is
//!   deterministic), so the partition never depends on thread timing, and
//! * imported clauses are implied for every model a worker has yet to
//!   enumerate (see `litsynth_portfolio::exchange`), so exchange traffic
//!   affects solver effort only, never the per-cube class sets.

use crate::perturb::minimality_asserts_opts;
use crate::symbolic::{vocabulary, SymbolicTest, SynthConfig};
use litsynth_litmus::{canonical_key_hash, canonicalize_exact, serialize, LitmusTest, Outcome};
use litsynth_models::{MemoryModel, SymAlg};
use litsynth_portfolio::{run_ordered, CompiledQuery, CubeConfig, ExchangeBus, ExchangeConfig};
use litsynth_relalg::Bit;
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// A deduplicated suite: canonical key → (test, outcome).
pub type CanonicalSuite = BTreeMap<String, (LitmusTest, Outcome)>;

/// Statistics for one enumeration worker — one (axiom, bound, cube) task.
#[derive(Clone, Debug)]
pub struct WorkerStats {
    /// The axiom this worker enumerated.
    pub axiom: &'static str,
    /// The event bound of the query.
    pub bound: usize,
    /// Which cube of `num_cubes` this worker owned (0 when unsplit).
    pub cube: usize,
    /// Total cubes the query was split into (1 when unsplit).
    pub num_cubes: usize,
    /// Raw solver instances this worker enumerated.
    pub raw_instances: usize,
    /// CNF variables in this worker's solver.
    pub cnf_vars: usize,
    /// CNF clauses in this worker's solver.
    pub cnf_clauses: usize,
    /// Wall-clock time this worker spent.
    pub elapsed: Duration,
    /// `true` if the instance cap or time budget stopped this worker.
    pub truncated: bool,
    /// Learnt clauses this worker published on the exchange bus.
    pub exported: u64,
    /// Peer clauses this worker imported from the bus.
    pub imported: u64,
    /// Clauses the bus filter (LBD/size/pool cap) dropped for this worker.
    pub filtered: u64,
    /// Wall-clock time of the query's cube-selection probe (a per-query
    /// cost, reported on every worker of the query).
    pub probe: Duration,
}

/// The result of one synthesis query (one model, one axiom, one bound),
/// possibly aggregated over several cube workers.
#[derive(Debug)]
pub struct SynthResult {
    /// Canonical tests, keyed by canonical form.
    pub tests: BTreeMap<String, (LitmusTest, Outcome)>,
    /// Raw solver instances enumerated (before canonicalization), summed
    /// over workers.
    pub raw_instances: usize,
    /// Wall-clock time for the whole query (not the sum of workers).
    pub elapsed: Duration,
    /// `true` if the instance cap or time budget stopped any worker early.
    pub truncated: bool,
    /// CNF variables, summed over workers.
    pub cnf_vars: usize,
    /// CNF clause count, summed over workers.
    pub cnf_clauses: usize,
    /// Circuit→CNF compilations performed (exactly one per query on the
    /// portfolio path, however many cube workers attach).
    pub compilations: usize,
    /// Exchange-bus totals over all workers: (exported, imported,
    /// filtered).
    pub exchange: (u64, u64, u64),
    /// Total cube-selection probe time, summed over queries.
    pub probe: Duration,
    /// Per-worker solver statistics, in cube order.
    pub workers: Vec<WorkerStats>,
}

impl SynthResult {
    /// Number of distinct canonical tests found.
    pub fn len(&self) -> usize {
        self.tests.len()
    }

    /// `true` if no tests were found.
    pub fn is_empty(&self) -> bool {
        self.tests.is_empty()
    }

    /// The tests, in canonical-key order.
    pub fn into_tests(self) -> Vec<(LitmusTest, Outcome)> {
        self.tests.into_values().collect()
    }
}

/// Inserts with the deterministic representative rule: the value kept for
/// a key never depends on enumeration order (see the module docs).
fn insert_dedup(suite: &mut CanonicalSuite, key: String, test: LitmusTest, outcome: Outcome) {
    match suite.entry(key) {
        Entry::Vacant(v) => {
            v.insert((test, outcome));
        }
        Entry::Occupied(mut o) => {
            let (t0, o0) = o.get();
            if serialize(&test, &outcome) < serialize(t0, o0) {
                o.insert((test, outcome));
            }
        }
    }
}

/// `cube_bits` clamped to the number of pinnable selector bits the query
/// actually has. The pin *candidates* are the instruction-kind selector
/// bits — distinct circuit inputs, and observables, so pinning them
/// partitions the observable space (every blocked class determines the
/// pinned bits' values and falls in exactly one cube).
fn effective_cube_bits<M: MemoryModel>(model: &M, cfg: &SynthConfig) -> usize {
    cfg.cube_bits.min(vocabulary(model).len() * cfg.events)
}

/// One (axiom, bound) query, compiled once and shared by its cube workers.
struct Query {
    st: SymbolicTest,
    /// The minimality asserts, without cube pins.
    asserts: Vec<Bit>,
    query: CompiledQuery,
    /// Circuit→CNF compilations this query performed (always 1 — the
    /// counter exists so the observability path reports measured fact, not
    /// assumption; `experiments speedup` cross-checks it against the
    /// process-wide `litsynth_relalg::compilations()` counter). Measured
    /// with the thread-local counter: the whole build runs on one thread,
    /// so sibling queries compiling concurrently cannot inflate it.
    compilations: usize,
}

/// Builds (symbolic test + minimality asserts + shared compilation + cube
/// pins) for one query. Runs inside a `OnceLock`, so exactly one worker
/// per query pays this cost; the result is a pure function of
/// (model, cfg, axiom) regardless of which worker that is.
fn build_query<M: MemoryModel>(model: &M, cfg: &SynthConfig, axiom: &'static str) -> Query {
    let before = litsynth_relalg::thread_compilations();
    let mut alg = SymAlg::new();
    let st = SymbolicTest::build(&mut alg, model, cfg);
    let asserts = minimality_asserts_opts(&mut alg, model, &st, axiom, cfg.orphan_unconstrained);
    let candidates: Vec<Bit> = st.kind.iter().flatten().copied().collect();
    let circuit = alg.into_circuit();
    let query = CompiledQuery::build(
        circuit,
        &asserts,
        &st.observables,
        &candidates,
        &CubeConfig {
            adaptive: cfg.adaptive_cubes,
            probe_conflicts: cfg.probe_conflicts,
        },
    );
    let compilations = (litsynth_relalg::thread_compilations() - before) as usize;
    Query {
        st,
        asserts,
        query,
        compilations,
    }
}

/// One enumeration task: an (axiom, bound, cube) triple plus the shared
/// per-query state (compilation slot and exchange bus) it cooperates
/// through.
struct Task {
    axiom_idx: usize,
    axiom: &'static str,
    cfg: SynthConfig,
    cube: usize,
    cube_bits: usize,
    shared: Arc<OnceLock<Query>>,
    bus: Arc<ExchangeBus>,
}

/// The shared state for one query's worker group.
fn query_group(cfg: &SynthConfig, cube_bits: usize) -> (Arc<OnceLock<Query>>, Arc<ExchangeBus>) {
    let bus = ExchangeBus::new(ExchangeConfig {
        // With a single cube there are no peers to trade with.
        enabled: cfg.exchange && cube_bits > 0,
        max_lbd: cfg.exchange_max_lbd,
        max_len: cfg.exchange_max_len,
        ..ExchangeConfig::default()
    });
    (Arc::new(OnceLock::new()), bus)
}

/// The output of one worker.
struct CubeRun {
    tests: CanonicalSuite,
    stats: WorkerStats,
    /// Compilations charged to this worker (the query's one compilation is
    /// charged to cube 0).
    compilations: usize,
    /// Probe time charged to this worker (cube 0 only, like above).
    probe: Duration,
}

/// Enumerates one cube of one (axiom, bound) query on the current thread.
///
/// The first worker of a query to arrive compiles it (once) into the
/// shared `OnceLock`; everyone attaches a private solver to the shared
/// clause arena and trades learnt clauses over the query's exchange bus.
fn enumerate_cube<M: MemoryModel>(model: &M, task: &Task) -> CubeRun {
    let cfg = &task.cfg;
    let start = Instant::now();
    let query = task
        .shared
        .get_or_init(|| build_query(model, cfg, task.axiom));
    let st = &query.st;
    let circuit = query.query.circuit();
    let mut asserts = query.asserts.clone();
    asserts.extend(query.query.cube_pins(task.cube, task.cube_bits));
    let mut finder = query.query.attach();
    let mut exchange = task.bus.endpoint(task.cube);

    let mut tests = BTreeMap::new();
    let mut raw = 0usize;
    let mut truncated = false;
    while let Some(inst) = finder.next_instance_exchanging(circuit, &asserts, &mut exchange) {
        raw += 1;
        let (test, outcome) = st.extract(circuit, &inst);
        if cfg.exact_canon {
            let (key, ct, co) = canonicalize_exact(&test, &outcome);
            insert_dedup(&mut tests, key, ct, co);
        } else {
            insert_dedup(
                &mut tests,
                canonical_key_hash(&test, &outcome),
                test,
                outcome,
            );
        }
        finder.block(circuit, &inst, &st.observables);
        if raw >= cfg.max_instances {
            truncated = true;
            break;
        }
        if cfg.time_budget_ms > 0 && start.elapsed().as_millis() as u64 > cfg.time_budget_ms {
            truncated = true;
            break;
        }
    }
    let xs = exchange.stats();
    CubeRun {
        tests,
        // The query-level costs (the one compilation, the probe) are
        // attributed to cube 0 so that summing workers counts each query
        // exactly once.
        compilations: if task.cube == 0 {
            query.compilations
        } else {
            0
        },
        probe: if task.cube == 0 {
            query.query.probe_time()
        } else {
            Duration::ZERO
        },
        stats: WorkerStats {
            axiom: task.axiom,
            bound: cfg.events,
            cube: task.cube,
            num_cubes: 1 << task.cube_bits,
            raw_instances: raw,
            cnf_vars: finder.num_cnf_vars(),
            cnf_clauses: finder.num_cnf_clauses(),
            elapsed: start.elapsed(),
            truncated,
            exported: xs.exported,
            imported: xs.imported,
            filtered: xs.filtered,
            probe: query.query.probe_time(),
        },
    }
}

/// Runs the tasks on the portfolio's scoped-thread worker pool and returns
/// their outputs in task order (never completion order).
fn run_tasks<M: MemoryModel + Sync>(model: &M, tasks: &[Task], threads: usize) -> Vec<CubeRun> {
    run_ordered(tasks, threads, |_, t| enumerate_cube(model, t))
}

/// Merges the cube runs of one query (in cube order) into a [`SynthResult`].
fn merge_query(runs: Vec<CubeRun>, elapsed: Duration) -> SynthResult {
    let mut tests = BTreeMap::new();
    let mut raw = 0;
    let mut vars = 0;
    let mut clauses = 0;
    let mut compilations = 0;
    let mut exchange = (0u64, 0u64, 0u64);
    let mut probe = Duration::ZERO;
    let mut truncated = false;
    let mut workers = Vec::with_capacity(runs.len());
    for run in runs {
        for (k, (t, o)) in run.tests {
            insert_dedup(&mut tests, k, t, o);
        }
        raw += run.stats.raw_instances;
        vars += run.stats.cnf_vars;
        clauses += run.stats.cnf_clauses;
        compilations += run.compilations;
        exchange.0 += run.stats.exported;
        exchange.1 += run.stats.imported;
        exchange.2 += run.stats.filtered;
        probe += run.probe;
        truncated |= run.stats.truncated;
        workers.push(run.stats);
    }
    SynthResult {
        tests,
        raw_instances: raw,
        elapsed,
        truncated,
        cnf_vars: vars,
        cnf_clauses: clauses,
        compilations,
        exchange,
        probe,
        workers,
    }
}

/// The static name of `axiom` in `model`'s axiom list.
///
/// # Panics
///
/// Panics if `axiom` is not one of the model's axioms.
fn static_axiom<M: MemoryModel>(model: &M, axiom: &str) -> &'static str {
    model
        .axioms()
        .iter()
        .copied()
        .find(|a| *a == axiom)
        .unwrap_or_else(|| panic!("unknown axiom {axiom:?} for {}", model.name()))
}

/// The (axiom × cube) task list for one bound.
fn tasks_for<M: MemoryModel>(model: &M, cfg: &SynthConfig) -> Vec<Task> {
    let cube_bits = effective_cube_bits(model, cfg);
    let mut tasks = Vec::new();
    for (axiom_idx, &axiom) in model.axioms().iter().enumerate() {
        let (shared, bus) = query_group(cfg, cube_bits);
        for cube in 0..(1usize << cube_bits) {
            tasks.push(Task {
                axiom_idx,
                axiom,
                cfg: cfg.clone(),
                cube,
                cube_bits,
                shared: shared.clone(),
                bus: bus.clone(),
            });
        }
    }
    tasks
}

/// Synthesizes the suite for one axiom of `model` at the bound in `cfg`:
/// all canonical tests of exactly `cfg.events` instructions satisfying the
/// minimality criterion (Figure 5c encoding). With `cfg.cube_bits > 0` the
/// query is cube-split and the cubes run on `cfg.threads` workers.
pub fn synthesize_axiom<M: MemoryModel + Sync>(
    model: &M,
    axiom: &str,
    cfg: &SynthConfig,
) -> SynthResult {
    let start = Instant::now();
    let axiom = static_axiom(model, axiom);
    let cube_bits = effective_cube_bits(model, cfg);
    let (shared, bus) = query_group(cfg, cube_bits);
    let tasks: Vec<Task> = (0..(1usize << cube_bits))
        .map(|cube| Task {
            axiom_idx: 0,
            axiom,
            cfg: cfg.clone(),
            cube,
            cube_bits,
            shared: shared.clone(),
            bus: bus.clone(),
        })
        .collect();
    let runs = run_tasks(model, &tasks, cfg.threads);
    merge_query(runs, start.elapsed())
}

/// Synthesizes the per-axiom suites *and* their union for a model at one
/// bound. As the paper notes (§5.2), generating per-axiom suites and
/// merging at the end is much faster than a single union query — and the
/// per-axiom queries are fully independent, so they fan out across the
/// worker pool.
pub fn synthesize_union<M: MemoryModel + Sync>(
    model: &M,
    cfg: &SynthConfig,
) -> (BTreeMap<&'static str, SynthResult>, CanonicalSuite) {
    let start = Instant::now();
    let tasks = tasks_for(model, cfg);
    let runs = run_tasks(model, &tasks, cfg.threads);
    merge_union(model, tasks, runs, start)
}

/// Groups task outputs by axiom (in axiom order) and builds the union.
fn merge_union<M: MemoryModel>(
    model: &M,
    tasks: Vec<Task>,
    runs: Vec<CubeRun>,
    start: Instant,
) -> (BTreeMap<&'static str, SynthResult>, CanonicalSuite) {
    let mut grouped: Vec<Vec<CubeRun>> = model.axioms().iter().map(|_| Vec::new()).collect();
    for (task, run) in tasks.iter().zip(runs) {
        grouped[task.axiom_idx].push(run);
    }
    let mut per_axiom = BTreeMap::new();
    let mut union: CanonicalSuite = BTreeMap::new();
    for (&ax, runs) in model.axioms().iter().zip(grouped) {
        let r = merge_query(runs, start.elapsed());
        for (k, v) in &r.tests {
            union.entry(k.clone()).or_insert_with(|| v.clone());
        }
        per_axiom.insert(ax, r);
    }
    (per_axiom, union)
}

/// Synthesizes the union suite over a range of bounds, merging canonical
/// sets (tests of different sizes never collide). Every (bound, axiom,
/// cube) task across the whole range fans out over one shared worker pool.
pub fn synthesize_union_up_to<M: MemoryModel + Sync>(
    model: &M,
    bounds: std::ops::RangeInclusive<usize>,
    mk_cfg: impl Fn(usize) -> SynthConfig,
) -> CanonicalSuite {
    let cfgs: Vec<SynthConfig> = bounds.map(mk_cfg).collect();
    let threads = cfgs.iter().map(|c| c.threads).max().unwrap_or(1);
    let mut tasks: Vec<Task> = Vec::new();
    let mut spans = Vec::new(); // (start index, task count) per bound
    for cfg in &cfgs {
        let bound_tasks = tasks_for(model, cfg);
        spans.push((tasks.len(), bound_tasks.len()));
        tasks.extend(bound_tasks);
    }
    let runs = run_tasks(model, &tasks, threads);

    // Merge in bound order, each bound in axiom order — the same shape as
    // the sequential loop, so the result is byte-identical to it.
    let mut union: CanonicalSuite = BTreeMap::new();
    let mut runs = runs.into_iter();
    for (i, cfg) in cfgs.iter().enumerate() {
        let (_, count) = spans[i];
        let bound_tasks = tasks_for(model, cfg);
        let bound_runs: Vec<CubeRun> = runs.by_ref().take(count).collect();
        let start = Instant::now();
        let (_, u) = merge_union(model, bound_tasks, bound_runs, start);
        union.extend(u);
    }
    union
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minimal::check_minimal;
    use litsynth_models::{Sc, Tso};

    #[test]
    fn tso_sc_per_loc_bound_2_finds_the_three_coherence_kernels() {
        // At 2 instructions the minimal sc_per_loc tests are the three
        // single-thread coherence kernels: CoWW (write-write order), the
        // read-own-future-write test, and the overtaken-own-write test.
        let cfg = SynthConfig::new(2);
        let r = synthesize_axiom(&Tso::new(), "sc_per_loc", &cfg);
        assert_eq!(r.len(), 3, "{:?}", r.tests.keys().collect::<Vec<_>>());
        for (t, o) in r.tests.values() {
            assert_eq!(t.num_threads(), 1);
            assert_eq!(t.num_events(), 2);
            assert!(check_minimal(&Tso::new(), "sc_per_loc", t, o).is_minimal());
        }
        // CoWW is among them.
        assert!(r
            .tests
            .values()
            .any(|(t, _)| t.instr(0).is_write() && t.instr(1).is_write()));
    }

    #[test]
    fn every_synthesized_test_is_oracle_minimal_tso_bound_3() {
        // Cross-validation at bound 3: everything the SAT path emits must
        // pass the exact exists-forall oracle (the Figure 5c approximation
        // only *loses* tests, it must not invent them — modulo the co
        // ambiguity that needs ≥3 same-address writes, impossible at 3
        // events with a read present).
        let m = Tso::new();
        let cfg = SynthConfig::new(3);
        for ax in m.axioms() {
            let r = synthesize_axiom(&m, ax, &cfg);
            for (t, o) in r.tests.values() {
                let v = check_minimal(&m, ax, t, o);
                assert!(
                    v.is_minimal(),
                    "{ax}: {t} {} not oracle-minimal: {v:?}",
                    o.display(t)
                );
            }
        }
    }

    #[test]
    fn sc_causality_bound_4_includes_the_classics() {
        let m = Sc::new();
        let cfg = SynthConfig::new(4);
        let r = synthesize_axiom(&m, "causality", &cfg);
        // SB, MP, LB, S, 2+2W, R all live at 4 instructions under SC.
        assert!(r.len() >= 6, "found {}", r.len());
        // And everything is oracle-minimal.
        for (t, o) in r.tests.values() {
            assert!(check_minimal(&m, "causality", t, o).is_minimal(), "{t}");
        }
    }

    /// Flattens a union result for byte-for-byte comparison.
    fn fingerprint(
        per_axiom: &BTreeMap<&'static str, SynthResult>,
        union: &CanonicalSuite,
    ) -> String {
        let mut s = String::new();
        for (ax, r) in per_axiom {
            for (k, (t, o)) in &r.tests {
                s.push_str(&format!("{ax}|{k}|{}\n", serialize(t, o)));
            }
        }
        for (k, (t, o)) in union {
            s.push_str(&format!("U|{k}|{}\n", serialize(t, o)));
        }
        s
    }

    #[test]
    fn parallel_union_is_byte_identical_to_sequential() {
        // The acceptance property of the parallel engine: any combination
        // of worker threads and cube splitting produces exactly the
        // sequential suite.
        for bound in 2..=4usize {
            for model_idx in 0..2 {
                let run = |threads: usize, cube_bits: usize| {
                    let mut cfg = SynthConfig::new(bound);
                    cfg.threads = threads;
                    cfg.cube_bits = cube_bits;
                    if model_idx == 0 {
                        let (p, u) = synthesize_union(&Sc::new(), &cfg);
                        (
                            fingerprint(&p, &u),
                            p.values().map(|r| r.raw_instances).sum::<usize>(),
                        )
                    } else {
                        let (p, u) = synthesize_union(&Tso::new(), &cfg);
                        (
                            fingerprint(&p, &u),
                            p.values().map(|r| r.raw_instances).sum::<usize>(),
                        )
                    }
                };
                let (seq, seq_raw) = run(1, 0);
                for (threads, cube_bits) in [(1, 2), (2, 0), (2, 2), (4, 0), (4, 2)] {
                    let (par, par_raw) = run(threads, cube_bits);
                    assert_eq!(
                        par, seq,
                        "threads={threads} cube_bits={cube_bits} bound={bound} model={model_idx}"
                    );
                    // Cubes partition the enumeration exactly: same number
                    // of raw instances in total.
                    assert_eq!(
                        par_raw, seq_raw,
                        "raw count drifted: threads={threads} cube_bits={cube_bits} \
                         bound={bound} model={model_idx}"
                    );
                }
            }
        }
    }

    #[test]
    fn union_up_to_is_byte_identical_across_thread_counts() {
        let suites: Vec<String> = [1usize, 2, 4]
            .iter()
            .map(|&threads| {
                let u = synthesize_union_up_to(&Tso::new(), 2..=3, |n| {
                    SynthConfig::new(n).with_threads(threads).with_cube_bits(1)
                });
                u.iter()
                    .map(|(k, (t, o))| format!("{k}|{}\n", serialize(t, o)))
                    .collect()
            })
            .collect();
        assert_eq!(suites[0], suites[1]);
        assert_eq!(suites[0], suites[2]);
    }

    #[test]
    fn worker_stats_cover_every_cube() {
        let cfg = SynthConfig::new(2).with_threads(2).with_cube_bits(2);
        let r = synthesize_axiom(&Tso::new(), "sc_per_loc", &cfg);
        assert_eq!(r.workers.len(), 4);
        for (i, w) in r.workers.iter().enumerate() {
            assert_eq!(w.cube, i);
            assert_eq!(w.num_cubes, 4);
            assert_eq!(w.axiom, "sc_per_loc");
            assert_eq!(w.bound, 2);
        }
        assert_eq!(
            r.raw_instances,
            r.workers.iter().map(|w| w.raw_instances).sum::<usize>()
        );
        // Splitting never changes the canonical suite.
        let seq = synthesize_axiom(&Tso::new(), "sc_per_loc", &SynthConfig::new(2));
        assert_eq!(
            seq.tests.keys().collect::<Vec<_>>(),
            r.tests.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn exchange_matrix_is_byte_identical() {
        // The acceptance matrix of the portfolio subsystem: every
        // combination of worker threads, cube splitting, and clause
        // exchange produces exactly the sequential suite — the exchange may
        // prune search, never change the enumerated set. Raw instance
        // counts are compared too: imports must not swallow classes.
        let m = Tso::new();
        let run = |threads: usize, cube_bits: usize, exchange: bool| {
            let cfg = SynthConfig::new(3)
                .with_threads(threads)
                .with_cube_bits(cube_bits)
                .with_exchange(exchange);
            let (p, u) = synthesize_union(&m, &cfg);
            (
                fingerprint(&p, &u),
                p.values().map(|r| r.raw_instances).sum::<usize>(),
            )
        };
        let (seq, seq_raw) = run(1, 0, false);
        for threads in [1usize, 4] {
            for cube_bits in [0usize, 2] {
                for exchange in [false, true] {
                    let (got, got_raw) = run(threads, cube_bits, exchange);
                    assert_eq!(
                        got, seq,
                        "threads={threads} cube_bits={cube_bits} exchange={exchange}"
                    );
                    assert_eq!(
                        got_raw, seq_raw,
                        "raw drift: threads={threads} cube_bits={cube_bits} exchange={exchange}"
                    );
                }
            }
        }
        // Adaptive cube selection may repartition the cubes, but the union
        // and the total class count are invariant as well.
        let cfg = SynthConfig::new(3)
            .with_threads(4)
            .with_cube_bits(2)
            .with_adaptive_cubes(false);
        let (p, u) = synthesize_union(&m, &cfg);
        assert_eq!(fingerprint(&p, &u), seq);
        assert_eq!(
            p.values().map(|r| r.raw_instances).sum::<usize>(),
            seq_raw,
            "slot-order pins must partition too"
        );
    }

    #[test]
    fn one_compilation_per_query_and_counters_surface() {
        let m = Tso::new();
        let before = litsynth_relalg::compilations();
        let cfg = SynthConfig::new(2).with_threads(4).with_cube_bits(2);
        let (p, _) = synthesize_union(&m, &cfg);
        let compiled = litsynth_relalg::compilations() - before;
        // The union must have compiled at least one CNF per query. The
        // process-wide counter can also tick from *other* tests running
        // concurrently in this binary, so exactness is asserted on the
        // race-free per-query counters below, not on the global delta.
        assert!(compiled as usize >= m.axioms().len());
        for (ax, r) in &p {
            // Exactly one circuit→CNF compilation per (axiom, bound)
            // query, no matter how many cube workers attached.
            assert_eq!(r.compilations, 1, "{ax}");
            assert_eq!(r.workers.len(), 4, "{ax}");
            // Worker counters roll up into the query-level totals.
            assert_eq!(
                r.exchange,
                (
                    r.workers.iter().map(|w| w.exported).sum::<u64>(),
                    r.workers.iter().map(|w| w.imported).sum::<u64>(),
                    r.workers.iter().map(|w| w.filtered).sum::<u64>(),
                ),
                "{ax}"
            );
        }
    }

    #[test]
    fn cube_bits_clamp_to_the_selector_count() {
        // 2 events × 3 TSO shapes = 6 selector bits; asking for 40 must
        // clamp, not allocate 2^40 cubes.
        let cfg = SynthConfig::new(2).with_cube_bits(40);
        let r = synthesize_axiom(&Tso::new(), "sc_per_loc", &cfg);
        assert_eq!(r.workers.len(), 1 << 6);
        assert_eq!(r.len(), 3);
    }
}
