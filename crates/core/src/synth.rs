//! The synthesis loop (paper §5): enumerate every instance of the
//! minimality criterion, canonicalize, and deduplicate — in parallel.
//!
//! # The parallel engine
//!
//! Every (axiom, bound) query is an independent SAT enumeration over its
//! own private circuit and solver, so the drivers fan queries out across a
//! scoped-thread worker pool ([`SynthConfig::threads`]). On top of that,
//! one query can be *cube-split* ([`SynthConfig::cube_bits`]): the first
//! `b` instruction-kind selector bits are pinned to each of the `2^b`
//! boolean patterns as extra assumptions, partitioning the observable
//! space into disjoint subqueries that enumerate concurrently and merge
//! through the canonical-key dedup.
//!
//! Results are deterministic by construction — byte-identical across any
//! `threads`/`cube_bits` choice:
//!
//! * tasks are merged in a fixed (bound, axiom, cube) order, never in
//!   completion order, and
//! * the representative stored for a canonical key is a pure function of
//!   the key (the exact canonicalizer's normal form; for the hash-based
//!   ablation canonicalizer, the lexicographically least serialization),
//!   not whichever isomorphic variant a worker happened to enumerate
//!   first.

use crate::perturb::minimality_asserts_opts;
use crate::symbolic::{vocabulary, SymbolicTest, SynthConfig};
use litsynth_litmus::{canonical_key_hash, canonicalize_exact, serialize, LitmusTest, Outcome};
use litsynth_models::{MemoryModel, SymAlg};
use litsynth_relalg::{Bit, Finder};
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A deduplicated suite: canonical key → (test, outcome).
pub type CanonicalSuite = BTreeMap<String, (LitmusTest, Outcome)>;

/// Statistics for one enumeration worker — one (axiom, bound, cube) task.
#[derive(Clone, Debug)]
pub struct WorkerStats {
    /// The axiom this worker enumerated.
    pub axiom: &'static str,
    /// The event bound of the query.
    pub bound: usize,
    /// Which cube of `num_cubes` this worker owned (0 when unsplit).
    pub cube: usize,
    /// Total cubes the query was split into (1 when unsplit).
    pub num_cubes: usize,
    /// Raw solver instances this worker enumerated.
    pub raw_instances: usize,
    /// CNF variables in this worker's solver.
    pub cnf_vars: usize,
    /// CNF clauses in this worker's solver.
    pub cnf_clauses: usize,
    /// Wall-clock time this worker spent.
    pub elapsed: Duration,
    /// `true` if the instance cap or time budget stopped this worker.
    pub truncated: bool,
}

/// The result of one synthesis query (one model, one axiom, one bound),
/// possibly aggregated over several cube workers.
#[derive(Debug)]
pub struct SynthResult {
    /// Canonical tests, keyed by canonical form.
    pub tests: BTreeMap<String, (LitmusTest, Outcome)>,
    /// Raw solver instances enumerated (before canonicalization), summed
    /// over workers.
    pub raw_instances: usize,
    /// Wall-clock time for the whole query (not the sum of workers).
    pub elapsed: Duration,
    /// `true` if the instance cap or time budget stopped any worker early.
    pub truncated: bool,
    /// CNF variables, summed over workers.
    pub cnf_vars: usize,
    /// CNF clause count, summed over workers.
    pub cnf_clauses: usize,
    /// Per-worker solver statistics, in cube order.
    pub workers: Vec<WorkerStats>,
}

impl SynthResult {
    /// Number of distinct canonical tests found.
    pub fn len(&self) -> usize {
        self.tests.len()
    }

    /// `true` if no tests were found.
    pub fn is_empty(&self) -> bool {
        self.tests.is_empty()
    }

    /// The tests, in canonical-key order.
    pub fn into_tests(self) -> Vec<(LitmusTest, Outcome)> {
        self.tests.into_values().collect()
    }
}

/// Inserts with the deterministic representative rule: the value kept for
/// a key never depends on enumeration order (see the module docs).
fn insert_dedup(suite: &mut CanonicalSuite, key: String, test: LitmusTest, outcome: Outcome) {
    match suite.entry(key) {
        Entry::Vacant(v) => {
            v.insert((test, outcome));
        }
        Entry::Occupied(mut o) => {
            let (t0, o0) = o.get();
            if serialize(&test, &outcome) < serialize(t0, o0) {
                o.insert((test, outcome));
            }
        }
    }
}

/// The cube pin bits for a query: the first `cube_bits` instruction-kind
/// selectors in slot order. Pinning observable bits guarantees the cubes
/// partition the observable space (every blocked class determines the
/// pinned bits' values, so it falls in exactly one cube).
fn cube_pins(st: &SymbolicTest, cube_bits: usize) -> Vec<Bit> {
    st.kind.iter().flatten().copied().take(cube_bits).collect()
}

/// `cube_bits` clamped to the number of pinnable selector bits the query
/// actually has.
fn effective_cube_bits<M: MemoryModel>(model: &M, cfg: &SynthConfig) -> usize {
    cfg.cube_bits.min(vocabulary(model).len() * cfg.events)
}

/// Resolves [`SynthConfig::threads`] (`0` = all cores).
fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

/// One enumeration task: an (axiom, bound, cube) triple with its config.
struct Task {
    axiom_idx: usize,
    axiom: &'static str,
    cfg: SynthConfig,
    cube: usize,
    cube_bits: usize,
}

/// The output of one worker.
struct CubeRun {
    tests: CanonicalSuite,
    stats: WorkerStats,
}

/// Enumerates one cube of one (axiom, bound) query on the current thread.
fn enumerate_cube<M: MemoryModel>(model: &M, task: &Task) -> CubeRun {
    let cfg = &task.cfg;
    let start = Instant::now();
    let mut alg = SymAlg::new();
    let st = SymbolicTest::build(&mut alg, model, cfg);
    let mut asserts =
        minimality_asserts_opts(&mut alg, model, &st, task.axiom, cfg.orphan_unconstrained);
    let pins = cube_pins(&st, task.cube_bits);
    for (j, &b) in pins.iter().enumerate() {
        asserts.push(if task.cube >> j & 1 == 1 { b } else { b.not() });
    }
    let circuit = alg.into_circuit();
    let mut finder = Finder::new(&circuit);

    let mut tests = BTreeMap::new();
    let mut raw = 0usize;
    let mut truncated = false;
    while let Some(inst) = finder.next_instance(&circuit, &asserts) {
        raw += 1;
        let (test, outcome) = st.extract(&circuit, &inst);
        if cfg.exact_canon {
            let (key, ct, co) = canonicalize_exact(&test, &outcome);
            insert_dedup(&mut tests, key, ct, co);
        } else {
            insert_dedup(
                &mut tests,
                canonical_key_hash(&test, &outcome),
                test,
                outcome,
            );
        }
        finder.block(&circuit, &inst, &st.observables);
        if raw >= cfg.max_instances {
            truncated = true;
            break;
        }
        if cfg.time_budget_ms > 0 && start.elapsed().as_millis() as u64 > cfg.time_budget_ms {
            truncated = true;
            break;
        }
    }
    CubeRun {
        tests,
        stats: WorkerStats {
            axiom: task.axiom,
            bound: cfg.events,
            cube: task.cube,
            num_cubes: 1 << task.cube_bits,
            raw_instances: raw,
            cnf_vars: finder.num_cnf_vars(),
            cnf_clauses: finder.num_cnf_clauses(),
            elapsed: start.elapsed(),
            truncated,
        },
    }
}

/// Runs the tasks on a scoped-thread worker pool and returns their outputs
/// in task order (never completion order).
fn run_tasks<M: MemoryModel + Sync>(model: &M, tasks: &[Task], threads: usize) -> Vec<CubeRun> {
    let threads = resolve_threads(threads).min(tasks.len()).max(1);
    if threads == 1 {
        return tasks.iter().map(|t| enumerate_cube(model, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<CubeRun>>> = tasks.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= tasks.len() {
                    break;
                }
                *slots[i].lock().unwrap() = Some(enumerate_cube(model, &tasks[i]));
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .unwrap()
                .expect("every task ran to completion")
        })
        .collect()
}

/// Merges the cube runs of one query (in cube order) into a [`SynthResult`].
fn merge_query(runs: Vec<CubeRun>, elapsed: Duration) -> SynthResult {
    let mut tests = BTreeMap::new();
    let mut raw = 0;
    let mut vars = 0;
    let mut clauses = 0;
    let mut truncated = false;
    let mut workers = Vec::with_capacity(runs.len());
    for run in runs {
        for (k, (t, o)) in run.tests {
            insert_dedup(&mut tests, k, t, o);
        }
        raw += run.stats.raw_instances;
        vars += run.stats.cnf_vars;
        clauses += run.stats.cnf_clauses;
        truncated |= run.stats.truncated;
        workers.push(run.stats);
    }
    SynthResult {
        tests,
        raw_instances: raw,
        elapsed,
        truncated,
        cnf_vars: vars,
        cnf_clauses: clauses,
        workers,
    }
}

/// The static name of `axiom` in `model`'s axiom list.
///
/// # Panics
///
/// Panics if `axiom` is not one of the model's axioms.
fn static_axiom<M: MemoryModel>(model: &M, axiom: &str) -> &'static str {
    model
        .axioms()
        .iter()
        .copied()
        .find(|a| *a == axiom)
        .unwrap_or_else(|| panic!("unknown axiom {axiom:?} for {}", model.name()))
}

/// The (axiom × cube) task list for one bound.
fn tasks_for<M: MemoryModel>(model: &M, cfg: &SynthConfig) -> Vec<Task> {
    let cube_bits = effective_cube_bits(model, cfg);
    let mut tasks = Vec::new();
    for (axiom_idx, &axiom) in model.axioms().iter().enumerate() {
        for cube in 0..(1usize << cube_bits) {
            tasks.push(Task {
                axiom_idx,
                axiom,
                cfg: cfg.clone(),
                cube,
                cube_bits,
            });
        }
    }
    tasks
}

/// Synthesizes the suite for one axiom of `model` at the bound in `cfg`:
/// all canonical tests of exactly `cfg.events` instructions satisfying the
/// minimality criterion (Figure 5c encoding). With `cfg.cube_bits > 0` the
/// query is cube-split and the cubes run on `cfg.threads` workers.
pub fn synthesize_axiom<M: MemoryModel + Sync>(
    model: &M,
    axiom: &str,
    cfg: &SynthConfig,
) -> SynthResult {
    let start = Instant::now();
    let axiom = static_axiom(model, axiom);
    let cube_bits = effective_cube_bits(model, cfg);
    let tasks: Vec<Task> = (0..(1usize << cube_bits))
        .map(|cube| Task {
            axiom_idx: 0,
            axiom,
            cfg: cfg.clone(),
            cube,
            cube_bits,
        })
        .collect();
    let runs = run_tasks(model, &tasks, cfg.threads);
    merge_query(runs, start.elapsed())
}

/// Synthesizes the per-axiom suites *and* their union for a model at one
/// bound. As the paper notes (§5.2), generating per-axiom suites and
/// merging at the end is much faster than a single union query — and the
/// per-axiom queries are fully independent, so they fan out across the
/// worker pool.
pub fn synthesize_union<M: MemoryModel + Sync>(
    model: &M,
    cfg: &SynthConfig,
) -> (BTreeMap<&'static str, SynthResult>, CanonicalSuite) {
    let start = Instant::now();
    let tasks = tasks_for(model, cfg);
    let runs = run_tasks(model, &tasks, cfg.threads);
    merge_union(model, tasks, runs, start)
}

/// Groups task outputs by axiom (in axiom order) and builds the union.
fn merge_union<M: MemoryModel>(
    model: &M,
    tasks: Vec<Task>,
    runs: Vec<CubeRun>,
    start: Instant,
) -> (BTreeMap<&'static str, SynthResult>, CanonicalSuite) {
    let mut grouped: Vec<Vec<CubeRun>> = model.axioms().iter().map(|_| Vec::new()).collect();
    for (task, run) in tasks.iter().zip(runs) {
        grouped[task.axiom_idx].push(run);
    }
    let mut per_axiom = BTreeMap::new();
    let mut union: CanonicalSuite = BTreeMap::new();
    for (&ax, runs) in model.axioms().iter().zip(grouped) {
        let r = merge_query(runs, start.elapsed());
        for (k, v) in &r.tests {
            union.entry(k.clone()).or_insert_with(|| v.clone());
        }
        per_axiom.insert(ax, r);
    }
    (per_axiom, union)
}

/// Synthesizes the union suite over a range of bounds, merging canonical
/// sets (tests of different sizes never collide). Every (bound, axiom,
/// cube) task across the whole range fans out over one shared worker pool.
pub fn synthesize_union_up_to<M: MemoryModel + Sync>(
    model: &M,
    bounds: std::ops::RangeInclusive<usize>,
    mk_cfg: impl Fn(usize) -> SynthConfig,
) -> CanonicalSuite {
    let cfgs: Vec<SynthConfig> = bounds.map(mk_cfg).collect();
    let threads = cfgs.iter().map(|c| c.threads).max().unwrap_or(1);
    let mut tasks: Vec<Task> = Vec::new();
    let mut spans = Vec::new(); // (start index, task count) per bound
    for cfg in &cfgs {
        let bound_tasks = tasks_for(model, cfg);
        spans.push((tasks.len(), bound_tasks.len()));
        tasks.extend(bound_tasks);
    }
    let runs = run_tasks(model, &tasks, threads);

    // Merge in bound order, each bound in axiom order — the same shape as
    // the sequential loop, so the result is byte-identical to it.
    let mut union: CanonicalSuite = BTreeMap::new();
    let mut runs = runs.into_iter();
    for (i, cfg) in cfgs.iter().enumerate() {
        let (_, count) = spans[i];
        let bound_tasks = tasks_for(model, cfg);
        let bound_runs: Vec<CubeRun> = runs.by_ref().take(count).collect();
        let start = Instant::now();
        let (_, u) = merge_union(model, bound_tasks, bound_runs, start);
        union.extend(u);
    }
    union
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minimal::check_minimal;
    use litsynth_models::{Sc, Tso};

    #[test]
    fn tso_sc_per_loc_bound_2_finds_the_three_coherence_kernels() {
        // At 2 instructions the minimal sc_per_loc tests are the three
        // single-thread coherence kernels: CoWW (write-write order), the
        // read-own-future-write test, and the overtaken-own-write test.
        let cfg = SynthConfig::new(2);
        let r = synthesize_axiom(&Tso::new(), "sc_per_loc", &cfg);
        assert_eq!(r.len(), 3, "{:?}", r.tests.keys().collect::<Vec<_>>());
        for (t, o) in r.tests.values() {
            assert_eq!(t.num_threads(), 1);
            assert_eq!(t.num_events(), 2);
            assert!(check_minimal(&Tso::new(), "sc_per_loc", t, o).is_minimal());
        }
        // CoWW is among them.
        assert!(r
            .tests
            .values()
            .any(|(t, _)| t.instr(0).is_write() && t.instr(1).is_write()));
    }

    #[test]
    fn every_synthesized_test_is_oracle_minimal_tso_bound_3() {
        // Cross-validation at bound 3: everything the SAT path emits must
        // pass the exact exists-forall oracle (the Figure 5c approximation
        // only *loses* tests, it must not invent them — modulo the co
        // ambiguity that needs ≥3 same-address writes, impossible at 3
        // events with a read present).
        let m = Tso::new();
        let cfg = SynthConfig::new(3);
        for ax in m.axioms() {
            let r = synthesize_axiom(&m, ax, &cfg);
            for (t, o) in r.tests.values() {
                let v = check_minimal(&m, ax, t, o);
                assert!(
                    v.is_minimal(),
                    "{ax}: {t} {} not oracle-minimal: {v:?}",
                    o.display(t)
                );
            }
        }
    }

    #[test]
    fn sc_causality_bound_4_includes_the_classics() {
        let m = Sc::new();
        let cfg = SynthConfig::new(4);
        let r = synthesize_axiom(&m, "causality", &cfg);
        // SB, MP, LB, S, 2+2W, R all live at 4 instructions under SC.
        assert!(r.len() >= 6, "found {}", r.len());
        // And everything is oracle-minimal.
        for (t, o) in r.tests.values() {
            assert!(check_minimal(&m, "causality", t, o).is_minimal(), "{t}");
        }
    }

    /// Flattens a union result for byte-for-byte comparison.
    fn fingerprint(
        per_axiom: &BTreeMap<&'static str, SynthResult>,
        union: &CanonicalSuite,
    ) -> String {
        let mut s = String::new();
        for (ax, r) in per_axiom {
            for (k, (t, o)) in &r.tests {
                s.push_str(&format!("{ax}|{k}|{}\n", serialize(t, o)));
            }
        }
        for (k, (t, o)) in union {
            s.push_str(&format!("U|{k}|{}\n", serialize(t, o)));
        }
        s
    }

    #[test]
    fn parallel_union_is_byte_identical_to_sequential() {
        // The acceptance property of the parallel engine: any combination
        // of worker threads and cube splitting produces exactly the
        // sequential suite.
        for bound in 2..=4usize {
            for model_idx in 0..2 {
                let run = |threads: usize, cube_bits: usize| {
                    let mut cfg = SynthConfig::new(bound);
                    cfg.threads = threads;
                    cfg.cube_bits = cube_bits;
                    if model_idx == 0 {
                        let (p, u) = synthesize_union(&Sc::new(), &cfg);
                        (
                            fingerprint(&p, &u),
                            p.values().map(|r| r.raw_instances).sum::<usize>(),
                        )
                    } else {
                        let (p, u) = synthesize_union(&Tso::new(), &cfg);
                        (
                            fingerprint(&p, &u),
                            p.values().map(|r| r.raw_instances).sum::<usize>(),
                        )
                    }
                };
                let (seq, seq_raw) = run(1, 0);
                for (threads, cube_bits) in [(1, 2), (2, 0), (2, 2), (4, 0), (4, 2)] {
                    let (par, par_raw) = run(threads, cube_bits);
                    assert_eq!(
                        par, seq,
                        "threads={threads} cube_bits={cube_bits} bound={bound} model={model_idx}"
                    );
                    // Cubes partition the enumeration exactly: same number
                    // of raw instances in total.
                    assert_eq!(
                        par_raw, seq_raw,
                        "raw count drifted: threads={threads} cube_bits={cube_bits} \
                         bound={bound} model={model_idx}"
                    );
                }
            }
        }
    }

    #[test]
    fn union_up_to_is_byte_identical_across_thread_counts() {
        let suites: Vec<String> = [1usize, 2, 4]
            .iter()
            .map(|&threads| {
                let u = synthesize_union_up_to(&Tso::new(), 2..=3, |n| {
                    SynthConfig::new(n).with_threads(threads).with_cube_bits(1)
                });
                u.iter()
                    .map(|(k, (t, o))| format!("{k}|{}\n", serialize(t, o)))
                    .collect()
            })
            .collect();
        assert_eq!(suites[0], suites[1]);
        assert_eq!(suites[0], suites[2]);
    }

    #[test]
    fn worker_stats_cover_every_cube() {
        let cfg = SynthConfig::new(2).with_threads(2).with_cube_bits(2);
        let r = synthesize_axiom(&Tso::new(), "sc_per_loc", &cfg);
        assert_eq!(r.workers.len(), 4);
        for (i, w) in r.workers.iter().enumerate() {
            assert_eq!(w.cube, i);
            assert_eq!(w.num_cubes, 4);
            assert_eq!(w.axiom, "sc_per_loc");
            assert_eq!(w.bound, 2);
        }
        assert_eq!(
            r.raw_instances,
            r.workers.iter().map(|w| w.raw_instances).sum::<usize>()
        );
        // Splitting never changes the canonical suite.
        let seq = synthesize_axiom(&Tso::new(), "sc_per_loc", &SynthConfig::new(2));
        assert_eq!(
            seq.tests.keys().collect::<Vec<_>>(),
            r.tests.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn cube_bits_clamp_to_the_selector_count() {
        // 2 events × 3 TSO shapes = 6 selector bits; asking for 40 must
        // clamp, not allocate 2^40 cubes.
        let cfg = SynthConfig::new(2).with_cube_bits(40);
        let r = synthesize_axiom(&Tso::new(), "sc_per_loc", &cfg);
        assert_eq!(r.workers.len(), 1 << 6);
        assert_eq!(r.len(), 3);
    }
}
