//! The synthesis loop (paper §5): enumerate every instance of the
//! minimality criterion, canonicalize, and deduplicate.

use crate::perturb::minimality_asserts_opts;
use crate::symbolic::{SymbolicTest, SynthConfig};
use litsynth_litmus::{canonical_key_exact, canonical_key_hash, LitmusTest, Outcome};
use litsynth_models::{MemoryModel, SymAlg};
use litsynth_relalg::Finder;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// A deduplicated suite: canonical key → (test, outcome).
pub type CanonicalSuite = BTreeMap<String, (LitmusTest, Outcome)>;

/// The result of one synthesis query (one model, one axiom, one bound).
#[derive(Debug)]
pub struct SynthResult {
    /// Canonical tests, keyed by canonical form.
    pub tests: BTreeMap<String, (LitmusTest, Outcome)>,
    /// Raw solver instances enumerated (before canonicalization).
    pub raw_instances: usize,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// `true` if the instance cap or time budget stopped the query early.
    pub truncated: bool,
    /// CNF size of the query.
    pub cnf_vars: usize,
    /// CNF clause count of the query.
    pub cnf_clauses: usize,
}

impl SynthResult {
    /// Number of distinct canonical tests found.
    pub fn len(&self) -> usize {
        self.tests.len()
    }

    /// `true` if no tests were found.
    pub fn is_empty(&self) -> bool {
        self.tests.is_empty()
    }

    /// The tests, in canonical-key order.
    pub fn into_tests(self) -> Vec<(LitmusTest, Outcome)> {
        self.tests.into_values().collect()
    }
}

/// Synthesizes the suite for one axiom of `model` at the bound in `cfg`:
/// all canonical tests of exactly `cfg.events` instructions satisfying the
/// minimality criterion (Figure 5c encoding).
pub fn synthesize_axiom<M: MemoryModel>(
    model: &M,
    axiom: &str,
    cfg: &SynthConfig,
) -> SynthResult {
    let start = Instant::now();
    let mut alg = SymAlg::new();
    let st = SymbolicTest::build(&mut alg, model, cfg);
    let asserts = minimality_asserts_opts(&mut alg, model, &st, axiom, cfg.orphan_unconstrained);
    let circuit = alg.into_circuit();
    let mut finder = Finder::new(&circuit);

    let mut tests = BTreeMap::new();
    let mut raw = 0usize;
    let mut truncated = false;
    while let Some(inst) = finder.next_instance(&circuit, &asserts) {
        raw += 1;
        let (test, outcome) = st.extract(&circuit, &inst);
        let key = if cfg.exact_canon {
            canonical_key_exact(&test, &outcome)
        } else {
            canonical_key_hash(&test, &outcome)
        };
        tests.entry(key).or_insert((test, outcome));
        finder.block(&circuit, &inst, &st.observables);
        if raw >= cfg.max_instances {
            truncated = true;
            break;
        }
        if cfg.time_budget_ms > 0 && start.elapsed().as_millis() as u64 > cfg.time_budget_ms {
            truncated = true;
            break;
        }
    }
    SynthResult {
        tests,
        raw_instances: raw,
        elapsed: start.elapsed(),
        truncated,
        cnf_vars: finder.num_cnf_vars(),
        cnf_clauses: finder.num_cnf_clauses(),
    }
}

/// Synthesizes the per-axiom suites *and* their union for a model at one
/// bound. As the paper notes (§5.2), generating per-axiom suites and
/// merging at the end is much faster than a single union query.
pub fn synthesize_union<M: MemoryModel>(
    model: &M,
    cfg: &SynthConfig,
) -> (BTreeMap<&'static str, SynthResult>, CanonicalSuite) {
    let mut per_axiom = BTreeMap::new();
    let mut union: CanonicalSuite = BTreeMap::new();
    for ax in model.axioms() {
        let r = synthesize_axiom(model, ax, cfg);
        for (k, v) in &r.tests {
            union.entry(k.clone()).or_insert_with(|| v.clone());
        }
        per_axiom.insert(*ax, r);
    }
    (per_axiom, union)
}

/// Synthesizes the union suite over a range of bounds, merging canonical
/// sets (tests of different sizes never collide).
pub fn synthesize_union_up_to<M: MemoryModel>(
    model: &M,
    bounds: std::ops::RangeInclusive<usize>,
    mk_cfg: impl Fn(usize) -> SynthConfig,
) -> CanonicalSuite {
    let mut union = BTreeMap::new();
    for n in bounds {
        let (_, u) = synthesize_union(model, &mk_cfg(n));
        union.extend(u);
    }
    union
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minimal::check_minimal;
    use litsynth_models::{Sc, Tso};

    #[test]
    fn tso_sc_per_loc_bound_2_finds_the_three_coherence_kernels() {
        // At 2 instructions the minimal sc_per_loc tests are the three
        // single-thread coherence kernels: CoWW (write-write order), the
        // read-own-future-write test, and the overtaken-own-write test.
        let cfg = SynthConfig::new(2);
        let r = synthesize_axiom(&Tso::new(), "sc_per_loc", &cfg);
        assert_eq!(r.len(), 3, "{:?}", r.tests.keys().collect::<Vec<_>>());
        for (t, o) in r.tests.values() {
            assert_eq!(t.num_threads(), 1);
            assert_eq!(t.num_events(), 2);
            assert!(check_minimal(&Tso::new(), "sc_per_loc", t, o).is_minimal());
        }
        // CoWW is among them.
        assert!(r
            .tests
            .values()
            .any(|(t, _)| t.instr(0).is_write() && t.instr(1).is_write()));
    }

    #[test]
    fn every_synthesized_test_is_oracle_minimal_tso_bound_3() {
        // Cross-validation at bound 3: everything the SAT path emits must
        // pass the exact exists-forall oracle (the Figure 5c approximation
        // only *loses* tests, it must not invent them — modulo the co
        // ambiguity that needs ≥3 same-address writes, impossible at 3
        // events with a read present).
        let m = Tso::new();
        let cfg = SynthConfig::new(3);
        for ax in m.axioms() {
            let r = synthesize_axiom(&m, ax, &cfg);
            for (t, o) in r.tests.values() {
                let v = check_minimal(&m, ax, t, o);
                assert!(
                    v.is_minimal(),
                    "{ax}: {t} {} not oracle-minimal: {v:?}",
                    o.display(t)
                );
            }
        }
    }

    #[test]
    fn sc_causality_bound_4_includes_the_classics() {
        let m = Sc::new();
        let cfg = SynthConfig::new(4);
        let r = synthesize_axiom(&m, "causality", &cfg);
        // SB, MP, LB, S, 2+2W, R all live at 4 instructions under SC.
        assert!(r.len() >= 6, "found {}", r.len());
        // And everything is oracle-minimal.
        for (t, o) in r.tests.values() {
            assert!(check_minimal(&m, "causality", t, o).is_minimal(), "{t}");
        }
    }
}
