//! The synthesis loop (paper §5): enumerate every instance of the
//! minimality criterion, canonicalize, and deduplicate — in parallel.
//!
//! # The parallel engine
//!
//! Every (axiom, bound) query is an independent SAT enumeration, so the
//! drivers fan queries out across a scoped-thread worker pool
//! ([`SynthConfig::threads`]). On top of that, one query can be
//! *cube-split* ([`SynthConfig::cube_bits`]): `b` instruction-kind
//! selector bits are pinned to each of the `2^b` boolean patterns as extra
//! assumptions, partitioning the observable space into disjoint subqueries
//! that enumerate concurrently and merge through the canonical-key dedup.
//!
//! Since the portfolio subsystem (`litsynth-portfolio`), a query's cube
//! workers cooperate instead of running blind:
//!
//! * the circuit is Tseitin-compiled **once** per query into a shared
//!   clause arena (whichever worker arrives first pays, through a
//!   `OnceLock`); every worker attaches a private solver to it,
//! * workers trade learnt clauses over a bounded **exchange bus**
//!   ([`SynthConfig::exchange`]), which prunes search but provably never
//!   changes the enumerated class set, and
//! * the pinned bits are chosen **adaptively** from a probing run's VSIDS
//!   activity ([`SynthConfig::adaptive_cubes`]) rather than slot order.
//!
//! Since incremental sweep compilation, whole sweeps cooperate too
//! ([`SynthConfig::incremental`], [`SynthConfig::vault`]):
//!
//! * all queries of a sweep share one hash-consed circuit arena and one
//!   **shared layer chain**: per bound, the axiom-independent skeleton (the
//!   wellformedness constraints, observables, and pin candidates) and then
//!   every axiom's minimality-circuit *definitions* are Tseitin-encoded
//!   exactly once per sweep, bound n+1 extending bound n's immutable
//!   layers. Definition layers never constrain anything by themselves — a
//!   Tseitin layer only names gates — so all of a bound's queries run over
//!   the *identical* formula and differ purely in which roots they assume,
//! * **chain-pure** learnt clauses (derived from the shared layers alone —
//!   never from a worker's private blocking clauses — tracked through
//!   every 1UIP resolution) are harvested into a cross-query **clause
//!   vault** keyed by chain fingerprints, seeding every later query whose
//!   chain shares the prefix — sound for the same reason bus imports are,
//!   see `litsynth_portfolio::vault`, and
//! * each worker **warms** its solver's branching order with its own
//!   query's cone ([`litsynth_relalg::Finder::warm`]), so sharing one big
//!   formula does not degrade search focus.
//!
//! Results are deterministic by construction — byte-identical across any
//! `threads`/`cube_bits`/`exchange` choice:
//!
//! * tasks are merged in a fixed (bound, axiom, cube) order, never in
//!   completion order,
//! * the representative stored for a canonical key is a pure function of
//!   the key (the exact canonicalizer's normal form; for the hash-based
//!   ablation canonicalizer, the lexicographically least serialization),
//!   not whichever isomorphic variant a worker happened to enumerate
//!   first,
//! * cube pins are a pure function of the compiled query (the probe is
//!   deterministic), so the partition never depends on thread timing, and
//! * imported clauses are implied for every model a worker has yet to
//!   enumerate (see `litsynth_portfolio::exchange`), so exchange traffic
//!   affects solver effort only, never the per-cube class sets, and
//! * incremental compilation and the vault only change how the query's CNF
//!   is factored into layers and which redundant clauses pre-seed the
//!   solver — the encoded formula, and hence the enumerated class set, is
//!   the same, so suites stay byte-identical with either switch flipped.

use crate::journal::{config_fingerprint, query_key};
use crate::perturb::minimality_asserts_opts;
use crate::symbolic::{vocabulary, SymbolicTest, SynthConfig};
use litsynth_litmus::{canonical_key_hash, serialize, LitmusTest, Outcome, TwoTierCanon};
use litsynth_models::{MemoryModel, SymAlg};
use litsynth_portfolio::{
    run_resilient, Attempt, ClauseVault, CompiledQuery, CubeConfig, ExchangeBus, ExchangeConfig,
    ExchangeEndpoint, ExchangeStats, RetryConfig, VaultConfig, VaultStats, VaultedExchange,
};
use litsynth_relalg::{Bit, Circuit, CompiledCircuit, Finder};
use litsynth_sat::{ClauseExchange, FaultCtx, Interrupt, Lit, SolveBudget};
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// A deduplicated suite: canonical key → (test, outcome).
pub type CanonicalSuite = BTreeMap<String, (LitmusTest, Outcome)>;

/// Statistics for one enumeration worker — one (axiom, bound, cube) task.
#[derive(Clone, Debug)]
pub struct WorkerStats {
    /// The axiom this worker enumerated.
    pub axiom: &'static str,
    /// The event bound of the query.
    pub bound: usize,
    /// Which cube of `num_cubes` this worker owned (0 when unsplit).
    pub cube: usize,
    /// Total cubes the query was split into (1 when unsplit).
    pub num_cubes: usize,
    /// Raw solver instances this worker enumerated.
    pub raw_instances: usize,
    /// CNF variables in this worker's solver.
    pub cnf_vars: usize,
    /// CNF clauses in this worker's solver.
    pub cnf_clauses: usize,
    /// Wall-clock time this worker spent.
    pub elapsed: Duration,
    /// Unit propagations this worker's solver performed (delta over this
    /// task only — pooled solvers carry history from earlier tasks).
    pub propagations: u64,
    /// Decisions this worker's solver made (delta over this task only).
    pub decisions: u64,
    /// Decisions served from the local level of the two-level decision
    /// domain (delta; 0 unless [`SynthConfig::domain`] is on).
    pub domain_decisions: u64,
    /// Shelved imports replayed after their cone activated (delta; 0
    /// unless the lazy path with [`SynthConfig::shelve`] is on).
    pub shelved_replayed: u64,
    /// Clauses purged by level-0 inprocessing as satisfied (delta; 0
    /// unless [`SynthConfig::inprocess`] is on).
    pub simplify_removed: u64,
    /// Learnt clauses deleted by on-the-fly subsumption (delta).
    pub subsumed: u64,
    /// Literals removed by false-literal stripping and self-subsuming
    /// resolution (delta).
    pub strengthened: u64,
    /// Arena garbage collections this worker's solver ran (delta).
    pub gc_runs: u64,
    /// Arena words reclaimed by those collections (delta).
    pub gc_reclaimed_words: u64,
    /// Live learnt clauses per retention tier (core/mid/local) when the
    /// task finished — a snapshot of the (possibly pooled) solver, not a
    /// delta.
    pub learnt_tiers: [u64; 3],
    /// `true` if the instance cap or time budget stopped this worker.
    pub truncated: bool,
    /// Learnt clauses this worker published on the exchange bus.
    pub exported: u64,
    /// Peer clauses this worker imported from the bus.
    pub imported: u64,
    /// Clauses the bus filter (LBD/size/pool cap) dropped for this worker.
    pub filtered: u64,
    /// Wall-clock time of the query's cube-selection probe (a per-query
    /// cost, reported on every worker of the query).
    pub probe: Duration,
    /// Attempts this worker made (1 = first try completed; >1 means
    /// panicked or interrupted attempts were retried).
    pub attempts: usize,
    /// `true` when no attempt completed: the worker's tests are a partial
    /// (possibly empty) under-approximation of its cube.
    pub degraded: bool,
    /// One reason per failed attempt (panic message or interrupt cause).
    pub failures: Vec<String>,
}

/// The result of one synthesis query (one model, one axiom, one bound),
/// possibly aggregated over several cube workers.
#[derive(Debug)]
pub struct SynthResult {
    /// Canonical tests, keyed by canonical form.
    pub tests: BTreeMap<String, (LitmusTest, Outcome)>,
    /// Raw solver instances enumerated (before canonicalization), summed
    /// over workers.
    pub raw_instances: usize,
    /// Wall-clock time for the whole query (not the sum of workers).
    pub elapsed: Duration,
    /// `true` if the instance cap or time budget stopped any worker early.
    pub truncated: bool,
    /// CNF variables, summed over workers.
    pub cnf_vars: usize,
    /// CNF clause count, summed over workers.
    pub cnf_clauses: usize,
    /// Circuit→CNF compilations performed (exactly one per query on the
    /// portfolio path, however many cube workers attach).
    pub compilations: usize,
    /// Exchange-bus totals over all workers: (exported, imported,
    /// filtered).
    pub exchange: (u64, u64, u64),
    /// Unit propagations, summed over workers.
    pub propagations: u64,
    /// Solver decisions, summed over workers.
    pub decisions: u64,
    /// Local-domain decisions, summed over workers.
    pub domain_decisions: u64,
    /// Shelved imports replayed, summed over workers.
    pub shelved_replayed: u64,
    /// Inprocessing-purged clauses, summed over workers.
    pub simplify_removed: u64,
    /// Subsumed learnt clauses, summed over workers.
    pub subsumed: u64,
    /// Stripped/strengthened literals, summed over workers.
    pub strengthened: u64,
    /// Arena garbage collections, summed over workers.
    pub gc_runs: u64,
    /// Arena words reclaimed, summed over workers.
    pub gc_reclaimed_words: u64,
    /// Total cube-selection probe time, summed over queries.
    pub probe: Duration,
    /// Workers whose every attempt failed: the suite is complete iff this
    /// is 0 (and `truncated` is false). Degraded queries are never
    /// journaled.
    pub degraded: usize,
    /// Retry attempts beyond each worker's first, summed over workers.
    /// Non-zero retries with zero `degraded` means every fault was
    /// recovered — the suite is still exact.
    pub retries: u64,
    /// `true` when this result was replayed from the checkpoint journal
    /// instead of being re-enumerated (zero solver work was done).
    pub from_journal: bool,
    /// Per-worker solver statistics, in cube order.
    pub workers: Vec<WorkerStats>,
}

impl SynthResult {
    /// Number of distinct canonical tests found.
    pub fn len(&self) -> usize {
        self.tests.len()
    }

    /// `true` if no tests were found.
    pub fn is_empty(&self) -> bool {
        self.tests.is_empty()
    }

    /// The tests, in canonical-key order.
    pub fn into_tests(self) -> Vec<(LitmusTest, Outcome)> {
        self.tests.into_values().collect()
    }

    /// A result that merely *carries* `tests` with every work counter
    /// zero — the shape of a journal replay or of a remotely computed unit
    /// folded in by a coordinator (the solver work happened elsewhere).
    pub fn carrying(tests: CanonicalSuite) -> SynthResult {
        SynthResult {
            tests,
            raw_instances: 0,
            elapsed: Duration::ZERO,
            truncated: false,
            cnf_vars: 0,
            cnf_clauses: 0,
            compilations: 0,
            exchange: (0, 0, 0),
            propagations: 0,
            decisions: 0,
            domain_decisions: 0,
            shelved_replayed: 0,
            simplify_removed: 0,
            subsumed: 0,
            strengthened: 0,
            gc_runs: 0,
            gc_reclaimed_words: 0,
            probe: Duration::ZERO,
            degraded: 0,
            retries: 0,
            from_journal: false,
            workers: Vec::new(),
        }
    }
}

/// Inserts with the deterministic representative rule: the value kept for
/// a key never depends on enumeration order (see the module docs).
fn insert_dedup(suite: &mut CanonicalSuite, key: String, test: LitmusTest, outcome: Outcome) {
    match suite.entry(key) {
        Entry::Vacant(v) => {
            v.insert((test, outcome));
        }
        Entry::Occupied(mut o) => {
            let (t0, o0) = o.get();
            if serialize(&test, &outcome) < serialize(t0, o0) {
                o.insert((test, outcome));
            }
        }
    }
}

/// Process-wide count of queries the adaptive engagement heuristic
/// downgraded to the unsplit path ([`SynthConfig::adaptive_engage`]).
static ENGAGE_DOWNGRADES: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// How many queries the adaptive engagement heuristic has downgraded to
/// the unsplit incremental path so far, process-wide. The counter that
/// proves which path a small-bound query actually ran.
pub fn engage_downgrades() -> u64 {
    ENGAGE_DOWNGRADES.load(Ordering::Relaxed)
}

/// `cube_bits` clamped to the number of pinnable selector bits the query
/// actually has. The pin *candidates* are the instruction-kind selector
/// bits — distinct circuit inputs, and observables, so pinning them
/// partitions the observable space (every blocked class determines the
/// pinned bits' values and falls in exactly one cube).
///
/// With [`SynthConfig::adaptive_engage`] on, a query below the engagement
/// threshold downgrades to 0 — unsplit, no exchange bus, no probe: the
/// portfolio machinery's overhead loses at small bounds (0.58× measured,
/// see ROADMAP), and cube splitting is byte-identity-preserving, so the
/// downgrade changes wall-clock only.
fn effective_cube_bits<M: MemoryModel>(model: &M, cfg: &SynthConfig) -> usize {
    if cfg.cube_bits > 0 && cfg.adaptive_engage && cfg.events < cfg.engage_below {
        ENGAGE_DOWNGRADES.fetch_add(1, Ordering::Relaxed);
        return 0;
    }
    cfg.cube_bits.min(vocabulary(model).len() * cfg.events)
}

/// Reports one completed query to `cfg`'s progress sink, if any.
fn emit_progress(model_name: &str, axiom: &str, cfg: &SynthConfig, r: &SynthResult) {
    if let Some(sink) = &cfg.progress {
        sink.emit(&crate::symbolic::ProgressEvent {
            key: query_key(model_name, axiom, cfg.events),
            tests: r.tests.len(),
            from_journal: r.from_journal,
            elapsed: r.elapsed,
        });
    }
}

/// One (axiom, bound) query, compiled once and shared by its cube workers.
struct Query {
    st: Arc<SymbolicTest>,
    /// The minimality asserts, without cube pins.
    asserts: Vec<Bit>,
    query: CompiledQuery,
    /// Full circuit→CNF compilations charged to this query. On the
    /// monolithic path this is always 1, measured with the thread-local
    /// counter (the whole build runs on one thread, so sibling queries
    /// compiling concurrently cannot inflate it). On the incremental path
    /// the sweep's one full compilation is claimed by whichever query
    /// arrives first and everyone else charges 0 — so the per-query *sum*
    /// is exactly 1 per sweep, which `experiments speedup` asserts.
    compilations: usize,
}

/// The pin-selection config for one query. A query that will never be
/// cube-split (`cube_bits == 0`) skips the adaptive probing run outright —
/// its pins are unused, so the probe would be pure overhead on both the
/// monolithic and the incremental path.
fn cube_config(cfg: &SynthConfig) -> CubeConfig {
    CubeConfig {
        adaptive: cfg.adaptive_cubes && cfg.cube_bits > 0,
        probe_conflicts: cfg.probe_conflicts,
    }
}

/// Builds (symbolic test + minimality asserts + shared compilation + cube
/// pins) for one query. Runs inside a `OnceLock`, so exactly one worker
/// per query pays this cost; the result is a pure function of
/// (model, cfg, axiom) regardless of which worker that is.
fn build_query<M: MemoryModel>(model: &M, cfg: &SynthConfig, axiom: &'static str) -> Query {
    let before = litsynth_relalg::thread_compilations();
    let mut alg = SymAlg::new();
    let st = SymbolicTest::build(&mut alg, model, cfg);
    let asserts = minimality_asserts_opts(&mut alg, model, &st, axiom, cfg.orphan_unconstrained);
    let candidates: Vec<Bit> = st.kind.iter().flatten().copied().collect();
    let circuit = alg.into_circuit();
    let query = CompiledQuery::build(
        circuit,
        &asserts,
        &st.observables,
        &candidates,
        &cube_config(cfg),
    );
    let compilations = (litsynth_relalg::thread_compilations() - before) as usize;
    Query {
        st: Arc::new(st),
        asserts,
        query,
        compilations,
    }
}

/// The shared, sequentially prebuilt state for every query of one bound in
/// an incremental sweep: the sweep-wide circuit arena, the bound's symbolic
/// test, its skeleton compilation (one link of the sweep's layer chain),
/// and the per-axiom minimality asserts each query extends the skeleton
/// with.
struct BoundShare {
    circuit: Arc<Circuit>,
    st: Arc<SymbolicTest>,
    /// The shared layer chain up to and including this bound: per
    /// participating bound so far, a skeleton layer (wellformedness,
    /// observables, pin candidates) followed by one *definitional* layer
    /// per axiom (that axiom's minimality-circuit Tseitin cone), all
    /// encoded exactly once per sweep. Every layer is tagged shared
    /// ("skeleton") — definition layers only *name* gates, they assert
    /// nothing, so learnt clauses derived from the chain alone are sound
    /// to share between all queries whose chain has them as a prefix (see
    /// `litsynth_portfolio::vault`) — and the per-axiom layers are
    /// additionally tagged definitional, so a lazily attached worker
    /// ([`SynthConfig::lazy`]) leaves sibling axioms' cones dormant. A
    /// bound's queries all run over this identical formula and differ only
    /// in their assumption roots.
    compiled: Arc<CompiledCircuit>,
    /// Minimality asserts per axiom index (cube pins excluded).
    asserts: Vec<Vec<Bit>>,
    candidates: Vec<Bit>,
    /// `true` until a query claims the sweep's one full compilation for its
    /// `compilations` counter; extension layers are charged nowhere, which
    /// keeps the per-query sum at exactly 1 per sweep.
    charge: AtomicBool,
    /// Live solvers parked between tasks. Because every query of the bound
    /// runs over the *identical* compiled chain, a solver that finished one
    /// task can serve the next — of a different cube, axiom, or attempt —
    /// keeping its entire learnt-clause database warm (incremental SAT
    /// across queries, the pool form). Soundness: each task encloses its
    /// blocking clauses under a fresh activation guard
    /// ([`Finder::new_guard`]), so nothing task-specific survives into the
    /// next task's search, and guard-tainted derivations never leave the
    /// solver (the exchange export filter). The enumerated class sets are
    /// therefore exactly those of cold solvers; which task gets which
    /// pooled solver affects effort only.
    pool: Mutex<Vec<Finder>>,
}

/// Prebuilds the [`BoundShare`]s of an incremental sweep, sequentially, on
/// the caller's thread. `specs` pairs each bound's config with whether the
/// bound participates (it asked for incremental compilation and has tasks
/// left after journal planning); non-participants get `None` and their
/// tasks fall back to the monolithic per-query [`build_query`] path.
///
/// All participating bounds share **one** hash-consed circuit arena (so a
/// sub-structure two bounds have in common is one node, encoded once) and
/// one skeleton layer chain: the first participant's skeleton is compiled
/// in full ([`CompiledCircuit::compile_tagged`]), every later participant
/// only extends it ([`CompiledCircuit::extend`]). The arena is frozen into
/// an `Arc` once, after all bounds are built — node indices are append-only
/// and stable, so mid-build compilations stay valid.
fn sweep_shares<M: MemoryModel>(
    model: &M,
    specs: &[(&SynthConfig, bool)],
) -> Vec<Option<Arc<BoundShare>>> {
    let mut alg = SymAlg::new();
    let mut chain: Option<Arc<CompiledCircuit>> = None;
    let mut built = Vec::with_capacity(specs.len());
    for &(cfg, participates) in specs {
        if !participates {
            built.push(None);
            continue;
        }
        let st = SymbolicTest::build(&mut alg, model, cfg);
        let asserts: Vec<Vec<Bit>> = model
            .axioms()
            .iter()
            .map(|&ax| minimality_asserts_opts(&mut alg, model, &st, ax, cfg.orphan_unconstrained))
            .collect();
        let candidates: Vec<Bit> = st.kind.iter().flatten().copied().collect();
        let roots: Vec<Bit> = st
            .wellformed
            .iter()
            .chain(&st.observables)
            .chain(&candidates)
            .copied()
            .collect();
        let skeleton = match &chain {
            None => CompiledCircuit::compile_tagged(&alg.circuit, roots, true),
            Some(prev) => CompiledCircuit::extend(prev, &alg.circuit, roots, true),
        };
        // Chain every axiom's minimality-circuit *definitions* onto the
        // shared chain as its own definitional layer, tagged shared like
        // the skeleton. A Tseitin layer never constrains — it only names
        // gates — so the bound's queries all solve this one formula under
        // different assumptions, and any clause a solver learns from the
        // chain alone is valid for every sibling (and every later bound):
        // that is what makes the vault's cross-query seeding productive
        // instead of marginal. One layer *per axiom* (instead of one fused
        // definitions layer) is what lets a lazily attached worker leave
        // the sibling axioms' cones dormant: each layer is marked
        // definitional, so `Solver::attach_shared_lazy` installs its
        // watchers only when the query's own assumptions reach it.
        let mut link = skeleton;
        for ax_asserts in &asserts {
            link = CompiledCircuit::extend_definitional(
                &link,
                &alg.circuit,
                ax_asserts.iter().copied(),
                true,
            );
        }
        let full = Arc::new(link);
        chain = Some(full.clone());
        built.push(Some((Arc::new(st), full, asserts, candidates)));
    }
    let circuit = Arc::new(alg.into_circuit());
    let mut first = true;
    built
        .into_iter()
        .map(|slot| {
            slot.map(|(st, compiled, asserts, candidates)| {
                let share = Arc::new(BoundShare {
                    circuit: circuit.clone(),
                    st,
                    compiled,
                    asserts,
                    candidates,
                    charge: AtomicBool::new(first),
                    pool: Mutex::new(Vec::new()),
                });
                first = false;
                share
            })
        })
        .collect()
}

/// Derives one query from its bound's prebuilt share. The bound's one
/// compiled chain already encodes everything the query touches — skeleton
/// *and* its axiom's minimality definitions — so no per-query Tseitin work
/// happens at all: the query borrows the chain by `Arc` and contributes
/// only its assumption roots (plus the pin-ranking probe). Runs inside the
/// query's `OnceLock`, exactly like [`build_query`].
fn build_query_from_share(share: &BoundShare, axiom_idx: usize, cfg: &SynthConfig) -> Query {
    let asserts = share.asserts[axiom_idx].clone();
    let query = CompiledQuery::from_compiled(
        share.circuit.clone(),
        share.compiled.clone(),
        &asserts,
        &share.candidates,
        &cube_config(cfg),
    );
    Query {
        st: share.st.clone(),
        asserts,
        query,
        compilations: usize::from(share.charge.swap(false, Ordering::Relaxed)),
    }
}

/// One enumeration task: an (axiom, bound, cube) triple plus the shared
/// per-query state (compilation slot and exchange bus) it cooperates
/// through.
struct Task {
    axiom_idx: usize,
    axiom: &'static str,
    /// Journal/fault-plan key of the owning query, e.g. `tso/sc_per_loc/2`.
    query_key: Arc<str>,
    cfg: SynthConfig,
    cube: usize,
    cube_bits: usize,
    shared: Arc<OnceLock<Query>>,
    bus: Arc<ExchangeBus>,
    /// The bound's prebuilt share when the sweep compiles incrementally;
    /// `None` makes the query compile monolithically on first touch.
    prebuilt: Option<Arc<BoundShare>>,
    /// The sweep-wide cross-query clause vault, when enabled.
    vault: Option<Arc<ClauseVault>>,
}

/// Attaches a bound's prebuilt share — and the sweep vault, for the tasks
/// whose config asks for it — to the bound's planned tasks.
fn attach_share(
    tasks: &mut [Task],
    share: &Option<Arc<BoundShare>>,
    vault: &Option<Arc<ClauseVault>>,
) {
    for t in tasks {
        t.prebuilt = share.clone();
        if t.cfg.vault {
            t.vault = vault.clone();
        }
    }
}

/// A cube worker's exchange stack: its bus endpoint, wrapped with
/// cross-query vault traffic when the query sits on a skeleton layer chain
/// (monolithic queries have a single untagged layer, no chain fingerprints,
/// and skip the wrapper).
enum CubeExchange {
    Plain(ExchangeEndpoint),
    Vaulted(VaultedExchange<ExchangeEndpoint>),
}

impl CubeExchange {
    fn stats(&self) -> ExchangeStats {
        match self {
            CubeExchange::Plain(e) => e.stats(),
            CubeExchange::Vaulted(v) => v.inner().stats(),
        }
    }
}

impl ClauseExchange for CubeExchange {
    fn export(&mut self, lits: &[Lit], lbd: u32, skeleton: bool) {
        match self {
            CubeExchange::Plain(e) => e.export(lits, lbd, skeleton),
            CubeExchange::Vaulted(v) => v.export(lits, lbd, skeleton),
        }
    }

    fn fetch(&mut self, out: &mut Vec<(Vec<Lit>, u32, bool)>) {
        match self {
            CubeExchange::Plain(e) => e.fetch(out),
            CubeExchange::Vaulted(v) => v.fetch(out),
        }
    }
}

/// The shared state for one query's worker group.
fn query_group(cfg: &SynthConfig, cube_bits: usize) -> (Arc<OnceLock<Query>>, Arc<ExchangeBus>) {
    let bus = ExchangeBus::new(ExchangeConfig {
        // With a single cube there are no peers to trade with.
        enabled: cfg.exchange && cube_bits > 0,
        max_lbd: cfg.exchange_max_lbd,
        max_len: cfg.exchange_max_len,
        ..ExchangeConfig::default()
    });
    (Arc::new(OnceLock::new()), bus)
}

/// The output of one worker.
struct CubeRun {
    tests: CanonicalSuite,
    stats: WorkerStats,
    /// Compilations charged to this worker (the query's one compilation is
    /// charged to cube 0).
    compilations: usize,
    /// Probe time charged to this worker (cube 0 only, like above).
    probe: Duration,
}

/// The per-solve budget for `attempt` of a task. Budgets escalate ×4 per
/// retry so a deterministic budget exhaustion is not retried into the
/// identical wall; unset knobs (0) stay unlimited.
fn attempt_budget(task: &Task, attempt: usize, start: Instant) -> SolveBudget {
    let cfg = &task.cfg;
    let scale = 1u64 << (2 * attempt.min(16) as u32);
    SolveBudget {
        max_conflicts: cfg.solve_conflicts.saturating_mul(scale),
        max_propagations: cfg.solve_propagations.saturating_mul(scale),
        deadline: (cfg.solve_wall_ms > 0)
            .then(|| start + Duration::from_millis(cfg.solve_wall_ms.saturating_mul(scale))),
        cancel: None,
        fault: cfg.fault_plan.clone().map(|plan| FaultCtx {
            plan,
            query: task.query_key.clone(),
            cube: task.cube,
            attempt,
        }),
    }
}

/// Enumerates one cube of one (axiom, bound) query on the current thread.
///
/// The first worker of a query to arrive compiles it (once) into the
/// shared `OnceLock`; everyone attaches a private solver to the shared
/// clause arena and trades learnt clauses over the query's exchange bus.
///
/// On the monolithic path every call starts from a fresh solver attached
/// to the (immutable) shared arena. On an incremental bound the call may
/// instead draw a live solver from the bound's pool (see
/// [`BoundShare::pool`]); either way each attempt runs under its own fresh
/// activation guard, so a retried attempt re-enumerates the cube from
/// scratch and deterministically: no *constraint* from a failed attempt
/// leaks into the next one — only formula-implied learnt clauses, which
/// prune without changing the enumerated set. On the final attempt
/// exchange imports are disabled for maximal independence from peer timing
/// (exports still flow; see `litsynth_portfolio::exchange` for why imports
/// can't change the enumerated set either way).
fn enumerate_cube<M: MemoryModel>(model: &M, task: &Task, attempt: usize) -> Attempt<CubeRun> {
    let cfg = &task.cfg;
    let start = Instant::now();
    let query = task.shared.get_or_init(|| match &task.prebuilt {
        Some(share) => build_query_from_share(share, task.axiom_idx, cfg),
        None => build_query(model, cfg, task.axiom),
    });
    let st = &query.st;
    let circuit = query.query.circuit();
    let mut asserts = query.asserts.clone();
    asserts.extend(query.query.cube_pins(task.cube, task.cube_bits));
    // On a prebuilt (incremental) bound, reuse a live solver from the
    // bound's pool when one is parked: every task of the bound solves the
    // identical compiled chain, so the solver arrives with its learnt
    // clauses — and everything the chain's earlier tasks proved — intact.
    // The price of soundness is one activation guard per task enclosing
    // its blocking clauses; a fresh attach pays the same guard so that it,
    // too, can be parked and reused when it finishes.
    let pooled = task.prebuilt.as_ref().map(|share| &share.pool);
    let mut finder = pooled
        .and_then(|pool| pool.lock().unwrap_or_else(|e| e.into_inner()).pop())
        .unwrap_or_else(|| {
            // Lazy attach leaves the chain's definitional layers (sibling
            // axioms' Tseitin cones) dormant; this query's own cones wake
            // on the first solve, when its assumptions reference them. On
            // a monolithic compilation there are no definitional layers
            // and the two attaches are identical. Every task of a bound
            // shares one `cfg.lazy`, so pooled solvers are homogeneous.
            if cfg.lazy {
                query.query.attach_lazy()
            } else {
                query.query.attach()
            }
        });
    let stats_before = finder.solver_stats();
    // Per-task knobs on a possibly pooled solver: shelving of imports over
    // dormant cones (lazy path) and the two-level decision domain. Set
    // before `declare_roots`, which is what (re)builds the domain as this
    // task's cone — on a pooled solver that replaces the previous task's
    // cone, which is exactly the point: the accumulated active set only
    // grows, the decision domain tracks the *current* query.
    finder.set_shelving(cfg.shelve);
    finder.set_domain_enabled(cfg.domain && cfg.incremental);
    finder.set_inprocessing(cfg.inprocess);
    finder.set_tiered_retention(cfg.tiered);
    let guard = pooled.map(|_| finder.new_guard());
    // Focus branching on this query's own cone. On the monolithic path the
    // warmed cone covers (essentially) the whole formula, so this changes
    // nothing; on a sweep-shared chain it keeps the solver out of the other
    // bounds' and axioms' layers until propagation actually drags it there.
    finder.warm(
        circuit,
        asserts
            .iter()
            .chain(&st.observables)
            .chain(st.kind.iter().flatten())
            .copied(),
    );
    // Declare this task's live cone roots up front: on a lazy attach the
    // vault fetch and exchange drain below land on live watchers instead
    // of the shelf, and with the decision domain on this is what scopes
    // branching to the task's own cone.
    let root_bits: Vec<Bit> = asserts
        .iter()
        .chain(&st.observables)
        .chain(st.kind.iter().flatten())
        .copied()
        .collect();
    finder.declare_roots(circuit, &root_bits);
    let max_attempts = cfg.max_attempts.max(1);
    let last_attempt = max_attempts > 1 && attempt + 1 >= max_attempts;
    let mut endpoint = task.bus.endpoint(task.cube);
    if last_attempt {
        endpoint.disable_imports();
    }
    let fingerprints = query.query.compiled().cnf().skeleton_fingerprints();
    let mut exchange = match (&task.vault, fingerprints.last().copied()) {
        (Some(vault), Some(publish_fp)) => {
            let mut v = VaultedExchange::new(endpoint, vault.clone(), publish_fp, fingerprints);
            if last_attempt {
                v.suppress_imports();
            }
            CubeExchange::Vaulted(v)
        }
        _ => CubeExchange::Plain(endpoint),
    };
    let budget = attempt_budget(task, attempt, start);

    let mut tests = BTreeMap::new();
    // Exact canonicalization runs through the two-tier cache: the
    // permutation search happens once per distinct hash class this worker
    // sees, repeat members cost one hash key. Per-worker state, so output
    // stays a pure function of the enumerated set.
    let mut canon = TwoTierCanon::new();
    let mut raw = 0usize;
    let mut truncated = false;
    let mut interrupted: Option<Interrupt> = None;
    let extra: Vec<Lit> = guard.into_iter().collect();
    loop {
        match finder.next_instance_budgeted_assuming(
            circuit,
            &asserts,
            &extra,
            &mut exchange,
            &budget,
        ) {
            Ok(Some(inst)) => {
                raw += 1;
                let (test, outcome) = st.extract(circuit, &inst);
                if cfg.exact_canon {
                    let (key, ct, co) = canon.canonicalize(&test, &outcome);
                    insert_dedup(&mut tests, key, ct, co);
                } else {
                    insert_dedup(
                        &mut tests,
                        canonical_key_hash(&test, &outcome),
                        test,
                        outcome,
                    );
                }
                finder.block_guarded(circuit, &inst, &st.observables, guard);
                if raw >= cfg.max_instances {
                    truncated = true;
                    break;
                }
                if cfg.time_budget_ms > 0 && start.elapsed().as_millis() as u64 > cfg.time_budget_ms
                {
                    truncated = true;
                    break;
                }
            }
            Ok(None) => break,
            Err(i) => {
                interrupted = Some(i);
                break;
            }
        }
    }
    let xs = exchange.stats();
    let (cnf_vars, cnf_clauses) = (finder.num_cnf_vars(), finder.num_cnf_clauses());
    let stats_after = finder.solver_stats();
    let propagations = stats_after.propagations - stats_before.propagations;
    let decisions = stats_after.decisions - stats_before.decisions;
    let domain_decisions = stats_after.domain_decisions - stats_before.domain_decisions;
    let shelved_replayed = stats_after.shelved_replayed - stats_before.shelved_replayed;
    let simplify_removed = stats_after.simplify_removed - stats_before.simplify_removed;
    let subsumed = stats_after.subsumed - stats_before.subsumed;
    let strengthened = stats_after.strengthened - stats_before.strengthened;
    let gc_runs = stats_after.gc_runs - stats_before.gc_runs;
    let gc_reclaimed_words = stats_after.gc_reclaimed_words - stats_before.gc_reclaimed_words;
    let learnt_tiers = [
        stats_after.learnts_core,
        stats_after.learnts_mid,
        stats_after.learnts_local,
    ];
    if std::env::var_os("LITSYNTH_TRACE").is_some() {
        eprintln!(
            "trace {} cube {} attempt {}: wall {:?} probe {:?} raw {} conflicts {} props {} decs {} domdecs {} replayed {} simp {} subs {} str {} gc {}/{}w tiers {}/{}/{} active {}/{}",
            task.query_key,
            task.cube,
            attempt,
            start.elapsed(),
            query.query.probe_time(),
            raw,
            finder.solver_stats().conflicts,
            propagations,
            decisions,
            domain_decisions,
            shelved_replayed,
            simplify_removed,
            subsumed,
            strengthened,
            gc_runs,
            gc_reclaimed_words,
            learnt_tiers[0],
            learnt_tiers[1],
            learnt_tiers[2],
            finder.active_var_count(),
            finder.num_cnf_vars(),
        );
    }
    // Park the solver for the bound's next task, warm. Interrupted attempts
    // park too — the retry draws a pooled solver and a *fresh* guard, so
    // the failed pass's guarded blocking clauses are inert and the retry
    // re-enumerates its cube from scratch, exactly like a cold solver
    // would. A task that panics instead (injected fault) simply drops its
    // solver; the pool refills from `attach` on demand. The guard is
    // retired first (¬guard asserted at level 0): it is never assumed
    // again, so the pass's blocking clauses become level-0-satisfied and
    // the parked solver's next inprocessing pass physically sheds them.
    if let Some(pool) = pooled {
        if let Some(g) = guard {
            finder.retire_guard(g);
        }
        pool.lock().unwrap_or_else(|e| e.into_inner()).push(finder);
    }
    let run = CubeRun {
        tests,
        // The query-level costs (the one compilation, the probe) are
        // attributed to cube 0 so that summing workers counts each query
        // exactly once.
        compilations: if task.cube == 0 {
            query.compilations
        } else {
            0
        },
        probe: if task.cube == 0 {
            query.query.probe_time()
        } else {
            Duration::ZERO
        },
        stats: WorkerStats {
            axiom: task.axiom,
            bound: cfg.events,
            cube: task.cube,
            num_cubes: 1 << task.cube_bits,
            raw_instances: raw,
            cnf_vars,
            cnf_clauses,
            elapsed: start.elapsed(),
            propagations,
            decisions,
            domain_decisions,
            shelved_replayed,
            simplify_removed,
            subsumed,
            strengthened,
            gc_runs,
            gc_reclaimed_words,
            learnt_tiers,
            truncated,
            exported: xs.exported,
            imported: xs.imported,
            filtered: xs.filtered,
            probe: query.query.probe_time(),
            attempts: 1,
            degraded: false,
            failures: Vec::new(),
        },
    };
    match interrupted {
        None => Attempt::Done(run),
        Some(i) => Attempt::Interrupted {
            reason: format!(
                "{} cube {} attempt {}: {}",
                task.query_key, task.cube, attempt, i
            ),
            partial: Some(run),
            // A cancelled query was asked to stop: don't fight the caller.
            retry: i != Interrupt::Cancelled,
        },
    }
}

/// A stand-in for a worker whose every attempt panicked before producing
/// even a partial run: an empty (degraded) cube.
fn placeholder_run(task: &Task) -> CubeRun {
    CubeRun {
        tests: BTreeMap::new(),
        compilations: 0,
        probe: Duration::ZERO,
        stats: WorkerStats {
            axiom: task.axiom,
            bound: task.cfg.events,
            cube: task.cube,
            num_cubes: 1 << task.cube_bits,
            raw_instances: 0,
            cnf_vars: 0,
            cnf_clauses: 0,
            elapsed: Duration::ZERO,
            propagations: 0,
            decisions: 0,
            domain_decisions: 0,
            shelved_replayed: 0,
            simplify_removed: 0,
            subsumed: 0,
            strengthened: 0,
            gc_runs: 0,
            gc_reclaimed_words: 0,
            learnt_tiers: [0; 3],
            truncated: false,
            exported: 0,
            imported: 0,
            filtered: 0,
            probe: Duration::ZERO,
            attempts: 0,
            degraded: true,
            failures: Vec::new(),
        },
    }
}

/// Runs the tasks on the portfolio's resilient worker pool and returns
/// their outputs in task order (never completion order). Each task runs
/// under panic isolation with retry/backoff; a task whose every attempt
/// fails comes back with `stats.degraded` set (carrying its best partial
/// result) instead of poisoning the pool.
fn run_tasks<M: MemoryModel + Sync>(model: &M, tasks: &[Task], threads: usize) -> Vec<CubeRun> {
    let retry = tasks
        .first()
        .map(|t| RetryConfig {
            max_attempts: t.cfg.max_attempts.max(1),
            backoff_base_ms: t.cfg.retry_backoff_ms,
        })
        .unwrap_or_default();
    run_resilient(tasks, threads, &retry, |_, t, attempt| {
        enumerate_cube(model, t, attempt)
    })
    .into_iter()
    .zip(tasks)
    .map(|(report, task)| {
        let mut run = report.result.unwrap_or_else(|| placeholder_run(task));
        run.stats.attempts = report.attempts;
        run.stats.degraded = report.degraded;
        run.stats.failures = report.failures;
        run
    })
    .collect()
}

/// Merges the cube runs of one query (in cube order) into a [`SynthResult`].
fn merge_query(runs: Vec<CubeRun>, elapsed: Duration) -> SynthResult {
    let mut tests = BTreeMap::new();
    let mut raw = 0;
    let mut vars = 0;
    let mut clauses = 0;
    let mut compilations = 0;
    let mut exchange = (0u64, 0u64, 0u64);
    let mut propagations = 0u64;
    let mut decisions = 0u64;
    let mut domain_decisions = 0u64;
    let mut shelved_replayed = 0u64;
    let mut simplify_removed = 0u64;
    let mut subsumed = 0u64;
    let mut strengthened = 0u64;
    let mut gc_runs = 0u64;
    let mut gc_reclaimed_words = 0u64;
    let mut probe = Duration::ZERO;
    let mut truncated = false;
    let mut degraded = 0usize;
    let mut retries = 0u64;
    let mut workers = Vec::with_capacity(runs.len());
    for run in runs {
        for (k, (t, o)) in run.tests {
            insert_dedup(&mut tests, k, t, o);
        }
        raw += run.stats.raw_instances;
        vars += run.stats.cnf_vars;
        clauses += run.stats.cnf_clauses;
        compilations += run.compilations;
        exchange.0 += run.stats.exported;
        exchange.1 += run.stats.imported;
        exchange.2 += run.stats.filtered;
        propagations += run.stats.propagations;
        decisions += run.stats.decisions;
        domain_decisions += run.stats.domain_decisions;
        shelved_replayed += run.stats.shelved_replayed;
        simplify_removed += run.stats.simplify_removed;
        subsumed += run.stats.subsumed;
        strengthened += run.stats.strengthened;
        gc_runs += run.stats.gc_runs;
        gc_reclaimed_words += run.stats.gc_reclaimed_words;
        probe += run.probe;
        truncated |= run.stats.truncated;
        degraded += run.stats.degraded as usize;
        retries += run.stats.attempts.saturating_sub(1) as u64;
        workers.push(run.stats);
    }
    SynthResult {
        tests,
        raw_instances: raw,
        elapsed,
        truncated,
        cnf_vars: vars,
        cnf_clauses: clauses,
        compilations,
        exchange,
        propagations,
        decisions,
        domain_decisions,
        shelved_replayed,
        simplify_removed,
        subsumed,
        strengthened,
        gc_runs,
        gc_reclaimed_words,
        probe,
        degraded,
        retries,
        from_journal: false,
        workers,
    }
}

/// A [`SynthResult`] replayed from the checkpoint journal: the exact tests
/// recorded by a previous complete run, with all work counters zero.
fn journal_hit_result(tests: CanonicalSuite, elapsed: Duration) -> SynthResult {
    let mut r = SynthResult::carrying(tests);
    r.elapsed = elapsed;
    r.from_journal = true;
    r
}

/// Post-synthesis consistency cross-check ([`SynthConfig::cross_check`]):
/// re-verifies with the polynomial saturation checker
/// (`litsynth_models::check`) that every emitted (test, outcome) really is
/// forbidden — an axiom-forbidden outcome is model-forbidden (more axioms
/// only shrink the allowed set), so the full-model check is sound for
/// per-axiom suites. Read-only defense in depth for the byte-identity
/// bar: it never mutates the suite, and a disagreement is a synthesis or
/// model bug, so it panics.
fn cross_check_suite<M: MemoryModel>(model: &M, axiom: &str, cfg: &SynthConfig, r: &SynthResult) {
    if !cfg.cross_check {
        return;
    }
    for (key, (test, outcome)) in &r.tests {
        assert!(
            litsynth_models::check::forbidden(model, test, outcome),
            "cross-check failed: {key} (model {}, axiom {axiom}) claims a forbidden \
             outcome the consistency checker finds observable",
            model.name(),
        );
    }
}

/// Journals `r` if it is complete: not truncated, no degraded workers, and
/// a journal is configured. Partial suites are deliberately never
/// recorded — a resume must only ever skip work whose output is exact.
fn record_if_clean(model_name: &str, axiom: &str, cfg: &SynthConfig, r: &SynthResult) {
    let Some(journal) = &cfg.journal else {
        return;
    };
    if r.truncated || r.degraded > 0 || r.from_journal {
        return;
    }
    let key = query_key(model_name, axiom, cfg.events);
    if let Err(e) = journal.record(&key, config_fingerprint(model_name, axiom, cfg), &r.tests) {
        eprintln!("warning: could not journal {key}: {e}");
    }
}

/// Looks `(axiom, bound)` up in `cfg`'s journal (if any): `Some(tests)`
/// only when a complete prior run with the same config fingerprint was
/// recorded and its entry passes the checksum.
fn journal_lookup<M: MemoryModel>(
    model: &M,
    axiom: &str,
    cfg: &SynthConfig,
) -> Option<CanonicalSuite> {
    let journal = cfg.journal.as_ref()?;
    journal.lookup(
        &query_key(model.name(), axiom, cfg.events),
        config_fingerprint(model.name(), axiom, cfg),
    )
}

/// The static name of `axiom` in `model`'s axiom list.
///
/// # Panics
///
/// Panics if `axiom` is not one of the model's axioms.
fn static_axiom<M: MemoryModel>(model: &M, axiom: &str) -> &'static str {
    model
        .axioms()
        .iter()
        .copied()
        .find(|a| *a == axiom)
        .unwrap_or_else(|| panic!("unknown axiom {axiom:?} for {}", model.name()))
}

/// The (axiom × cube) task list for one bound, checking each axiom's
/// query against the journal first. Journal hits come back as ready-made
/// results keyed by axiom index; only the misses become tasks.
///
/// The lookups happen *here*, before any worker runs — never re-done at
/// merge time, when entries recorded mid-run could change the answer.
fn plan_with_journal<M: MemoryModel>(
    model: &M,
    cfg: &SynthConfig,
) -> (BTreeMap<usize, SynthResult>, Vec<Task>) {
    let cube_bits = effective_cube_bits(model, cfg);
    let mut hits = BTreeMap::new();
    let mut tasks = Vec::new();
    for (axiom_idx, &axiom) in model.axioms().iter().enumerate() {
        if let Some(tests) = journal_lookup(model, axiom, cfg) {
            hits.insert(axiom_idx, journal_hit_result(tests, Duration::ZERO));
            continue;
        }
        let query_key: Arc<str> = query_key(model.name(), axiom, cfg.events).into();
        let (shared, bus) = query_group(cfg, cube_bits);
        for cube in 0..(1usize << cube_bits) {
            tasks.push(Task {
                axiom_idx,
                axiom,
                query_key: query_key.clone(),
                cfg: cfg.clone(),
                cube,
                cube_bits,
                shared: shared.clone(),
                bus: bus.clone(),
                prebuilt: None,
                vault: None,
            });
        }
    }
    (hits, tasks)
}

/// Synthesizes the suite for one axiom of `model` at the bound in `cfg`:
/// all canonical tests of exactly `cfg.events` instructions satisfying the
/// minimality criterion (Figure 5c encoding). With `cfg.cube_bits > 0` the
/// query is cube-split and the cubes run on `cfg.threads` workers.
pub fn synthesize_axiom<M: MemoryModel + Sync>(
    model: &M,
    axiom: &str,
    cfg: &SynthConfig,
) -> SynthResult {
    let start = Instant::now();
    let axiom = static_axiom(model, axiom);
    if let Some(tests) = journal_lookup(model, axiom, cfg) {
        let r = journal_hit_result(tests, start.elapsed());
        cross_check_suite(model, axiom, cfg, &r);
        emit_progress(model.name(), axiom, cfg, &r);
        return r;
    }
    let cube_bits = effective_cube_bits(model, cfg);
    let query_key: Arc<str> = query_key(model.name(), axiom, cfg.events).into();
    let (shared, bus) = query_group(cfg, cube_bits);
    let tasks: Vec<Task> = (0..(1usize << cube_bits))
        .map(|cube| Task {
            axiom_idx: 0,
            axiom,
            query_key: query_key.clone(),
            cfg: cfg.clone(),
            cube,
            cube_bits,
            shared: shared.clone(),
            bus: bus.clone(),
            prebuilt: None,
            vault: None,
        })
        .collect();
    let runs = run_tasks(model, &tasks, cfg.threads);
    let r = merge_query(runs, start.elapsed());
    cross_check_suite(model, axiom, cfg, &r);
    record_if_clean(model.name(), axiom, cfg, &r);
    emit_progress(model.name(), axiom, cfg, &r);
    r
}

/// Synthesizes the per-axiom suites *and* their union for a model at one
/// bound. As the paper notes (§5.2), generating per-axiom suites and
/// merging at the end is much faster than a single union query — and the
/// per-axiom queries are fully independent, so they fan out across the
/// worker pool.
pub fn synthesize_union<M: MemoryModel + Sync>(
    model: &M,
    cfg: &SynthConfig,
) -> (BTreeMap<&'static str, SynthResult>, CanonicalSuite) {
    let start = Instant::now();
    let (hits, mut tasks) = plan_with_journal(model, cfg);
    if cfg.incremental && !tasks.is_empty() {
        let share = sweep_shares(model, &[(cfg, true)]).pop().flatten();
        let vault = cfg.vault.then(|| ClauseVault::new(VaultConfig::default()));
        attach_share(&mut tasks, &share, &vault);
    }
    let runs = run_tasks(model, &tasks, cfg.threads);
    let (per_axiom, union) = merge_union(model, tasks, runs, start, hits);
    for (&ax, r) in &per_axiom {
        cross_check_suite(model, ax, cfg, r);
        record_if_clean(model.name(), ax, cfg, r);
        emit_progress(model.name(), ax, cfg, r);
    }
    (per_axiom, union)
}

/// Groups task outputs by axiom (in axiom order), splices in the journal
/// hits, and builds the union. The union is assembled in axiom order
/// regardless of which axioms were replayed, so a resumed run merges
/// byte-identically to an uninterrupted one.
fn merge_union<M: MemoryModel>(
    model: &M,
    tasks: Vec<Task>,
    runs: Vec<CubeRun>,
    start: Instant,
    mut hits: BTreeMap<usize, SynthResult>,
) -> (BTreeMap<&'static str, SynthResult>, CanonicalSuite) {
    let mut grouped: Vec<Vec<CubeRun>> = model.axioms().iter().map(|_| Vec::new()).collect();
    for (task, run) in tasks.iter().zip(runs) {
        grouped[task.axiom_idx].push(run);
    }
    let mut per_axiom = BTreeMap::new();
    let mut union: CanonicalSuite = BTreeMap::new();
    for (idx, (&ax, runs)) in model.axioms().iter().zip(grouped).enumerate() {
        let r = hits
            .remove(&idx)
            .unwrap_or_else(|| merge_query(runs, start.elapsed()));
        for (k, v) in &r.tests {
            union.entry(k.clone()).or_insert_with(|| v.clone());
        }
        per_axiom.insert(ax, r);
    }
    (per_axiom, union)
}

/// Aggregate compile-reuse and clause-vault statistics for one sweep of
/// [`synthesize_union_up_to_with_stats`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SweepStats {
    /// Full circuit→CNF compilations charged to the sweep's queries — the
    /// race-free per-query sum. Exactly 1 for a fully incremental sweep
    /// (the shared skeleton's compile, claimed by whichever query arrives
    /// first), one per query monolithically; journal hits charge 0.
    pub compilations: u64,
    /// Incremental layer extensions performed while the sweep ran: the
    /// skeleton-chain links after the first, plus one per derived query.
    /// A process-global delta of [`litsynth_relalg::incremental_extensions`]
    /// — exact when no other synthesis runs concurrently in the process.
    pub extensions: u64,
    /// Already-encoded clauses reused by those extensions instead of being
    /// re-encoded (delta of [`litsynth_relalg::reused_clauses`], same
    /// caveat).
    pub reused_clauses: u64,
    /// Cross-query clause-vault counters (all zero with the vault off).
    pub vault: VaultStats,
    /// Raw solver instances enumerated, summed over the sweep's queries.
    pub raw_instances: u64,
    /// Retry attempts beyond each worker's first, summed over the sweep.
    pub retries: u64,
    /// Workers whose every attempt failed, summed over the sweep.
    pub degraded: u64,
    /// Exchange-bus totals over all workers: (exported, imported,
    /// filtered).
    pub exchange: (u64, u64, u64),
    /// Unit propagations, summed over the sweep's workers. The number
    /// [`SynthConfig::lazy`] exists to shrink: dormant definitional layers
    /// propagate nothing.
    pub propagations: u64,
    /// Solver decisions, summed over the sweep's workers.
    pub decisions: u64,
    /// Decisions served from the local level of the two-level decision
    /// domain, summed over the sweep's workers (0 with
    /// [`SynthConfig::domain`] off — a zero here with the domain on means
    /// it was silently disabled somewhere).
    pub domain_decisions: u64,
    /// Shelved imports replayed after their cone activated, summed over
    /// the sweep's workers (0 with [`SynthConfig::shelve`] off or the
    /// lazy path inactive).
    pub shelved_replayed: u64,
    /// Clauses purged by level-0 inprocessing, summed over the sweep's
    /// workers (0 with [`SynthConfig::inprocess`] off).
    pub simplify_removed: u64,
    /// Learnt clauses deleted by on-the-fly subsumption, summed over the
    /// sweep's workers.
    pub subsumed: u64,
    /// Literals removed by stripping / self-subsuming resolution, summed
    /// over the sweep's workers.
    pub strengthened: u64,
    /// Clause-arena garbage collections, summed over the sweep's workers.
    pub gc_runs: u64,
    /// Arena words reclaimed by those collections, summed over the
    /// sweep's workers.
    pub gc_reclaimed_words: u64,
}

/// Synthesizes the union suite over a range of bounds, merging canonical
/// sets (tests of different sizes never collide). Every (bound, axiom,
/// cube) task across the whole range fans out over one shared worker pool.
pub fn synthesize_union_up_to<M: MemoryModel + Sync>(
    model: &M,
    bounds: std::ops::RangeInclusive<usize>,
    mk_cfg: impl Fn(usize) -> SynthConfig,
) -> CanonicalSuite {
    synthesize_union_up_to_with_stats(model, bounds, mk_cfg).0
}

/// Like [`synthesize_union_up_to`], also reporting the sweep's
/// [`SweepStats`].
pub fn synthesize_union_up_to_with_stats<M: MemoryModel + Sync>(
    model: &M,
    bounds: std::ops::RangeInclusive<usize>,
    mk_cfg: impl Fn(usize) -> SynthConfig,
) -> (CanonicalSuite, SweepStats) {
    let cfgs: Vec<SynthConfig> = bounds.map(mk_cfg).collect();
    let threads = cfgs.iter().map(|c| c.threads).max().unwrap_or(1);
    let extensions0 = litsynth_relalg::incremental_extensions();
    let reused0 = litsynth_relalg::reused_clauses();
    // (journal hits, task count) per bound. The journal is consulted once,
    // up front — entries recorded while the pool runs must not change
    // which tasks this invocation planned.
    let mut plans = Vec::new();
    let mut per_bound: Vec<Vec<Task>> = Vec::new();
    for cfg in &cfgs {
        let (hits, bound_tasks) = plan_with_journal(model, cfg);
        plans.push((hits, bound_tasks.len()));
        per_bound.push(bound_tasks);
    }
    // Prebuild one shared arena and skeleton layer chain for the bounds
    // that asked for incremental compilation and still have work, plus one
    // sweep-wide vault — later bounds' chains contain the earlier bounds'
    // chains as prefixes, so clauses vaulted at bound n seed bound n+1 too.
    let specs: Vec<(&SynthConfig, bool)> = cfgs
        .iter()
        .zip(&per_bound)
        .map(|(cfg, tasks)| (cfg, cfg.incremental && !tasks.is_empty()))
        .collect();
    let shares = sweep_shares(model, &specs);
    let vault = cfgs
        .iter()
        .any(|c| c.vault)
        .then(|| ClauseVault::new(VaultConfig::default()));
    for (tasks, share) in per_bound.iter_mut().zip(&shares) {
        attach_share(tasks, share, &vault);
    }
    let tasks: Vec<Task> = per_bound.into_iter().flatten().collect();
    let runs = run_tasks(model, &tasks, threads);

    // Merge in bound order, each bound in axiom order — the same shape as
    // the sequential loop, so the result is byte-identical to it.
    let mut stats = SweepStats::default();
    let mut union: CanonicalSuite = BTreeMap::new();
    let mut tasks = tasks.into_iter();
    let mut runs = runs.into_iter();
    for (cfg, (hits, count)) in cfgs.iter().zip(plans) {
        let bound_tasks: Vec<Task> = tasks.by_ref().take(count).collect();
        let bound_runs: Vec<CubeRun> = runs.by_ref().take(count).collect();
        let start = Instant::now();
        let (per_axiom, u) = merge_union(model, bound_tasks, bound_runs, start, hits);
        for (&ax, r) in &per_axiom {
            stats.compilations += r.compilations as u64;
            stats.raw_instances += r.raw_instances as u64;
            stats.retries += r.retries;
            stats.degraded += r.degraded as u64;
            stats.exchange.0 += r.exchange.0;
            stats.exchange.1 += r.exchange.1;
            stats.exchange.2 += r.exchange.2;
            stats.propagations += r.propagations;
            stats.decisions += r.decisions;
            stats.domain_decisions += r.domain_decisions;
            stats.shelved_replayed += r.shelved_replayed;
            stats.simplify_removed += r.simplify_removed;
            stats.subsumed += r.subsumed;
            stats.strengthened += r.strengthened;
            stats.gc_runs += r.gc_runs;
            stats.gc_reclaimed_words += r.gc_reclaimed_words;
            cross_check_suite(model, ax, cfg, r);
            record_if_clean(model.name(), ax, cfg, r);
            emit_progress(model.name(), ax, cfg, r);
        }
        union.extend(u);
    }
    stats.extensions = litsynth_relalg::incremental_extensions() - extensions0;
    stats.reused_clauses = litsynth_relalg::reused_clauses() - reused0;
    if let Some(v) = &vault {
        stats.vault = v.stats();
    }
    (union, stats)
}

/// One shard-claimable unit of a sweep: a single (axiom, bound) query with
/// its fingerprinted [`WorkUnit`](litsynth_portfolio::WorkUnit) identity
/// and the config to run it under. The unit's `seq` is its position in the
/// sweep's deterministic merge order.
#[derive(Clone, Debug)]
pub struct UnitPlan {
    /// The unit's claimable identity (key, config fingerprint, merge seq).
    pub unit: litsynth_portfolio::WorkUnit,
    /// The query's axiom.
    pub axiom: &'static str,
    /// The query's event bound.
    pub bound: usize,
    /// The config the unit runs under.
    pub cfg: SynthConfig,
}

/// Plans a sweep as independent work units, in deterministic merge order:
/// bounds ascending, each bound's axioms in model order, `seq` numbering
/// the lot. The shard layer hands these out (in any order, to any worker)
/// and [`merge_unit_suites`] reassembles the results by `seq` — the merge
/// then matches [`synthesize_union_up_to`]'s bound-then-axiom loop
/// exactly, which is what makes served suites byte-identical to a direct
/// sweep.
pub fn plan_units<M: MemoryModel>(
    model: &M,
    bounds: std::ops::RangeInclusive<usize>,
    mk_cfg: impl Fn(usize) -> SynthConfig,
) -> Vec<UnitPlan> {
    let mut units = Vec::new();
    for bound in bounds {
        let cfg = mk_cfg(bound);
        for &axiom in model.axioms() {
            let seq = units.len();
            units.push(UnitPlan {
                unit: litsynth_portfolio::WorkUnit {
                    key: query_key(model.name(), axiom, bound).into(),
                    fingerprint: config_fingerprint(model.name(), axiom, &cfg),
                    seq,
                },
                axiom,
                bound,
                cfg: cfg.clone(),
            });
        }
    }
    units
}

/// Runs one planned unit to completion on the calling thread('s pool):
/// exactly [`synthesize_axiom`] under the unit's config — journaled,
/// resilient, byte-identical to the same query inside a direct sweep.
pub fn run_unit<M: MemoryModel + Sync>(model: &M, plan: &UnitPlan) -> SynthResult {
    synthesize_axiom(model, plan.axiom, &plan.cfg)
}

/// Merges per-unit suites *in `seq` order* into the sweep union.
///
/// Determinism: [`synthesize_union_up_to`] builds its union bound-by-bound
/// (each bound's axioms first-wins-merged in axiom order, bounds then
/// concatenated — cross-bound canonical keys are disjoint because every
/// test has exactly its bound's event count). A first-wins fold over the
/// unit suites in `seq` order is the same computation, so a sharded sweep
/// serves byte-identical suites no matter which shard ran which unit.
pub fn merge_unit_suites<'a>(
    suites: impl IntoIterator<Item = &'a CanonicalSuite>,
) -> CanonicalSuite {
    let mut union = CanonicalSuite::new();
    for suite in suites {
        for (k, v) in suite {
            union.entry(k.clone()).or_insert_with(|| v.clone());
        }
    }
    union
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minimal::check_minimal;
    use litsynth_models::{Sc, Tso};

    #[test]
    fn tso_sc_per_loc_bound_2_finds_the_three_coherence_kernels() {
        // At 2 instructions the minimal sc_per_loc tests are the three
        // single-thread coherence kernels: CoWW (write-write order), the
        // read-own-future-write test, and the overtaken-own-write test.
        let cfg = SynthConfig::new(2);
        let r = synthesize_axiom(&Tso::new(), "sc_per_loc", &cfg);
        assert_eq!(r.len(), 3, "{:?}", r.tests.keys().collect::<Vec<_>>());
        for (t, o) in r.tests.values() {
            assert_eq!(t.num_threads(), 1);
            assert_eq!(t.num_events(), 2);
            assert!(check_minimal(&Tso::new(), "sc_per_loc", t, o).is_minimal());
        }
        // CoWW is among them.
        assert!(r
            .tests
            .values()
            .any(|(t, _)| t.instr(0).is_write() && t.instr(1).is_write()));
    }

    #[test]
    fn every_synthesized_test_is_oracle_minimal_tso_bound_3() {
        // Cross-validation at bound 3: everything the SAT path emits must
        // pass the exact exists-forall oracle (the Figure 5c approximation
        // only *loses* tests, it must not invent them — modulo the co
        // ambiguity that needs ≥3 same-address writes, impossible at 3
        // events with a read present).
        let m = Tso::new();
        let cfg = SynthConfig::new(3);
        for ax in m.axioms() {
            let r = synthesize_axiom(&m, ax, &cfg);
            for (t, o) in r.tests.values() {
                let v = check_minimal(&m, ax, t, o);
                assert!(
                    v.is_minimal(),
                    "{ax}: {t} {} not oracle-minimal: {v:?}",
                    o.display(t)
                );
            }
        }
    }

    #[test]
    fn sc_causality_bound_4_includes_the_classics() {
        let m = Sc::new();
        let cfg = SynthConfig::new(4);
        let r = synthesize_axiom(&m, "causality", &cfg);
        // SB, MP, LB, S, 2+2W, R all live at 4 instructions under SC.
        assert!(r.len() >= 6, "found {}", r.len());
        // And everything is oracle-minimal.
        for (t, o) in r.tests.values() {
            assert!(check_minimal(&m, "causality", t, o).is_minimal(), "{t}");
        }
    }

    /// Flattens a union result for byte-for-byte comparison.
    fn fingerprint(
        per_axiom: &BTreeMap<&'static str, SynthResult>,
        union: &CanonicalSuite,
    ) -> String {
        let mut s = String::new();
        for (ax, r) in per_axiom {
            for (k, (t, o)) in &r.tests {
                s.push_str(&format!("{ax}|{k}|{}\n", serialize(t, o)));
            }
        }
        for (k, (t, o)) in union {
            s.push_str(&format!("U|{k}|{}\n", serialize(t, o)));
        }
        s
    }

    #[test]
    fn parallel_union_is_byte_identical_to_sequential() {
        // The acceptance property of the parallel engine: any combination
        // of worker threads and cube splitting produces exactly the
        // sequential suite.
        for bound in 2..=4usize {
            for model_idx in 0..2 {
                let run = |threads: usize, cube_bits: usize| {
                    let mut cfg = SynthConfig::new(bound);
                    cfg.threads = threads;
                    cfg.cube_bits = cube_bits;
                    if model_idx == 0 {
                        let (p, u) = synthesize_union(&Sc::new(), &cfg);
                        (
                            fingerprint(&p, &u),
                            p.values().map(|r| r.raw_instances).sum::<usize>(),
                        )
                    } else {
                        let (p, u) = synthesize_union(&Tso::new(), &cfg);
                        (
                            fingerprint(&p, &u),
                            p.values().map(|r| r.raw_instances).sum::<usize>(),
                        )
                    }
                };
                let (seq, seq_raw) = run(1, 0);
                for (threads, cube_bits) in [(1, 2), (2, 0), (2, 2), (4, 0), (4, 2)] {
                    let (par, par_raw) = run(threads, cube_bits);
                    assert_eq!(
                        par, seq,
                        "threads={threads} cube_bits={cube_bits} bound={bound} model={model_idx}"
                    );
                    // Cubes partition the enumeration exactly: same number
                    // of raw instances in total.
                    assert_eq!(
                        par_raw, seq_raw,
                        "raw count drifted: threads={threads} cube_bits={cube_bits} \
                         bound={bound} model={model_idx}"
                    );
                }
            }
        }
    }

    #[test]
    fn union_up_to_is_byte_identical_across_thread_counts() {
        let suites: Vec<String> = [1usize, 2, 4]
            .iter()
            .map(|&threads| {
                let u = synthesize_union_up_to(&Tso::new(), 2..=3, |n| {
                    SynthConfig::new(n).with_threads(threads).with_cube_bits(1)
                });
                u.iter()
                    .map(|(k, (t, o))| format!("{k}|{}\n", serialize(t, o)))
                    .collect()
            })
            .collect();
        assert_eq!(suites[0], suites[1]);
        assert_eq!(suites[0], suites[2]);
    }

    #[test]
    fn worker_stats_cover_every_cube() {
        // Adaptive engagement would (correctly) unsplit this small bound;
        // disabled here because cube accounting is exactly what's tested.
        let cfg = SynthConfig::new(2)
            .with_threads(2)
            .with_cube_bits(2)
            .with_adaptive_engage(false);
        let r = synthesize_axiom(&Tso::new(), "sc_per_loc", &cfg);
        assert_eq!(r.workers.len(), 4);
        for (i, w) in r.workers.iter().enumerate() {
            assert_eq!(w.cube, i);
            assert_eq!(w.num_cubes, 4);
            assert_eq!(w.axiom, "sc_per_loc");
            assert_eq!(w.bound, 2);
        }
        assert_eq!(
            r.raw_instances,
            r.workers.iter().map(|w| w.raw_instances).sum::<usize>()
        );
        // Splitting never changes the canonical suite.
        let seq = synthesize_axiom(&Tso::new(), "sc_per_loc", &SynthConfig::new(2));
        assert_eq!(
            seq.tests.keys().collect::<Vec<_>>(),
            r.tests.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn exchange_matrix_is_byte_identical() {
        // The acceptance matrix of the portfolio subsystem: every
        // combination of worker threads, cube splitting, and clause
        // exchange produces exactly the sequential suite — the exchange may
        // prune search, never change the enumerated set. Raw instance
        // counts are compared too: imports must not swallow classes.
        let m = Tso::new();
        let run = |threads: usize, cube_bits: usize, exchange: bool| {
            // cross_check: every matrix leg is also semantically
            // re-verified by the polynomial consistency checker (CI's
            // determinism job rides on this test).
            let cfg = SynthConfig::new(3)
                .with_threads(threads)
                .with_cube_bits(cube_bits)
                .with_exchange(exchange)
                .with_cross_check(true);
            let (p, u) = synthesize_union(&m, &cfg);
            (
                fingerprint(&p, &u),
                p.values().map(|r| r.raw_instances).sum::<usize>(),
            )
        };
        let (seq, seq_raw) = run(1, 0, false);
        for threads in [1usize, 4] {
            for cube_bits in [0usize, 2] {
                for exchange in [false, true] {
                    let (got, got_raw) = run(threads, cube_bits, exchange);
                    assert_eq!(
                        got, seq,
                        "threads={threads} cube_bits={cube_bits} exchange={exchange}"
                    );
                    assert_eq!(
                        got_raw, seq_raw,
                        "raw drift: threads={threads} cube_bits={cube_bits} exchange={exchange}"
                    );
                }
            }
        }
        // Adaptive cube selection may repartition the cubes, but the union
        // and the total class count are invariant as well.
        let cfg = SynthConfig::new(3)
            .with_threads(4)
            .with_cube_bits(2)
            .with_adaptive_cubes(false);
        let (p, u) = synthesize_union(&m, &cfg);
        assert_eq!(fingerprint(&p, &u), seq);
        assert_eq!(
            p.values().map(|r| r.raw_instances).sum::<usize>(),
            seq_raw,
            "slot-order pins must partition too"
        );
    }

    #[test]
    fn one_compilation_per_query_and_counters_surface() {
        let m = Tso::new();
        let before = litsynth_relalg::compilations();
        let cfg = SynthConfig::new(2)
            .with_threads(4)
            .with_cube_bits(2)
            .with_incremental(false)
            .with_adaptive_engage(false);
        let (p, _) = synthesize_union(&m, &cfg);
        let compiled = litsynth_relalg::compilations() - before;
        // The union must have compiled at least one CNF per query. The
        // process-wide counter can also tick from *other* tests running
        // concurrently in this binary, so exactness is asserted on the
        // race-free per-query counters below, not on the global delta.
        assert!(compiled as usize >= m.axioms().len());
        for (ax, r) in &p {
            // Monolithic mode: exactly one circuit→CNF compilation per
            // (axiom, bound) query, no matter how many cube workers
            // attached.
            assert_eq!(r.compilations, 1, "{ax}");
            assert_eq!(r.workers.len(), 4, "{ax}");
            // Worker counters roll up into the query-level totals.
            assert_eq!(
                r.exchange,
                (
                    r.workers.iter().map(|w| w.exported).sum::<u64>(),
                    r.workers.iter().map(|w| w.imported).sum::<u64>(),
                    r.workers.iter().map(|w| w.filtered).sum::<u64>(),
                ),
                "{ax}"
            );
        }
        // Incremental mode (the default): one full compilation for the
        // whole union — the shared skeleton's — claimed by exactly one
        // query; the bound's definition layers extend that chain and all
        // queries share the result, contributing only assumption roots.
        let extensions_before = litsynth_relalg::incremental_extensions();
        let cfg = SynthConfig::new(2)
            .with_threads(4)
            .with_cube_bits(2)
            .with_adaptive_engage(false);
        let (p, _) = synthesize_union(&m, &cfg);
        assert_eq!(
            p.values().map(|r| r.compilations).sum::<usize>(),
            1,
            "an incremental sweep compiles in full exactly once"
        );
        assert!(
            litsynth_relalg::incremental_extensions() > extensions_before,
            "the definition layers must extend the skeleton chain"
        );
    }

    #[test]
    fn incremental_chain_cnf_matches_from_scratch_modulo_renaming() {
        // The tentpole soundness property, for bounds 2..=4: the shared
        // layer chain — each bound's skeleton link followed by one
        // definitional link per axiom — contains exactly the clauses a
        // from-scratch compilation of the same cumulative roots produces,
        // modulo variable renaming. Every cone is Tseitin-encoded exactly
        // once per sweep, nothing more and nothing less.
        let m = Tso::new();
        let mut alg = litsynth_models::SymAlg::new();
        let mut chain: Option<CompiledCircuit> = None;
        let mut cumulative_roots: Vec<Bit> = Vec::new();
        for bound in 2..=4usize {
            let cfg = SynthConfig::new(bound);
            let st = SymbolicTest::build(&mut alg, &m, &cfg);
            let candidates: Vec<Bit> = st.kind.iter().flatten().copied().collect();
            let roots: Vec<Bit> = st
                .wellformed
                .iter()
                .chain(&st.observables)
                .chain(&candidates)
                .copied()
                .collect();
            let skeleton = match &chain {
                None => CompiledCircuit::compile_tagged(&alg.circuit, roots.iter().copied(), true),
                Some(prev) => {
                    CompiledCircuit::extend(prev, &alg.circuit, roots.iter().copied(), true)
                }
            };
            cumulative_roots.extend(&roots);
            let scratch = CompiledCircuit::compile(&alg.circuit, cumulative_roots.iter().copied());
            assert!(
                skeleton.same_cnf_modulo_renaming(&scratch),
                "skeleton chain diverged from scratch at bound {bound}"
            );
            let asserts: Vec<Vec<Bit>> = m
                .axioms()
                .iter()
                .map(|&ax| minimality_asserts_opts(&mut alg, &m, &st, ax, cfg.orphan_unconstrained))
                .collect();
            let mut full = skeleton;
            for ax_asserts in &asserts {
                full = CompiledCircuit::extend_definitional(
                    &full,
                    &alg.circuit,
                    ax_asserts.iter().copied(),
                    true,
                );
            }
            cumulative_roots.extend(asserts.iter().flatten());
            let scratch = CompiledCircuit::compile(&alg.circuit, cumulative_roots.iter().copied());
            assert!(
                full.same_cnf_modulo_renaming(&scratch),
                "definitions link diverged from scratch at bound {bound}"
            );
            chain = Some(full);
        }
    }

    #[test]
    fn union_up_to_is_byte_identical_across_incremental_and_vault_modes() {
        // Tentpole acceptance: layered sweep compilation and the
        // cross-query clause vault may only change how fast the suite is
        // found, never the suite itself, at any thread count or cube split.
        let m = Tso::new();
        let run = |incremental: bool, vault: bool, threads: usize, cube_bits: usize| {
            let u = synthesize_union_up_to(&m, 2..=3, |n| {
                SynthConfig::new(n)
                    .with_threads(threads)
                    .with_cube_bits(cube_bits)
                    .with_incremental(incremental)
                    .with_vault(vault)
            });
            suite_bytes(&u)
        };
        let baseline = run(false, false, 1, 0);
        for (incremental, vault, threads, cube_bits) in [
            (true, false, 1, 0),
            (true, true, 1, 0),
            (false, true, 1, 0),
            (true, true, 2, 1),
            (true, true, 4, 2),
        ] {
            assert_eq!(
                run(incremental, vault, threads, cube_bits),
                baseline,
                "incremental={incremental} vault={vault} \
                 threads={threads} cube_bits={cube_bits}"
            );
        }
    }

    #[test]
    fn union_up_to_is_byte_identical_with_lazy_on_and_off() {
        // Lazy definitional propagation — and the mechanisms layered on
        // it: shelve-and-replay of dormant-cone imports and the two-level
        // decision domain — may only change how much work the solvers do,
        // never the suite. Activation only adds constraints the full
        // formula already contains, a shelved import only prunes, and the
        // domain only reorders decisions (DESIGN §3b), so the suite is
        // byte-identical across the whole {lazy} × {shelve} × {domain} ×
        // {vault} knob matrix at any thread count or cube split.
        let m = Tso::new();
        let run = |lazy: bool,
                   shelve: bool,
                   domain: bool,
                   vault: bool,
                   threads: usize,
                   cube_bits: usize| {
            let u = synthesize_union_up_to(&m, 2..=3, |n| {
                SynthConfig::new(n)
                    .with_threads(threads)
                    .with_cube_bits(cube_bits)
                    .with_lazy(lazy)
                    .with_shelve(shelve)
                    .with_domain(domain)
                    .with_vault(vault)
                    .with_cross_check(true)
            });
            suite_bytes(&u)
        };
        let baseline = run(false, false, false, false, 1, 0);
        for (lazy, shelve, domain, vault, threads, cube_bits) in [
            // the original lazy legs (defaults now carry shelve+domain on)
            (true, true, true, true, 1, 0),
            (true, true, true, true, 2, 1),
            (true, true, true, true, 4, 2),
            (false, true, true, true, 2, 1),
            // each new knob isolated, vault on and off
            (true, false, true, true, 1, 0),
            (true, true, false, true, 1, 0),
            (true, false, false, true, 2, 1),
            (true, true, true, false, 2, 1),
            (true, false, true, false, 1, 0),
            (true, true, false, false, 1, 0),
            // domain without lazy (eager attach, cone-scoped branching)
            (false, true, true, false, 1, 0),
        ] {
            assert_eq!(
                run(lazy, shelve, domain, vault, threads, cube_bits),
                baseline,
                "lazy={lazy} shelve={shelve} domain={domain} vault={vault} \
                 threads={threads} cube_bits={cube_bits}"
            );
        }
    }

    #[test]
    fn union_up_to_is_byte_identical_across_sat_core_toggles() {
        // The SAT-core modernization matrix: level-0 inprocessing only
        // removes satisfied/subsumed clauses and false literals, tiered
        // retention only discards learnt clauses, and the clause arena is
        // pure storage — all only-prune or storage-only, so the suite is
        // byte-identical across {inprocess} × {tiered} crossed with the
        // existing {shelve} × {domain} × {vault} legs at any thread count
        // or cube split (DESIGN §3c).
        let m = Tso::new();
        let run = |inprocess: bool,
                   tiered: bool,
                   shelve: bool,
                   domain: bool,
                   vault: bool,
                   threads: usize,
                   cube_bits: usize| {
            let u = synthesize_union_up_to(&m, 2..=3, |n| {
                SynthConfig::new(n)
                    .with_threads(threads)
                    .with_cube_bits(cube_bits)
                    .with_inprocess(inprocess)
                    .with_tiered(tiered)
                    .with_shelve(shelve)
                    .with_domain(domain)
                    .with_vault(vault)
                    .with_cross_check(true)
            });
            suite_bytes(&u)
        };
        // Everything off, sequential: the legacy core.
        let baseline = run(false, false, false, false, false, 1, 0);
        for (inprocess, tiered, shelve, domain, vault, threads, cube_bits) in [
            // each new knob isolated on the sequential path
            (true, false, false, false, false, 1, 0),
            (false, true, false, false, false, 1, 0),
            // both on (the default core), sequential and parallel
            (true, true, false, false, false, 1, 0),
            (true, true, true, true, true, 1, 0),
            (true, true, true, true, true, 4, 2),
            // modern core against individual portfolio knobs
            (true, true, false, true, true, 2, 1),
            (true, true, true, false, true, 2, 1),
            (true, true, true, true, false, 2, 1),
            // legacy core under the full portfolio stack
            (false, false, true, true, true, 4, 2),
        ] {
            assert_eq!(
                run(inprocess, tiered, shelve, domain, vault, threads, cube_bits),
                baseline,
                "inprocess={inprocess} tiered={tiered} shelve={shelve} \
                 domain={domain} vault={vault} threads={threads} cube_bits={cube_bits}"
            );
        }
    }

    #[test]
    fn sweep_reports_inprocessing_counters_when_enabled() {
        // The new counters must roll all the way up: with the default
        // config (inprocessing on) a sweep records purged clauses, and
        // with the knob off every inprocessing counter is exactly zero.
        let m = Tso::new();
        let (_, s_on) = synthesize_union_up_to_with_stats(&m, 2..=3, SynthConfig::new);
        assert!(
            s_on.simplify_removed > 0,
            "inprocessing enabled but nothing purged across a sweep"
        );
        let (_, s_off) = synthesize_union_up_to_with_stats(&m, 2..=3, |n| {
            SynthConfig::new(n).with_inprocess(false)
        });
        assert_eq!(s_off.simplify_removed, 0);
        assert_eq!(s_off.subsumed, 0);
        assert_eq!(s_off.strengthened, 0);
    }

    #[test]
    fn lazy_attach_reduces_sweep_propagations() {
        // The tentpole perf claim, in miniature: on a sequential
        // incremental sweep, leaving sibling axioms' definitional cones
        // dormant must strictly reduce total unit propagations while
        // finding the identical suite.
        let m = Tso::new();
        let run = |lazy: bool| {
            synthesize_union_up_to_with_stats(&m, 2..=3, |n| {
                SynthConfig::new(n).with_lazy(lazy).with_vault(false)
            })
        };
        let (u_lazy, s_lazy) = run(true);
        let (u_eager, s_eager) = run(false);
        assert_eq!(suite_bytes(&u_lazy), suite_bytes(&u_eager));
        assert!(s_lazy.propagations > 0, "counters must be recorded");
        assert!(s_lazy.decisions > 0, "counters must be recorded");
        assert!(
            s_lazy.propagations < s_eager.propagations,
            "lazy {} !< eager {}",
            s_lazy.propagations,
            s_eager.propagations
        );
    }

    #[test]
    fn sweep_reports_domain_decisions_when_enabled() {
        // A silently disabled domain must be visible: with the default
        // config (incremental + domain on) the local-level decision
        // counter is non-zero and bounded by total decisions; with the
        // knob off it is exactly zero.
        let m = Tso::new();
        let (_, s_on) = synthesize_union_up_to_with_stats(&m, 2..=3, SynthConfig::new);
        assert!(
            s_on.domain_decisions > 0,
            "domain enabled but no local decisions recorded"
        );
        assert!(s_on.domain_decisions <= s_on.decisions);
        let (_, s_off) = synthesize_union_up_to_with_stats(&m, 2..=3, |n| {
            SynthConfig::new(n).with_domain(false)
        });
        assert_eq!(s_off.domain_decisions, 0);
    }

    #[test]
    fn incremental_sweep_compiles_once_and_reuses_the_skeleton() {
        let m = Tso::new();
        let (u_inc, s_inc) = synthesize_union_up_to_with_stats(&m, 2..=3, SynthConfig::new);
        let (u_mono, s_mono) = synthesize_union_up_to_with_stats(&m, 2..=3, |n| {
            SynthConfig::new(n)
                .with_incremental(false)
                .with_vault(false)
        });
        assert_eq!(suite_bytes(&u_inc), suite_bytes(&u_mono));
        assert_eq!(s_inc.compilations, 1, "one full compile per sweep");
        // Two participating bounds → one definitional link per axiom on
        // the first and a skeleton link plus one definitional link per
        // axiom on the second, i.e. 2·A+1 extensions (the global counter
        // may only over-count, from tests running concurrently in this
        // binary).
        let expected = 2 * m.axioms().len() as u64 + 1;
        assert!(s_inc.extensions >= expected, "{}", s_inc.extensions);
        assert!(s_inc.reused_clauses > 0, "extensions must reuse clauses");
        assert_eq!(
            s_mono.compilations as usize,
            2 * m.axioms().len(),
            "monolithic mode compiles once per query"
        );
        assert_eq!(s_mono.vault, VaultStats::default());
    }

    #[test]
    fn cube_bits_clamp_to_the_selector_count() {
        // 2 events × 3 TSO shapes = 6 selector bits; asking for 40 must
        // clamp, not allocate 2^40 cubes. (Engagement heuristic off: the
        // clamp is what's tested, not the small-bound downgrade.)
        let cfg = SynthConfig::new(2)
            .with_cube_bits(40)
            .with_adaptive_engage(false);
        let r = synthesize_axiom(&Tso::new(), "sc_per_loc", &cfg);
        assert_eq!(r.workers.len(), 1 << 6);
        assert_eq!(r.len(), 3);
    }

    // ----- resilience: journal resume, panic retry, degradation -----

    use crate::journal::Journal;
    use litsynth_sat::FaultPlan;

    fn temp_journal(tag: &str) -> (std::path::PathBuf, Arc<Journal>) {
        let dir =
            std::env::temp_dir().join(format!("litsynth-synth-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let j = Journal::open(&dir).expect("journal opens");
        (dir, j)
    }

    fn suite_bytes(tests: &CanonicalSuite) -> String {
        tests
            .iter()
            .map(|(k, (t, o))| format!("{k}|{}\n", serialize(t, o)))
            .collect()
    }

    #[test]
    fn journaled_query_is_replayed_byte_identically_without_solving() {
        let (dir, j) = temp_journal("axiom-resume");
        let cfg = SynthConfig::new(2).with_journal(Some(j));
        let first = synthesize_axiom(&Tso::new(), "sc_per_loc", &cfg);
        assert!(!first.from_journal);
        assert_eq!(first.compilations, 1);
        let second = synthesize_axiom(&Tso::new(), "sc_per_loc", &cfg);
        assert!(second.from_journal, "second run must hit the journal");
        assert_eq!(second.compilations, 0, "no solver work on a replay");
        assert_eq!(second.raw_instances, 0);
        assert_eq!(suite_bytes(&first.tests), suite_bytes(&second.tests));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_fingerprint_guards_against_config_drift() {
        // A journal entry recorded at one bound/config must not satisfy a
        // different query — but *parallelism* knobs don't re-run anything,
        // because suites are byte-identical across them by construction.
        let (dir, j) = temp_journal("fingerprint");
        let cfg = SynthConfig::new(2).with_journal(Some(j.clone()));
        synthesize_axiom(&Tso::new(), "sc_per_loc", &cfg);
        let other_bound = SynthConfig::new(3).with_journal(Some(j.clone()));
        assert!(
            !synthesize_axiom(&Tso::new(), "sc_per_loc", &other_bound).from_journal,
            "bound 3 must not reuse the bound-2 entry"
        );
        let more_threads = SynthConfig::new(2)
            .with_journal(Some(j))
            .with_threads(4)
            .with_cube_bits(2);
        assert!(
            synthesize_axiom(&Tso::new(), "sc_per_loc", &more_threads).from_journal,
            "parallelism knobs don't invalidate the journal"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn union_resume_skips_journaled_axioms_and_stays_byte_identical() {
        let (dir, j) = temp_journal("union-resume");
        let m = Tso::new();
        let clean = {
            let cfg = SynthConfig::new(2);
            let (p, u) = synthesize_union(&m, &cfg);
            (fingerprint(&p, &u), suite_bytes(&u))
        };
        let cfg = SynthConfig::new(2).with_journal(Some(j.clone()));
        let (p1, u1) = synthesize_union(&m, &cfg);
        assert!(p1.values().all(|r| !r.from_journal));
        assert_eq!(j.entries(), m.axioms().len(), "every axiom journaled");
        let (p2, u2) = synthesize_union(&m, &cfg);
        assert!(
            p2.values().all(|r| r.from_journal),
            "every axiom must be replayed on resume"
        );
        assert_eq!(clean.0, fingerprint(&p1, &u1));
        assert_eq!(clean.1, suite_bytes(&u2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn union_up_to_resumes_from_a_partially_filled_journal() {
        // Journal only *some* of the range's queries (as a kill mid-run
        // would), then resume: the final union must be byte-identical to
        // an uninterrupted run and the journaled bound must be skipped.
        let (dir, j) = temp_journal("upto-resume");
        let m = Tso::new();
        let clean = synthesize_union_up_to(&m, 2..=3, SynthConfig::new);
        // Pre-fill bound 2 only, as if the process died during bound 3.
        let cfg2 = SynthConfig::new(2).with_journal(Some(j.clone()));
        synthesize_union(&m, &cfg2);
        assert_eq!(j.entries(), m.axioms().len());
        let resumed = synthesize_union_up_to(&m, 2..=3, {
            let j = j.clone();
            move |n| SynthConfig::new(n).with_journal(Some(j.clone()))
        });
        assert_eq!(suite_bytes(&clean), suite_bytes(&resumed));
        assert_eq!(
            j.entries(),
            2 * m.axioms().len(),
            "the resumed run journals the remaining bound"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_panic_is_retried_and_the_suite_is_unchanged() {
        let clean = synthesize_axiom(&Tso::new(), "sc_per_loc", &SynthConfig::new(2));
        // Panic on the first attempt of cube 0, first restart; the retry
        // (attempt 1) doesn't match and completes.
        let plan = FaultPlan::parse("tso/sc_per_loc/2@0@0@0@panic").expect("plan parses");
        let cfg = SynthConfig::new(2).with_fault_plan(Some(Arc::new(plan)));
        let r = synthesize_axiom(&Tso::new(), "sc_per_loc", &cfg);
        assert_eq!(r.degraded, 0, "failures: {:?}", r.workers[0].failures);
        assert!(r.retries > 0, "the panicked attempt must be retried");
        assert!(!r.workers[0].failures.is_empty());
        assert_eq!(suite_bytes(&clean.tests), suite_bytes(&r.tests));
    }

    #[test]
    fn persistent_panic_degrades_without_poisoning_the_run() {
        // Panic on *every* attempt of cube 0: the query must still return,
        // marked degraded, with the other cubes' results intact.
        let plan = FaultPlan::parse("tso/sc_per_loc/2@0@*@0@panic").expect("plan parses");
        let cfg = SynthConfig::new(2)
            .with_cube_bits(1)
            .with_adaptive_engage(false)
            .with_fault_plan(Some(Arc::new(plan)));
        let r = synthesize_axiom(&Tso::new(), "sc_per_loc", &cfg);
        assert_eq!(r.degraded, 1);
        assert!(r.workers[0].degraded);
        assert_eq!(r.workers[0].failures.len(), cfg.max_attempts);
        assert!(!r.workers[1].degraded, "cube 1 must be unaffected");
        // And a degraded result is never journaled.
        let (dir, j) = temp_journal("degraded");
        let cfg = cfg.with_journal(Some(j.clone()));
        synthesize_axiom(&Tso::new(), "sc_per_loc", &cfg);
        assert_eq!(j.entries(), 0, "degraded queries must not checkpoint");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_interrupt_keeps_partial_work_and_retries_to_the_full_suite() {
        let clean = synthesize_axiom(&Tso::new(), "sc_per_loc", &SynthConfig::new(2));
        // Force a budget-style interrupt on attempt 0 at every restart;
        // attempt 1 runs uninterrupted.
        let plan = FaultPlan::parse("tso/sc_per_loc/2@*@0@*@interrupt").expect("plan parses");
        let cfg = SynthConfig::new(2).with_fault_plan(Some(Arc::new(plan)));
        let r = synthesize_axiom(&Tso::new(), "sc_per_loc", &cfg);
        assert_eq!(r.degraded, 0);
        assert!(r.retries > 0);
        assert_eq!(suite_bytes(&clean.tests), suite_bytes(&r.tests));

        // Interrupt *every* attempt: the result degrades to the partial
        // enumeration instead of hanging or panicking.
        let plan = FaultPlan::parse("tso/sc_per_loc/2@*@*@*@interrupt").expect("plan parses");
        let cfg = SynthConfig::new(2).with_fault_plan(Some(Arc::new(plan)));
        let r = synthesize_axiom(&Tso::new(), "sc_per_loc", &cfg);
        assert!(r.degraded > 0);
        assert!(r.workers.iter().all(|w| w.attempts == cfg.max_attempts));
    }

    #[test]
    fn budget_plumbing_with_default_knobs_leaves_the_suite_exact() {
        // All budget knobs at their defaults (0 = unlimited) must take the
        // unlimited path: no interrupts, no retries, the exact suite.
        // (Deterministic budget *trips* are covered by the injected
        // `interrupt` action above and by the solver-level budget tests —
        // real conflict/deadline limits at this bound would be timing- or
        // heuristic-dependent.)
        let r = synthesize_axiom(&Tso::new(), "sc_per_loc", &SynthConfig::new(2));
        assert_eq!(r.degraded, 0);
        assert_eq!(r.retries, 0);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn units_run_in_any_order_merge_to_the_direct_sweep() {
        // The shard layer's contract: run the planned units in *any* order
        // (here: reversed, the worst case for a completion-order merge),
        // merge by seq, and the union is byte-identical to a direct sweep.
        let m = Tso::new();
        let direct = synthesize_union_up_to(&m, 2..=3, SynthConfig::new);
        let plans = plan_units(&m, 2..=3, SynthConfig::new);
        assert_eq!(plans.len(), 2 * m.axioms().len());
        assert!(plans.iter().enumerate().all(|(i, p)| p.unit.seq == i));
        let mut suites: Vec<(usize, CanonicalSuite)> = plans
            .iter()
            .rev()
            .map(|p| (p.unit.seq, run_unit(&m, p).tests))
            .collect();
        suites.sort_by_key(|&(seq, _)| seq);
        let merged = merge_unit_suites(suites.iter().map(|(_, s)| s));
        assert_eq!(suite_bytes(&direct), suite_bytes(&merged));
    }

    #[test]
    fn adaptive_engagement_downgrades_small_bounds_to_one_worker() {
        // Below the engagement threshold the portfolio machinery is pure
        // overhead: the heuristic must collapse cube splitting to a single
        // worker, count the downgrade, and leave the suite untouched.
        let engaged = SynthConfig::new(2)
            .with_threads(2)
            .with_cube_bits(2)
            .with_adaptive_engage(false);
        let full = synthesize_axiom(&Tso::new(), "sc_per_loc", &engaged);
        assert_eq!(full.workers.len(), 4, "opt-out keeps all 2^2 cubes");

        let before = engage_downgrades();
        let auto = SynthConfig::new(2).with_threads(2).with_cube_bits(2);
        assert!(auto.adaptive_engage, "the heuristic is on by default");
        let small = synthesize_axiom(&Tso::new(), "sc_per_loc", &auto);
        assert_eq!(small.workers.len(), 1, "downgraded to a single worker");
        assert!(
            engage_downgrades() > before,
            "the downgrade counter must prove which path ran"
        );
        assert_eq!(suite_bytes(&full.tests), suite_bytes(&small.tests));

        // At or above the threshold the knobs are honored as given.
        let at = SynthConfig::new(3).with_cube_bits(1);
        let r = synthesize_axiom(&Tso::new(), "sc_per_loc", &at);
        assert_eq!(r.workers.len(), 2, "bound 3 engages the portfolio");
    }

    #[test]
    fn progress_sink_reports_every_query_and_flags_journal_replays() {
        use crate::symbolic::{ProgressEvent, ProgressSink};
        let (dir, j) = temp_journal("progress");
        let events: Arc<std::sync::Mutex<Vec<ProgressEvent>>> = Arc::default();
        let mk_cfg = {
            let (j, events) = (j.clone(), events.clone());
            move |n: usize| {
                let events = events.clone();
                SynthConfig::new(n)
                    .with_journal(Some(j.clone()))
                    .with_progress(Some(ProgressSink::new(move |e| {
                        events.lock().unwrap().push(e.clone())
                    })))
            }
        };
        let m = Tso::new();
        synthesize_union_up_to(&m, 2..=3, mk_cfg.clone());
        {
            let got = events.lock().unwrap();
            assert_eq!(got.len(), 2 * m.axioms().len(), "one event per query");
            assert!(got.iter().all(|e| !e.from_journal));
            // Not every query yields tests (rmw_atomicity/2 is empty), but
            // the sweep as a whole must.
            assert!(got.iter().any(|e| e.tests > 0));
            assert!(got.iter().any(|e| e.key == "tso/sc_per_loc/2"));
            assert!(got.iter().any(|e| e.key == "tso/causality/3"));
        }
        events.lock().unwrap().clear();
        synthesize_union_up_to(&m, 2..=3, mk_cfg);
        let got = events.lock().unwrap();
        assert_eq!(got.len(), 2 * m.axioms().len());
        assert!(
            got.iter().all(|e| e.from_journal),
            "replayed queries must be flagged as journal hits"
        );
        drop(got);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
