//! The symbolic litmus test: a bounded space of programs *and* executions
//! encoded as free circuit bits, with well-formedness constraints — the
//! analogue of Alloy's instance search over the paper's sig declarations.
//!
//! One symbolic test covers, for a fixed event count `n`:
//!
//! * every assignment of instruction shapes (the model's vocabulary of
//!   loads/stores/fences with their order annotations),
//! * every partition into threads (contiguous and first-use-canonical, a
//!   Kodkod-style symmetry-breaking choice that loses no tests up to
//!   isomorphism),
//! * every address assignment (first-use-canonical likewise),
//! * every dependency/RMW-pair placement the model's ISA admits, and
//! * every candidate execution (rf choice per read, coherence order per
//!   address, and — for SCC — the `sc` order over full fences).

// Event indices deliberately index several parallel per-event tables
// (`kind`, `thread`, `is_read`, …); iterator rewrites would obscure that.
#![allow(clippy::needless_range_loop)]

use litsynth_litmus::{Addr, DepKind, FenceKind, Instr, LitmusTest, MemOrder, Outcome, Scope};
use litsynth_models::{Ctx, MemoryModel, SymAlg};
use litsynth_relalg::{Bit, Circuit, Instance, Matrix1, Matrix2};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One per-query progress notification, emitted when a query completes
/// (enumerated or journal-replayed). The serving layer turns these into
/// streamed `PROGRESS` frames; any other consumer can log them.
#[derive(Clone, Debug)]
pub struct ProgressEvent {
    /// The query's journal key, e.g. `tso/sc_per_loc/3`.
    pub key: String,
    /// Canonical tests the query found.
    pub tests: usize,
    /// `true` when the query was replayed from the journal (zero solver
    /// work).
    pub from_journal: bool,
    /// Wall-clock time the query took.
    pub elapsed: std::time::Duration,
}

/// A shareable per-query progress callback ([`SynthConfig::progress`]).
/// Called from synthesis worker threads, so the closure must be cheap and
/// must not block on the synthesis path it is reporting on.
#[derive(Clone)]
pub struct ProgressSink(Arc<dyn Fn(&ProgressEvent) + Send + Sync>);

impl ProgressSink {
    /// Wraps a callback.
    pub fn new(f: impl Fn(&ProgressEvent) + Send + Sync + 'static) -> ProgressSink {
        ProgressSink(Arc::new(f))
    }

    /// Delivers one event.
    pub fn emit(&self, event: &ProgressEvent) {
        (self.0)(event)
    }
}

impl std::fmt::Debug for ProgressSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ProgressSink(..)")
    }
}

/// Bounds and options for one synthesis query.
#[derive(Clone, Debug)]
pub struct SynthConfig {
    /// Exact number of events (instructions) in the synthesized tests.
    pub events: usize,
    /// Maximum number of threads (default `min(events, 4)`).
    pub max_threads: usize,
    /// Maximum number of distinct addresses (default `min(events, 3)`).
    pub max_addrs: usize,
    /// Use the exact canonicalizer instead of the paper's hash-based one.
    pub exact_canon: bool,
    /// Leave RI-orphaned reads unconstrained (§4.3, the paper's choice).
    /// `false` snaps them to the initial value instead (ablation).
    pub orphan_unconstrained: bool,
    /// Stop after this many raw solver instances (safety cap; with cube
    /// splitting the cap applies to each cube's enumeration).
    pub max_instances: usize,
    /// Wall-clock budget for one enumeration worker, in milliseconds
    /// (0 = unlimited).
    pub time_budget_ms: u64,
    /// Worker threads for the parallel synthesis engine: `1` runs fully
    /// sequentially (byte-identical results either way), `0` uses all
    /// available cores.
    pub threads: usize,
    /// Split each (axiom, bound) query into `2^cube_bits` disjoint
    /// subqueries by pinning `cube_bits` instruction-kind selector bits as
    /// extra assumptions — intra-query parallelism for the large bounds.
    /// `0` disables splitting. Which bits are pinned is decided by
    /// [`SynthConfig::adaptive_cubes`].
    pub cube_bits: usize,
    /// Trade learnt clauses between the cube workers of a query through
    /// the portfolio exchange bus. Sharing only prunes search — suites are
    /// byte-identical either way.
    pub exchange: bool,
    /// Only learnt clauses with LBD ≤ this are published on the bus.
    pub exchange_max_lbd: u32,
    /// Only learnt clauses with ≤ this many literals are published.
    pub exchange_max_len: usize,
    /// Choose cube pin bits by VSIDS activity from a probing run instead
    /// of the first `cube_bits` selector slots.
    pub adaptive_cubes: bool,
    /// Conflict budget for the adaptive-cube probing run.
    pub probe_conflicts: u64,
    /// Compile sweeps incrementally: one circuit arena per sweep, the
    /// axiom-independent skeleton Tseitin-encoded exactly once per bound as
    /// a chain of shared CNF layers, and each (axiom, bound) query derived
    /// as a one-layer extension. Off, every query recompiles from scratch.
    /// Suites are byte-identical either way.
    pub incremental: bool,
    /// Reuse skeleton-pure learnt clauses across the queries of a sweep
    /// through the portfolio clause vault (requires [`SynthConfig::incremental`]
    /// to have any effect — the vault keys on skeleton-layer fingerprints).
    /// Imports only prune search; suites are byte-identical either way.
    pub vault: bool,
    /// Attach enumeration workers to sweep-shared compilations lazily:
    /// definitional CNF layers (one per axiom on the incremental chain)
    /// stay dormant — no watchers, no propagation — until the worker's
    /// own assumptions or blocking clauses reference them, so each query
    /// pays only for its own Tseitin cones. Activation only adds
    /// constraints the full formula already contains; suites are
    /// byte-identical either way. No effect without
    /// [`SynthConfig::incremental`] (scratch compilations carry no
    /// definitional layers).
    pub lazy: bool,
    /// Shelve (rather than drop) vault/exchange imports that mention a
    /// dormant cone on the lazy path, replaying them the moment the cone
    /// activates, so laziness never discards sound pruning. Imports only
    /// prune; suites are byte-identical either way. No effect without
    /// [`SynthConfig::lazy`].
    pub shelve: bool,
    /// Restrict each query's SAT decisions to its declared cone through
    /// the solver's two-level decision domain (local cone heap first,
    /// global VSIDS fallback once the cone is assigned). Only reorders
    /// decisions; suites are byte-identical either way. No effect without
    /// [`SynthConfig::incremental`] (a scratch compilation *is* its own
    /// cone).
    pub domain: bool,
    /// Run level-0 inprocessing on each worker solver's private clause
    /// database: purge satisfied clauses, strip false literals, subsume and
    /// strengthen new learnts. Inprocessing only removes redundant clauses
    /// and literals; suites are byte-identical either way.
    pub inprocess: bool,
    /// Retain learnt clauses in LBD tiers (core/mid/local) instead of the
    /// legacy single-activity reduction. Retention only discards learnt
    /// clauses; suites are byte-identical either way.
    pub tiered: bool,
    /// Total attempts per cube worker (including the first) before the
    /// query is marked degraded instead of aborting the run.
    pub max_attempts: usize,
    /// Backoff before retry `k` of a cube is `retry_backoff_ms << (k-1)`
    /// milliseconds.
    pub retry_backoff_ms: u64,
    /// Conflict budget per SAT solve during enumeration (`0` = unlimited).
    /// Escalates ×4 per retry attempt, so a deterministic budget
    /// exhaustion is not retried into the identical wall.
    pub solve_conflicts: u64,
    /// Propagation budget per SAT solve (`0` = unlimited); escalates like
    /// [`SynthConfig::solve_conflicts`].
    pub solve_propagations: u64,
    /// Wall-clock budget for one cube attempt, in milliseconds
    /// (`0` = unlimited). Unlike [`SynthConfig::time_budget_ms`] — which
    /// *truncates* the suite at a clean instance boundary — exceeding this
    /// budget interrupts the solve and triggers the retry/degrade ladder.
    pub solve_wall_ms: u64,
    /// Engage the per-query portfolio machinery (cube splitting, and with
    /// it the exchange bus and the cube-selection probe) adaptively by
    /// problem size: below [`SynthConfig::engage_below`] events the query
    /// auto-downgrades to the unsplit incremental path — at small bounds
    /// the machinery's overhead loses outright (0.58× measured), and the
    /// suite is byte-identical either way. The downgrade is counted
    /// process-wide (`crate::synth::engage_downgrades`), so which path ran
    /// is always provable.
    pub adaptive_engage: bool,
    /// Queries with fewer events than this downgrade when
    /// [`SynthConfig::adaptive_engage`] is on. The default (3) downgrades
    /// exactly the bound-2 queries, where the portfolio never pays off.
    pub engage_below: usize,
    /// Re-verify every synthesized test with the polynomial consistency
    /// checker (`litsynth_models::check`) after the suite is assembled:
    /// each emitted (test, outcome) must be forbidden under its axiom's
    /// claim. Purely a read-only assertion — it never changes the suite
    /// bytes or the fingerprint — so it is excluded from
    /// `config_fingerprint`. Off by default (release sweeps); CI turns it
    /// on. Panics on the first disagreement.
    pub cross_check: bool,
    /// Per-query progress callback; `None` (the default) reports nothing.
    pub progress: Option<ProgressSink>,
    /// Deterministic fault-injection plan (testing only). Defaults to the
    /// process-wide plan armed via `LITSYNTH_FAULT_PLAN`, if any.
    pub fault_plan: Option<std::sync::Arc<litsynth_sat::FaultPlan>>,
    /// Checkpoint journal for crash-safe resume; `None` disables
    /// journaling. Completed (axiom, bound) queries are recorded here and
    /// replayed byte-identically on the next run.
    pub journal: Option<std::sync::Arc<crate::journal::Journal>>,
}

impl SynthConfig {
    /// Default bounds for `events` instructions.
    pub fn new(events: usize) -> SynthConfig {
        SynthConfig {
            events,
            max_threads: events.min(4),
            max_addrs: events.min(3),
            exact_canon: true,
            orphan_unconstrained: true,
            max_instances: 1_000_000,
            time_budget_ms: 0,
            threads: 1,
            cube_bits: 0,
            exchange: true,
            exchange_max_lbd: 6,
            exchange_max_len: 30,
            adaptive_cubes: true,
            probe_conflicts: 500,
            incremental: true,
            vault: true,
            lazy: true,
            shelve: true,
            domain: true,
            inprocess: true,
            tiered: true,
            max_attempts: 3,
            retry_backoff_ms: 10,
            solve_conflicts: 0,
            solve_propagations: 0,
            solve_wall_ms: 0,
            adaptive_engage: true,
            engage_below: 3,
            cross_check: false,
            progress: None,
            fault_plan: litsynth_sat::FaultPlan::global(),
            journal: None,
        }
    }

    /// Enables or disables the adaptive engagement heuristic (builder
    /// style).
    pub fn with_adaptive_engage(mut self, engage: bool) -> SynthConfig {
        self.adaptive_engage = engage;
        self
    }

    /// Enables or disables the post-synthesis consistency cross-check
    /// (builder style). Read-only defense in depth: suites and fingerprints
    /// are identical either way.
    pub fn with_cross_check(mut self, cross_check: bool) -> SynthConfig {
        self.cross_check = cross_check;
        self
    }

    /// Sets the adaptive-engagement size threshold (builder style).
    pub fn with_engage_below(mut self, events: usize) -> SynthConfig {
        self.engage_below = events;
        self
    }

    /// Sets the per-query progress callback (builder style).
    pub fn with_progress(mut self, progress: Option<ProgressSink>) -> SynthConfig {
        self.progress = progress;
        self
    }

    /// Sets the worker-thread count (builder style).
    pub fn with_threads(mut self, threads: usize) -> SynthConfig {
        self.threads = threads;
        self
    }

    /// Sets the cube-splitting width (builder style).
    pub fn with_cube_bits(mut self, cube_bits: usize) -> SynthConfig {
        self.cube_bits = cube_bits;
        self
    }

    /// Enables or disables the learnt-clause exchange (builder style).
    pub fn with_exchange(mut self, exchange: bool) -> SynthConfig {
        self.exchange = exchange;
        self
    }

    /// Enables or disables adaptive cube selection (builder style).
    pub fn with_adaptive_cubes(mut self, adaptive: bool) -> SynthConfig {
        self.adaptive_cubes = adaptive;
        self
    }

    /// Enables or disables incremental sweep compilation (builder style).
    pub fn with_incremental(mut self, incremental: bool) -> SynthConfig {
        self.incremental = incremental;
        self
    }

    /// Enables or disables the cross-query clause vault (builder style).
    pub fn with_vault(mut self, vault: bool) -> SynthConfig {
        self.vault = vault;
        self
    }

    /// Enables or disables lazy definitional propagation (builder style).
    pub fn with_lazy(mut self, lazy: bool) -> SynthConfig {
        self.lazy = lazy;
        self
    }

    /// Enables or disables shelve-and-replay of imports over dormant
    /// cones (builder style).
    pub fn with_shelve(mut self, shelve: bool) -> SynthConfig {
        self.shelve = shelve;
        self
    }

    /// Enables or disables the two-level decision domain (builder style).
    pub fn with_domain(mut self, domain: bool) -> SynthConfig {
        self.domain = domain;
        self
    }

    /// Enables or disables level-0 inprocessing (builder style).
    pub fn with_inprocess(mut self, inprocess: bool) -> SynthConfig {
        self.inprocess = inprocess;
        self
    }

    /// Enables or disables tiered learnt retention (builder style).
    pub fn with_tiered(mut self, tiered: bool) -> SynthConfig {
        self.tiered = tiered;
        self
    }

    /// Sets the checkpoint journal (builder style).
    pub fn with_journal(
        mut self,
        journal: Option<std::sync::Arc<crate::journal::Journal>>,
    ) -> SynthConfig {
        self.journal = journal;
        self
    }

    /// Sets the fault-injection plan (builder style, testing only).
    pub fn with_fault_plan(
        mut self,
        plan: Option<std::sync::Arc<litsynth_sat::FaultPlan>>,
    ) -> SynthConfig {
        self.fault_plan = plan;
        self
    }
}

/// One instruction shape in the model's vocabulary.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Shape {
    /// A load with the given order.
    Load(MemOrder),
    /// A store with the given order.
    Store(MemOrder),
    /// A fence of the given kind.
    Fence(FenceKind),
}

impl Shape {
    fn is_load(self) -> bool {
        matches!(self, Shape::Load(_))
    }
    fn is_store(self) -> bool {
        matches!(self, Shape::Store(_))
    }
    fn is_mem(self) -> bool {
        !matches!(self, Shape::Fence(_))
    }
    fn to_instr(self, addr: Option<Addr>) -> Instr {
        match self {
            Shape::Load(order) => Instr::Load {
                addr: addr.expect("load has addr"),
                order,
                scope: Scope::System,
            },
            Shape::Store(order) => Instr::Store {
                addr: addr.expect("store has addr"),
                order,
                scope: Scope::System,
            },
            Shape::Fence(kind) => Instr::Fence {
                kind,
                scope: Scope::System,
            },
        }
    }
}

/// The model's instruction vocabulary (RMWs are load/store pairs linked by
/// an `rmw` edge, the paper's Figure 4 formalization).
pub fn vocabulary<M: MemoryModel>(model: &M) -> Vec<Shape> {
    let mut v = Vec::new();
    for &o in model.read_orders() {
        v.push(Shape::Load(o));
    }
    for &o in model.write_orders() {
        v.push(Shape::Store(o));
    }
    for &k in model.fence_kinds() {
        v.push(Shape::Fence(k));
    }
    v
}

/// The symbolic test: free bits plus the derived base context.
pub struct SymbolicTest {
    /// Event count.
    pub n: usize,
    /// Thread bound.
    pub t_max: usize,
    /// Address bound.
    pub a_max: usize,
    /// The instruction vocabulary.
    pub vocab: Vec<Shape>,
    /// `kind[e][v]`: event `e` has shape `vocab[v]` (one-hot).
    pub kind: Vec<Vec<Bit>>,
    /// `thread[e][t]` (one-hot, contiguous canonical form).
    pub thread: Vec<Vec<Bit>>,
    /// `addr[e][a]` (one-hot for memory events, empty row for fences).
    pub addr: Vec<Vec<Bit>>,
    /// Dependency matrices per kind.
    pub deps: BTreeMap<DepKind, Matrix2>,
    /// RMW pair bits (only cells `(e, e+1)` can be true).
    pub rmw: Matrix2,
    /// Whether the model supports RMW pairs at all.
    pub has_rmw: bool,
    /// The well-formedness constraints.
    pub wellformed: Vec<Bit>,
    /// The base (unperturbed) execution context.
    pub ctx: Ctx<SymAlg>,
    /// Bits that define the observable instance (static test + outcome):
    /// blocking these enumerates distinct tests.
    pub observables: Vec<Bit>,
}

impl SymbolicTest {
    /// Builds the symbolic test for `model` under `cfg`, adding all free
    /// bits and well-formedness constraints to `alg`'s circuit.
    pub fn build<M: MemoryModel>(alg: &mut SymAlg, model: &M, cfg: &SynthConfig) -> SymbolicTest {
        let n = cfg.events;
        let t_max = cfg.max_threads.min(n).max(1);
        let a_max = cfg.max_addrs.min(n).max(1);
        let vocab = vocabulary(model);
        let c = &mut alg.circuit;
        let mut wf: Vec<Bit> = Vec::new();

        // --- Free bits ---------------------------------------------------
        let kind: Vec<Vec<Bit>> = (0..n)
            .map(|e| {
                (0..vocab.len())
                    .map(|v| c.input(format!("kind[{e}][{v}]")))
                    .collect()
            })
            .collect();
        let thread: Vec<Vec<Bit>> = (0..n)
            .map(|e| {
                (0..t_max)
                    .map(|t| c.input(format!("thread[{e}][{t}]")))
                    .collect()
            })
            .collect();
        let addr: Vec<Vec<Bit>> = (0..n)
            .map(|e| {
                (0..a_max)
                    .map(|a| c.input(format!("addr[{e}][{a}]")))
                    .collect()
            })
            .collect();
        let mut rf = Matrix2::empty(n, n);
        let mut co = Matrix2::empty(n, n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    rf.set(i, j, c.input(format!("rf[{i},{j}]")));
                    co.set(i, j, c.input(format!("co[{i},{j}]")));
                }
            }
        }
        let mut deps: BTreeMap<DepKind, Matrix2> = BTreeMap::new();
        for &k in model.dep_kinds() {
            let mut m = Matrix2::empty(n, n);
            for i in 0..n {
                for j in (i + 1)..n {
                    m.set(i, j, c.input(format!("dep{k:?}[{i},{j}]")));
                }
            }
            deps.insert(k, m);
        }
        let has_rmw = !model.rmw_orders().is_empty() || model.uses_rmw_pairs();
        let mut rmw = Matrix2::empty(n, n);
        if has_rmw {
            for e in 0..n.saturating_sub(1) {
                rmw.set(e, e + 1, c.input(format!("rmw[{e}]")));
            }
        }
        let mut sc = Matrix2::empty(n, n);
        if model.uses_sc_order() {
            for i in 0..n {
                for j in 0..n {
                    if i != j {
                        sc.set(i, j, c.input(format!("sc[{i},{j}]")));
                    }
                }
            }
        }

        // --- Shape / kind constraints -------------------------------------
        for e in 0..n {
            wf.push(c.exactly_one(&kind[e]));
            wf.push(c.exactly_one(&thread[e]));
        }
        // Derived shape sets.
        let pick = |c: &mut Circuit, e: usize, f: &dyn Fn(Shape) -> bool| -> Bit {
            let bits: Vec<Bit> = vocab
                .iter()
                .enumerate()
                .filter(|(_, &s)| f(s))
                .map(|(v, _)| kind[e][v])
                .collect();
            c.or_many(bits)
        };
        let is_read: Vec<Bit> = (0..n).map(|e| pick(c, e, &|s| s.is_load())).collect();
        let is_write: Vec<Bit> = (0..n).map(|e| pick(c, e, &|s| s.is_store())).collect();
        let is_mem: Vec<Bit> = (0..n).map(|e| pick(c, e, &|s| s.is_mem())).collect();
        let is_fence: Vec<Bit> = (0..n).map(|e| pick(c, e, &|s| !s.is_mem())).collect();

        // --- Thread canonical form ----------------------------------------
        // Event 0 is in thread 0; each event's thread equals or is one past
        // the previous event's (contiguous, no gaps, nondecreasing).
        wf.push(thread[0][0]);
        for e in 1..n {
            for t in 0..t_max {
                let prev_same = thread[e - 1][t];
                let prev_one_less = if t > 0 {
                    thread[e - 1][t - 1]
                } else {
                    Circuit::FALSE
                };
                let ok = c.or(prev_same, prev_one_less);
                let imp = c.implies(thread[e][t], ok);
                wf.push(imp);
            }
        }
        let same_thread = |c: &mut Circuit, i: usize, j: usize| -> Bit {
            let terms: Vec<Bit> = (0..t_max)
                .map(|t| c.and(thread[i][t], thread[j][t]))
                .collect();
            c.or_many(terms)
        };

        // --- Address constraints ------------------------------------------
        for e in 0..n {
            let one = c.exactly_one(&addr[e]);
            let none = {
                let any = c.or_many(addr[e].iter().copied());
                any.not()
            };
            let mem_case = c.implies(is_mem[e], one);
            let fence_case = c.implies(is_fence[e], none);
            wf.push(mem_case);
            wf.push(fence_case);
            // First-use canonical addresses.
            for a in 1..a_max {
                let earlier: Vec<Bit> = (0..e).map(|e2| addr[e2][a - 1]).collect();
                let prior = c.or_many(earlier);
                let imp = c.implies(addr[e][a], prior);
                wf.push(imp);
            }
        }
        let same_addr = |c: &mut Circuit, i: usize, j: usize| -> Bit {
            let terms: Vec<Bit> = (0..a_max).map(|a| c.and(addr[i][a], addr[j][a])).collect();
            c.or_many(terms)
        };

        // --- Fences are never at a thread boundary (a boundary fence can
        // always be removed without changing behavior, §6.3). ---------------
        for e in 0..n {
            if e == 0 || e == n - 1 {
                wf.push(is_fence[e].not());
            } else {
                let before = same_thread(c, e - 1, e);
                let after = same_thread(c, e, e + 1);
                let interior = c.and(before, after);
                wf.push(c.implies(is_fence[e], interior));
            }
        }

        // --- Structural relations ------------------------------------------
        let mut po = Matrix2::empty(n, n);
        let mut loc = Matrix2::empty(n, n);
        let mut int = Matrix2::empty(n, n);
        let mut ext = Matrix2::empty(n, n);
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let st = same_thread(c, i, j);
                if i < j {
                    po.set(i, j, st);
                }
                let sa = same_addr(c, i, j);
                loc.set(i, j, sa);
                int.set(i, j, st);
                ext.set(i, j, st.not());
            }
        }
        // loc is reflexive on memory events.
        for e in 0..n {
            loc.set(e, e, is_mem[e]);
        }

        // --- rf constraints -------------------------------------------------
        for w in 0..n {
            for r in 0..n {
                if w == r {
                    continue;
                }
                let edge = rf.get(w, r);
                let sa = loc.get(w, r);
                let w_ok = c.and(is_write[w], is_read[r]);
                let ok = c.and(w_ok, sa);
                wf.push(c.implies(edge, ok));
            }
        }
        for r in 0..n {
            let col: Vec<Bit> = (0..n).filter(|&w| w != r).map(|w| rf.get(w, r)).collect();
            wf.push(c.at_most_one(&col));
        }

        // --- co constraints: strict total order per address -----------------
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let edge = co.get(i, j);
                let ww = c.and(is_write[i], is_write[j]);
                let ok = c.and(ww, loc.get(i, j));
                wf.push(c.implies(edge, ok));
                if i < j {
                    let both = c.and(co.get(i, j), co.get(j, i));
                    wf.push(both.not());
                    let writes_same = c.and(is_write[i], is_write[j]);
                    let writes_same = c.and(writes_same, loc.get(i, j));
                    let either = c.or(co.get(i, j), co.get(j, i));
                    wf.push(c.implies(writes_same, either));
                }
            }
        }
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    if i != j && j != k && i != k {
                        let two = c.and(co.get(i, j), co.get(j, k));
                        wf.push(c.implies(two, co.get(i, k)));
                    }
                }
            }
        }

        // --- dependency constraints -----------------------------------------
        for (&dk, m) in &deps {
            for i in 0..n {
                for j in (i + 1)..n {
                    let edge = m.get(i, j);
                    let src_read = is_read[i];
                    let st = int.get(i, j); // same thread
                    let tgt = match dk {
                        DepKind::Data => is_write[j],
                        _ => is_mem[j],
                    };
                    let ok = c.and(src_read, st);
                    let ok = c.and(ok, tgt);
                    wf.push(c.implies(edge, ok));
                }
            }
        }
        // At most one dependency kind per ordered pair.
        let kinds: Vec<DepKind> = deps.keys().copied().collect();
        for i in 0..n {
            for j in (i + 1)..n {
                for (x, &k1) in kinds.iter().enumerate() {
                    for &k2 in &kinds[x + 1..] {
                        let both = c.and(deps[&k1].get(i, j), deps[&k2].get(i, j));
                        wf.push(both.not());
                    }
                }
            }
        }

        // --- RMW pair constraints --------------------------------------------
        if has_rmw {
            for e in 0..n.saturating_sub(1) {
                let edge = rmw.get(e, e + 1);
                let shape_ok = c.and(is_read[e], is_write[e + 1]);
                let st = int.get(e, e + 1);
                let sa = loc.get(e, e + 1);
                let ok = c.and(shape_ok, st);
                let ok = c.and(ok, sa);
                wf.push(c.implies(edge, ok));
                if e > 0 {
                    let overlap = c.and(rmw.get(e - 1, e), rmw.get(e, e + 1));
                    wf.push(overlap.not());
                }
            }
        }

        // --- sc constraints (SCC): a total order over full fences, with the
        // paper's ≤2-FenceSC bound that makes Figure 19's reversal complete.
        if model.uses_sc_order() {
            let full: Vec<Bit> = (0..n)
                .map(|e| {
                    let bits: Vec<Bit> = vocab
                        .iter()
                        .enumerate()
                        .filter(|(_, &s)| s == Shape::Fence(FenceKind::Full))
                        .map(|(v, _)| kind[e][v])
                        .collect();
                    c.or_many(bits)
                })
                .collect();
            for i in 0..n {
                for j in 0..n {
                    if i == j {
                        continue;
                    }
                    let edge = sc.get(i, j);
                    let ok = c.and(full[i], full[j]);
                    wf.push(c.implies(edge, ok));
                    if i < j {
                        let both = c.and(sc.get(i, j), sc.get(j, i));
                        wf.push(both.not());
                        let pair = c.and(full[i], full[j]);
                        let either = c.or(sc.get(i, j), sc.get(j, i));
                        wf.push(c.implies(pair, either));
                    }
                }
            }
            for i in 0..n {
                for j in (i + 1)..n {
                    for k in (j + 1)..n {
                        let two = c.and(full[i], full[j]);
                        let three = c.and(two, full[k]);
                        wf.push(three.not());
                    }
                }
            }
        }

        // --- Assemble the base context ---------------------------------------
        let mk_set = |c: &mut Circuit, f: &dyn Fn(Shape) -> bool| -> Matrix1 {
            Matrix1::from_bits(
                (0..n)
                    .map(|e| {
                        let bits: Vec<Bit> = vocab
                            .iter()
                            .enumerate()
                            .filter(|(_, &s)| f(s))
                            .map(|(v, _)| kind[e][v])
                            .collect();
                        c.or_many(bits)
                    })
                    .collect(),
            )
        };
        let read_set = Matrix1::from_bits(is_read.clone());
        let write_set = Matrix1::from_bits(is_write.clone());
        let fence_of = |k: FenceKind| move |s: Shape| s == Shape::Fence(k);
        let order_read = |os: &'static [MemOrder]| move |s: Shape| matches!(s, Shape::Load(o) if os.contains(&o));
        let order_write = |os: &'static [MemOrder]| move |s: Shape| matches!(s, Shape::Store(o) if os.contains(&o));
        let acq_orders: &'static [MemOrder] =
            &[MemOrder::Acquire, MemOrder::AcqRel, MemOrder::SeqCst];
        let rel_orders: &'static [MemOrder] =
            &[MemOrder::Release, MemOrder::AcqRel, MemOrder::SeqCst];
        let sc_orders: &'static [MemOrder] = &[MemOrder::SeqCst];
        let cons_orders: &'static [MemOrder] = &[MemOrder::Consume];

        let fence_full = mk_set(c, &fence_of(FenceKind::Full));
        let fence_lw = mk_set(c, &fence_of(FenceKind::Lightweight));
        let fence_acqrel = mk_set(c, &fence_of(FenceKind::AcqRel));
        let fence_acq = mk_set(c, &fence_of(FenceKind::Acquire));
        let fence_rel = mk_set(c, &fence_of(FenceKind::Release));
        let acquire = mk_set(c, &order_read(acq_orders));
        let release = mk_set(c, &order_write(rel_orders));
        let seqcst_r = mk_set(c, &order_read(sc_orders));
        let seqcst_w = mk_set(c, &order_write(sc_orders));
        let seqcst = seqcst_r.union(c, &seqcst_w);
        let consume = mk_set(c, &order_read(cons_orders));

        let empty = Matrix2::empty(n, n);
        let ctx = Ctx::<SymAlg> {
            n,
            read: read_set,
            write: write_set,
            fence_full,
            fence_lw,
            fence_acqrel,
            fence_acq,
            fence_rel,
            acquire,
            release,
            seqcst,
            consume,
            po,
            loc,
            rf: rf.clone(),
            co: co.clone(),
            addr_dep: deps
                .get(&DepKind::Addr)
                .cloned()
                .unwrap_or_else(|| empty.clone()),
            data_dep: deps
                .get(&DepKind::Data)
                .cloned()
                .unwrap_or_else(|| empty.clone()),
            ctrl_dep: deps
                .get(&DepKind::Ctrl)
                .cloned()
                .unwrap_or_else(|| empty.clone()),
            ctrlisync_dep: deps
                .get(&DepKind::CtrlIsync)
                .cloned()
                .unwrap_or_else(|| empty.clone()),
            rmw: rmw.clone(),
            sc,
            int,
            ext,
            orphan: Matrix1::empty(n),
        };

        // --- Observables -------------------------------------------------------
        let mut observables: Vec<Bit> = Vec::new();
        for e in 0..n {
            observables.extend(kind[e].iter().copied());
            observables.extend(thread[e].iter().copied());
            observables.extend(addr[e].iter().copied());
        }
        for m in deps.values() {
            for i in 0..n {
                for j in (i + 1)..n {
                    observables.push(m.get(i, j));
                }
            }
        }
        if has_rmw {
            for e in 0..n.saturating_sub(1) {
                observables.push(rmw.get(e, e + 1));
            }
        }
        for w in 0..n {
            for r in 0..n {
                if w != r {
                    observables.push(rf.get(w, r));
                }
            }
        }
        // Final-write bits: a write with no coherence successor.
        for w in 0..n {
            let succs: Vec<Bit> = (0..n).filter(|&j| j != w).map(|j| co.get(w, j)).collect();
            let any = c.or_many(succs);
            let fin = c.and(is_write[w], any.not());
            observables.push(fin);
        }

        SymbolicTest {
            n,
            t_max,
            a_max,
            vocab,
            kind,
            thread,
            addr,
            deps,
            rmw,
            has_rmw,
            wellformed: wf,
            ctx,
            observables,
        }
    }

    /// Decodes a solver instance into a concrete test and (complete)
    /// outcome.
    pub fn extract(&self, circuit: &Circuit, inst: &Instance) -> (LitmusTest, Outcome) {
        let n = self.n;
        let ev = |b: Bit| inst.eval(circuit, b);
        // Threads are contiguous by construction: read each event's thread.
        let mut tids = Vec::with_capacity(n);
        for e in 0..n {
            let t = (0..self.t_max)
                .find(|&t| ev(self.thread[e][t]))
                .expect("exactly-one thread");
            tids.push(t);
        }
        let mut threads: Vec<Vec<Instr>> =
            vec![Vec::new(); tids.iter().max().map_or(0, |&m| m + 1)];
        for e in 0..n {
            let v = (0..self.vocab.len())
                .find(|&v| ev(self.kind[e][v]))
                .expect("exactly-one kind");
            let shape = self.vocab[v];
            let a = (0..self.a_max)
                .find(|&a| ev(self.addr[e][a]))
                .map(|a| Addr(a as u8));
            threads[tids[e]].push(shape.to_instr(a));
        }
        let mut test = LitmusTest::new("synth", threads);
        // Deps: events are laid out in gid order already.
        for (&k, m) in &self.deps {
            for i in 0..n {
                for j in (i + 1)..n {
                    if ev(m.get(i, j)) {
                        let tid = test.thread_of(i);
                        debug_assert_eq!(tid, test.thread_of(j));
                        let (fi, fj) = (test.index_of(i), test.index_of(j));
                        test = test.with_dep(tid, fi, fj, k);
                    }
                }
            }
        }
        if self.has_rmw {
            for e in 0..n.saturating_sub(1) {
                if ev(self.rmw.get(e, e + 1)) {
                    let (tid, idx) = (test.thread_of(e), test.index_of(e));
                    test = test.with_rmw_pair(tid, idx);
                }
            }
        }
        // Outcome: rf per read, final write per address.
        let mut rf_map: BTreeMap<usize, Option<usize>> = BTreeMap::new();
        for &r in &test.reads() {
            let mut src = None;
            for w in 0..n {
                if w != r && ev(self.ctx.rf.get(w, r)) {
                    src = Some(w);
                    break;
                }
            }
            rf_map.insert(r, src);
        }
        let mut finals: BTreeMap<Addr, usize> = BTreeMap::new();
        for a in test.addresses() {
            let ws = test.writes_to(a);
            if ws.is_empty() {
                continue;
            }
            let fin = ws
                .iter()
                .copied()
                .find(|&w| ws.iter().all(|&j| j == w || !ev(self.ctx.co.get(w, j))))
                .expect("some write is coherence-maximal");
            finals.insert(a, fin);
        }
        (test, Outcome { rf: rf_map, finals })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use litsynth_models::{Sc, Tso};
    use litsynth_relalg::Finder;

    #[test]
    fn vocabulary_matches_model() {
        let v = vocabulary(&Tso::new());
        // Relaxed loads, relaxed stores, mfence.
        assert_eq!(v.len(), 3);
        assert!(v.contains(&Shape::Fence(FenceKind::Full)));
    }

    #[test]
    fn wellformed_instances_extract_to_valid_tests() {
        let mut alg = SymAlg::new();
        let cfg = SynthConfig::new(3);
        let st = SymbolicTest::build(&mut alg, &Sc::new(), &cfg);
        let circuit = alg.into_circuit();
        let mut finder = Finder::new(&circuit);
        let asserts = st.wellformed.clone();
        let mut seen = 0;
        while let Some(inst) = finder.next_instance(&circuit, &asserts) {
            let (test, outcome) = st.extract(&circuit, &inst);
            assert_eq!(test.num_events(), 3);
            // The extracted outcome is realizable by a candidate execution.
            let ok = litsynth_litmus::Execution::enumerate(&test)
                .iter()
                .any(|e| outcome.matches(&e.outcome()));
            assert!(
                ok,
                "unrealizable extraction: {test} {}",
                outcome.display(&test)
            );
            finder.block(&circuit, &inst, &st.observables);
            seen += 1;
            if seen > 200 {
                break;
            }
        }
        assert!(
            seen > 10,
            "the 3-event SC space is non-trivial (saw {seen})"
        );
    }

    #[test]
    fn no_boundary_fences_are_generated() {
        let mut alg = SymAlg::new();
        let cfg = SynthConfig::new(3);
        let st = SymbolicTest::build(&mut alg, &Tso::new(), &cfg);
        let circuit = alg.into_circuit();
        let mut finder = Finder::new(&circuit);
        let mut seen = 0;
        while let Some(inst) = finder.next_instance(&circuit, &st.wellformed) {
            let (test, _) = st.extract(&circuit, &inst);
            for t in test.threads() {
                if !t.is_empty() {
                    assert!(!t[0].is_fence(), "{test}");
                    assert!(!t[t.len() - 1].is_fence(), "{test}");
                }
            }
            finder.block(&circuit, &inst, &st.observables);
            seen += 1;
            if seen > 100 {
                break;
            }
        }
        assert!(seen > 0);
    }
}
