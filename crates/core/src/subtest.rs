//! Subtest containment (paper §6.1, Table 4): a non-minimal test "contains
//! inside of it" a minimal one when some sequence of instruction
//! relaxations rewrites the former's program into the latter's.
//!
//! Containment is decided on *programs* (canonical up to thread and address
//! renaming): Table 4's point is that every non-minimal Owens test embeds a
//! synthesized minimal test, so running the minimal one covers the pattern.

use crate::relax::{applications, apply};
use litsynth_litmus::{canonical_key_exact, LitmusTest, Outcome};
use litsynth_models::MemoryModel;
use std::collections::{HashSet, VecDeque};

/// Canonical program key: the test alone, outcome ignored.
pub fn program_key(test: &LitmusTest) -> String {
    canonical_key_exact(test, &Outcome::empty())
}

/// `true` iff `inner`'s program is reachable from `outer`'s by a (possibly
/// empty) sequence of relaxation applications admitted by `model`.
pub fn contains_subtest<M: MemoryModel>(model: &M, outer: &LitmusTest, inner: &LitmusTest) -> bool {
    let target = program_key(inner);
    let target_events = inner.num_events();
    let mut seen: HashSet<String> = HashSet::new();
    let mut queue: VecDeque<LitmusTest> = VecDeque::new();
    let start_key = program_key(outer);
    if start_key == target {
        return true;
    }
    seen.insert(start_key);
    queue.push_back(outer.clone());
    while let Some(t) = queue.pop_front() {
        if t.num_events() < target_events {
            continue;
        }
        for app in applications(model, &t) {
            let (t2, _) = apply(&t, &Outcome::empty(), app);
            if t2.num_events() < target_events {
                continue;
            }
            let key = program_key(&t2);
            if key == target {
                return true;
            }
            if seen.insert(key) {
                queue.push_back(t2);
            }
        }
    }
    false
}

/// For a non-minimal `outer`, finds all suite members it contains (the
/// parenthesized column of Table 4).
pub fn covering_subtests<'s, M: MemoryModel>(
    model: &M,
    outer: &LitmusTest,
    suite: impl IntoIterator<Item = &'s (LitmusTest, Outcome)>,
) -> Vec<&'s (LitmusTest, Outcome)> {
    suite
        .into_iter()
        .filter(|(inner, _)| inner.num_events() <= outer.num_events())
        .filter(|(inner, _)| contains_subtest(model, outer, inner))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use litsynth_litmus::suites::classics;
    use litsynth_models::Tso;

    #[test]
    fn colb_contains_corw_figure_10() {
        let (colb, _) = classics::colb();
        let (corw, _) = classics::corw();
        assert!(contains_subtest(&Tso::new(), &colb, &corw));
    }

    #[test]
    fn sb_fences_contains_sb() {
        let (outer, _) = classics::sb_fences();
        let (inner, _) = classics::sb();
        assert!(contains_subtest(&Tso::new(), &outer, &inner));
    }

    #[test]
    fn containment_is_reflexive_and_respects_size() {
        let (mp, _) = classics::mp();
        assert!(contains_subtest(&Tso::new(), &mp, &mp));
        let (sb6, _) = classics::sb_fences();
        let (mp4, _) = classics::mp();
        // SB+fences does not contain MP (no relaxation turns stores into
        // the MP read pattern).
        assert!(!contains_subtest(&Tso::new(), &sb6, &mp4));
    }

    #[test]
    fn iriw_contained_in_wider_iriw_like_test() {
        let (iriw, _) = classics::iriw();
        // n3-style: IRIW plus an extra location in thread 0 and reader.
        let n3 = litsynth_litmus::LitmusTest::new(
            "n3ish",
            vec![
                vec![
                    litsynth_litmus::Instr::store(0),
                    litsynth_litmus::Instr::store(2),
                ],
                vec![litsynth_litmus::Instr::store(1)],
                vec![
                    litsynth_litmus::Instr::load(2),
                    litsynth_litmus::Instr::load(0),
                    litsynth_litmus::Instr::load(1),
                ],
                vec![
                    litsynth_litmus::Instr::load(1),
                    litsynth_litmus::Instr::load(0),
                ],
            ],
        );
        assert!(contains_subtest(&Tso::new(), &n3, &iriw));
    }
}
