//! The exact minimality criterion (paper Definition 1), decided by
//! explicit enumeration.
//!
//! This is the *proper* exists-forall semantics of Figure 5b: the outcome
//! must be forbidden (no execution satisfying the target axiom produces
//! it), and under **every** applicable instruction relaxation **some**
//! execution of the relaxed test, valid under the *full* model, must
//! produce the projected outcome. The SAT-based synthesis instead uses the
//! Figure 5c single-execution approximation; comparing the two quantifies
//! the false negatives the paper discusses in §4.2/§6.3.

use crate::relax::{applications, apply};
use litsynth_litmus::{LitmusTest, Outcome};
use litsynth_models::{oracle, MemoryModel};

/// Why a test failed the minimality criterion.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MinimalityVerdict {
    /// The test satisfies the criterion for the given axiom.
    Minimal,
    /// The outcome is already observable under the target axiom — there is
    /// nothing to test.
    NotForbidden,
    /// Some relaxation fails to expose the outcome (the test is
    /// over-synchronized); the failing application is reported.
    OverSynchronized(String),
}

impl MinimalityVerdict {
    /// `true` for [`MinimalityVerdict::Minimal`].
    pub fn is_minimal(&self) -> bool {
        matches!(self, MinimalityVerdict::Minimal)
    }
}

/// Decides the exact minimality criterion of `(test, outcome)` with respect
/// to `axiom` of `model`.
pub fn check_minimal<M: MemoryModel>(
    model: &M,
    axiom: &str,
    test: &LitmusTest,
    outcome: &Outcome,
) -> MinimalityVerdict {
    if oracle::observable_axiom(model, axiom, test, outcome) {
        return MinimalityVerdict::NotForbidden;
    }
    for app in applications(model, test) {
        let (relaxed, projected) = apply(test, outcome, app);
        if !oracle::observable(model, &relaxed, &projected) {
            return MinimalityVerdict::OverSynchronized(app.describe());
        }
    }
    MinimalityVerdict::Minimal
}

/// `true` iff the test satisfies the criterion for *some* axiom of the
/// model (membership in the per-model union suite, §5.2).
pub fn minimal_for_some_axiom<M: MemoryModel>(
    model: &M,
    test: &LitmusTest,
    outcome: &Outcome,
) -> bool {
    model
        .axioms()
        .iter()
        .any(|ax| check_minimal(model, ax, test, outcome).is_minimal())
}

#[cfg(test)]
mod tests {
    use super::*;
    use litsynth_litmus::suites::classics;
    use litsynth_models::{Scc, Tso};

    #[test]
    fn mp_is_minimal_for_tso_causality() {
        let (t, o) = classics::mp();
        assert!(check_minimal(&Tso::new(), "causality", &t, &o).is_minimal());
    }

    #[test]
    fn corw_is_minimal_for_sc_per_loc() {
        // The paper's Figure 7 walkthrough: every RI application exposes
        // part of the outcome.
        let (t, o) = classics::corw();
        assert!(check_minimal(&Tso::new(), "sc_per_loc", &t, &o).is_minimal());
    }

    #[test]
    fn colb_is_not_minimal() {
        // Figure 10: n5/CoLB fails the criterion (RI on a load leaves a
        // still-forbidden residue) — it contains CoRW as a subtest.
        let (t, o) = classics::colb();
        let v = check_minimal(&Tso::new(), "sc_per_loc", &t, &o);
        assert!(matches!(v, MinimalityVerdict::OverSynchronized(_)), "{v:?}");
        assert!(!minimal_for_some_axiom(&Tso::new(), &t, &o));
    }

    #[test]
    fn sb_is_not_forbidden_under_tso() {
        let (t, o) = classics::sb();
        for ax in Tso::new().axioms() {
            assert_eq!(
                check_minimal(&Tso::new(), ax, &t, &o),
                MinimalityVerdict::NotForbidden
            );
        }
    }

    #[test]
    fn fig1_mp_minimal_under_scc_but_fig2_is_not() {
        let scc = Scc::new();
        // Figure 1's MP (one release, one acquire) is minimally
        // synchronized for SCC's causality axiom…
        let (t, o) = classics::mp_rel_acq();
        assert!(check_minimal(&scc, "causality", &t, &o).is_minimal());
        // …while Figure 2's over-synchronized flavor is not: demoting the
        // extra release (or acquire) changes nothing.
        let (t, o) = classics::mp_rel2_acq2();
        let v = check_minimal(&scc, "causality", &t, &o);
        assert!(matches!(v, MinimalityVerdict::OverSynchronized(_)), "{v:?}");
    }

    #[test]
    fn rmw_st_is_minimal_for_tso_atomicity() {
        let (t, o) = classics::rmw_st();
        assert!(check_minimal(&Tso::new(), "rmw_atomicity", &t, &o).is_minimal());
    }
}
