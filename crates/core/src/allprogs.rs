//! Counting the space of all litmus-test programs (Figure 13a's "All
//! Progs" line): the exponential blow-up the minimality criterion prunes.
//!
//! The count is exact for programs with *ordered* threads, canonical
//! addresses (first-use labelling), and the model's instruction
//! vocabulary; it is computed by dynamic programming, not enumeration, so
//! it scales to any bound.

use crate::symbolic::{vocabulary, Shape};
use litsynth_models::MemoryModel;

/// Number of well-formed programs of exactly `events` instructions over
/// `model`'s vocabulary, with at most `max_addrs` distinct addresses.
///
/// Threads are ordered (every composition of `events` into non-empty
/// segments counts once); addresses are canonical (first use of the k-th
/// address is labelled k), which undercounts nothing and overcounts
/// nothing.
pub fn count_programs<M: MemoryModel>(model: &M, events: usize, max_addrs: usize) -> u128 {
    let vocab = vocabulary(model);
    let mem_shapes = vocab
        .iter()
        .filter(|s| !matches!(s, Shape::Fence(_)))
        .count() as u128;
    let fence_shapes = vocab.len() as u128 - mem_shapes;
    if events == 0 {
        return 0;
    }
    // f[a] = #ways to choose shapes+addresses for the events so far with
    // exactly `a` addresses used.
    let mut f = vec![0u128; max_addrs + 1];
    f[0] = 1;
    for _ in 0..events {
        let mut next = vec![0u128; max_addrs + 1];
        for (a, &ways) in f.iter().enumerate() {
            if ways == 0 {
                continue;
            }
            // A fence: no address.
            next[a] += ways * fence_shapes;
            // A memory access reusing one of the `a` addresses.
            next[a] += ways * mem_shapes * a as u128;
            // A memory access introducing a fresh address.
            if a < max_addrs {
                next[a + 1] += ways * mem_shapes;
            }
        }
        f = next;
    }
    let shape_addr: u128 = f.iter().sum();
    // Thread structure: any composition of `events` into non-empty ordered
    // segments — 2^(events-1) break patterns.
    shape_addr * (1u128 << (events - 1))
}

/// Like [`count_programs`] but also counting the candidate outcomes each
/// program admits is intractable in closed form; instead this reports the
/// program count multiplied by a lower bound of 1 outcome — i.e. it *is*
/// the program count. Exposed under the figure's name for the harness.
pub fn all_progs_line<M: MemoryModel>(model: &M, events: usize, max_addrs: usize) -> u128 {
    count_programs(model, events, max_addrs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use litsynth_models::{Sc, Tso};

    #[test]
    fn single_event_counts() {
        // SC: 1 load + 1 store shape, 1 address each, 1 thread.
        assert_eq!(count_programs(&Sc::new(), 1, 3), 2);
        // TSO adds mfence, but a 1-instruction program may be a fence.
        assert_eq!(count_programs(&Tso::new(), 1, 3), 3);
    }

    #[test]
    fn two_event_counts_by_hand() {
        // SC, 2 events, ≤2 addrs: shapes 2×2=4; addresses: both events
        // memory: (a=1): second reuses → 1 way; (a=2): fresh → 1 way ⇒ 2
        // address patterns; total shape·addr = 4·2 = 8; threads: 2
        // compositions ⇒ 16.
        assert_eq!(count_programs(&Sc::new(), 2, 2), 16);
    }

    #[test]
    fn growth_is_exponential() {
        let m = Tso::new();
        let mut prev = 1u128;
        for n in 1..=8 {
            let c = count_programs(&m, n, 3);
            assert!(c > prev, "n={n}");
            prev = c;
        }
        // Order-of-magnitude check against the paper's figure: thousands by
        // n=4, millions well before n=8.
        assert!(count_programs(&m, 4, 3) > 1_000);
        assert!(count_programs(&m, 8, 3) > 1_000_000);
    }

    #[test]
    fn zero_events_is_zero() {
        assert_eq!(count_programs(&Sc::new(), 0, 3), 0);
    }
}
