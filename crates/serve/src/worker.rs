//! The remote worker: connects to a coordinator, leases units, runs
//! them, and ships the result bytes back.
//!
//! A worker session is `HELLO` → `LEASE lease_ms=N` (the coordinator's
//! terms) → a stream of `UNIT` assignments. For each assignment the
//! worker rebuilds the query config from the frame's suite-relevant
//! fields, recomputes the config fingerprint, and **refuses skew**: an
//! assignment whose fingerprint this worker's code cannot reproduce is
//! `NACK`ed, never run — a mixed-version fleet degrades loudly instead
//! of corrupting suites. While a unit runs, the worker renews its lease
//! (`LEASE grant=G`) at a quarter of the lease period so long units
//! survive; a worker that stops renewing (death, stall, partition) is
//! reclaimed by the coordinator.
//!
//! Lost coordinators are retried with exponential backoff plus
//! deterministic jitter. Fault injection is explicit config
//! ([`WorkerFault`], keyed by unit), covering every failure mode the
//! coordinator must survive: death mid-unit, a frame torn mid-write, a
//! stall past the lease, duplicate results, fingerprint skew, and
//! payload corruption.

use crate::models::{self, ModelOp};
use crate::protocol::{read_frame, seal_body, write_frame, Nack, UnitAssign, UnitDone};
use litsynth_core::{
    config_fingerprint, encode_unit_result, run_unit, SynthConfig, SynthResult, UnitPlan,
};
use litsynth_litmus::SplitMix64;
use litsynth_models::MemoryModel;
use litsynth_portfolio::WorkUnit;
use std::io::{self, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// What an injected worker fault does when its unit arrives.
#[derive(Clone, Debug)]
pub enum FaultKind {
    /// Die mid-unit: close the connection without replying and end the
    /// worker (the process-kill failure mode).
    ExitMidUnit,
    /// Tear the `UNITDONE` mid-frame: write half the bytes, then close.
    DropMidFrame,
    /// Stall past the lease: suppress renewals and sleep this many
    /// milliseconds before running (the reply arrives under a reclaimed
    /// grant and must be rejected as stale).
    StallMs(u64),
    /// Send the (valid) `UNITDONE` twice.
    DuplicateDone,
    /// Encode the payload under a flipped config fingerprint.
    WrongFingerprint,
    /// Flip a payload byte after sealing (checksum-trailer mismatch).
    CorruptBody,
}

/// One-shot fault injection: fires the first time a unit with this key
/// is assigned, then the worker behaves normally.
#[derive(Clone, Debug)]
pub struct WorkerFault {
    /// The unit key to fire on, e.g. `tso/causality/3`.
    pub key: String,
    /// What to do.
    pub kind: FaultKind,
}

/// Worker knobs. Explicit fields, never environment variables.
#[derive(Clone, Debug)]
pub struct WorkerConfig {
    /// Solver threads per unit (byte-identity-preserving).
    pub unit_threads: usize,
    /// Cube-split bits per unit (byte-identity-preserving).
    pub cube_bits: usize,
    /// First reconnect delay after a lost coordinator.
    pub connect_backoff_ms: u64,
    /// Reconnect delay cap.
    pub connect_backoff_max_ms: u64,
    /// Seed for the deterministic reconnect jitter.
    pub jitter_seed: u64,
    /// Injected fault, if any (tests only).
    pub fault: Option<WorkerFault>,
}

impl Default for WorkerConfig {
    fn default() -> WorkerConfig {
        WorkerConfig {
            unit_threads: 1,
            cube_bits: 0,
            connect_backoff_ms: 50,
            connect_backoff_max_ms: 2_000,
            jitter_seed: 1,
            fault: None,
        }
    }
}

/// Runs a worker against `addr` until `stop` is set or a fatal injected
/// fault ends it. Lost connections reconnect with exponential backoff
/// plus jitter; a coordinator that is simply down keeps being retried.
pub fn run_worker(addr: &str, cfg: &WorkerConfig, stop: &AtomicBool) {
    let mut rng = SplitMix64::new(cfg.jitter_seed);
    let mut backoff = cfg.connect_backoff_ms.max(1);
    let mut fault = cfg.fault.clone();
    while !stop.load(Ordering::SeqCst) {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                let alive = session(stream, cfg, &mut fault, stop);
                backoff = cfg.connect_backoff_ms.max(1);
                if !alive {
                    return; // injected death: stay dead, like a real kill
                }
            }
            Err(_) => {
                backoff = (backoff * 2).min(cfg.connect_backoff_max_ms.max(1));
            }
        }
        let jitter = rng.next_u64() % (backoff / 2 + 1);
        let mut slept = 0;
        while slept < backoff + jitter {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
            slept += 10;
        }
    }
}

/// One registered session. Returns `false` when an injected
/// [`FaultKind::ExitMidUnit`] killed the worker for good.
fn session(
    stream: TcpStream,
    cfg: &WorkerConfig,
    fault: &mut Option<WorkerFault>,
    stop: &AtomicBool,
) -> bool {
    let _ = stream.set_nodelay(true);
    if stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .is_err()
    {
        return true;
    }
    let Ok(mut writer) = stream.try_clone() else {
        return true;
    };
    let mut reader = BufReader::new(stream);
    if write_frame(&mut writer, "HELLO", "").is_err() {
        return true;
    }
    // The coordinator's first frame is the lease terms.
    let lease_ms = loop {
        match read_frame(&mut reader) {
            Ok(Some((verb, body))) if verb == "LEASE" => {
                let Some(ms) = body
                    .lines()
                    .find_map(|l| l.strip_prefix("lease_ms="))
                    .and_then(|v| v.parse::<u64>().ok())
                else {
                    return true;
                };
                break ms.max(1);
            }
            Ok(Some(_)) | Ok(None) => return true,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if stop.load(Ordering::SeqCst) {
                    return true;
                }
            }
            Err(_) => return true,
        }
    };
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(Some(f)) => f,
            Ok(None) => return true,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if stop.load(Ordering::SeqCst) {
                    return true;
                }
                continue;
            }
            Err(_) => return true,
        };
        match frame.0.as_str() {
            "UNIT" => {
                let Ok(assign) = UnitAssign::from_body(&frame.1) else {
                    return true;
                };
                let fired = match fault {
                    Some(f) if f.key == assign.key => fault.take(),
                    _ => None,
                };
                if !run_assignment(&mut writer, &assign, cfg, fired, lease_ms, stop) {
                    return false;
                }
            }
            "ERR" => {} // advisory (e.g. a rejected result); keep serving
            "PING" => {
                let _ = write_frame(&mut writer, "PONG", "");
            }
            _ => return true,
        }
    }
}

/// Rebuilds and runs one assignment, renewing the lease while it
/// computes, and ships the sealed result (or a `NACK`). Returns `false`
/// only for [`FaultKind::ExitMidUnit`].
fn run_assignment(
    writer: &mut TcpStream,
    assign: &UnitAssign,
    cfg: &WorkerConfig,
    fault: Option<WorkerFault>,
    lease_ms: u64,
    stop: &AtomicBool,
) -> bool {
    let kind = fault.map(|f| f.kind);
    if matches!(kind, Some(FaultKind::ExitMidUnit)) {
        return false;
    }
    if let Some(FaultKind::StallMs(ms)) = kind {
        // No renewals while stalled: the coordinator's lease must expire.
        let mut slept = 0;
        while slept < ms {
            if stop.load(Ordering::SeqCst) {
                return true;
            }
            std::thread::sleep(Duration::from_millis(20));
            slept += 20;
        }
    }
    let outcome = run_with_renewals(
        writer,
        assign,
        cfg,
        lease_ms,
        !matches!(kind, Some(FaultKind::StallMs(_))),
    );
    let result = match outcome {
        Ok(r) => r,
        Err(reason) => {
            let nack = Nack {
                key: assign.key.clone(),
                grant: assign.grant,
                reason,
            };
            let _ = write_frame(writer, "NACK", &nack.to_body());
            return true;
        }
    };
    let fingerprint = match kind {
        Some(FaultKind::WrongFingerprint) => assign.fingerprint ^ 1,
        _ => assign.fingerprint,
    };
    let done = UnitDone {
        key: assign.key.clone(),
        grant: assign.grant,
        payload: encode_unit_result(fingerprint, &result),
    };
    let mut sealed = seal_body(&done.to_body());
    if matches!(kind, Some(FaultKind::CorruptBody)) {
        // Flip one payload byte; the `%%` test separator is always there.
        sealed = sealed.replacen("%%", "%$", 1);
    }
    if matches!(kind, Some(FaultKind::DropMidFrame)) {
        // Tear the frame mid-body: header plus half the payload, then
        // hang up. The coordinator must reclaim, never merge.
        let torn = format!("UNITDONE {}\n{}", sealed.len(), &sealed[..sealed.len() / 2]);
        let _ = writer.write_all(torn.as_bytes());
        let _ = writer.flush();
        let _ = writer.shutdown(std::net::Shutdown::Both);
        return true;
    }
    let _ = write_frame(writer, "UNITDONE", &sealed);
    if matches!(kind, Some(FaultKind::DuplicateDone)) {
        let _ = write_frame(writer, "UNITDONE", &sealed);
    }
    true
}

struct RunAssign<'a> {
    assign: &'a UnitAssign,
    cfg: &'a WorkerConfig,
}

impl ModelOp for RunAssign<'_> {
    type Out = Result<SynthResult, String>;
    fn run<M: MemoryModel + Sync>(self, model: &M) -> Self::Out {
        let a = self.assign;
        let axiom = models::resolve_axiom(model, &a.axiom)?;
        let mut sc = SynthConfig::new(a.bound)
            .with_threads(self.cfg.unit_threads)
            .with_cube_bits(self.cfg.cube_bits);
        sc.max_threads = a.max_threads;
        sc.max_addrs = a.max_addrs;
        sc.exact_canon = a.exact_canon;
        sc.orphan_unconstrained = a.orphan_unconstrained;
        sc.max_instances = a.max_instances;
        sc.time_budget_ms = a.time_budget_ms;
        let local = config_fingerprint(model.name(), axiom, &sc);
        if local != a.fingerprint {
            return Err(format!(
                "config fingerprint mismatch: assigned {:016x}, this worker computes {local:016x}",
                a.fingerprint
            ));
        }
        let plan = UnitPlan {
            unit: WorkUnit {
                key: a.key.as_str().into(),
                fingerprint: a.fingerprint,
                seq: a.seq,
            },
            axiom,
            bound: a.bound,
            cfg: sc,
        };
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_unit(model, &plan)))
            .map_err(|_| format!("unit {} panicked on this worker", a.key))
    }
}

/// Runs the unit on a helper thread while this thread renews the lease
/// every quarter-period, so a long unit on a healthy worker is never
/// spuriously reclaimed.
fn run_with_renewals(
    writer: &mut TcpStream,
    assign: &UnitAssign,
    cfg: &WorkerConfig,
    lease_ms: u64,
    renew: bool,
) -> Result<SynthResult, String> {
    let renew_every = Duration::from_millis((lease_ms / 4).max(1));
    let (tx, rx) = mpsc::channel();
    std::thread::scope(|scope| {
        scope.spawn(move || {
            let _ = tx.send(
                models::dispatch(&assign.model, RunAssign { assign, cfg }).unwrap_or_else(Err),
            );
        });
        loop {
            match rx.recv_timeout(renew_every) {
                Ok(out) => return out,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if renew {
                        let _ = write_frame(writer, "LEASE", &format!("grant={}\n", assign.grant));
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return Err(format!("unit {} runner vanished", assign.key));
                }
            }
        }
    })
}

/// An in-process worker for tests: a thread running [`run_worker`] with
/// a stop flag. [`WorkerHandle::stop`] joins it.
pub struct WorkerHandle {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl WorkerHandle {
    /// Spawns a worker thread against `addr`.
    pub fn spawn(addr: String, cfg: WorkerConfig) -> WorkerHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let stop = stop.clone();
            std::thread::spawn(move || run_worker(&addr, &cfg, &stop))
        };
        WorkerHandle {
            stop,
            thread: Some(thread),
        }
    }

    /// Signals the worker to stop and joins it.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for WorkerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}
