//! Model-name dispatch for the serving layer.
//!
//! [`litsynth_models::MemoryModel`] is not object-safe (its methods are
//! generic over the relational algebra), so the server can't hold a
//! `dyn MemoryModel`. Instead a request's model name is dispatched
//! through [`ModelOp`] — a visitor whose generic `run` is instantiated
//! once per concrete model. Relaxed variants are first-class names:
//! `armv7` is Power with the ARMv7 relaxation set applied, exactly as in
//! the `experiments` harness.

use litsynth_models::{MemoryModel, Power, Sc, Scc, Tso, C11};

/// Every model name [`dispatch`] accepts, in a stable order.
pub const MODELS: &[&str] = &["sc", "tso", "power", "armv7", "scc", "c11"];

/// A computation generic over the concrete model type.
pub trait ModelOp {
    /// The computation's result.
    type Out;
    /// Runs against the dispatched model.
    fn run<M: MemoryModel + Sync>(self, model: &M) -> Self::Out;
}

/// Runs `op` against the model named `name` (lower-case, see [`MODELS`]).
pub fn dispatch<Op: ModelOp>(name: &str, op: Op) -> Result<Op::Out, String> {
    match name {
        "sc" => Ok(op.run(&Sc::new())),
        "tso" => Ok(op.run(&Tso::new())),
        "power" => Ok(op.run(&Power::new())),
        "armv7" => Ok(op.run(&Power::armv7())),
        "scc" => Ok(op.run(&Scc::new())),
        "c11" => Ok(op.run(&C11::new())),
        other => Err(format!(
            "unknown model {other:?} (expected one of {})",
            MODELS.join(", ")
        )),
    }
}

/// Resolves an axiom name against a model to the model's own `&'static`
/// spelling (unit plans key on the static string). Errors name the
/// model's axiom list, mirroring the server's request validation.
pub fn resolve_axiom<M: MemoryModel>(model: &M, axiom: &str) -> Result<&'static str, String> {
    model
        .axioms()
        .iter()
        .copied()
        .find(|a| *a == axiom)
        .ok_or_else(|| {
            format!(
                "model {} has no axiom {axiom:?} (axioms: {})",
                model.name(),
                model.axioms().join(", ")
            )
        })
}

/// The axioms of the model named `name`, in model order.
pub fn axioms_of(name: &str) -> Result<&'static [&'static str], String> {
    struct Axioms;
    impl ModelOp for Axioms {
        type Out = &'static [&'static str];
        fn run<M: MemoryModel + Sync>(self, model: &M) -> Self::Out {
            model.axioms()
        }
    }
    dispatch(name, Axioms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_model_dispatches_and_unknown_names_error() {
        for &name in MODELS {
            assert!(
                !axioms_of(name).expect("listed model dispatches").is_empty(),
                "{name} must expose axioms"
            );
        }
        assert!(axioms_of("TSO").is_err(), "names are lower-case");
        assert!(axioms_of("riscv").is_err());
    }

    #[test]
    fn armv7_is_the_relaxed_power_variant() {
        struct Name;
        impl ModelOp for Name {
            type Out = &'static str;
            fn run<M: MemoryModel + Sync>(self, model: &M) -> Self::Out {
                model.name()
            }
        }
        assert_eq!(dispatch("armv7", Name).unwrap(), "ARMv7");
        assert_eq!(dispatch("power", Name).unwrap(), "Power");
    }
}
