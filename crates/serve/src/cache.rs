//! The in-memory suite cache: fingerprint-keyed, byte-capped, LRU.
//!
//! The key is the *suite fingerprint* — an FNV-1a fold over the query's
//! (key, config-fingerprint) unit list (see [`suite_fingerprint`]) — so
//! two requests hit the same entry iff they would run the exact same
//! units under the exact same semantic config. Parallelism knobs are
//! excluded by construction because
//! [`litsynth_core::config_fingerprint`] excludes them (suites are
//! byte-identical across thread/cube/shard counts).
//!
//! Eviction is least-recently-used by total body bytes. The cache is the
//! fast tier; the journal (size-capped on disk, see
//! [`litsynth_core::Journal`]) is the persistent tier below it — a server
//! restart empties this cache but a journaled query still replays with
//! zero compilations.

use litsynth_portfolio::WorkUnit;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// FNV-1a, the same constants the journal's fingerprints use.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The cache key for a whole query: a versioned FNV-1a fold over the
/// query's units in merge order. Each unit contributes its journal key
/// and its [`litsynth_core::config_fingerprint`], so any semantic change
/// to any unit changes the suite fingerprint.
pub fn suite_fingerprint(
    units: impl IntoIterator<Item = impl std::borrow::Borrow<WorkUnit>>,
) -> u64 {
    let mut text = String::from("litsynth-serve v1\n");
    for u in units {
        let u = u.borrow();
        text.push_str(&format!("{} {:016x}\n", u.key, u.fingerprint));
    }
    fnv1a(text.as_bytes())
}

struct Entry {
    body: Arc<String>,
    tests: usize,
    last_used: u64,
}

struct Inner {
    map: HashMap<u64, Entry>,
    bytes: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Monotone counters plus current occupancy, snapshotted together.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted to stay under the byte cap.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Body bytes currently resident.
    pub bytes: usize,
}

/// A byte-capped LRU map from suite fingerprint to encoded suite body.
pub struct SuiteCache {
    inner: Mutex<Inner>,
    cap_bytes: usize,
}

impl SuiteCache {
    /// A cache holding at most `cap_bytes` of suite bodies (minimum 1 —
    /// a zero cap would evict every entry the moment it lands).
    pub fn new(cap_bytes: usize) -> SuiteCache {
        SuiteCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                bytes: 0,
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            cap_bytes: cap_bytes.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Looks `fingerprint` up, counting a hit or miss and refreshing
    /// recency on a hit. Returns the body and its test count.
    pub fn get(&self, fingerprint: u64) -> Option<(Arc<String>, usize)> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&fingerprint) {
            Some(e) => {
                e.last_used = tick;
                let out = (e.body.clone(), e.tests);
                inner.hits += 1;
                Some(out)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) an entry, then evicts least-recently-used
    /// entries until the cache fits the cap again. The entry just
    /// inserted is never evicted — a single over-cap suite still serves
    /// its own warm repeats.
    pub fn put(&self, fingerprint: u64, body: Arc<String>, tests: usize) {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.map.remove(&fingerprint) {
            inner.bytes -= old.body.len();
        }
        inner.bytes += body.len();
        inner.map.insert(
            fingerprint,
            Entry {
                body,
                tests,
                last_used: tick,
            },
        );
        while inner.bytes > self.cap_bytes && inner.map.len() > 1 {
            let oldest = inner
                .map
                .iter()
                .filter(|(&fp, _)| fp != fingerprint)
                .min_by_key(|(&fp, e)| (e.last_used, fp))
                .map(|(&fp, _)| fp);
            let Some(fp) = oldest else { break };
            let gone = inner.map.remove(&fp).expect("picked from the map");
            inner.bytes -= gone.body.len();
            inner.evictions += 1;
        }
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        let inner = self.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner.map.len(),
            bytes: inner.bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(text: &str) -> Arc<String> {
        Arc::new(text.to_string())
    }

    #[test]
    fn hits_refresh_recency_and_misses_are_counted() {
        let c = SuiteCache::new(1024);
        assert!(c.get(1).is_none());
        c.put(1, body("one"), 1);
        let (b, tests) = c.get(1).expect("warm hit");
        assert_eq!((&**b, tests), ("one", 1));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn eviction_is_lru_by_bytes_and_spares_the_newest_entry() {
        // Cap fits two 4-byte bodies; a third insert evicts the least
        // recently *used* (entry 2 — entry 1 was refreshed by a get).
        let c = SuiteCache::new(8);
        c.put(1, body("aaaa"), 1);
        c.put(2, body("bbbb"), 1);
        assert!(c.get(1).is_some());
        c.put(3, body("cccc"), 1);
        assert!(c.get(2).is_none(), "LRU entry evicted");
        assert!(c.get(1).is_some(), "recently used entry survives");
        assert!(c.get(3).is_some(), "newest entry survives");
        assert_eq!(c.stats().evictions, 1);

        // A single body larger than the whole cap still serves warm.
        let c = SuiteCache::new(2);
        c.put(9, body("oversized"), 3);
        assert!(c.get(9).is_some());
    }

    #[test]
    fn suite_fingerprint_distinguishes_units_and_configs() {
        let unit = |key: &str, fp: u64| WorkUnit {
            key: key.into(),
            fingerprint: fp,
            seq: 0,
        };
        let a = suite_fingerprint([unit("tso/sc_per_loc/2", 7)]);
        assert_eq!(a, suite_fingerprint([unit("tso/sc_per_loc/2", 7)]));
        assert_ne!(a, suite_fingerprint([unit("tso/sc_per_loc/3", 7)]));
        assert_ne!(a, suite_fingerprint([unit("tso/sc_per_loc/2", 8)]));
        assert_ne!(
            a,
            suite_fingerprint([unit("tso/sc_per_loc/2", 7), unit("tso/causality/2", 7)])
        );
    }
}
