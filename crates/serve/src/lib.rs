//! # litsynth-serve
//!
//! A distributed synthesis service over the litsynth engine: a std-only
//! TCP server (the workspace is dependency-free by policy) answering
//! `(model, relaxations, bound)` suite queries.
//!
//! * [`protocol`] — length-prefixed text frames (`QUERY`, `SUITE`,
//!   `PROGRESS`, `ERR`, `PING`/`PONG`, `STATS`, `CHECK`/`VERDICT`).
//! * [`cache`] — the warm tier: a byte-capped LRU keyed by
//!   [`cache::suite_fingerprint`], an FNV fold over the query's
//!   (key, [`litsynth_core::config_fingerprint`]) unit list.
//! * [`shard`] — the cold path: (axiom, bound) units fanned over a
//!   work-stealing, crash-supervised shard pool and merged in seq order.
//! * [`remote`] — the multi-host tier: units leased to remote workers
//!   under deadlines, reclaimed on expiry, validated on return, and
//!   degraded to local compute when the fleet thins out.
//! * [`worker`] — the other end of the lease: `HELLO`, run, renew, ship
//!   the result bytes back (or `NACK` a config it can't reproduce).
//! * [`server`] / [`client`] — the two ends of the wire.
//! * [`models`] — model-name dispatch (the `MemoryModel` trait is not
//!   object-safe, so names are matched to concrete types).
//!
//! The load-bearing invariant is **byte identity**: whatever the cache
//! state, shard count, steal pattern, or crash timing, a served suite is
//! byte-for-byte the suite a direct
//! [`litsynth_core::synthesize_union_up_to`] call returns. Warm queries
//! additionally do *zero* solver work — the loopback tests assert both,
//! on the served counters.

pub mod cache;
pub mod client;
pub mod models;
pub mod protocol;
pub mod remote;
pub mod server;
pub mod shard;
pub mod worker;

pub use cache::{suite_fingerprint, CacheStats, SuiteCache};
pub use client::{Client, ClientConfig, ClientError, ServedSuite};
pub use protocol::{CheckReply, CheckRequest, Progress, QueryReply, QueryRequest};
pub use remote::{BatchStats, RemotePool, RemoteStats};
pub use server::{ServeConfig, Server, ServerStats};
pub use shard::{
    plan_query, run_distributed, run_sharded, sharded_union, ShardConfig, ShardFault, ShardRunStats,
};
pub use worker::{run_worker, FaultKind, WorkerConfig, WorkerFault, WorkerHandle};
