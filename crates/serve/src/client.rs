//! A blocking client for the serve protocol, hardened against the
//! network: read/write timeouts (a stalled server surfaces as a typed
//! [`ClientError::Timeout`], never a hang), connect retry with
//! exponential backoff plus deterministic jitter, and an FNV integrity
//! check on every `SUITE` body (a bit flipped in transit is rejected
//! with the expected/actual digests, never parsed).

use crate::protocol::{
    open_body, read_frame, write_frame, CheckReply, CheckRequest, Progress, QueryReply,
    QueryRequest,
};
use litsynth_core::{decode_suite_body, CanonicalSuite};
use litsynth_litmus::{wire, LitmusTest, Outcome, SplitMix64};
use std::collections::BTreeMap;
use std::io::{self, BufReader};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client socket knobs. Explicit fields, never environment variables.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Read/write timeout per socket operation, in milliseconds; `0`
    /// disables timeouts (a cold query may legitimately take minutes).
    pub io_timeout_ms: u64,
    /// Extra connect attempts after the first fails.
    pub connect_retries: u32,
    /// First retry delay.
    pub connect_backoff_ms: u64,
    /// Retry delay cap.
    pub connect_backoff_max_ms: u64,
    /// Seed for the deterministic retry jitter.
    pub jitter_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            io_timeout_ms: 0,
            connect_retries: 0,
            connect_backoff_ms: 100,
            connect_backoff_max_ms: 2_000,
            jitter_seed: 1,
        }
    }
}

/// Why a client call failed — the wire's failure modes kept distinct so
/// callers can retry timeouts without retrying rejections.
#[derive(Debug)]
pub enum ClientError {
    /// A socket operation exceeded [`ClientConfig::io_timeout_ms`] (the
    /// server is stalled or unreachable mid-exchange).
    Timeout(String),
    /// The server answered with an `ERR` frame.
    Server(String),
    /// The server answered with bytes that don't parse (or fail the
    /// integrity checksum).
    Protocol(String),
    /// Any other IO failure (connect refused, reset, …).
    Io(io::Error),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Timeout(op) => write!(f, "timed out: {op}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl ClientError {
    fn from_io(e: io::Error, op: &str) -> ClientError {
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => {
                ClientError::Timeout(op.to_string())
            }
            _ => ClientError::Io(e),
        }
    }
}

/// A served suite: the reply plus the `PROGRESS` frames that streamed in
/// while it was computed (empty on a cache hit).
#[derive(Clone, Debug)]
pub struct ServedSuite {
    /// The `SUITE` reply.
    pub reply: QueryReply,
    /// Per-unit progress, in completion order.
    pub progress: Vec<Progress>,
}

impl ServedSuite {
    /// Decodes the reply's suite body back into canonical tests.
    pub fn suite(&self) -> Option<CanonicalSuite> {
        decode_suite_body(&self.reply.suite)
    }
}

/// One connection to a litsynth-serve server. Queries are synchronous;
/// the connection can be reused for any number of them.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects with default knobs (no timeouts, no retries).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        Client::connect_with(addr, &ClientConfig::default())
    }

    /// Connects under `cfg`: failed attempts are retried with
    /// exponential backoff plus jitter, and the socket gets `cfg`'s
    /// read/write timeouts.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        cfg: &ClientConfig,
    ) -> Result<Client, ClientError> {
        let mut rng = SplitMix64::new(cfg.jitter_seed);
        let mut backoff = cfg.connect_backoff_ms.max(1);
        let mut attempt = 0;
        let writer = loop {
            match TcpStream::connect(&addr) {
                Ok(s) => break s,
                Err(e) if attempt >= cfg.connect_retries => {
                    return Err(ClientError::from_io(e, "connect"));
                }
                Err(_) => {
                    let jitter = rng.next_u64() % (backoff / 2 + 1);
                    std::thread::sleep(Duration::from_millis(backoff + jitter));
                    backoff = (backoff * 2).min(cfg.connect_backoff_max_ms.max(1));
                    attempt += 1;
                }
            }
        };
        writer.set_nodelay(true).map_err(ClientError::Io)?;
        if cfg.io_timeout_ms > 0 {
            let t = Some(Duration::from_millis(cfg.io_timeout_ms));
            writer.set_read_timeout(t).map_err(ClientError::Io)?;
            writer.set_write_timeout(t).map_err(ClientError::Io)?;
        }
        let reader = BufReader::new(writer.try_clone().map_err(ClientError::Io)?);
        Ok(Client { reader, writer })
    }

    fn expect_frame(&mut self) -> Result<(String, String), ClientError> {
        match read_frame(&mut self.reader) {
            Ok(Some(frame)) => Ok(frame),
            Ok(None) => Err(ClientError::Protocol(
                "server closed the connection mid-exchange".to_string(),
            )),
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                Err(ClientError::Protocol(e.to_string()))
            }
            Err(e) => Err(ClientError::from_io(e, "waiting for a reply frame")),
        }
    }

    fn send(&mut self, verb: &str, body: &str) -> Result<(), ClientError> {
        write_frame(&mut self.writer, verb, body)
            .map_err(|e| ClientError::from_io(e, "sending a frame"))
    }

    /// Round-trips a `PING`.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.send("PING", "")?;
        match self.expect_frame()? {
            (verb, _) if verb == "PONG" => Ok(()),
            (verb, body) => Err(ClientError::Protocol(format!(
                "expected PONG, got {verb} {body:?}"
            ))),
        }
    }

    /// Sends a query and blocks until the `SUITE` reply, collecting any
    /// streamed `PROGRESS` frames along the way. The suite body's
    /// integrity trailer is verified before anything is parsed.
    pub fn query(&mut self, req: &QueryRequest) -> Result<ServedSuite, ClientError> {
        self.send("QUERY", &req.to_body())?;
        let mut progress = Vec::new();
        loop {
            let (verb, body) = self.expect_frame()?;
            match verb.as_str() {
                "PROGRESS" => {
                    progress.push(Progress::from_body(&body).map_err(ClientError::Protocol)?)
                }
                "SUITE" => {
                    let payload = open_body(&body).map_err(ClientError::Protocol)?;
                    let reply = QueryReply::from_body(payload).map_err(ClientError::Protocol)?;
                    return Ok(ServedSuite { reply, progress });
                }
                "ERR" => return Err(ClientError::Server(body)),
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected frame {other} mid-query"
                    )))
                }
            }
        }
    }

    /// Asks the server whether `outcome` is observable on `test` under
    /// the model named `model`, encoding the test over the wire format.
    /// The verdict body's integrity trailer is verified before parsing.
    pub fn check(
        &mut self,
        model: &str,
        test: &LitmusTest,
        outcome: &Outcome,
    ) -> Result<CheckReply, ClientError> {
        self.check_raw(&CheckRequest {
            model: model.to_string(),
            test: wire::encode(test, outcome),
        })
    }

    /// [`Client::check`] with a pre-built request (e.g. replaying stored
    /// wire text without re-encoding).
    pub fn check_raw(&mut self, req: &CheckRequest) -> Result<CheckReply, ClientError> {
        self.send("CHECK", &req.to_body())?;
        match self.expect_frame()? {
            (verb, body) if verb == "VERDICT" => {
                let payload = open_body(&body).map_err(ClientError::Protocol)?;
                CheckReply::from_body(payload).map_err(ClientError::Protocol)
            }
            (verb, body) if verb == "ERR" => Err(ClientError::Server(body)),
            (verb, body) => Err(ClientError::Protocol(format!(
                "expected VERDICT, got {verb} {body:?}"
            ))),
        }
    }

    /// Fetches the server's counters as a name → value map.
    pub fn stats(&mut self) -> Result<BTreeMap<String, u64>, ClientError> {
        self.send("STATS", "")?;
        let (verb, body) = self.expect_frame()?;
        if verb != "STATS" {
            return Err(ClientError::Protocol(format!("expected STATS, got {verb}")));
        }
        body.lines()
            .filter(|l| !l.is_empty())
            .map(|line| {
                let (k, v) = line
                    .split_once('=')
                    .ok_or_else(|| ClientError::Protocol(format!("stats line {line:?}")))?;
                let v = v
                    .parse()
                    .map_err(|_| ClientError::Protocol(format!("stats value {line:?}")))?;
                Ok((k.to_string(), v))
            })
            .collect()
    }
}
