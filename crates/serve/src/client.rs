//! A blocking client for the serve protocol.

use crate::protocol::{read_frame, write_frame, Progress, QueryReply, QueryRequest};
use litsynth_core::{decode_suite_body, CanonicalSuite};
use std::collections::BTreeMap;
use std::io::{self, BufReader};
use std::net::{TcpStream, ToSocketAddrs};

/// A served suite: the reply plus the `PROGRESS` frames that streamed in
/// while it was computed (empty on a cache hit).
#[derive(Clone, Debug)]
pub struct ServedSuite {
    /// The `SUITE` reply.
    pub reply: QueryReply,
    /// Per-unit progress, in completion order.
    pub progress: Vec<Progress>,
}

impl ServedSuite {
    /// Decodes the reply's suite body back into canonical tests.
    pub fn suite(&self) -> Option<CanonicalSuite> {
        decode_suite_body(&self.reply.suite)
    }
}

/// One connection to a litsynth-serve server. Queries are synchronous;
/// the connection can be reused for any number of them.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

fn protocol_err(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { reader, writer })
    }

    fn expect_frame(&mut self) -> io::Result<(String, String)> {
        read_frame(&mut self.reader)?
            .ok_or_else(|| protocol_err("server closed the connection mid-exchange".to_string()))
    }

    /// Round-trips a `PING`.
    pub fn ping(&mut self) -> io::Result<()> {
        write_frame(&mut self.writer, "PING", "")?;
        match self.expect_frame()? {
            (verb, _) if verb == "PONG" => Ok(()),
            (verb, body) => Err(protocol_err(format!("expected PONG, got {verb} {body:?}"))),
        }
    }

    /// Sends a query and blocks until the `SUITE` reply, collecting any
    /// streamed `PROGRESS` frames along the way. A server-side `ERR` is
    /// surfaced as [`io::ErrorKind::Other`].
    pub fn query(&mut self, req: &QueryRequest) -> io::Result<ServedSuite> {
        write_frame(&mut self.writer, "QUERY", &req.to_body())?;
        let mut progress = Vec::new();
        loop {
            let (verb, body) = self.expect_frame()?;
            match verb.as_str() {
                "PROGRESS" => progress.push(Progress::from_body(&body).map_err(protocol_err)?),
                "SUITE" => {
                    let reply = QueryReply::from_body(&body).map_err(protocol_err)?;
                    return Ok(ServedSuite { reply, progress });
                }
                "ERR" => return Err(io::Error::other(body)),
                other => return Err(protocol_err(format!("unexpected frame {other} mid-query"))),
            }
        }
    }

    /// Fetches the server's counters as a name → value map.
    pub fn stats(&mut self) -> io::Result<BTreeMap<String, u64>> {
        write_frame(&mut self.writer, "STATS", "")?;
        let (verb, body) = self.expect_frame()?;
        if verb != "STATS" {
            return Err(protocol_err(format!("expected STATS, got {verb}")));
        }
        body.lines()
            .filter(|l| !l.is_empty())
            .map(|line| {
                let (k, v) = line
                    .split_once('=')
                    .ok_or_else(|| protocol_err(format!("stats line {line:?}")))?;
                let v = v
                    .parse()
                    .map_err(|_| protocol_err(format!("stats value {line:?}")))?;
                Ok((k.to_string(), v))
            })
            .collect()
    }
}
