//! The work-stealing shard layer: claim, run, steal, crash-recover.
//!
//! A cold query is planned as independent (axiom, bound) units
//! ([`litsynth_core::UnitPlan`]) and pushed round-robin onto a
//! [`StealQueue`]. Each shard is one worker thread with the full shard
//! lifecycle:
//!
//! * **spawn** — one thread per shard slot;
//! * **heartbeat** — a per-slot counter bumped every scheduling step
//!   (surfaced in [`ShardRunStats`]);
//! * **steal** — an idle shard claims from the back of the longest
//!   sibling deque;
//! * **retire** — shards exit when every unit has a recorded outcome;
//! * **crash-recover** — the supervisor polls for dead threads, takes the
//!   unit the corpse held, re-enqueues it (bounded by
//!   [`ShardConfig::max_unit_attempts`]), and respawns the slot.
//!
//! Determinism: results are recorded by the unit's `seq`, never by
//! completion order, and the merge is
//! [`litsynth_core::merge_unit_suites`] over that fixed order — so shard
//! count, steal pattern, and crash timing can change *which thread* runs
//! a unit but never the served bytes. Each unit itself runs the journaled
//! resilient portfolio path ([`litsynth_core::run_unit`]), so cube-level
//! faults are retried inside the unit; this layer adds recovery for the
//! coarser failure of losing a whole shard thread.

use litsynth_core::{
    config_fingerprint, merge_unit_suites, query_key, run_unit, CanonicalSuite, SynthConfig,
    SynthResult, UnitPlan,
};
use litsynth_models::MemoryModel;
use litsynth_portfolio::{StealQueue, WorkUnit};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// Deterministic shard-level fault injection: panic the claiming shard
/// thread (killing it outright, upstream of every `catch_unwind`) the
/// first `kills` times a unit with this key is claimed. The cube-level
/// analogue is `LITSYNTH_FAULT_PLAN` / [`litsynth_sat::FaultPlan`], which
/// this layer happily runs *underneath* — the two compose.
#[derive(Clone, Debug)]
pub struct ShardFault {
    /// The unit key to kill on, e.g. `tso/causality/3`.
    pub key: String,
    /// How many claims to kill before letting the unit run.
    pub kills: usize,
}

/// Shard-layer knobs.
#[derive(Clone, Debug)]
pub struct ShardConfig {
    /// Worker threads (minimum 1).
    pub shards: usize,
    /// Crash-retries per unit before the run reports it failed.
    pub max_unit_attempts: usize,
    /// Injected shard-kill fault, if any (tests only).
    pub fault: Option<ShardFault>,
}

impl Default for ShardConfig {
    fn default() -> ShardConfig {
        ShardConfig {
            shards: 2,
            max_unit_attempts: 3,
            fault: None,
        }
    }
}

/// Counters for one [`run_sharded`] call.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardRunStats {
    /// Units claimed from the claimant's own deque.
    pub claimed_local: u64,
    /// Units claimed by stealing from a sibling.
    pub stolen: u64,
    /// Units with a recorded result.
    pub completed: u64,
    /// Units re-enqueued after their shard thread died.
    pub reassigned: u64,
    /// Shard threads respawned after a crash.
    pub respawns: u64,
    /// Scheduling steps over all shard threads (liveness signal).
    pub heartbeats: u64,
}

/// Plans a query as claimable units: bounds ascending, the model's axiom
/// order restricted to `axioms` within each bound, `seq` numbering the
/// lot. With `axioms == model.axioms()` this is exactly
/// [`litsynth_core::plan_units`]; the restriction exists so a request for
/// an axiom subset is still planned (and therefore merged and
/// fingerprinted) in model order, never request order.
pub fn plan_query<M: MemoryModel>(
    model: &M,
    axioms: &[&'static str],
    bounds: std::ops::RangeInclusive<usize>,
    mk_cfg: impl Fn(usize) -> SynthConfig,
) -> Vec<UnitPlan> {
    let mut plans = Vec::new();
    for bound in bounds {
        let cfg = mk_cfg(bound);
        for &axiom in model.axioms().iter().filter(|a| axioms.contains(a)) {
            plans.push(UnitPlan {
                unit: WorkUnit {
                    key: query_key(model.name(), axiom, bound).into(),
                    fingerprint: config_fingerprint(model.name(), axiom, &cfg),
                    seq: plans.len(),
                },
                axiom,
                bound,
                cfg: cfg.clone(),
            });
        }
    }
    plans
}

struct Core {
    results: Vec<Option<SynthResult>>,
    completed: usize,
    crash_retries: Vec<usize>,
    failed: Vec<String>,
}

struct Shared<'a, M> {
    model: &'a M,
    plans: &'a [UnitPlan],
    queue: StealQueue<usize>,
    core: Mutex<Core>,
    current: Vec<Mutex<Option<usize>>>,
    heartbeats: Vec<AtomicU64>,
    fault_key: Option<String>,
    kills_left: AtomicUsize,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// One shard thread: heartbeat, claim (stealing when local work is dry),
/// run, record by seq, retire when everything is accounted for.
fn shard_loop<M: MemoryModel + Sync>(sh: &Shared<'_, M>, slot: usize) {
    let total = sh.plans.len();
    loop {
        sh.heartbeats[slot].fetch_add(1, Ordering::Relaxed);
        if lock(&sh.core).completed >= total {
            return; // retire
        }
        let Some((idx, _stolen)) = sh.queue.claim(slot) else {
            // Everything is claimed but not yet recorded (in flight on a
            // sibling, or awaiting crash reassignment): stay alive.
            std::thread::sleep(Duration::from_millis(1));
            continue;
        };
        // Publish what this thread holds *before* running it, so the
        // supervisor can recover the unit if the thread dies mid-run.
        *lock(&sh.current[slot]) = Some(idx);
        let plan = &sh.plans[idx];
        if sh.fault_key.as_deref() == Some(&*plan.unit.key)
            && sh
                .kills_left
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |k| k.checked_sub(1))
                .is_ok()
        {
            panic!(
                "injected shard fault: killing worker holding {}",
                plan.unit.key
            );
        }
        let r = run_unit(sh.model, plan);
        let mut core = lock(&sh.core);
        if core.results[idx].is_none() {
            core.results[idx] = Some(r);
            core.completed += 1;
        }
        drop(core);
        *lock(&sh.current[slot]) = None;
    }
}

/// Runs every planned unit across a crash-supervised work-stealing shard
/// pool and returns the per-unit results **in seq order** plus the run's
/// counters. `Err` lists the units that exhausted their crash budget —
/// partial suites are never returned, because a silently missing unit
/// would break the byte-identity contract.
pub fn run_sharded<M: MemoryModel + Sync>(
    model: &M,
    plans: &[UnitPlan],
    cfg: &ShardConfig,
) -> Result<(Vec<SynthResult>, ShardRunStats), String> {
    let total = plans.len();
    let mut stats = ShardRunStats::default();
    if total == 0 {
        return Ok((Vec::new(), stats));
    }
    let shards = cfg.shards.max(1);
    let sh = Shared {
        model,
        plans,
        queue: StealQueue::new(shards),
        core: Mutex::new(Core {
            results: plans.iter().map(|_| None).collect(),
            completed: 0,
            crash_retries: vec![0; total],
            failed: Vec::new(),
        }),
        current: (0..shards).map(|_| Mutex::new(None)).collect(),
        heartbeats: (0..shards).map(|_| AtomicU64::new(0)).collect(),
        fault_key: cfg.fault.as_ref().map(|f| f.key.clone()),
        kills_left: AtomicUsize::new(cfg.fault.as_ref().map_or(0, |f| f.kills)),
    };
    for i in 0..total {
        sh.queue.push(i % shards, i);
    }
    let sh = &sh;
    let (reassigned, respawns) = (AtomicU64::new(0), AtomicU64::new(0));
    std::thread::scope(|scope| {
        let mut handles: Vec<Option<std::thread::ScopedJoinHandle<'_, ()>>> = (0..shards)
            .map(|slot| Some(scope.spawn(move || shard_loop(sh, slot))))
            .collect();
        while lock(&sh.core).completed < total {
            for (slot, entry) in handles.iter_mut().enumerate() {
                if !matches!(entry, Some(h) if h.is_finished()) {
                    continue;
                }
                let handle = entry.take().expect("matched Some above");
                if handle.join().is_ok() {
                    continue; // normal retirement (another slot finished the tail)
                }
                // The thread died. Whatever it held goes back on the
                // queue — unless this unit has crashed too many times,
                // in which case the run fails loudly.
                if let Some(idx) = lock(&sh.current[slot]).take() {
                    let mut core = lock(&sh.core);
                    if core.results[idx].is_none() {
                        core.crash_retries[idx] += 1;
                        if core.crash_retries[idx] > cfg.max_unit_attempts {
                            core.failed.push(sh.plans[idx].unit.key.to_string());
                            core.completed += 1;
                        } else {
                            drop(core);
                            sh.queue.push(slot, idx);
                            reassigned.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                *entry = Some(scope.spawn(move || shard_loop(sh, slot)));
                respawns.fetch_add(1, Ordering::Relaxed);
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    });
    let core = lock(&sh.core).failed.clone();
    if !core.is_empty() {
        return Err(format!(
            "units failed after exhausting their crash budget: {}",
            core.join(", ")
        ));
    }
    let (_, claimed_local, stolen) = sh.queue.stats().snapshot();
    stats.claimed_local = claimed_local;
    stats.stolen = stolen;
    stats.completed = total as u64;
    stats.reassigned = reassigned.load(Ordering::Relaxed);
    stats.respawns = respawns.load(Ordering::Relaxed);
    stats.heartbeats = sh
        .heartbeats
        .iter()
        .map(|h| h.load(Ordering::Relaxed))
        .sum();
    let results = lock(&sh.core)
        .results
        .iter_mut()
        .map(|r| r.take().expect("no failures, so every unit completed"))
        .collect();
    Ok((results, stats))
}

/// Runs a planned query across whatever compute is available: when the
/// remote pool has live workers the units go out on deadline leases
/// (degrading to local per-unit as budgets or workers run out,
/// per [`crate::remote`]); with no pool or no workers this is exactly
/// [`run_sharded`] — single-host queries never count as degraded.
/// Either way the results come back in seq order, so the merge (and the
/// served bytes) cannot depend on where the units ran.
pub fn run_distributed<M: MemoryModel + Sync>(
    model: &M,
    request_model: &str,
    plans: &[UnitPlan],
    cfg: &ShardConfig,
    pool: Option<&std::sync::Arc<crate::remote::RemotePool>>,
) -> Result<(Vec<SynthResult>, ShardRunStats, crate::remote::BatchStats), String> {
    match pool {
        Some(pool) if pool.live() > 0 => {
            let (results, batch) =
                crate::remote::run_batch(model, request_model, plans, cfg, pool)?;
            Ok((results, ShardRunStats::default(), batch))
        }
        _ => {
            let (results, stats) = run_sharded(model, plans, cfg)?;
            Ok((results, stats, crate::remote::BatchStats::default()))
        }
    }
}

/// Convenience: plan, run sharded, and merge in one call — the sharded
/// equivalent of [`litsynth_core::synthesize_union_up_to`].
pub fn sharded_union<M: MemoryModel + Sync>(
    model: &M,
    bounds: std::ops::RangeInclusive<usize>,
    mk_cfg: impl Fn(usize) -> SynthConfig,
    cfg: &ShardConfig,
) -> Result<(CanonicalSuite, ShardRunStats), String> {
    let plans = litsynth_core::plan_units(model, bounds, mk_cfg);
    let (results, stats) = run_sharded(model, &plans, cfg)?;
    let suites: Vec<&CanonicalSuite> = results.iter().map(|r| &r.tests).collect();
    Ok((merge_unit_suites(suites), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use litsynth_core::{encode_suite_body, synthesize_union_up_to};
    use litsynth_models::Tso;

    #[test]
    fn sharded_union_is_byte_identical_to_the_direct_sweep() {
        let m = Tso::new();
        let direct = encode_suite_body(&synthesize_union_up_to(&m, 2..=3, SynthConfig::new));
        for shards in [1, 3] {
            let cfg = ShardConfig {
                shards,
                ..ShardConfig::default()
            };
            let (suite, stats) =
                sharded_union(&m, 2..=3, SynthConfig::new, &cfg).expect("run succeeds");
            assert_eq!(direct, encode_suite_body(&suite), "{shards} shards");
            assert_eq!(stats.completed, 2 * m.axioms().len() as u64);
            assert_eq!(stats.claimed_local + stats.stolen, stats.completed);
            assert!(stats.heartbeats > 0);
        }
    }

    #[test]
    fn killed_shard_worker_is_respawned_and_its_unit_reserved() {
        let m = Tso::new();
        let direct = encode_suite_body(&synthesize_union_up_to(&m, 2..=3, SynthConfig::new));
        let cfg = ShardConfig {
            shards: 2,
            max_unit_attempts: 3,
            fault: Some(ShardFault {
                key: "tso/causality/3".to_string(),
                kills: 1,
            }),
        };
        let (suite, stats) =
            sharded_union(&m, 2..=3, SynthConfig::new, &cfg).expect("recovered run succeeds");
        assert_eq!(
            direct,
            encode_suite_body(&suite),
            "crash must not change bytes"
        );
        assert!(stats.respawns >= 1, "the dead slot must be respawned");
        assert!(stats.reassigned >= 1, "the held unit must be re-enqueued");
    }

    #[test]
    fn a_unit_that_always_kills_its_shard_fails_the_run_loudly() {
        let m = Tso::new();
        let cfg = ShardConfig {
            shards: 2,
            max_unit_attempts: 2,
            fault: Some(ShardFault {
                key: "tso/sc_per_loc/2".to_string(),
                kills: usize::MAX,
            }),
        };
        let err = sharded_union(&m, 2..=2, SynthConfig::new, &cfg)
            .expect_err("a terminally crashing unit must not vanish silently");
        assert!(err.contains("tso/sc_per_loc/2"), "{err}");
    }
}
