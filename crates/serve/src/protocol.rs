//! The wire protocol: length-prefixed text frames.
//!
//! Every frame is `"<VERB> <len>\n"` followed by exactly `len` bytes of
//! UTF-8 body. Verbs:
//!
//! | verb       | direction | body                                        |
//! |------------|-----------|---------------------------------------------|
//! | `QUERY`    | c → s     | a [`QueryRequest`] in `key=value` lines     |
//! | `PROGRESS` | s → c     | one completed (axiom, bound) unit           |
//! | `SUITE`    | s → c     | [`QueryReply`] header, blank line, suite    |
//! | `ERR`      | s → c     | human-readable error text                   |
//! | `PING`     | c → s     | empty                                       |
//! | `PONG`     | s → c     | empty                                       |
//! | `STATS`    | both      | empty request; `key=value` lines back       |
//!
//! The suite section of a `SUITE` frame is exactly
//! [`litsynth_core::encode_suite_body`] — the same format the journal
//! stores — so a served suite can be byte-compared against a direct
//! [`litsynth_core::synthesize_union_up_to`] run without re-parsing.

use std::io::{self, BufRead, Write};

/// Frames larger than this are rejected before the body is read, so a
/// corrupt or hostile length prefix can't trigger a giant allocation.
pub const MAX_FRAME: usize = 64 << 20;

/// Writes one `"<verb> <len>\n<body>"` frame and flushes. The frame is
/// composed first and written in one call — on an unbuffered TCP stream,
/// header and body as separate small writes trip Nagle/delayed-ACK
/// stalls that dwarf a warm query's actual service time.
pub fn write_frame(w: &mut impl Write, verb: &str, body: &str) -> io::Result<()> {
    w.write_all(format!("{verb} {}\n{body}", body.len()).as_bytes())?;
    w.flush()
}

/// Reads one frame. `Ok(None)` is a clean EOF (peer closed between
/// frames); anything malformed is an [`io::ErrorKind::InvalidData`].
pub fn read_frame(r: &mut impl BufRead) -> io::Result<Option<(String, String)>> {
    let mut header = String::new();
    if r.read_line(&mut header)? == 0 {
        return Ok(None);
    }
    let header = header.trim_end_matches('\n');
    let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
    let (verb, len) = header
        .split_once(' ')
        .ok_or_else(|| bad("frame header is not `VERB len`"))?;
    if verb.is_empty() || !verb.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(bad("frame verb must be ASCII uppercase"));
    }
    let len: usize = len
        .parse()
        .map_err(|_| bad("frame length is not a number"))?;
    if len > MAX_FRAME {
        return Err(bad("frame exceeds MAX_FRAME"));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    let body = String::from_utf8(body).map_err(|_| bad("frame body is not UTF-8"))?;
    Ok(Some((verb.to_string(), body)))
}

/// A suite query: which model variant, which bounds, which axioms.
///
/// The model name selects the (model, relaxations) pair — relaxed
/// variants are first-class model names (`armv7` is Power with the ARMv7
/// relaxations applied), exactly as in the `experiments` harness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryRequest {
    /// Model name, lower-case: `sc`, `tso`, `power`, `armv7`, `scc`, `c11`.
    pub model: String,
    /// Smallest event bound of the sweep (≥ 2).
    pub min_bound: usize,
    /// Largest event bound of the sweep (inclusive).
    pub max_bound: usize,
    /// Axioms to synthesize; empty means every axiom of the model. Order
    /// is irrelevant — the server always runs them in model order, so two
    /// requests for the same set are the same cache entry.
    pub axioms: Vec<String>,
    /// Per-query solver time budget in milliseconds (`0` = unlimited).
    pub budget_ms: u64,
}

impl QueryRequest {
    /// A whole-model sweep request over `min_bound..=max_bound`.
    pub fn sweep(model: &str, min_bound: usize, max_bound: usize) -> QueryRequest {
        QueryRequest {
            model: model.to_string(),
            min_bound,
            max_bound,
            axioms: Vec::new(),
            budget_ms: 0,
        }
    }

    /// Serializes to `key=value` lines.
    pub fn to_body(&self) -> String {
        format!(
            "model={}\nmin_bound={}\nmax_bound={}\naxioms={}\nbudget_ms={}\n",
            self.model,
            self.min_bound,
            self.max_bound,
            self.axioms.join(","),
            self.budget_ms
        )
    }

    /// Parses `key=value` lines; unknown keys and bad numbers are errors
    /// (the fingerprint is a cache key — silently dropping a field could
    /// serve the wrong suite).
    pub fn from_body(body: &str) -> Result<QueryRequest, String> {
        let mut req = QueryRequest::sweep("", 2, 0);
        for line in body.lines().filter(|l| !l.is_empty()) {
            let (k, v) = line
                .split_once('=')
                .ok_or_else(|| format!("request line {line:?} is not key=value"))?;
            let num = |v: &str| {
                v.parse::<u64>()
                    .map_err(|_| format!("request field {k}={v:?} is not a number"))
            };
            match k {
                "model" => req.model = v.to_string(),
                "min_bound" => req.min_bound = num(v)? as usize,
                "max_bound" => req.max_bound = num(v)? as usize,
                "axioms" => {
                    req.axioms = v
                        .split(',')
                        .filter(|a| !a.is_empty())
                        .map(str::to_string)
                        .collect()
                }
                "budget_ms" => req.budget_ms = num(v)?,
                other => return Err(format!("unknown request field {other:?}")),
            }
        }
        if req.model.is_empty() {
            return Err("request is missing the model field".to_string());
        }
        Ok(req)
    }
}

/// A served suite: the reply header plus the suite body.
#[derive(Clone, Debug)]
pub struct QueryReply {
    /// The query's suite fingerprint (the cache key).
    pub fingerprint: u64,
    /// Number of tests in the suite.
    pub tests: usize,
    /// `true` if this reply came from the in-memory suite cache.
    pub cached: bool,
    /// Circuit→CNF compilations spent answering this query (0 on a cache
    /// hit *and* on a journal replay — the persistent tier).
    pub compilations: usize,
    /// Solver attempts retried by the resilient runner for this query.
    pub retries: u64,
    /// `true` if any unit hit its instance cap or time budget.
    pub truncated: bool,
    /// Cube workers whose every attempt failed (0 ⇒ suite is complete).
    pub degraded: usize,
    /// The suite, in [`litsynth_core::encode_suite_body`] format.
    pub suite: String,
}

impl QueryReply {
    /// Serializes as header lines, a blank line, then the suite body.
    pub fn to_body(&self) -> String {
        format!(
            "fingerprint={:016x}\ntests={}\ncached={}\ncompilations={}\nretries={}\n\
             truncated={}\ndegraded={}\n\n{}",
            self.fingerprint,
            self.tests,
            self.cached,
            self.compilations,
            self.retries,
            self.truncated,
            self.degraded,
            self.suite
        )
    }

    /// Parses a `SUITE` frame body.
    pub fn from_body(body: &str) -> Result<QueryReply, String> {
        let (header, suite) = body
            .split_once("\n\n")
            .ok_or_else(|| "reply has no blank line after the header".to_string())?;
        let mut reply = QueryReply {
            fingerprint: 0,
            tests: 0,
            cached: false,
            compilations: 0,
            retries: 0,
            truncated: false,
            degraded: 0,
            suite: suite.to_string(),
        };
        for line in header.lines() {
            let (k, v) = line
                .split_once('=')
                .ok_or_else(|| format!("reply line {line:?} is not key=value"))?;
            let err = || format!("reply field {k}={v:?} is malformed");
            match k {
                "fingerprint" => {
                    reply.fingerprint = u64::from_str_radix(v, 16).map_err(|_| err())?
                }
                "tests" => reply.tests = v.parse().map_err(|_| err())?,
                "cached" => reply.cached = v.parse().map_err(|_| err())?,
                "compilations" => reply.compilations = v.parse().map_err(|_| err())?,
                "retries" => reply.retries = v.parse().map_err(|_| err())?,
                "truncated" => reply.truncated = v.parse().map_err(|_| err())?,
                "degraded" => reply.degraded = v.parse().map_err(|_| err())?,
                other => return Err(format!("unknown reply field {other:?}")),
            }
        }
        Ok(reply)
    }
}

/// One completed (axiom, bound) unit, streamed while a cold query runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Progress {
    /// The unit's query key, e.g. `tso/sc_per_loc/3`.
    pub key: String,
    /// Tests the unit contributed (pre-merge).
    pub tests: usize,
    /// `true` if the unit was replayed from the journal tier.
    pub from_journal: bool,
}

impl Progress {
    /// Serializes to `key=value` lines.
    pub fn to_body(&self) -> String {
        format!(
            "key={}\ntests={}\nfrom_journal={}\n",
            self.key, self.tests, self.from_journal
        )
    }

    /// Parses a `PROGRESS` frame body.
    pub fn from_body(body: &str) -> Result<Progress, String> {
        let mut p = Progress {
            key: String::new(),
            tests: 0,
            from_journal: false,
        };
        for line in body.lines().filter(|l| !l.is_empty()) {
            let (k, v) = line
                .split_once('=')
                .ok_or_else(|| format!("progress line {line:?} is not key=value"))?;
            let err = || format!("progress field {k}={v:?} is malformed");
            match k {
                "key" => p.key = v.to_string(),
                "tests" => p.tests = v.parse().map_err(|_| err())?,
                "from_journal" => p.from_journal = v.parse().map_err(|_| err())?,
                other => return Err(format!("unknown progress field {other:?}")),
            }
        }
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn frames_round_trip_including_empty_and_multiline_bodies() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "PING", "").unwrap();
        write_frame(&mut buf, "SUITE", "a=1\n\nbody\nwith %% lines\n").unwrap();
        let mut r = BufReader::new(&buf[..]);
        assert_eq!(
            read_frame(&mut r).unwrap(),
            Some(("PING".to_string(), String::new()))
        );
        assert_eq!(
            read_frame(&mut r).unwrap(),
            Some((
                "SUITE".to_string(),
                "a=1\n\nbody\nwith %% lines\n".to_string()
            ))
        );
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn malformed_frames_are_rejected_not_misread() {
        for bad in [
            "PING\n",                              // no length
            "ping 0\n",                            // lower-case verb
            "QUERY x\n",                           // non-numeric length
            &format!("QUERY {}\n", MAX_FRAME + 1), // oversized
        ] {
            let mut r = BufReader::new(bad.as_bytes());
            assert!(read_frame(&mut r).is_err(), "{bad:?} must be rejected");
        }
        // Truncated body: header promises more bytes than the stream has.
        let mut r = BufReader::new(&b"SUITE 10\nabc"[..]);
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn request_and_reply_round_trip_through_their_bodies() {
        let mut req = QueryRequest::sweep("tso", 2, 4);
        req.axioms = vec!["sc_per_loc".to_string(), "causality".to_string()];
        req.budget_ms = 500;
        assert_eq!(QueryRequest::from_body(&req.to_body()), Ok(req.clone()));
        assert!(QueryRequest::from_body("model=tso\nbogus=1\n").is_err());
        assert!(
            QueryRequest::from_body("min_bound=2\n").is_err(),
            "model required"
        );

        let reply = QueryReply {
            fingerprint: 0xdead_beef_0123_4567,
            tests: 12,
            cached: true,
            compilations: 0,
            retries: 3,
            truncated: false,
            degraded: 0,
            suite: "#key k\nbody\n%%\n".to_string(),
        };
        let back = QueryReply::from_body(&reply.to_body()).unwrap();
        assert_eq!(back.fingerprint, reply.fingerprint);
        assert_eq!(back.tests, reply.tests);
        assert!(back.cached);
        assert_eq!(back.suite, reply.suite);

        let p = Progress {
            key: "tso/causality/3".to_string(),
            tests: 2,
            from_journal: true,
        };
        assert_eq!(Progress::from_body(&p.to_body()), Ok(p));
    }
}
