//! The wire protocol: length-prefixed text frames.
//!
//! Every frame is `"<VERB> <len>\n"` followed by exactly `len` bytes of
//! UTF-8 body. Verbs:
//!
//! | verb       | direction | body                                        |
//! |------------|-----------|---------------------------------------------|
//! | `QUERY`    | c → s     | a [`QueryRequest`] in `key=value` lines     |
//! | `PROGRESS` | s → c     | one completed (axiom, bound) unit           |
//! | `SUITE`    | s → c     | [`QueryReply`] header, blank line, suite    |
//! | `ERR`      | s → c     | human-readable error text                   |
//! | `PING`     | c → s     | empty                                       |
//! | `PONG`     | s → c     | empty                                       |
//! | `STATS`    | both      | empty request; `key=value` lines back       |
//! | `HELLO`    | w → c     | remote-worker registration, `key=value`     |
//! | `LEASE`    | c → w     | lease terms on registration (`lease_ms=N`)  |
//! | `LEASE`    | w → c     | lease renewal for a running unit            |
//! | `UNIT`     | c → w     | a [`UnitAssign`]: one leased unit to run    |
//! | `UNITDONE` | w → c     | a [`UnitDone`]: the unit's result payload   |
//! | `NACK`     | w → c     | a [`Nack`]: the worker declines the unit    |
//! | `CHECK`    | c → s     | a [`CheckRequest`]: model + witness to judge |
//! | `VERDICT`  | s → c     | a [`CheckReply`]: the consistency verdict    |
//!
//! (`c` = client, `s` = server, `w` = remote worker, and the coordinator
//! is the server end of a worker connection.)
//!
//! The suite section of a `SUITE` frame is exactly
//! [`litsynth_core::encode_suite_body`] — the same format the journal
//! stores — so a served suite can be byte-compared against a direct
//! [`litsynth_core::synthesize_union_up_to`] run without re-parsing.
//!
//! `SUITE` and `UNITDONE` bodies additionally carry an FNV-1a integrity
//! trailer ([`seal_body`]/[`open_body`]): journal entries already checksum
//! their contents, but the wire did not, and a result-bearing frame that
//! arrives bit-flipped must be rejected (with an `ERR` naming the
//! expected/actual digest), never parsed into a wrong suite.

use litsynth_core::fnv1a;
use std::io::{self, BufRead, Write};

/// Frames larger than this are rejected before the body is read, so a
/// corrupt or hostile length prefix can't trigger a giant allocation.
pub const MAX_FRAME: usize = 64 << 20;

/// Writes one `"<verb> <len>\n<body>"` frame and flushes. The frame is
/// composed first and written in one call — on an unbuffered TCP stream,
/// header and body as separate small writes trip Nagle/delayed-ACK
/// stalls that dwarf a warm query's actual service time.
pub fn write_frame(w: &mut impl Write, verb: &str, body: &str) -> io::Result<()> {
    w.write_all(format!("{verb} {}\n{body}", body.len()).as_bytes())?;
    w.flush()
}

/// Reads one frame. `Ok(None)` is a clean EOF (peer closed between
/// frames); anything malformed is an [`io::ErrorKind::InvalidData`].
pub fn read_frame(r: &mut impl BufRead) -> io::Result<Option<(String, String)>> {
    let mut header = String::new();
    if r.read_line(&mut header)? == 0 {
        return Ok(None);
    }
    let header = header.trim_end_matches('\n');
    let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
    let (verb, len) = header
        .split_once(' ')
        .ok_or_else(|| bad("frame header is not `VERB len`"))?;
    if verb.is_empty() || !verb.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(bad("frame verb must be ASCII uppercase"));
    }
    let len: usize = len
        .parse()
        .map_err(|_| bad("frame length is not a number"))?;
    if len > MAX_FRAME {
        return Err(bad("frame exceeds MAX_FRAME"));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    let body = String::from_utf8(body).map_err(|_| bad("frame body is not UTF-8"))?;
    Ok(Some((verb.to_string(), body)))
}

/// Appends the FNV-1a integrity trailer to a result-bearing frame body
/// (`SUITE`/`UNITDONE`): one final `#fnv=<16 hex digits>` line over every
/// byte before it. [`open_body`] verifies and strips it.
pub fn seal_body(body: &str) -> String {
    format!("{body}#fnv={:016x}\n", fnv1a(body.as_bytes()))
}

/// Verifies and strips a [`seal_body`] trailer, returning the payload.
/// A missing trailer or a digest mismatch is an `Err` naming the expected
/// (sender-declared) and actual (received-payload) digests — the caller
/// rejects the frame rather than merging a corrupt result.
pub fn open_body(sealed: &str) -> Result<&str, String> {
    let at = sealed
        .rfind("#fnv=")
        .ok_or_else(|| "body has no #fnv integrity trailer".to_string())?;
    if at != 0 && !sealed[..at].ends_with('\n') {
        return Err("#fnv integrity trailer is not on its own line".to_string());
    }
    let (payload, trailer) = sealed.split_at(at);
    let hex = trailer
        .strip_prefix("#fnv=")
        .expect("found by rfind above")
        .trim_end_matches('\n');
    let expected = u64::from_str_radix(hex, 16)
        .map_err(|_| format!("#fnv trailer digest {hex:?} is not 16 hex digits"))?;
    let actual = fnv1a(payload.as_bytes());
    if expected != actual {
        return Err(format!(
            "integrity checksum mismatch: expected {expected:016x}, actual {actual:016x}"
        ));
    }
    Ok(payload)
}

/// A suite query: which model variant, which bounds, which axioms.
///
/// The model name selects the (model, relaxations) pair — relaxed
/// variants are first-class model names (`armv7` is Power with the ARMv7
/// relaxations applied), exactly as in the `experiments` harness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryRequest {
    /// Model name, lower-case: `sc`, `tso`, `power`, `armv7`, `scc`, `c11`.
    pub model: String,
    /// Smallest event bound of the sweep (≥ 2).
    pub min_bound: usize,
    /// Largest event bound of the sweep (inclusive).
    pub max_bound: usize,
    /// Axioms to synthesize; empty means every axiom of the model. Order
    /// is irrelevant — the server always runs them in model order, so two
    /// requests for the same set are the same cache entry.
    pub axioms: Vec<String>,
    /// Per-query solver time budget in milliseconds (`0` = unlimited).
    pub budget_ms: u64,
}

impl QueryRequest {
    /// A whole-model sweep request over `min_bound..=max_bound`.
    pub fn sweep(model: &str, min_bound: usize, max_bound: usize) -> QueryRequest {
        QueryRequest {
            model: model.to_string(),
            min_bound,
            max_bound,
            axioms: Vec::new(),
            budget_ms: 0,
        }
    }

    /// Serializes to `key=value` lines.
    pub fn to_body(&self) -> String {
        format!(
            "model={}\nmin_bound={}\nmax_bound={}\naxioms={}\nbudget_ms={}\n",
            self.model,
            self.min_bound,
            self.max_bound,
            self.axioms.join(","),
            self.budget_ms
        )
    }

    /// Parses `key=value` lines; unknown keys and bad numbers are errors
    /// (the fingerprint is a cache key — silently dropping a field could
    /// serve the wrong suite).
    pub fn from_body(body: &str) -> Result<QueryRequest, String> {
        let mut req = QueryRequest::sweep("", 2, 0);
        for line in body.lines().filter(|l| !l.is_empty()) {
            let (k, v) = line
                .split_once('=')
                .ok_or_else(|| format!("request line {line:?} is not key=value"))?;
            let num = |v: &str| {
                v.parse::<u64>()
                    .map_err(|_| format!("request field {k}={v:?} is not a number"))
            };
            match k {
                "model" => req.model = v.to_string(),
                "min_bound" => req.min_bound = num(v)? as usize,
                "max_bound" => req.max_bound = num(v)? as usize,
                "axioms" => {
                    req.axioms = v
                        .split(',')
                        .filter(|a| !a.is_empty())
                        .map(str::to_string)
                        .collect()
                }
                "budget_ms" => req.budget_ms = num(v)?,
                other => return Err(format!("unknown request field {other:?}")),
            }
        }
        if req.model.is_empty() {
            return Err("request is missing the model field".to_string());
        }
        Ok(req)
    }
}

/// A served suite: the reply header plus the suite body.
#[derive(Clone, Debug)]
pub struct QueryReply {
    /// The query's suite fingerprint (the cache key).
    pub fingerprint: u64,
    /// Number of tests in the suite.
    pub tests: usize,
    /// `true` if this reply came from the in-memory suite cache.
    pub cached: bool,
    /// Circuit→CNF compilations spent answering this query (0 on a cache
    /// hit *and* on a journal replay — the persistent tier).
    pub compilations: usize,
    /// Solver attempts retried by the resilient runner for this query.
    pub retries: u64,
    /// `true` if any unit hit its instance cap or time budget.
    pub truncated: bool,
    /// Cube workers whose every attempt failed (0 ⇒ suite is complete).
    pub degraded: usize,
    /// The suite, in [`litsynth_core::encode_suite_body`] format.
    pub suite: String,
}

impl QueryReply {
    /// Serializes as header lines, a blank line, then the suite body.
    pub fn to_body(&self) -> String {
        format!(
            "fingerprint={:016x}\ntests={}\ncached={}\ncompilations={}\nretries={}\n\
             truncated={}\ndegraded={}\n\n{}",
            self.fingerprint,
            self.tests,
            self.cached,
            self.compilations,
            self.retries,
            self.truncated,
            self.degraded,
            self.suite
        )
    }

    /// Parses a `SUITE` frame body.
    pub fn from_body(body: &str) -> Result<QueryReply, String> {
        let (header, suite) = body
            .split_once("\n\n")
            .ok_or_else(|| "reply has no blank line after the header".to_string())?;
        let mut reply = QueryReply {
            fingerprint: 0,
            tests: 0,
            cached: false,
            compilations: 0,
            retries: 0,
            truncated: false,
            degraded: 0,
            suite: suite.to_string(),
        };
        for line in header.lines() {
            let (k, v) = line
                .split_once('=')
                .ok_or_else(|| format!("reply line {line:?} is not key=value"))?;
            let err = || format!("reply field {k}={v:?} is malformed");
            match k {
                "fingerprint" => {
                    reply.fingerprint = u64::from_str_radix(v, 16).map_err(|_| err())?
                }
                "tests" => reply.tests = v.parse().map_err(|_| err())?,
                "cached" => reply.cached = v.parse().map_err(|_| err())?,
                "compilations" => reply.compilations = v.parse().map_err(|_| err())?,
                "retries" => reply.retries = v.parse().map_err(|_| err())?,
                "truncated" => reply.truncated = v.parse().map_err(|_| err())?,
                "degraded" => reply.degraded = v.parse().map_err(|_| err())?,
                other => return Err(format!("unknown reply field {other:?}")),
            }
        }
        Ok(reply)
    }
}

/// One completed (axiom, bound) unit, streamed while a cold query runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Progress {
    /// The unit's query key, e.g. `tso/sc_per_loc/3`.
    pub key: String,
    /// Tests the unit contributed (pre-merge).
    pub tests: usize,
    /// `true` if the unit was replayed from the journal tier.
    pub from_journal: bool,
}

impl Progress {
    /// Serializes to `key=value` lines.
    pub fn to_body(&self) -> String {
        format!(
            "key={}\ntests={}\nfrom_journal={}\n",
            self.key, self.tests, self.from_journal
        )
    }

    /// Parses a `PROGRESS` frame body.
    pub fn from_body(body: &str) -> Result<Progress, String> {
        let mut p = Progress {
            key: String::new(),
            tests: 0,
            from_journal: false,
        };
        for line in body.lines().filter(|l| !l.is_empty()) {
            let (k, v) = line
                .split_once('=')
                .ok_or_else(|| format!("progress line {line:?} is not key=value"))?;
            let err = || format!("progress field {k}={v:?} is malformed");
            match k {
                "key" => p.key = v.to_string(),
                "tests" => p.tests = v.parse().map_err(|_| err())?,
                "from_journal" => p.from_journal = v.parse().map_err(|_| err())?,
                other => return Err(format!("unknown progress field {other:?}")),
            }
        }
        Ok(p)
    }
}

/// One leased unit assignment, coordinator → worker. Carries the unit's
/// identity (key, merge seq, config fingerprint), the lease bookkeeping
/// (grant id, attempt number), and every *suite-relevant* config field —
/// exactly the set [`litsynth_core::config_fingerprint`] covers — so the
/// worker can rebuild the query config, recompute the fingerprint, and
/// refuse (NACK) an assignment its code would answer differently.
/// Parallelism knobs are deliberately absent: they are the worker's own
/// business and byte-identity-preserving by construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnitAssign {
    /// The unit's query key, e.g. `tso/causality/3`.
    pub key: String,
    /// The lease grant id: unique per dispatch, echoed by `UNITDONE`,
    /// `NACK`, and renewal `LEASE` frames so a stale answer from a
    /// reclaimed lease can never be mistaken for the live one.
    pub grant: u64,
    /// The unit's position in the sweep's deterministic merge order.
    pub seq: usize,
    /// Remote attempts already consumed for this unit (0 on the first).
    pub attempt: usize,
    /// Request-model name, lower-case (`tso`, `armv7`, …).
    pub model: String,
    /// The query's axiom.
    pub axiom: String,
    /// The query's event bound (also the config's `events`).
    pub bound: usize,
    /// The coordinator's [`litsynth_core::config_fingerprint`] for this
    /// unit — the worker must reproduce it or NACK.
    pub fingerprint: u64,
    /// `SynthConfig::max_threads` (test threads, suite-relevant).
    pub max_threads: usize,
    /// `SynthConfig::max_addrs`.
    pub max_addrs: usize,
    /// `SynthConfig::exact_canon`.
    pub exact_canon: bool,
    /// `SynthConfig::orphan_unconstrained`.
    pub orphan_unconstrained: bool,
    /// `SynthConfig::max_instances`.
    pub max_instances: usize,
    /// `SynthConfig::time_budget_ms`.
    pub time_budget_ms: u64,
}

impl UnitAssign {
    /// Serializes to `key=value` lines.
    pub fn to_body(&self) -> String {
        format!(
            "key={}\ngrant={}\nseq={}\nattempt={}\nmodel={}\naxiom={}\nbound={}\n\
             fingerprint={:016x}\nmax_threads={}\nmax_addrs={}\nexact_canon={}\n\
             orphan_unconstrained={}\nmax_instances={}\ntime_budget_ms={}\n",
            self.key,
            self.grant,
            self.seq,
            self.attempt,
            self.model,
            self.axiom,
            self.bound,
            self.fingerprint,
            self.max_threads,
            self.max_addrs,
            self.exact_canon,
            self.orphan_unconstrained,
            self.max_instances,
            self.time_budget_ms,
        )
    }

    /// Parses a `UNIT` frame body; unknown keys and bad values are errors
    /// (running a misparsed assignment would waste a lease, or worse).
    pub fn from_body(body: &str) -> Result<UnitAssign, String> {
        let mut a = UnitAssign {
            key: String::new(),
            grant: 0,
            seq: 0,
            attempt: 0,
            model: String::new(),
            axiom: String::new(),
            bound: 0,
            fingerprint: 0,
            max_threads: 0,
            max_addrs: 0,
            exact_canon: false,
            orphan_unconstrained: true,
            max_instances: 0,
            time_budget_ms: 0,
        };
        for line in body.lines().filter(|l| !l.is_empty()) {
            let (k, v) = line
                .split_once('=')
                .ok_or_else(|| format!("unit line {line:?} is not key=value"))?;
            let err = || format!("unit field {k}={v:?} is malformed");
            match k {
                "key" => a.key = v.to_string(),
                "grant" => a.grant = v.parse().map_err(|_| err())?,
                "seq" => a.seq = v.parse().map_err(|_| err())?,
                "attempt" => a.attempt = v.parse().map_err(|_| err())?,
                "model" => a.model = v.to_string(),
                "axiom" => a.axiom = v.to_string(),
                "bound" => a.bound = v.parse().map_err(|_| err())?,
                "fingerprint" => a.fingerprint = u64::from_str_radix(v, 16).map_err(|_| err())?,
                "max_threads" => a.max_threads = v.parse().map_err(|_| err())?,
                "max_addrs" => a.max_addrs = v.parse().map_err(|_| err())?,
                "exact_canon" => a.exact_canon = v.parse().map_err(|_| err())?,
                "orphan_unconstrained" => a.orphan_unconstrained = v.parse().map_err(|_| err())?,
                "max_instances" => a.max_instances = v.parse().map_err(|_| err())?,
                "time_budget_ms" => a.time_budget_ms = v.parse().map_err(|_| err())?,
                other => return Err(format!("unknown unit field {other:?}")),
            }
        }
        if a.key.is_empty() || a.model.is_empty() || a.axiom.is_empty() {
            return Err("unit assignment is missing key/model/axiom".to_string());
        }
        Ok(a)
    }
}

/// A completed unit, worker → coordinator: the echoed lease coordinates
/// plus the [`litsynth_core::encode_unit_result`] payload (which carries
/// its own config fingerprint and content checksum — the coordinator
/// validates both before merging).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnitDone {
    /// The unit's query key.
    pub key: String,
    /// The lease grant this result answers.
    pub grant: u64,
    /// The [`litsynth_core::encode_unit_result`] text.
    pub payload: String,
}

impl UnitDone {
    /// Serializes: two fixed header lines, then the payload verbatim.
    pub fn to_body(&self) -> String {
        format!("key={}\ngrant={}\n{}", self.key, self.grant, self.payload)
    }

    /// Parses a `UNITDONE` frame body (after [`open_body`]).
    pub fn from_body(body: &str) -> Result<UnitDone, String> {
        let mut parts = body.splitn(3, '\n');
        let key = parts
            .next()
            .and_then(|l| l.strip_prefix("key="))
            .ok_or("UNITDONE body does not start with key=")?;
        let grant = parts
            .next()
            .and_then(|l| l.strip_prefix("grant="))
            .ok_or("UNITDONE body has no grant= line")?;
        let payload = parts.next().ok_or("UNITDONE body has no payload")?;
        Ok(UnitDone {
            key: key.to_string(),
            grant: grant
                .parse()
                .map_err(|_| format!("UNITDONE grant {grant:?} is not a number"))?,
            payload: payload.to_string(),
        })
    }
}

/// A declined unit, worker → coordinator: the worker cannot (or will not)
/// run the assignment — unknown model or axiom, config-fingerprint skew.
/// The coordinator re-queues the unit under its attempt budget.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Nack {
    /// The unit's query key.
    pub key: String,
    /// The declined lease grant.
    pub grant: u64,
    /// Human-readable reason, surfaced in coordinator counters/logs.
    pub reason: String,
}

impl Nack {
    /// Serializes to `key=value` lines (the reason must be one line).
    pub fn to_body(&self) -> String {
        format!(
            "key={}\ngrant={}\nreason={}\n",
            self.key,
            self.grant,
            self.reason.replace('\n', " ")
        )
    }

    /// Parses a `NACK` frame body.
    pub fn from_body(body: &str) -> Result<Nack, String> {
        let mut n = Nack {
            key: String::new(),
            grant: 0,
            reason: String::new(),
        };
        for line in body.lines().filter(|l| !l.is_empty()) {
            let (k, v) = line
                .split_once('=')
                .ok_or_else(|| format!("nack line {line:?} is not key=value"))?;
            match k {
                "key" => n.key = v.to_string(),
                "grant" => {
                    n.grant = v
                        .parse()
                        .map_err(|_| format!("nack grant {v:?} is not a number"))?
                }
                "reason" => n.reason = v.to_string(),
                other => return Err(format!("unknown nack field {other:?}")),
            }
        }
        Ok(n)
    }
}

/// A consistency query: is this (test, outcome) witness observable under
/// the named model? The test section is the
/// [`litsynth_litmus::wire`] encoding, so any client that can spell a
/// litmus test can ask without linking the synthesis engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckRequest {
    /// Model name, lower-case: `sc`, `tso`, `power`, `armv7`, `scc`, `c11`.
    pub model: String,
    /// The [`litsynth_litmus::wire::encode`] text of the test + outcome.
    pub test: String,
}

impl CheckRequest {
    /// The cache fingerprint for this request: a versioned FNV-1a over
    /// the model name and the exact test bytes. Both ends compute it the
    /// same way, so a client can pre-key its own result cache.
    pub fn fingerprint(&self) -> u64 {
        fnv1a(format!("litsynth-check v1\n{}\n{}", self.model, self.test).as_bytes())
    }

    /// Serializes: one `model=` line, a blank line, then the test text.
    pub fn to_body(&self) -> String {
        format!("model={}\n\n{}", self.model, self.test)
    }

    /// Parses a `CHECK` frame body.
    pub fn from_body(body: &str) -> Result<CheckRequest, String> {
        let (header, test) = body
            .split_once("\n\n")
            .ok_or_else(|| "CHECK body has no blank line after the header".to_string())?;
        let model = header
            .strip_prefix("model=")
            .ok_or_else(|| "CHECK body does not start with model=".to_string())?;
        if model.is_empty() {
            return Err("CHECK request is missing the model name".to_string());
        }
        Ok(CheckRequest {
            model: model.to_string(),
            test: test.to_string(),
        })
    }
}

/// The server's answer to a `CHECK`: the verdict, and on an inconsistent
/// outcome with a saturation proof, the violated axiom plus the violating
/// cycle (event gids, in cycle order).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckReply {
    /// The request's [`CheckRequest::fingerprint`] (the cache key).
    pub fingerprint: u64,
    /// `true` if this verdict came from the server's check cache.
    pub cached: bool,
    /// `true` iff some allowed execution matches the outcome.
    pub consistent: bool,
    /// The violated axiom, when saturation found an explicit cycle
    /// (empty when consistent, or when inconsistency was shown by
    /// exhausting the coherence extensions instead).
    pub axiom: String,
    /// The violating cycle's event gids (empty without a cycle witness).
    pub cycle: Vec<usize>,
}

impl CheckReply {
    /// Serializes to `key=value` lines.
    pub fn to_body(&self) -> String {
        format!(
            "fingerprint={:016x}\ncached={}\nconsistent={}\naxiom={}\ncycle={}\n",
            self.fingerprint,
            self.cached,
            self.consistent,
            self.axiom,
            self.cycle
                .iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join(","),
        )
    }

    /// Parses a `VERDICT` frame body (after [`open_body`]).
    pub fn from_body(body: &str) -> Result<CheckReply, String> {
        let mut r = CheckReply {
            fingerprint: 0,
            cached: false,
            consistent: false,
            axiom: String::new(),
            cycle: Vec::new(),
        };
        for line in body.lines().filter(|l| !l.is_empty()) {
            let (k, v) = line
                .split_once('=')
                .ok_or_else(|| format!("verdict line {line:?} is not key=value"))?;
            let err = || format!("verdict field {k}={v:?} is malformed");
            match k {
                "fingerprint" => r.fingerprint = u64::from_str_radix(v, 16).map_err(|_| err())?,
                "cached" => r.cached = v.parse().map_err(|_| err())?,
                "consistent" => r.consistent = v.parse().map_err(|_| err())?,
                "axiom" => r.axiom = v.to_string(),
                "cycle" => {
                    r.cycle = v
                        .split(',')
                        .filter(|p| !p.is_empty())
                        .map(|p| p.parse().map_err(|_| err()))
                        .collect::<Result<_, _>>()?
                }
                other => return Err(format!("unknown verdict field {other:?}")),
            }
        }
        Ok(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn frames_round_trip_including_empty_and_multiline_bodies() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "PING", "").unwrap();
        write_frame(&mut buf, "SUITE", "a=1\n\nbody\nwith %% lines\n").unwrap();
        let mut r = BufReader::new(&buf[..]);
        assert_eq!(
            read_frame(&mut r).unwrap(),
            Some(("PING".to_string(), String::new()))
        );
        assert_eq!(
            read_frame(&mut r).unwrap(),
            Some((
                "SUITE".to_string(),
                "a=1\n\nbody\nwith %% lines\n".to_string()
            ))
        );
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn malformed_frames_are_rejected_not_misread() {
        for bad in [
            "PING\n",                              // no length
            "ping 0\n",                            // lower-case verb
            "QUERY x\n",                           // non-numeric length
            &format!("QUERY {}\n", MAX_FRAME + 1), // oversized
        ] {
            let mut r = BufReader::new(bad.as_bytes());
            assert!(read_frame(&mut r).is_err(), "{bad:?} must be rejected");
        }
        // Truncated body: header promises more bytes than the stream has.
        let mut r = BufReader::new(&b"SUITE 10\nabc"[..]);
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn request_and_reply_round_trip_through_their_bodies() {
        let mut req = QueryRequest::sweep("tso", 2, 4);
        req.axioms = vec!["sc_per_loc".to_string(), "causality".to_string()];
        req.budget_ms = 500;
        assert_eq!(QueryRequest::from_body(&req.to_body()), Ok(req.clone()));
        assert!(QueryRequest::from_body("model=tso\nbogus=1\n").is_err());
        assert!(
            QueryRequest::from_body("min_bound=2\n").is_err(),
            "model required"
        );

        let reply = QueryReply {
            fingerprint: 0xdead_beef_0123_4567,
            tests: 12,
            cached: true,
            compilations: 0,
            retries: 3,
            truncated: false,
            degraded: 0,
            suite: "#key k\nbody\n%%\n".to_string(),
        };
        let back = QueryReply::from_body(&reply.to_body()).unwrap();
        assert_eq!(back.fingerprint, reply.fingerprint);
        assert_eq!(back.tests, reply.tests);
        assert!(back.cached);
        assert_eq!(back.suite, reply.suite);

        let p = Progress {
            key: "tso/causality/3".to_string(),
            tests: 2,
            from_journal: true,
        };
        assert_eq!(Progress::from_body(&p.to_body()), Ok(p));
    }

    #[test]
    fn remote_verb_bodies_round_trip_and_reject_junk() {
        let a = UnitAssign {
            key: "tso/causality/3".to_string(),
            grant: 42,
            seq: 7,
            attempt: 1,
            model: "tso".to_string(),
            axiom: "causality".to_string(),
            bound: 3,
            fingerprint: 0xa99549ceee7966bf,
            max_threads: 2,
            max_addrs: 2,
            exact_canon: true,
            orphan_unconstrained: false,
            max_instances: 400,
            time_budget_ms: 0,
        };
        assert_eq!(UnitAssign::from_body(&a.to_body()), Ok(a.clone()));
        assert!(UnitAssign::from_body("key=k\nbogus=1\n").is_err());
        assert!(
            UnitAssign::from_body("grant=1\n").is_err(),
            "key/model/axiom required"
        );
        assert!(UnitAssign::from_body(&a.to_body().replace("grant=42", "grant=x")).is_err());

        let d = UnitDone {
            key: a.key.clone(),
            grant: 42,
            payload: "config 00\nchecksum 00\ntests 0\n\n".to_string(),
        };
        assert_eq!(UnitDone::from_body(&d.to_body()), Ok(d.clone()));
        assert!(UnitDone::from_body("grant=1\npayload").is_err());
        assert!(UnitDone::from_body("key=k\ngrant=zzz\npayload").is_err());

        let n = Nack {
            key: a.key.clone(),
            grant: 9,
            reason: "fingerprint skew".to_string(),
        };
        assert_eq!(Nack::from_body(&n.to_body()), Ok(n.clone()));
        let folded = Nack {
            reason: "two\nlines".to_string(),
            ..n.clone()
        };
        assert_eq!(
            Nack::from_body(&folded.to_body()).unwrap().reason,
            "two lines",
            "newlines in reasons must fold to keep the body parseable"
        );
        assert!(Nack::from_body("key=k\nwhat=1\n").is_err());
    }

    #[test]
    fn check_bodies_round_trip_and_reject_junk() {
        let req = CheckRequest {
            model: "tso".to_string(),
            test: "name=sb\nthread=store,0,relaxed,system\n".to_string(),
        };
        assert_eq!(CheckRequest::from_body(&req.to_body()), Ok(req.clone()));
        assert_eq!(req.fingerprint(), req.fingerprint(), "stable key");
        assert_ne!(
            req.fingerprint(),
            CheckRequest {
                model: "sc".to_string(),
                ..req.clone()
            }
            .fingerprint(),
            "model is part of the key"
        );
        assert!(CheckRequest::from_body("model=tso\nname=x\n").is_err());
        assert!(CheckRequest::from_body("model=\n\nname=x\n").is_err());

        let reply = CheckReply {
            fingerprint: 0x0123_4567_89ab_cdef,
            cached: true,
            consistent: false,
            axiom: "sc_per_loc".to_string(),
            cycle: vec![0, 3, 1],
        };
        assert_eq!(CheckReply::from_body(&reply.to_body()), Ok(reply.clone()));
        let empty = CheckReply {
            fingerprint: 1,
            cached: false,
            consistent: true,
            axiom: String::new(),
            cycle: Vec::new(),
        };
        assert_eq!(CheckReply::from_body(&empty.to_body()), Ok(empty));
        assert!(CheckReply::from_body("consistent=yes\n").is_err());
        assert!(CheckReply::from_body("cycle=1,x\n").is_err());
        assert!(CheckReply::from_body("bogus=1\n").is_err());
    }

    #[test]
    fn sealed_bodies_detect_bit_flips() {
        let body = "#key k\nPo R x 0 | W y 1\n%%\n";
        let sealed = seal_body(body);
        assert_eq!(open_body(&sealed), Ok(body));

        // Flip one payload bit: the digest in the trailer no longer matches.
        let flipped = sealed.replacen("%%", "%$", 1);
        let err = open_body(&flipped).unwrap_err();
        assert!(
            err.contains("checksum mismatch") && err.contains("expected"),
            "error must name the digests: {err}"
        );

        // Corrupt the trailer itself.
        assert!(open_body(body).is_err(), "missing trailer rejected");
        let bad_hex = sealed.replace("#fnv=", "#fnv=zz");
        assert!(open_body(&bad_hex).is_err());

        // Empty payload seals and opens.
        assert_eq!(open_body(&seal_body("")), Ok(""));
    }
}
