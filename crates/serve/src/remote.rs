//! The coordinator side of multi-host sharding: remote workers, leases,
//! reclamation, and graceful degradation to local compute.
//!
//! A worker connects over the ordinary frame protocol and announces
//! itself with `HELLO`; the coordinator answers with the lease terms
//! (`LEASE lease_ms=N`) and the connection thread becomes that worker's
//! dispatcher. Every unit handed out (`UNIT`) carries a fresh **grant
//! id** and runs under a **deadline lease**: the worker must either
//! finish (`UNITDONE`), decline (`NACK`), or renew (`LEASE grant=G`)
//! before the deadline, or the coordinator reclaims the unit — the lease
//! expires, the unit goes back in the queue, and the connection is
//! closed (a worker that stopped renewing is presumed dead or wedged; a
//! straggler answer under the old grant is rejected as stale, so
//! reclamation can never double-merge a unit).
//!
//! Soundness of the merge is the same argument as the local shard layer:
//! results are recorded by the unit's `seq` under first-wins, every
//! accepted `UNITDONE` is validated against the unit's config
//! fingerprint *and* an FNV content checksum, and a query completes only
//! when every unit has a recorded outcome. Lost units are re-queued
//! under a per-unit attempt budget; when the budget is exhausted or no
//! live worker remains, the unit **degrades to the local shard pool**
//! (counted, never silent) — so the served suite is byte-identical to
//! the direct sweep at any mix of remote, local, and killed workers, and
//! a partial suite is never returned.

use crate::protocol::{open_body, read_frame, write_frame, Nack, UnitAssign, UnitDone};
use crate::shard::ShardConfig;
use litsynth_core::{decode_unit_result, run_unit, ProgressEvent, SynthResult, UnitPlan};
use litsynth_models::MemoryModel;
use std::collections::VecDeque;
use std::io::{self, BufReader};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A point-in-time view of the remote tier's counters (all monotone,
/// summed over every worker connection and query).
#[derive(Clone, Copy, Debug, Default)]
pub struct RemoteStats {
    /// Workers that ever completed a `HELLO` registration.
    pub workers_connected: u64,
    /// Workers currently registered.
    pub workers_live: u64,
    /// `UNIT` frames dispatched (including re-dispatches).
    pub units_remote: u64,
    /// Units whose results were accepted from a worker.
    pub completed_remote: u64,
    /// Leases reclaimed for any reason (expiry, disconnect, drop
    /// mid-frame) with the unit re-queued.
    pub reclaimed_leases: u64,
    /// Reclaims specifically caused by a deadline expiring.
    pub lease_expiries: u64,
    /// `NACK` frames received (worker declined a unit).
    pub nacks: u64,
    /// `UNITDONE` frames rejected by validation (fingerprint skew,
    /// checksum mismatch, torn payload).
    pub rejected_results: u64,
    /// `UNITDONE` frames ignored as duplicate or stale (grant no longer
    /// live — the unit already completed or was reclaimed).
    pub duplicate_unitdone: u64,
    /// Units routed to the local shard pool after remote attempts were
    /// exhausted or no live worker remained.
    pub degraded_to_local: u64,
}

#[derive(Default)]
struct Counters {
    workers_connected: AtomicU64,
    units_remote: AtomicU64,
    completed_remote: AtomicU64,
    reclaimed_leases: AtomicU64,
    lease_expiries: AtomicU64,
    nacks: AtomicU64,
    rejected_results: AtomicU64,
    duplicate_unitdone: AtomicU64,
    degraded_to_local: AtomicU64,
}

/// One dispatched (or dispatchable) unit: which batch it belongs to and
/// which slot in that batch.
#[derive(Clone)]
struct Task {
    batch: Arc<Batch>,
    idx: usize,
}

struct PoolState {
    queue: VecDeque<Task>,
    live: usize,
}

/// The coordinator's registry of remote workers plus the global queue of
/// units awaiting remote dispatch. One per server; shared by every
/// query's [`run_batch`] and every worker connection's [`serve_worker`].
pub struct RemotePool {
    /// Lease deadline handed to workers, in milliseconds.
    pub lease_ms: u64,
    /// Remote dispatch attempts per unit before it degrades to local.
    pub remote_attempts: usize,
    state: Mutex<PoolState>,
    task_ready: Condvar,
    grants: AtomicU64,
    counters: Counters,
}

impl RemotePool {
    /// An empty pool with the given lease terms.
    pub fn new(lease_ms: u64, remote_attempts: usize) -> Arc<RemotePool> {
        Arc::new(RemotePool {
            lease_ms: lease_ms.max(1),
            remote_attempts: remote_attempts.max(1),
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                live: 0,
            }),
            task_ready: Condvar::new(),
            grants: AtomicU64::new(1),
            counters: Counters::default(),
        })
    }

    /// Workers currently registered.
    pub fn live(&self) -> usize {
        lock(&self.state).live
    }

    /// Snapshot of the remote tier's counters.
    pub fn stats(&self) -> RemoteStats {
        let c = &self.counters;
        RemoteStats {
            workers_connected: c.workers_connected.load(Ordering::Relaxed),
            workers_live: self.live() as u64,
            units_remote: c.units_remote.load(Ordering::Relaxed),
            completed_remote: c.completed_remote.load(Ordering::Relaxed),
            reclaimed_leases: c.reclaimed_leases.load(Ordering::Relaxed),
            lease_expiries: c.lease_expiries.load(Ordering::Relaxed),
            nacks: c.nacks.load(Ordering::Relaxed),
            rejected_results: c.rejected_results.load(Ordering::Relaxed),
            duplicate_unitdone: c.duplicate_unitdone.load(Ordering::Relaxed),
            degraded_to_local: c.degraded_to_local.load(Ordering::Relaxed),
        }
    }

    fn push(&self, task: Task) {
        lock(&self.state).queue.push_back(task);
        self.task_ready.notify_one();
    }

    fn pop(&self, wait: Duration) -> Option<Task> {
        let mut st = lock(&self.state);
        if let Some(t) = st.queue.pop_front() {
            return Some(t);
        }
        let (mut st, _) = self
            .task_ready
            .wait_timeout(st, wait)
            .unwrap_or_else(|e| e.into_inner());
        st.queue.pop_front()
    }

    /// Routes every queued task to its batch's local fallback. Called
    /// when the last worker deregisters and by the batch wait loop as a
    /// race guard (a task pushed just as the last worker died).
    fn drain_to_local(&self) {
        let drained: Vec<Task> = lock(&self.state).queue.drain(..).collect();
        for task in drained {
            self.route_local(&task);
        }
    }

    fn route_local(&self, task: &Task) {
        let mut st = lock(&task.batch.state);
        if st.results[task.idx].is_some() {
            return;
        }
        st.granted[task.idx] = None;
        st.local_queue.push(task.idx);
        self.counters
            .degraded_to_local
            .fetch_add(1, Ordering::Relaxed);
        task.batch.progress_cv.notify_all();
    }

    /// Records a failed remote attempt: re-queue for another worker while
    /// the attempt budget and a live worker remain, otherwise degrade the
    /// unit to the batch's local fallback queue.
    fn fail_attempt(&self, task: &Task, grant: u64) {
        let go_remote = {
            let mut st = lock(&task.batch.state);
            if st.granted[task.idx] != Some(grant) || st.results[task.idx].is_some() {
                return; // stale failure: the unit moved on without us
            }
            st.granted[task.idx] = None;
            st.tries[task.idx] += 1;
            st.tries[task.idx] < self.remote_attempts && self.live() > 0
        };
        if go_remote {
            self.push(task.clone());
        } else {
            self.route_local(task);
        }
    }
}

struct BatchState {
    results: Vec<Option<SynthResult>>,
    /// Remote dispatch attempts consumed, per unit.
    tries: Vec<usize>,
    /// The currently-live grant per unit; `None` when the unit is not
    /// out on a lease. An answer under any other grant is stale.
    granted: Vec<Option<u64>>,
    /// Units routed to the local fallback, drained by [`run_batch`].
    local_queue: Vec<usize>,
    /// Units completed remotely (accepted `UNITDONE`s).
    remote_done: u64,
    /// Units completed by the local fallback.
    local_done: u64,
    completed: usize,
    failed: Vec<String>,
}

/// One query's worth of units being distributed. Shared (via `Arc`)
/// between the query's [`run_batch`] call and every worker connection
/// that happens to serve one of its units.
struct Batch {
    /// The request's model name (`tso`, `armv7`, …) — shipped in every
    /// `UNIT` so the worker can dispatch the same concrete model.
    model: String,
    plans: Vec<UnitPlan>,
    state: Mutex<BatchState>,
    progress_cv: Condvar,
}

impl Batch {
    /// Claims `idx` under a fresh grant and builds its `UNIT` body, or
    /// `None` if the unit already has a result.
    fn assign(&self, idx: usize, grant: u64) -> Option<UnitAssign> {
        let mut st = lock(&self.state);
        if st.results[idx].is_some() {
            return None;
        }
        st.granted[idx] = Some(grant);
        let attempt = st.tries[idx];
        drop(st);
        let p = &self.plans[idx];
        Some(UnitAssign {
            key: p.unit.key.to_string(),
            grant,
            seq: p.unit.seq,
            attempt,
            model: self.model.clone(),
            axiom: p.axiom.to_string(),
            bound: p.bound,
            fingerprint: p.unit.fingerprint,
            max_threads: p.cfg.max_threads,
            max_addrs: p.cfg.max_addrs,
            exact_canon: p.cfg.exact_canon,
            orphan_unconstrained: p.cfg.orphan_unconstrained,
            max_instances: p.cfg.max_instances,
            time_budget_ms: p.cfg.time_budget_ms,
        })
    }

    /// Records a validated remote result under first-wins, then journals
    /// it and emits the unit's progress event exactly as a local run
    /// would. Returns `false` for a stale or duplicate grant.
    fn complete_remote(&self, idx: usize, grant: u64, r: SynthResult) -> bool {
        let p = &self.plans[idx];
        // The worker runs journal-less; the coordinator owns persistence.
        // Same rule as everywhere else: incomplete results are never
        // checkpointed — a retry must get the chance to do better.
        // (Journaling before the staleness check is harmless: a stale
        // result passed the same fingerprint+checksum validation, so the
        // entry it writes is the entry the live result writes.)
        if !r.truncated && r.degraded == 0 {
            if let Some(journal) = &p.cfg.journal {
                let _ = journal.record(&p.unit.key, p.unit.fingerprint, &r.tests);
            }
        }
        let event = ProgressEvent {
            key: p.unit.key.to_string(),
            tests: r.tests.len(),
            from_journal: false,
            elapsed: r.elapsed,
        };
        let mut st = lock(&self.state);
        if st.granted[idx] != Some(grant) || st.results[idx].is_some() {
            return false;
        }
        st.granted[idx] = None;
        st.remote_done += 1;
        st.completed += 1;
        st.results[idx] = Some(r);
        // Emit under the batch lock: the frame must be on the wire before
        // the run_batch waiter can observe the batch as complete and send
        // SUITE (local runs get this for free — run_unit emits before the
        // result is recorded). The sink only takes the client-writer
        // mutex, and nothing acquires this lock while holding that one.
        if let Some(progress) = &p.cfg.progress {
            progress.emit(&event);
        }
        self.progress_cv.notify_all();
        true
    }

    fn record_local(&self, idx: usize, outcome: Result<SynthResult, String>) {
        let mut st = lock(&self.state);
        if st.results[idx].is_some() {
            return;
        }
        match outcome {
            Ok(r) => {
                st.results[idx] = Some(r);
                st.local_done += 1;
            }
            Err(key) => st.failed.push(key),
        }
        st.completed += 1;
        self.progress_cv.notify_all();
    }
}

/// Per-query counters for one [`run_batch`] call.
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchStats {
    /// Units completed by remote workers.
    pub remote_done: u64,
    /// Units completed by the local fallback (degraded).
    pub local_done: u64,
    /// Units replayed from the coordinator's journal (zero dispatch).
    pub journal_done: u64,
}

/// Runs every planned unit through the remote worker pool, degrading to
/// local compute as needed, and returns the per-unit results **in seq
/// order**. `Err` lists units that failed even locally — partial suites
/// are never returned.
pub(crate) fn run_batch<M: MemoryModel + Sync>(
    model: &M,
    request_model: &str,
    plans: &[UnitPlan],
    shard_cfg: &ShardConfig,
    pool: &Arc<RemotePool>,
) -> Result<(Vec<SynthResult>, BatchStats), String> {
    let total = plans.len();
    let mut stats = BatchStats::default();
    if total == 0 {
        return Ok((Vec::new(), stats));
    }
    let batch = Arc::new(Batch {
        model: request_model.to_string(),
        plans: plans.to_vec(),
        state: Mutex::new(BatchState {
            results: plans.iter().map(|_| None).collect(),
            tries: vec![0; total],
            granted: vec![None; total],
            local_queue: Vec::new(),
            remote_done: 0,
            local_done: 0,
            completed: 0,
            failed: Vec::new(),
        }),
        progress_cv: Condvar::new(),
    });
    // Journal prefill: replay checkpointed units coordinator-side before
    // anything crosses the wire (workers run journal-less).
    for (idx, p) in plans.iter().enumerate() {
        let hit = p
            .cfg
            .journal
            .as_ref()
            .and_then(|j| j.lookup(&p.unit.key, p.unit.fingerprint));
        if let Some(tests) = hit {
            let count = tests.len();
            let mut r = SynthResult::carrying(tests);
            r.from_journal = true;
            {
                let mut st = lock(&batch.state);
                st.results[idx] = Some(r);
                st.completed += 1;
            }
            stats.journal_done += 1;
            if let Some(progress) = &p.cfg.progress {
                progress.emit(&ProgressEvent {
                    key: p.unit.key.to_string(),
                    tests: count,
                    from_journal: true,
                    elapsed: Duration::ZERO,
                });
            }
        } else {
            pool.push(Task {
                batch: batch.clone(),
                idx,
            });
        }
    }
    // This thread is the local fallback executor: it drains the batch's
    // degraded queue while worker connections serve the rest, and it
    // guards against the last worker dying with units still queued.
    let mut st = lock(&batch.state);
    while st.completed < total {
        if let Some(idx) = st.local_queue.pop() {
            drop(st);
            batch.record_local(idx, local_attempts(model, &plans[idx], shard_cfg));
            st = lock(&batch.state);
            continue;
        }
        drop(st);
        if pool.live() == 0 {
            pool.drain_to_local();
        }
        st = lock(&batch.state);
        if st.completed >= total || !st.local_queue.is_empty() {
            continue;
        }
        st = batch
            .progress_cv
            .wait_timeout(st, Duration::from_millis(50))
            .unwrap_or_else(|e| e.into_inner())
            .0;
    }
    if !st.failed.is_empty() {
        let mut failed = st.failed.clone();
        failed.sort();
        return Err(format!(
            "units failed after exhausting remote and local budgets: {}",
            failed.join(", ")
        ));
    }
    stats.remote_done = st.remote_done;
    stats.local_done = st.local_done;
    let results = st
        .results
        .iter_mut()
        .map(|r| r.take().expect("no failures, so every unit completed"))
        .collect();
    Ok((results, stats))
}

/// Runs one unit locally under the shard layer's crash budget. A panic
/// counts as one attempt; exhausting the budget fails the unit by key.
fn local_attempts<M: MemoryModel + Sync>(
    model: &M,
    plan: &UnitPlan,
    shard_cfg: &ShardConfig,
) -> Result<SynthResult, String> {
    for _ in 0..shard_cfg.max_unit_attempts.max(1) {
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_unit(model, plan)));
        if let Ok(r) = run {
            return Ok(r);
        }
    }
    Err(plan.unit.key.to_string())
}

/// What ended one unit's lease on a worker connection.
enum LeaseEnd {
    /// Validated result accepted.
    Done,
    /// Worker declined or returned an invalid result; the connection
    /// stays up and the unit is re-queued.
    Failed,
    /// Lease deadline passed with no result, renewal, or NACK.
    Expired,
    /// Connection died (EOF, IO error, or protocol violation).
    Dead,
}

/// Serves one registered worker: pops units off the pool queue, leases
/// them out, and polices the lease until the worker answers or the
/// deadline passes. Runs on the worker's connection thread (the server
/// hands over after the `HELLO`); returns when the connection dies, a
/// lease expires, or the server stops.
pub(crate) fn serve_worker(
    pool: &Arc<RemotePool>,
    reader: &mut BufReader<TcpStream>,
    writer: &Arc<Mutex<TcpStream>>,
    stop: &AtomicBool,
) -> io::Result<()> {
    {
        let mut w = lock(writer);
        write_frame(&mut *w, "LEASE", &format!("lease_ms={}\n", pool.lease_ms))?;
    }
    {
        let mut st = lock(&pool.state);
        st.live += 1;
    }
    pool.counters
        .workers_connected
        .fetch_add(1, Ordering::Relaxed);
    let outcome = worker_loop(pool, reader, writer, stop);
    let drained = {
        let mut st = lock(&pool.state);
        st.live -= 1;
        st.live == 0
    };
    if drained {
        // Last worker gone: nothing will ever pop the queue again, so
        // every pending unit degrades to its batch's local fallback.
        pool.drain_to_local();
    }
    outcome
}

fn worker_loop(
    pool: &Arc<RemotePool>,
    reader: &mut BufReader<TcpStream>,
    writer: &Arc<Mutex<TcpStream>>,
    stop: &AtomicBool,
) -> io::Result<()> {
    let lease = Duration::from_millis(pool.lease_ms);
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        let Some(task) = pool.pop(Duration::from_millis(50)) else {
            continue;
        };
        let grant = pool.grants.fetch_add(1, Ordering::Relaxed);
        let Some(assign) = task.batch.assign(task.idx, grant) else {
            continue; // unit finished while queued
        };
        pool.counters.units_remote.fetch_add(1, Ordering::Relaxed);
        {
            let mut w = lock(writer);
            if write_frame(&mut *w, "UNIT", &assign.to_body()).is_err() {
                pool.counters
                    .reclaimed_leases
                    .fetch_add(1, Ordering::Relaxed);
                pool.fail_attempt(&task, grant);
                return Ok(());
            }
        }
        match police_lease(pool, reader, writer, &task, &assign, lease) {
            LeaseEnd::Done => {}
            LeaseEnd::Failed => pool.fail_attempt(&task, grant),
            LeaseEnd::Expired => {
                pool.counters
                    .reclaimed_leases
                    .fetch_add(1, Ordering::Relaxed);
                pool.fail_attempt(&task, grant);
                // A worker that went silent past its lease is presumed
                // dead or wedged; drop the connection so a straggler
                // answer can't tie up this thread.
                return Ok(());
            }
            LeaseEnd::Dead => {
                pool.counters
                    .reclaimed_leases
                    .fetch_add(1, Ordering::Relaxed);
                pool.fail_attempt(&task, grant);
                return Ok(());
            }
        }
    }
}

/// Reads frames for one outstanding lease until it resolves. Renewals
/// (`LEASE grant=G`) push the deadline; stale `UNITDONE`s from earlier
/// grants are counted and skipped; validation failures send the worker
/// an `ERR` naming the digests and fail the attempt.
fn police_lease(
    pool: &Arc<RemotePool>,
    reader: &mut BufReader<TcpStream>,
    writer: &Arc<Mutex<TcpStream>>,
    task: &Task,
    assign: &UnitAssign,
    lease: Duration,
) -> LeaseEnd {
    let c = &pool.counters;
    let mut deadline = Instant::now() + lease;
    loop {
        let frame = match read_frame(reader) {
            Ok(Some(f)) => f,
            Ok(None) => return LeaseEnd::Dead,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if Instant::now() > deadline {
                    c.lease_expiries.fetch_add(1, Ordering::Relaxed);
                    return LeaseEnd::Expired;
                }
                continue;
            }
            Err(_) => return LeaseEnd::Dead,
        };
        match frame.0.as_str() {
            "LEASE" => {
                let renewed = frame
                    .1
                    .lines()
                    .find_map(|l| l.strip_prefix("grant="))
                    .and_then(|g| g.parse::<u64>().ok());
                if renewed == Some(assign.grant) {
                    deadline = Instant::now() + lease;
                }
            }
            "NACK" => match Nack::from_body(&frame.1) {
                Ok(n) if n.grant == assign.grant => {
                    c.nacks.fetch_add(1, Ordering::Relaxed);
                    return LeaseEnd::Failed;
                }
                Ok(_) => {
                    c.duplicate_unitdone.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => return LeaseEnd::Dead,
            },
            "UNITDONE" => {
                let verdict = open_body(&frame.1)
                    .and_then(UnitDone::from_body)
                    .and_then(|done| {
                        if done.grant != assign.grant {
                            return Err(String::new()); // stale, not corrupt
                        }
                        if done.key != assign.key {
                            return Err(format!(
                                "UNITDONE for {} while {} was leased",
                                done.key, assign.key
                            ));
                        }
                        decode_unit_result(&done.payload, assign.fingerprint)
                    });
                match verdict {
                    Ok(result) => {
                        if task.batch.complete_remote(task.idx, assign.grant, result) {
                            c.completed_remote.fetch_add(1, Ordering::Relaxed);
                            return LeaseEnd::Done;
                        }
                        c.duplicate_unitdone.fetch_add(1, Ordering::Relaxed);
                        return LeaseEnd::Done;
                    }
                    Err(reason) if reason.is_empty() => {
                        // A duplicate or reclaimed-lease straggler:
                        // ignore it, the live lease is still out.
                        c.duplicate_unitdone.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(reason) => {
                        c.rejected_results.fetch_add(1, Ordering::Relaxed);
                        let mut w = lock(writer);
                        let _ = write_frame(
                            &mut *w,
                            "ERR",
                            &format!("rejected UNITDONE for {}: {reason}", assign.key),
                        );
                        return LeaseEnd::Failed;
                    }
                }
            }
            _ => return LeaseEnd::Dead, // protocol violation mid-lease
        }
    }
}
