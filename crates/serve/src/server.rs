//! The query server: cache tier, coalescing, shard dispatch, streaming.
//!
//! A `QUERY` is answered in three tiers:
//!
//! 1. **Suite cache** (in-memory, byte-capped LRU, keyed by
//!    [`suite_fingerprint`]) — warm queries return the cached body with
//!    zero solver work.
//! 2. **Journal** (on-disk, size-capped, [`litsynth_core::Journal`]) —
//!    after a restart the cache is cold but every journaled unit replays
//!    with zero compilations; the rebuilt body is re-cached.
//! 3. **Shard layer** ([`run_sharded`]) — genuinely cold units are
//!    synthesized under the resilient portfolio runner, streaming one
//!    `PROGRESS` frame per completed unit, and merged in seq order so
//!    the served suite is byte-identical to a direct
//!    [`litsynth_core::synthesize_union_up_to`] call.
//!
//! Identical concurrent cold queries coalesce: one connection computes,
//! the rest block on the in-flight set and serve the freshly cached body.
//! Truncated or degraded results are served but never cached — a later
//! retry must get the chance to do better.

use crate::cache::{suite_fingerprint, CacheStats, SuiteCache};
use crate::models::{self, ModelOp};
use crate::protocol::{
    read_frame, seal_body, write_frame, CheckRequest, Progress, QueryReply, QueryRequest,
};
use crate::remote::{BatchStats, RemotePool, RemoteStats};
use crate::shard::{plan_query, run_distributed, ShardConfig, ShardFault, ShardRunStats};
use litsynth_core::{
    encode_suite_body, merge_unit_suites, CanonicalSuite, Journal, ProgressSink, SynthConfig,
    UnitPlan,
};
use litsynth_models::MemoryModel;
use litsynth_sat::FaultPlan;
use std::collections::HashSet;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Server knobs. Everything is an explicit field — never an environment
/// variable — so tests can run many differently-configured servers in
/// one process.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free loopback port.
    pub addr: String,
    /// Shard worker threads per cold query.
    pub shards: usize,
    /// Solver threads per unit (multiplies with `shards`).
    pub unit_threads: usize,
    /// Cube-split bits per unit (see `SynthConfig::cube_bits`).
    pub cube_bits: usize,
    /// Suite-cache capacity in body bytes.
    pub cache_bytes: usize,
    /// Journal directory for the persistent tier (`None` = no journal).
    pub journal_dir: Option<PathBuf>,
    /// Journal size cap in bytes (`None` = uncapped).
    pub journal_cap_bytes: Option<u64>,
    /// Largest `max_bound` a request may ask for.
    pub max_bound: usize,
    /// Crash-retries per unit in the shard layer.
    pub max_unit_attempts: usize,
    /// Deadline lease handed to remote workers, in milliseconds: a
    /// leased unit with no result, `NACK`, or renewal inside this window
    /// is reclaimed and re-queued.
    pub lease_ms: u64,
    /// Remote dispatch attempts per unit before it degrades to the local
    /// shard pool.
    pub remote_attempts: usize,
    /// Idle deadline per client connection, in milliseconds: a
    /// connection with no frame (a `PING` counts) inside this window is
    /// reaped. `0` disables the reaper.
    pub idle_timeout_ms: u64,
    /// Cube-level fault injection for every unit (tests only).
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Shard-kill fault injection (tests only).
    pub shard_fault: Option<ShardFault>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            shards: 2,
            unit_threads: 1,
            cube_bits: 0,
            cache_bytes: 64 << 20,
            journal_dir: None,
            journal_cap_bytes: None,
            max_bound: 5,
            max_unit_attempts: 3,
            lease_ms: 10_000,
            remote_attempts: 3,
            idle_timeout_ms: 600_000,
            fault_plan: None,
            shard_fault: None,
        }
    }
}

#[derive(Default)]
struct Counters {
    queries: AtomicU64,
    coalesced: AtomicU64,
    compilations: AtomicU64,
    solver_retries: AtomicU64,
    shard_claimed_local: AtomicU64,
    shard_stolen: AtomicU64,
    shard_reassigned: AtomicU64,
    shard_respawns: AtomicU64,
    shard_heartbeats: AtomicU64,
    idle_reaped: AtomicU64,
    check_requests: AtomicU64,
    check_cache_hits: AtomicU64,
    check_inconsistent: AtomicU64,
}

/// A point-in-time view of the server's counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerStats {
    /// `QUERY` frames handled (hit or miss).
    pub queries: u64,
    /// Queries that waited on an identical in-flight computation.
    pub coalesced: u64,
    /// Circuit→CNF compilations spent on cold queries.
    pub compilations: u64,
    /// Cube attempts retried by the resilient runner.
    pub solver_retries: u64,
    /// Suite-cache counters.
    pub cache: CacheStats,
    /// Shard-layer counters, summed over cold queries.
    pub shard: ShardRunStats,
    /// Remote-tier counters (workers, leases, degradation).
    pub remote: RemoteStats,
    /// Connections reaped by the idle deadline.
    pub idle_reaped: u64,
    /// `CHECK` frames handled (hit or miss).
    pub check_requests: u64,
    /// `CHECK` verdicts served from the check cache.
    pub check_cache_hits: u64,
    /// `CHECK` verdicts (fresh or cached) that were inconsistent.
    pub check_inconsistent: u64,
}

struct Shared {
    cfg: ServeConfig,
    cache: SuiteCache,
    check_cache: SuiteCache,
    journal: Option<Arc<Journal>>,
    pool: Arc<RemotePool>,
    counters: Counters,
    inflight: Mutex<HashSet<u64>>,
    inflight_done: Condvar,
    stop: AtomicBool,
}

/// A running server. Dropping it shuts it down.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the accept loop, and returns. With the default
    /// `127.0.0.1:0` address, [`Server::addr`] reports the picked port.
    pub fn start(cfg: ServeConfig) -> io::Result<Server> {
        let journal = match (&cfg.journal_dir, cfg.journal_cap_bytes) {
            (None, _) => None,
            (Some(dir), None) => Some(Journal::open(dir)?),
            (Some(dir), Some(cap)) => Some(Journal::open_capped(dir, cap)?),
        };
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            cache: SuiteCache::new(cfg.cache_bytes),
            // Verdict bodies are a few dozen bytes; a modest fixed cap
            // holds millions of them without a config knob.
            check_cache: SuiteCache::new(4 << 20),
            pool: RemotePool::new(cfg.lease_ms, cfg.remote_attempts),
            cfg,
            journal,
            counters: Counters::default(),
            inflight: Mutex::new(HashSet::new()),
            inflight_done: Condvar::new(),
            stop: AtomicBool::new(false),
        });
        let accept = {
            let shared = shared.clone();
            std::thread::spawn(move || accept_loop(listener, shared))
        };
        Ok(Server {
            addr,
            shared,
            accept: Some(accept),
        })
    }

    /// The bound address (with the real port when `addr` asked for 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the server's counters.
    pub fn stats(&self) -> ServerStats {
        stats_of(&self.shared)
    }

    /// Stops accepting, waits for in-flight connections, and returns.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop();
        }
    }
}

fn stats_of(shared: &Shared) -> ServerStats {
    let c = &shared.counters;
    ServerStats {
        queries: c.queries.load(Ordering::Relaxed),
        coalesced: c.coalesced.load(Ordering::Relaxed),
        compilations: c.compilations.load(Ordering::Relaxed),
        solver_retries: c.solver_retries.load(Ordering::Relaxed),
        cache: shared.cache.stats(),
        shard: ShardRunStats {
            claimed_local: c.shard_claimed_local.load(Ordering::Relaxed),
            stolen: c.shard_stolen.load(Ordering::Relaxed),
            completed: 0,
            reassigned: c.shard_reassigned.load(Ordering::Relaxed),
            respawns: c.shard_respawns.load(Ordering::Relaxed),
            heartbeats: c.shard_heartbeats.load(Ordering::Relaxed),
        },
        remote: shared.pool.stats(),
        idle_reaped: c.idle_reaped.load(Ordering::Relaxed),
        check_requests: c.check_requests.load(Ordering::Relaxed),
        check_cache_hits: c.check_cache_hits.load(Ordering::Relaxed),
        check_inconsistent: c.check_inconsistent.load(Ordering::Relaxed),
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = shared.clone();
        conns.push(std::thread::spawn(move || {
            let _ = handle_conn(&shared, stream);
        }));
        conns.retain(|h| !h.is_finished());
    }
    for h in conns {
        let _ = h.join();
    }
}

fn handle_conn(shared: &Shared, stream: TcpStream) -> io::Result<()> {
    // A short read timeout keeps idle keep-alive connections from
    // pinning shutdown; timeouts re-check the stop flag and the
    // connection's idle deadline.
    stream.set_read_timeout(Some(Duration::from_millis(200)))?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let writer = Arc::new(Mutex::new(stream));
    let send = |verb: &str, body: &str| -> io::Result<()> {
        write_frame(
            &mut *writer.lock().unwrap_or_else(|e| e.into_inner()),
            verb,
            body,
        )
    };
    let idle_cap = Duration::from_millis(shared.cfg.idle_timeout_ms);
    let mut last_frame = std::time::Instant::now();
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(f) => f,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if shared.stop.load(Ordering::SeqCst) {
                    return Ok(());
                }
                if !idle_cap.is_zero() && last_frame.elapsed() > idle_cap {
                    shared.counters.idle_reaped.fetch_add(1, Ordering::Relaxed);
                    let _ = send("ERR", "connection reaped: idle deadline passed");
                    return Ok(());
                }
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                let _ = send("ERR", &format!("protocol error: {e}"));
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        let Some((verb, body)) = frame else {
            return Ok(());
        };
        last_frame = std::time::Instant::now();
        match verb.as_str() {
            "PING" => send("PONG", "")?,
            "STATS" => send("STATS", &stats_body(shared))?,
            "QUERY" => match handle_query(shared, &body, &writer) {
                Ok(reply) => send("SUITE", &seal_body(&reply.to_body()))?,
                Err(msg) => send("ERR", &msg)?,
            },
            "CHECK" => match handle_check(shared, &body) {
                Ok(reply) => send("VERDICT", &seal_body(&reply))?,
                Err(msg) => send("ERR", &msg)?,
            },
            // A worker announced itself: this connection thread becomes
            // the worker's dispatcher until the connection dies.
            "HELLO" => {
                return crate::remote::serve_worker(
                    &shared.pool,
                    &mut reader,
                    &writer,
                    &shared.stop,
                )
            }
            other => send("ERR", &format!("unsupported verb {other:?}"))?,
        }
    }
}

fn stats_body(shared: &Shared) -> String {
    let s = stats_of(shared);
    format!(
        "queries={}\ncoalesced={}\ncompilations={}\nsolver_retries={}\n\
         cache_hits={}\ncache_misses={}\ncache_evictions={}\ncache_entries={}\n\
         cache_bytes={}\nshard_claimed_local={}\nshard_stolen={}\nshard_reassigned={}\n\
         shard_respawns={}\nshard_heartbeats={}\nengage_downgrades={}\n\
         remote_workers_connected={}\nremote_workers_live={}\nremote_units={}\n\
         remote_completed={}\nremote_reclaimed_leases={}\nremote_lease_expiries={}\n\
         remote_nacks={}\nremote_rejected_results={}\nremote_duplicate_unitdone={}\n\
         remote_degraded_to_local={}\nidle_reaped={}\ncheck_requests={}\n\
         check_cache_hits={}\ncheck_inconsistent={}\n",
        s.queries,
        s.coalesced,
        s.compilations,
        s.solver_retries,
        s.cache.hits,
        s.cache.misses,
        s.cache.evictions,
        s.cache.entries,
        s.cache.bytes,
        s.shard.claimed_local,
        s.shard.stolen,
        s.shard.reassigned,
        s.shard.respawns,
        s.shard.heartbeats,
        litsynth_core::engage_downgrades(),
        s.remote.workers_connected,
        s.remote.workers_live,
        s.remote.units_remote,
        s.remote.completed_remote,
        s.remote.reclaimed_leases,
        s.remote.lease_expiries,
        s.remote.nacks,
        s.remote.rejected_results,
        s.remote.duplicate_unitdone,
        s.remote.degraded_to_local,
        s.idle_reaped,
        s.check_requests,
        s.check_cache_hits,
        s.check_inconsistent,
    )
}

/// Answers a `CHECK`: parse, consult the fingerprint-keyed verdict
/// cache, and on a miss run the polynomial consistency checker
/// ([`litsynth_models::check`]) — never the enumeration oracle — caching
/// the verdict core (everything but the per-reply `fingerprint`/`cached`
/// lines) for warm repeats.
fn handle_check(shared: &Shared, body: &str) -> Result<String, String> {
    let c = &shared.counters;
    c.check_requests.fetch_add(1, Ordering::Relaxed);
    let req = CheckRequest::from_body(body)?;
    let fingerprint = req.fingerprint();
    if let Some((core, _)) = shared.check_cache.get(fingerprint) {
        c.check_cache_hits.fetch_add(1, Ordering::Relaxed);
        if core.starts_with("consistent=false") {
            c.check_inconsistent.fetch_add(1, Ordering::Relaxed);
        }
        return Ok(format!(
            "fingerprint={fingerprint:016x}\ncached=true\n{core}"
        ));
    }
    let (test, outcome) =
        litsynth_litmus::wire::decode(&req.test).map_err(|e| format!("bad CHECK test: {e}"))?;
    struct CheckOp<'a> {
        test: &'a litsynth_litmus::LitmusTest,
        outcome: &'a litsynth_litmus::Outcome,
    }
    impl ModelOp for CheckOp<'_> {
        type Out = litsynth_models::check::Verdict;
        fn run<M: MemoryModel + Sync>(self, model: &M) -> Self::Out {
            litsynth_models::check::check_outcome(model, self.test, self.outcome)
        }
    }
    let verdict = models::dispatch(
        &req.model,
        CheckOp {
            test: &test,
            outcome: &outcome,
        },
    )?;
    use litsynth_models::check::Verdict;
    let (consistent, axiom, cycle) = match verdict {
        Verdict::Consistent => (true, String::new(), Vec::new()),
        Verdict::Inconsistent(None) => (false, String::new(), Vec::new()),
        Verdict::Inconsistent(Some(w)) => (false, w.axiom, w.events),
    };
    if !consistent {
        c.check_inconsistent.fetch_add(1, Ordering::Relaxed);
    }
    let core = format!(
        "consistent={consistent}\naxiom={axiom}\ncycle={}\n",
        cycle
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(","),
    );
    shared
        .check_cache
        .put(fingerprint, Arc::new(core.clone()), usize::from(consistent));
    Ok(format!(
        "fingerprint={fingerprint:016x}\ncached=false\n{core}"
    ))
}

/// Plans a request against its model: validates the axiom set and builds
/// the fingerprinted unit list in deterministic merge order.
struct Plan<'a> {
    shared: &'a Shared,
    req: &'a QueryRequest,
    progress: Option<ProgressSink>,
}

impl ModelOp for Plan<'_> {
    type Out = Result<Vec<UnitPlan>, String>;
    fn run<M: MemoryModel + Sync>(self, model: &M) -> Self::Out {
        let axioms: Vec<&'static str> = if self.req.axioms.is_empty() {
            model.axioms().to_vec()
        } else {
            for a in &self.req.axioms {
                if !model.axioms().contains(&a.as_str()) {
                    return Err(format!(
                        "model {} has no axiom {a:?} (axioms: {})",
                        self.req.model,
                        model.axioms().join(", ")
                    ));
                }
            }
            // Model order, not request order: the unit list (and with it
            // the fingerprint and the merge) must not depend on how the
            // client spelled the set.
            model
                .axioms()
                .iter()
                .copied()
                .filter(|a| self.req.axioms.iter().any(|w| w == a))
                .collect()
        };
        let cfg = &self.shared.cfg;
        let (journal, fault, progress, budget) = (
            self.shared.journal.clone(),
            cfg.fault_plan.clone(),
            self.progress,
            self.req.budget_ms,
        );
        Ok(plan_query(
            model,
            &axioms,
            self.req.min_bound..=self.req.max_bound,
            move |n| {
                let mut c = SynthConfig::new(n)
                    .with_threads(cfg.unit_threads)
                    .with_cube_bits(cfg.cube_bits)
                    .with_journal(journal.clone())
                    .with_fault_plan(fault.clone())
                    .with_progress(progress.clone());
                c.time_budget_ms = budget;
                c
            },
        ))
    }
}

/// Runs a planned cold query through the distributed dispatcher: remote
/// workers when any are live, the local shard pool otherwise.
struct Execute<'a> {
    request_model: &'a str,
    plans: &'a [UnitPlan],
    shard: ShardConfig,
    pool: &'a Arc<RemotePool>,
}

impl ModelOp for Execute<'_> {
    type Out = Result<(Vec<litsynth_core::SynthResult>, ShardRunStats, BatchStats), String>;
    fn run<M: MemoryModel + Sync>(self, model: &M) -> Self::Out {
        run_distributed(
            model,
            self.request_model,
            self.plans,
            &self.shard,
            Some(self.pool),
        )
    }
}

fn handle_query(
    shared: &Shared,
    body: &str,
    writer: &Arc<Mutex<TcpStream>>,
) -> Result<QueryReply, String> {
    shared.counters.queries.fetch_add(1, Ordering::Relaxed);
    let req = QueryRequest::from_body(body)?;
    if req.min_bound < 2 {
        return Err("min_bound must be at least 2".to_string());
    }
    if req.max_bound < req.min_bound {
        return Err("max_bound must be at least min_bound".to_string());
    }
    if req.max_bound > shared.cfg.max_bound {
        return Err(format!(
            "max_bound {} exceeds this server's cap of {}",
            req.max_bound, shared.cfg.max_bound
        ));
    }
    // Stream one PROGRESS frame per completed (axiom, bound) unit. Write
    // failures are ignored: progress is advisory, the SUITE frame is the
    // reply.
    let progress = {
        let writer = writer.clone();
        ProgressSink::new(move |e| {
            let p = Progress {
                key: e.key.clone(),
                tests: e.tests,
                from_journal: e.from_journal,
            };
            let mut w = writer.lock().unwrap_or_else(|p| p.into_inner());
            let _ = write_frame(&mut *w, "PROGRESS", &p.to_body());
        })
    };
    let plans = models::dispatch(
        &req.model,
        Plan {
            shared,
            req: &req,
            progress: Some(progress),
        },
    )??;
    let fingerprint = suite_fingerprint(plans.iter().map(|p| &p.unit));

    // Warm tier, with coalescing: if an identical query is already being
    // computed on another connection, wait for it instead of redoing it.
    let mut waited = false;
    {
        let mut inflight = shared.inflight.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some((body, tests)) = shared.cache.get(fingerprint) {
                if waited {
                    shared.counters.coalesced.fetch_add(1, Ordering::Relaxed);
                }
                return Ok(QueryReply {
                    fingerprint,
                    tests,
                    cached: true,
                    compilations: 0,
                    retries: 0,
                    truncated: false,
                    degraded: 0,
                    suite: (*body).clone(),
                });
            }
            if inflight.insert(fingerprint) {
                break; // this connection computes
            }
            waited = true;
            inflight = shared
                .inflight_done
                .wait(inflight)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
    let outcome = cold_query(shared, &req, &plans, fingerprint);
    {
        let mut inflight = shared.inflight.lock().unwrap_or_else(|e| e.into_inner());
        inflight.remove(&fingerprint);
        shared.inflight_done.notify_all();
    }
    outcome
}

fn cold_query(
    shared: &Shared,
    req: &QueryRequest,
    plans: &[UnitPlan],
    fingerprint: u64,
) -> Result<QueryReply, String> {
    let shard = ShardConfig {
        shards: shared.cfg.shards,
        max_unit_attempts: shared.cfg.max_unit_attempts,
        fault: shared.cfg.shard_fault.clone(),
    };
    let (results, stats, _batch) = models::dispatch(
        &req.model,
        Execute {
            request_model: &req.model,
            plans,
            shard,
            pool: &shared.pool,
        },
    )??;
    let c = &shared.counters;
    c.shard_claimed_local
        .fetch_add(stats.claimed_local, Ordering::Relaxed);
    c.shard_stolen.fetch_add(stats.stolen, Ordering::Relaxed);
    c.shard_reassigned
        .fetch_add(stats.reassigned, Ordering::Relaxed);
    c.shard_respawns
        .fetch_add(stats.respawns, Ordering::Relaxed);
    c.shard_heartbeats
        .fetch_add(stats.heartbeats, Ordering::Relaxed);
    let compilations: usize = results.iter().map(|r| r.compilations).sum();
    let retries: u64 = results.iter().map(|r| r.retries).sum();
    let truncated = results.iter().any(|r| r.truncated);
    let degraded: usize = results.iter().map(|r| r.degraded).sum();
    c.compilations
        .fetch_add(compilations as u64, Ordering::Relaxed);
    c.solver_retries.fetch_add(retries, Ordering::Relaxed);
    let suites: Vec<&CanonicalSuite> = results.iter().map(|r| &r.tests).collect();
    let merged = merge_unit_suites(suites);
    let body = Arc::new(encode_suite_body(&merged));
    // Incomplete results are served (the header says so) but never
    // cached: a retry must be able to do better.
    if !truncated && degraded == 0 {
        shared.cache.put(fingerprint, body.clone(), merged.len());
    }
    Ok(QueryReply {
        fingerprint,
        tests: merged.len(),
        cached: false,
        compilations,
        retries,
        truncated,
        degraded,
        suite: (*body).clone(),
    })
}
