//! The serving daemon, its remote worker, and the command-line client.
//!
//! ```text
//! litsynth-serve listen [--addr A] [--shards N] [--threads N]
//!                       [--cube-bits N] [--cache-mb N] [--max-bound N]
//!                       [--journal DIR] [--journal-cap-mb N]
//!                       [--lease-ms N] [--remote-attempts N]
//!                       [--idle-timeout-ms N]
//! litsynth-serve worker <coordinator-addr> [--threads N] [--cube-bits N]
//!                       [--fault-exit-key K]
//! litsynth-serve query <addr> <model> [max_bound] [min_bound] [axioms,...]
//! litsynth-serve ping <addr>
//! litsynth-serve stats <addr>
//! ```

use litsynth_serve::{
    run_worker, Client, FaultKind, QueryRequest, ServeConfig, Server, WorkerConfig, WorkerFault,
};

fn usage() -> ! {
    eprintln!(
        "usage:\n  litsynth-serve listen [--addr A] [--shards N] [--threads N] \
         [--cube-bits N] [--cache-mb N] [--max-bound N] [--journal DIR] \
         [--journal-cap-mb N] [--lease-ms N] [--remote-attempts N] \
         [--idle-timeout-ms N]\n  litsynth-serve worker <coordinator-addr> \
         [--threads N] [--cube-bits N] [--fault-exit-key K]\n  \
         litsynth-serve query <addr> <model> [max_bound] \
         [min_bound] [axioms,...]\n  litsynth-serve ping <addr>\n  \
         litsynth-serve stats <addr>"
    );
    std::process::exit(2);
}

fn worker(args: &[String]) {
    let Some(addr) = args.first() else { usage() };
    let mut cfg = WorkerConfig::default();
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage()).clone();
        match flag.as_str() {
            "--threads" => cfg.unit_threads = val().parse().unwrap_or_else(|_| usage()),
            "--cube-bits" => cfg.cube_bits = val().parse().unwrap_or_else(|_| usage()),
            // Deterministic kill-mid-unit for the CI smoke: the process
            // dies, like a real `kill -9`, the first time this unit is
            // leased to it.
            "--fault-exit-key" => {
                cfg.fault = Some(WorkerFault {
                    key: val(),
                    kind: FaultKind::ExitMidUnit,
                })
            }
            _ => usage(),
        }
    }
    let stop = std::sync::atomic::AtomicBool::new(false);
    run_worker(addr, &cfg, &stop);
}

fn listen(args: &[String]) {
    let mut cfg = ServeConfig {
        addr: "127.0.0.1:7787".to_string(),
        ..ServeConfig::default()
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage()).clone();
        let num = |v: String| v.parse::<u64>().unwrap_or_else(|_| usage());
        match flag.as_str() {
            "--addr" => cfg.addr = val(),
            "--shards" => cfg.shards = num(val()) as usize,
            "--threads" => cfg.unit_threads = num(val()) as usize,
            "--cube-bits" => cfg.cube_bits = num(val()) as usize,
            "--cache-mb" => cfg.cache_bytes = (num(val()) as usize) << 20,
            "--max-bound" => cfg.max_bound = num(val()) as usize,
            "--journal" => cfg.journal_dir = Some(val().into()),
            "--journal-cap-mb" => cfg.journal_cap_bytes = Some(num(val()) << 20),
            "--lease-ms" => cfg.lease_ms = num(val()),
            "--remote-attempts" => cfg.remote_attempts = num(val()) as usize,
            "--idle-timeout-ms" => cfg.idle_timeout_ms = num(val()),
            _ => usage(),
        }
    }
    let server = Server::start(cfg).unwrap_or_else(|e| {
        eprintln!("litsynth-serve: bind failed: {e}");
        std::process::exit(1);
    });
    println!("listening on {}", server.addr());
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn query(args: &[String]) {
    let (Some(addr), Some(model)) = (args.first(), args.get(1)) else {
        usage()
    };
    let max_bound = args
        .get(2)
        .map_or(3, |s| s.parse().unwrap_or_else(|_| usage()));
    let min_bound = args
        .get(3)
        .map_or(2, |s| s.parse().unwrap_or_else(|_| usage()));
    let mut req = QueryRequest::sweep(model, min_bound, max_bound);
    if let Some(axioms) = args.get(4) {
        req.axioms = axioms.split(',').map(str::to_string).collect();
    }
    let mut client = connect(addr);
    match client.query(&req) {
        Ok(served) => {
            for p in &served.progress {
                eprintln!(
                    "progress: {} — {} tests{}",
                    p.key,
                    p.tests,
                    if p.from_journal { " (journal)" } else { "" }
                );
            }
            let r = &served.reply;
            eprintln!(
                "suite {:016x}: {} tests, cached={}, compilations={}, retries={}, \
                 truncated={}, degraded={}",
                r.fingerprint,
                r.tests,
                r.cached,
                r.compilations,
                r.retries,
                r.truncated,
                r.degraded
            );
            print!("{}", r.suite);
        }
        Err(e) => {
            eprintln!("litsynth-serve: query failed: {e}");
            std::process::exit(1);
        }
    }
}

fn connect(addr: &str) -> Client {
    Client::connect(addr).unwrap_or_else(|e| {
        eprintln!("litsynth-serve: connect to {addr} failed: {e}");
        std::process::exit(1);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("listen") => listen(&args[2..]),
        Some("worker") => worker(&args[2..]),
        Some("query") => query(&args[2..]),
        Some("ping") => {
            let addr = args.get(2).unwrap_or_else(|| usage());
            match connect(addr).ping() {
                Ok(()) => println!("pong"),
                Err(e) => {
                    eprintln!("litsynth-serve: ping failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("stats") => {
            let addr = args.get(2).unwrap_or_else(|| usage());
            match connect(addr).stats() {
                Ok(stats) => {
                    for (k, v) in stats {
                        println!("{k}={v}");
                    }
                }
                Err(e) => {
                    eprintln!("litsynth-serve: stats failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        _ => usage(),
    }
}
