//! Loopback end-to-end tests: the acceptance criteria of the serving
//! layer, asserted on real TCP connections against in-process servers.
//!
//! Every server here is configured through explicit [`ServeConfig`]
//! fields, never environment variables — the test binary is one process
//! and env vars would leak across tests.

use litsynth_core::{encode_suite_body, synthesize_union_up_to, SynthConfig};
use litsynth_models::{MemoryModel, Tso};
use litsynth_serve::{Client, QueryRequest, ServeConfig, Server, ShardFault};
use std::sync::Arc;

fn direct_tso_bytes(bounds: std::ops::RangeInclusive<usize>) -> String {
    encode_suite_body(&synthesize_union_up_to(
        &Tso::new(),
        bounds,
        SynthConfig::new,
    ))
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("litsynth-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn cold_query_matches_the_direct_sweep_and_warm_repeat_is_free() {
    let server = Server::start(ServeConfig::default()).expect("loopback server starts");
    let mut client = Client::connect(server.addr()).expect("client connects");
    client.ping().expect("server answers ping");

    // Cold: computed through the shard layer, byte-identical to a direct
    // synthesize_union_up_to call, with real solver work.
    let req = QueryRequest::sweep("tso", 2, 3);
    let cold = client.query(&req).expect("cold query succeeds");
    assert!(!cold.reply.cached);
    assert!(cold.reply.compilations > 0, "cold queries compile");
    assert_eq!(cold.reply.degraded, 0);
    assert_eq!(cold.reply.suite, direct_tso_bytes(2..=3), "byte identity");
    assert_eq!(cold.reply.tests, cold.suite().expect("body decodes").len());
    assert_eq!(
        cold.progress.len(),
        2 * Tso::new().axioms().len(),
        "one PROGRESS frame per (axiom, bound) unit"
    );

    // Warm: the identical query is a cache hit with zero solver work —
    // the acceptance criterion, asserted on the served counters.
    let warm = client.query(&req).expect("warm query succeeds");
    assert!(warm.reply.cached, "repeat must hit the suite cache");
    assert_eq!(warm.reply.compilations, 0, "zero compilations when warm");
    assert_eq!(warm.reply.suite, cold.reply.suite, "same bytes warm");
    assert!(warm.progress.is_empty(), "no units run on a hit");
    assert_eq!(warm.reply.fingerprint, cold.reply.fingerprint);

    let stats = client.stats().expect("stats round-trip");
    assert!(stats["cache_hits"] >= 1, "{stats:?}");
    assert!(stats["queries"] >= 2);

    // A fresh connection shares the same cache.
    let mut other = Client::connect(server.addr()).expect("second client connects");
    assert!(other.query(&req).expect("query succeeds").reply.cached);
    server.shutdown();
}

#[test]
fn axiom_subsets_are_order_insensitive_and_validated() {
    let server = Server::start(ServeConfig::default()).expect("server starts");
    let mut client = Client::connect(server.addr()).expect("client connects");
    let mut fwd = QueryRequest::sweep("tso", 2, 2);
    fwd.axioms = vec!["sc_per_loc".to_string(), "causality".to_string()];
    let mut rev = QueryRequest::sweep("tso", 2, 2);
    rev.axioms = vec!["causality".to_string(), "sc_per_loc".to_string()];
    let a = client.query(&fwd).expect("subset query succeeds");
    let b = client.query(&rev).expect("reordered subset succeeds");
    assert_eq!(a.reply.fingerprint, b.reply.fingerprint, "same cache entry");
    assert!(b.reply.cached, "spelling order must not defeat the cache");
    assert_eq!(a.reply.suite, b.reply.suite);

    // Validation: bad model, bad axiom, over-cap bound all ERR without
    // killing the connection.
    for bad in [
        QueryRequest::sweep("riscv", 2, 2),
        QueryRequest::sweep("tso", 2, 99),
        QueryRequest::sweep("tso", 1, 2),
        {
            let mut r = QueryRequest::sweep("tso", 2, 2);
            r.axioms = vec!["nonsense".to_string()];
            r
        },
    ] {
        assert!(client.query(&bad).is_err(), "{bad:?} must be rejected");
    }
    client.ping().expect("connection survives rejected queries");
    server.shutdown();
}

#[test]
fn killed_shard_worker_is_recovered_and_bytes_are_unchanged() {
    // Kill the shard thread holding tso/causality/3 once, mid-query: the
    // supervisor must reassign the unit, respawn the slot, and the served
    // suite must still be byte-identical to the direct sweep.
    let server = Server::start(ServeConfig {
        shard_fault: Some(ShardFault {
            key: "tso/causality/3".to_string(),
            kills: 1,
        }),
        ..ServeConfig::default()
    })
    .expect("server starts");
    let mut client = Client::connect(server.addr()).expect("client connects");
    let served = client
        .query(&QueryRequest::sweep("tso", 2, 3))
        .expect("query survives the killed worker");
    assert_eq!(served.reply.degraded, 0);
    assert_eq!(served.reply.suite, direct_tso_bytes(2..=3), "byte identity");
    let stats = client.stats().expect("stats round-trip");
    assert!(stats["shard_respawns"] >= 1, "{stats:?}");
    assert!(stats["shard_reassigned"] >= 1, "{stats:?}");
    server.shutdown();
}

#[test]
fn cube_level_fault_plan_is_retried_under_the_shard_layer() {
    // The PR 3 fault machinery composes with sharding: a cube-level panic
    // inside one unit is retried by the resilient runner (not the shard
    // supervisor) and the served bytes are unchanged. The plan is an
    // explicit config field — never the LITSYNTH_FAULT_PLAN env var,
    // which would leak into sibling tests.
    let plan = litsynth_sat::FaultPlan::parse("tso/sc_per_loc/2@0@0@0@panic").expect("plan parses");
    let server = Server::start(ServeConfig {
        fault_plan: Some(Arc::new(plan)),
        ..ServeConfig::default()
    })
    .expect("server starts");
    let mut client = Client::connect(server.addr()).expect("client connects");
    let served = client
        .query(&QueryRequest::sweep("tso", 2, 2))
        .expect("query survives the injected cube fault");
    assert_eq!(served.reply.degraded, 0);
    assert!(served.reply.retries > 0, "the cube panic must be retried");
    assert_eq!(served.reply.suite, direct_tso_bytes(2..=2), "byte identity");
    server.shutdown();
}

#[test]
fn journal_tier_survives_a_server_restart_with_zero_compilations() {
    // Restarting the server empties the in-memory cache, but the on-disk
    // journal is the persistent tier: the rebuilt reply is a cache miss
    // served entirely from journal replays — zero compilations.
    let dir = temp_dir("restart");
    let cfg = || ServeConfig {
        journal_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };
    let req = QueryRequest::sweep("tso", 2, 3);
    let first = Server::start(cfg()).expect("first server starts");
    let mut client = Client::connect(first.addr()).expect("client connects");
    let cold = client.query(&req).expect("cold query succeeds");
    assert!(cold.reply.compilations > 0);
    first.shutdown();

    let second = Server::start(cfg()).expect("second server starts");
    let mut client = Client::connect(second.addr()).expect("client reconnects");
    let replayed = client.query(&req).expect("replayed query succeeds");
    assert!(!replayed.reply.cached, "restart must empty the warm tier");
    assert_eq!(
        replayed.reply.compilations, 0,
        "every unit must replay from the journal"
    );
    assert!(
        replayed.progress.iter().all(|p| p.from_journal),
        "progress must say where the units came from"
    );
    assert_eq!(replayed.reply.suite, cold.reply.suite, "byte identity");
    second.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
