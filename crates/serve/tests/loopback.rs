//! Loopback end-to-end tests: the acceptance criteria of the serving
//! layer, asserted on real TCP connections against in-process servers.
//!
//! Every server here is configured through explicit [`ServeConfig`]
//! fields, never environment variables — the test binary is one process
//! and env vars would leak across tests.

use litsynth_core::{encode_suite_body, synthesize_union_up_to, SynthConfig};
use litsynth_models::{MemoryModel, Tso};
use litsynth_serve::{
    Client, ClientConfig, ClientError, FaultKind, QueryRequest, ServeConfig, Server, ShardFault,
    WorkerConfig, WorkerFault, WorkerHandle,
};
use std::sync::Arc;

fn direct_tso_bytes(bounds: std::ops::RangeInclusive<usize>) -> String {
    encode_suite_body(&synthesize_union_up_to(
        &Tso::new(),
        bounds,
        SynthConfig::new,
    ))
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("litsynth-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn cold_query_matches_the_direct_sweep_and_warm_repeat_is_free() {
    let server = Server::start(ServeConfig::default()).expect("loopback server starts");
    let mut client = Client::connect(server.addr()).expect("client connects");
    client.ping().expect("server answers ping");

    // Cold: computed through the shard layer, byte-identical to a direct
    // synthesize_union_up_to call, with real solver work.
    let req = QueryRequest::sweep("tso", 2, 3);
    let cold = client.query(&req).expect("cold query succeeds");
    assert!(!cold.reply.cached);
    assert!(cold.reply.compilations > 0, "cold queries compile");
    assert_eq!(cold.reply.degraded, 0);
    assert_eq!(cold.reply.suite, direct_tso_bytes(2..=3), "byte identity");
    assert_eq!(cold.reply.tests, cold.suite().expect("body decodes").len());
    assert_eq!(
        cold.progress.len(),
        2 * Tso::new().axioms().len(),
        "one PROGRESS frame per (axiom, bound) unit"
    );

    // Warm: the identical query is a cache hit with zero solver work —
    // the acceptance criterion, asserted on the served counters.
    let warm = client.query(&req).expect("warm query succeeds");
    assert!(warm.reply.cached, "repeat must hit the suite cache");
    assert_eq!(warm.reply.compilations, 0, "zero compilations when warm");
    assert_eq!(warm.reply.suite, cold.reply.suite, "same bytes warm");
    assert!(warm.progress.is_empty(), "no units run on a hit");
    assert_eq!(warm.reply.fingerprint, cold.reply.fingerprint);

    let stats = client.stats().expect("stats round-trip");
    assert!(stats["cache_hits"] >= 1, "{stats:?}");
    assert!(stats["queries"] >= 2);

    // A fresh connection shares the same cache.
    let mut other = Client::connect(server.addr()).expect("second client connects");
    assert!(other.query(&req).expect("query succeeds").reply.cached);
    server.shutdown();
}

#[test]
fn axiom_subsets_are_order_insensitive_and_validated() {
    let server = Server::start(ServeConfig::default()).expect("server starts");
    let mut client = Client::connect(server.addr()).expect("client connects");
    let mut fwd = QueryRequest::sweep("tso", 2, 2);
    fwd.axioms = vec!["sc_per_loc".to_string(), "causality".to_string()];
    let mut rev = QueryRequest::sweep("tso", 2, 2);
    rev.axioms = vec!["causality".to_string(), "sc_per_loc".to_string()];
    let a = client.query(&fwd).expect("subset query succeeds");
    let b = client.query(&rev).expect("reordered subset succeeds");
    assert_eq!(a.reply.fingerprint, b.reply.fingerprint, "same cache entry");
    assert!(b.reply.cached, "spelling order must not defeat the cache");
    assert_eq!(a.reply.suite, b.reply.suite);

    // Validation: bad model, bad axiom, over-cap bound all ERR without
    // killing the connection.
    for bad in [
        QueryRequest::sweep("riscv", 2, 2),
        QueryRequest::sweep("tso", 2, 99),
        QueryRequest::sweep("tso", 1, 2),
        {
            let mut r = QueryRequest::sweep("tso", 2, 2);
            r.axioms = vec!["nonsense".to_string()];
            r
        },
    ] {
        assert!(client.query(&bad).is_err(), "{bad:?} must be rejected");
    }
    client.ping().expect("connection survives rejected queries");
    server.shutdown();
}

#[test]
fn killed_shard_worker_is_recovered_and_bytes_are_unchanged() {
    // Kill the shard thread holding tso/causality/3 once, mid-query: the
    // supervisor must reassign the unit, respawn the slot, and the served
    // suite must still be byte-identical to the direct sweep.
    let server = Server::start(ServeConfig {
        shard_fault: Some(ShardFault {
            key: "tso/causality/3".to_string(),
            kills: 1,
        }),
        ..ServeConfig::default()
    })
    .expect("server starts");
    let mut client = Client::connect(server.addr()).expect("client connects");
    let served = client
        .query(&QueryRequest::sweep("tso", 2, 3))
        .expect("query survives the killed worker");
    assert_eq!(served.reply.degraded, 0);
    assert_eq!(served.reply.suite, direct_tso_bytes(2..=3), "byte identity");
    let stats = client.stats().expect("stats round-trip");
    assert!(stats["shard_respawns"] >= 1, "{stats:?}");
    assert!(stats["shard_reassigned"] >= 1, "{stats:?}");
    server.shutdown();
}

#[test]
fn cube_level_fault_plan_is_retried_under_the_shard_layer() {
    // The PR 3 fault machinery composes with sharding: a cube-level panic
    // inside one unit is retried by the resilient runner (not the shard
    // supervisor) and the served bytes are unchanged. The plan is an
    // explicit config field — never the LITSYNTH_FAULT_PLAN env var,
    // which would leak into sibling tests.
    let plan = litsynth_sat::FaultPlan::parse("tso/sc_per_loc/2@0@0@0@panic").expect("plan parses");
    let server = Server::start(ServeConfig {
        fault_plan: Some(Arc::new(plan)),
        ..ServeConfig::default()
    })
    .expect("server starts");
    let mut client = Client::connect(server.addr()).expect("client connects");
    let served = client
        .query(&QueryRequest::sweep("tso", 2, 2))
        .expect("query survives the injected cube fault");
    assert_eq!(served.reply.degraded, 0);
    assert!(served.reply.retries > 0, "the cube panic must be retried");
    assert_eq!(served.reply.suite, direct_tso_bytes(2..=2), "byte identity");
    server.shutdown();
}

#[test]
fn journal_tier_survives_a_server_restart_with_zero_compilations() {
    // Restarting the server empties the in-memory cache, but the on-disk
    // journal is the persistent tier: the rebuilt reply is a cache miss
    // served entirely from journal replays — zero compilations.
    let dir = temp_dir("restart");
    let cfg = || ServeConfig {
        journal_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };
    let req = QueryRequest::sweep("tso", 2, 3);
    let first = Server::start(cfg()).expect("first server starts");
    let mut client = Client::connect(first.addr()).expect("client connects");
    let cold = client.query(&req).expect("cold query succeeds");
    assert!(cold.reply.compilations > 0);
    first.shutdown();

    let second = Server::start(cfg()).expect("second server starts");
    let mut client = Client::connect(second.addr()).expect("client reconnects");
    let replayed = client.query(&req).expect("replayed query succeeds");
    assert!(!replayed.reply.cached, "restart must empty the warm tier");
    assert_eq!(
        replayed.reply.compilations, 0,
        "every unit must replay from the journal"
    );
    assert!(
        replayed.progress.iter().all(|p| p.from_journal),
        "progress must say where the units came from"
    );
    assert_eq!(replayed.reply.suite, cold.reply.suite, "byte identity");
    second.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Spawns `n` in-process workers against `addr`, the first carrying
/// `fault`, and waits until all have registered.
fn spawn_workers(server: &Server, n: usize, fault: Option<WorkerFault>) -> Vec<WorkerHandle> {
    let workers: Vec<WorkerHandle> = (0..n)
        .map(|i| {
            WorkerHandle::spawn(
                server.addr().to_string(),
                WorkerConfig {
                    jitter_seed: i as u64 + 1,
                    fault: if i == 0 { fault.clone() } else { None },
                    ..WorkerConfig::default()
                },
            )
        })
        .collect();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while server.stats().remote.workers_live < n as u64 {
        assert!(
            std::time::Instant::now() < deadline,
            "workers must register within 5s"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    workers
}

#[test]
fn remote_workers_serve_byte_identical_suites_with_no_local_fallback() {
    let server = Server::start(ServeConfig::default()).expect("server starts");
    let workers = spawn_workers(&server, 2, None);
    let mut client = Client::connect(server.addr()).expect("client connects");
    let served = client
        .query(&QueryRequest::sweep("tso", 2, 3))
        .expect("remote query succeeds");
    assert_eq!(served.reply.suite, direct_tso_bytes(2..=3), "byte identity");
    assert_eq!(
        served.progress.len(),
        2 * Tso::new().axioms().len(),
        "remote completion still streams one PROGRESS per unit"
    );
    let stats = server.stats().remote;
    assert_eq!(
        stats.completed_remote,
        2 * Tso::new().axioms().len() as u64,
        "every unit must have run remotely: {stats:?}"
    );
    assert_eq!(stats.degraded_to_local, 0, "{stats:?}");
    assert_eq!(stats.reclaimed_leases, 0, "{stats:?}");

    // Warm repeat is still a pure cache hit — no worker involved.
    let warm = client.query(&QueryRequest::sweep("tso", 2, 3)).unwrap();
    assert!(warm.reply.cached);
    for w in workers {
        w.stop();
    }
    server.shutdown();
}

#[test]
fn every_injected_worker_fault_preserves_byte_identity() {
    // One worker per fault kind, so the faulted unit is deterministically
    // leased to the faulted worker. The coordinator must reclaim, reject,
    // or ignore as appropriate — re-dispatching to the reconnected worker
    // or degrading to local compute — and the served suite must be
    // byte-identical to the direct sweep either way.
    let direct = direct_tso_bytes(2..=3);
    let faults: Vec<(FaultKind, &str)> = vec![
        (FaultKind::ExitMidUnit, "kill mid-unit"),
        (FaultKind::DropMidFrame, "connection drop mid-frame"),
        (FaultKind::StallMs(2_000), "slow worker past its lease"),
        (FaultKind::DuplicateDone, "duplicate UNITDONE"),
        (FaultKind::WrongFingerprint, "fingerprint-mismatched result"),
        (FaultKind::CorruptBody, "checksum-corrupt result"),
    ];
    for (kind, what) in faults {
        let server = Server::start(ServeConfig {
            lease_ms: 400,
            ..ServeConfig::default()
        })
        .expect("server starts");
        let fault = WorkerFault {
            key: "tso/sc_per_loc/2".to_string(),
            kind: kind.clone(),
        };
        let workers = spawn_workers(&server, 1, Some(fault));
        let mut client = Client::connect(server.addr()).expect("client connects");
        let served = client
            .query(&QueryRequest::sweep("tso", 2, 3))
            .unwrap_or_else(|e| panic!("query must survive {what}: {e}"));
        assert_eq!(served.reply.suite, direct, "byte identity under {what}");
        let stats = server.stats().remote;
        match kind {
            FaultKind::ExitMidUnit | FaultKind::DropMidFrame => {
                assert!(stats.reclaimed_leases >= 1, "{what}: {stats:?}");
            }
            FaultKind::StallMs(_) => {
                assert!(stats.lease_expiries >= 1, "{what}: {stats:?}");
                assert!(stats.reclaimed_leases >= 1, "{what}: {stats:?}");
            }
            FaultKind::DuplicateDone => {
                assert!(stats.duplicate_unitdone >= 1, "{what}: {stats:?}");
            }
            FaultKind::WrongFingerprint | FaultKind::CorruptBody => {
                assert!(stats.rejected_results >= 1, "{what}: {stats:?}");
            }
        }
        for w in workers {
            w.stop();
        }
        server.shutdown();
    }
}

#[test]
fn full_remote_outage_degrades_gracefully_to_local_compute() {
    // A single worker that dies mid-unit and never comes back: the
    // remaining units must degrade to the coordinator's local pool, the
    // query must complete, and the bytes must be unchanged. The suite is
    // complete, so it is cached — degradation never caches partials
    // because partials are never produced.
    let server = Server::start(ServeConfig {
        lease_ms: 400,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let workers = spawn_workers(
        &server,
        1,
        Some(WorkerFault {
            key: "tso/sc_per_loc/2".to_string(),
            kind: FaultKind::ExitMidUnit,
        }),
    );
    let mut client = Client::connect(server.addr()).expect("client connects");
    let served = client
        .query(&QueryRequest::sweep("tso", 2, 3))
        .expect("query completes despite total worker loss");
    assert_eq!(served.reply.suite, direct_tso_bytes(2..=3), "byte identity");
    assert_eq!(served.reply.tests, served.suite().expect("decodes").len());
    let stats = server.stats().remote;
    assert!(stats.reclaimed_leases >= 1, "{stats:?}");
    assert!(
        stats.degraded_to_local >= 1,
        "the outage must be counted, never silent: {stats:?}"
    );
    // The completed suite was cached — a warm repeat does zero work.
    let warm = client.query(&QueryRequest::sweep("tso", 2, 3)).unwrap();
    assert!(warm.reply.cached, "complete degraded suites are cacheable");
    assert_eq!(warm.reply.suite, served.reply.suite);
    for w in workers {
        w.stop();
    }
    server.shutdown();
}

#[test]
fn stalled_server_surfaces_as_a_typed_timeout() {
    // A listener that accepts and then never answers: the client's read
    // deadline must fire as ClientError::Timeout, not hang forever and
    // not masquerade as a server ERR.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("listener binds");
    let addr = listener.local_addr().unwrap();
    let hold = std::thread::spawn(move || {
        let conn = listener.accept().map(|(s, _)| s);
        std::thread::sleep(std::time::Duration::from_secs(3));
        drop(conn);
    });
    let mut client = Client::connect_with(
        addr,
        &ClientConfig {
            io_timeout_ms: 200,
            ..ClientConfig::default()
        },
    )
    .expect("connect succeeds (the stall is after accept)");
    let started = std::time::Instant::now();
    match client.ping() {
        Err(ClientError::Timeout(_)) => {}
        other => panic!("expected a typed timeout, got {other:?}"),
    }
    assert!(
        started.elapsed() < std::time::Duration::from_secs(2),
        "the deadline must fire well before the stall ends"
    );
    let _ = hold.join();
}

#[test]
fn check_verb_serves_verdicts_with_witnesses_and_a_warm_cache() {
    use litsynth_litmus::suites::classics;

    let server = Server::start(ServeConfig::default()).expect("server starts");
    let mut client = Client::connect(server.addr()).expect("client connects");

    // Consistent path: SB's weak outcome is TSO's store-buffer relaxation.
    let (sb, weak) = classics::sb();
    let ok = client.check("tso", &sb, &weak).expect("CHECK round-trips");
    assert!(!ok.cached, "first query computes");
    assert!(ok.consistent, "sb is observable under TSO");
    assert!(ok.axiom.is_empty() && ok.cycle.is_empty());

    // Inconsistent path, with a violating-cycle witness: the same
    // outcome is forbidden under SC, and saturation names the cycle.
    let bad = client.check("sc", &sb, &weak).expect("CHECK round-trips");
    assert!(!bad.consistent, "sb is forbidden under SC");
    assert!(!bad.axiom.is_empty(), "saturation names the violated axiom");
    assert!(
        bad.cycle.len() >= 2,
        "a violating cycle has at least two events: {:?}",
        bad.cycle
    );
    assert!(
        bad.cycle.iter().all(|&gid| gid < sb.num_events()),
        "cycle events are test gids: {:?}",
        bad.cycle
    );
    assert_ne!(ok.fingerprint, bad.fingerprint, "model keys the cache");

    // Warm repeat: same fingerprint, served from the check cache, and
    // the counters say so — including the inconsistent tally.
    let warm = client.check("sc", &sb, &weak).expect("warm CHECK");
    assert!(warm.cached, "repeat must hit the check cache");
    assert_eq!(warm.fingerprint, bad.fingerprint);
    assert_eq!(
        (warm.consistent, &warm.axiom, &warm.cycle),
        (bad.consistent, &bad.axiom, &bad.cycle),
        "cached verdict is the computed verdict"
    );
    let stats = client.stats().expect("stats round-trip");
    assert_eq!(stats["check_requests"], 3, "{stats:?}");
    assert_eq!(stats["check_cache_hits"], 1, "{stats:?}");
    assert_eq!(stats["check_inconsistent"], 2, "{stats:?}");

    // Junk is an ERR, never a hang or a misparse.
    let mut raw = litsynth_serve::CheckRequest {
        model: "riscv".to_string(),
        test: litsynth_litmus::wire::encode(&sb, &weak),
    };
    assert!(matches!(
        client.check_raw(&raw),
        Err(ClientError::Server(_))
    ));
    raw.model = "tso".to_string();
    raw.test = "name=x\nthread=teleport,0\n".to_string();
    assert!(matches!(
        client.check_raw(&raw),
        Err(ClientError::Server(_))
    ));
    server.shutdown();
}

#[test]
fn idle_connections_are_reaped_and_ping_resets_the_deadline() {
    let server = Server::start(ServeConfig {
        idle_timeout_ms: 600,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let mut client = Client::connect(server.addr()).expect("client connects");
    // Activity inside the window keeps the connection alive.
    for _ in 0..3 {
        std::thread::sleep(std::time::Duration::from_millis(300));
        client.ping().expect("PING resets the idle deadline");
    }
    // Going quiet past the deadline gets the connection reaped.
    std::thread::sleep(std::time::Duration::from_millis(1_200));
    assert!(
        client.ping().is_err(),
        "the reaped connection must be unusable"
    );
    let mut fresh = Client::connect(server.addr()).expect("fresh client connects");
    let stats = fresh.stats().expect("stats round-trip");
    assert!(stats["idle_reaped"] >= 1, "{stats:?}");
    server.shutdown();
}
