//! Chaos soak: seeded random fault schedules over a 2-worker loopback
//! topology, asserting the served suite stays byte-identical to the
//! direct sweep across every schedule — the multi-host extension of the
//! PR 6 byte-identity matrix. Schedules are deterministic functions of
//! the seed (explicit config, no env vars, no wall-clock randomness).

use litsynth_core::{encode_suite_body, synthesize_union_up_to, SynthConfig};
use litsynth_litmus::SplitMix64;
use litsynth_models::{MemoryModel, Tso};
use litsynth_serve::{
    Client, FaultKind, QueryRequest, ServeConfig, Server, WorkerConfig, WorkerFault, WorkerHandle,
};

const SEEDS: u64 = 20;

/// Picks this worker's scheduled fault (or none) from the seed stream.
fn scheduled_fault(rng: &mut SplitMix64, keys: &[String]) -> Option<WorkerFault> {
    if rng.next_u64() % 10 >= 7 {
        return None; // a healthy worker, 30% of the time
    }
    let key = keys[(rng.next_u64() % keys.len() as u64) as usize].clone();
    let kind = match rng.next_u64() % 6 {
        0 => FaultKind::ExitMidUnit,
        1 => FaultKind::DropMidFrame,
        2 => FaultKind::StallMs(600 + rng.next_u64() % 600),
        3 => FaultKind::DuplicateDone,
        4 => FaultKind::WrongFingerprint,
        _ => FaultKind::CorruptBody,
    };
    Some(WorkerFault { key, kind })
}

#[test]
fn chaos_schedules_never_change_the_served_bytes() {
    let model = Tso::new();
    let direct = encode_suite_body(&synthesize_union_up_to(&model, 2..=3, SynthConfig::new));
    let keys: Vec<String> = (2..=3)
        .flat_map(|b| model.axioms().iter().map(move |a| format!("tso/{a}/{b}")))
        .collect();
    let mut failures = Vec::new();
    for seed in 0..SEEDS {
        let mut rng = SplitMix64::new(seed.wrapping_mul(0x9e37_79b9) + 7);
        let server = Server::start(ServeConfig {
            lease_ms: 250,
            ..ServeConfig::default()
        })
        .expect("server starts");
        let workers: Vec<WorkerHandle> = (0..2)
            .map(|i| {
                WorkerHandle::spawn(
                    server.addr().to_string(),
                    WorkerConfig {
                        jitter_seed: seed * 2 + i + 1,
                        fault: scheduled_fault(&mut rng, &keys),
                        ..WorkerConfig::default()
                    },
                )
            })
            .collect();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while server.stats().remote.workers_live < 2 {
            assert!(std::time::Instant::now() < deadline, "workers register");
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        let mut client = Client::connect(server.addr()).expect("client connects");
        let served = client
            .query(&QueryRequest::sweep("tso", 2, 3))
            .unwrap_or_else(|e| panic!("seed {seed}: query must complete: {e}"));
        if served.reply.suite != direct {
            failures.push(seed);
        }
        for w in workers {
            w.stop();
        }
        server.shutdown();
    }
    assert!(
        failures.is_empty(),
        "seeds with byte drift: {failures:?} — the fault schedule must \
         never change the served suite"
    );
}
