//! Saturation-based consistency checking: the model-agnostic core.
//!
//! The explicit oracle ([`crate::Execution::enumerate`]) decides whether an
//! outcome is observable by materializing every (rf, co) candidate —
//! factorial in same-address writes. This module implements the polynomial
//! alternative in the style of reads-from consistency checking (Tunç et
//! al., Chakraborty): fix rf, then *saturate* the coherence order with
//! every edge that is forced (its reversal would close a cycle through a
//! relation the model requires acyclic), detect contradictions with an
//! incremental topological-order cycle check, and only fall back to
//! enumerating the (usually unique) linear extensions of the forced order.
//!
//! The memory-model side — which relations participate, per axiom — is
//! supplied by `litsynth-models` as [`AxiomSpec`]s; this module knows only
//! programs, rf maps, and graphs.
//!
//! Graphs use a flat `u32` edge arena (the same discipline as the SAT
//! core's clause arena): adding an edge appends two `u32`s, never allocates
//! a node, and the Pearce-Kelly order maintenance touches only the affected
//! window.

use crate::event::Addr;
use crate::rel::Rel;
use crate::test::LitmusTest;
use std::collections::BTreeMap;

/// A violating cycle found by saturation: the axiom whose required-acyclic
/// relation closed, and the events along the cycle (each consecutive pair —
/// and last back to first — is an edge of that relation).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CycleWitness {
    /// The axiom (or `"co"` for contradictory forced-coherence edges).
    pub axiom: String,
    /// Events along the cycle, in order.
    pub events: Vec<usize>,
}

impl CycleWitness {
    fn new(axiom: &str, events: Vec<usize>) -> CycleWitness {
        CycleWitness {
            axiom: axiom.to_string(),
            events,
        }
    }
}

const NIL: u32 = u32::MAX;

/// A directed graph over event ids with incremental cycle detection.
///
/// Edges live in a flat `u32` arena (`edge_to`/`edge_next` parallel
/// arrays); a `u64` row bitset per node backs O(1) duplicate checks and
/// allocation-free DFS. A topological order is maintained incrementally in
/// the Pearce-Kelly style: inserting an order-respecting edge is O(1), and
/// a violating insertion reorders only the affected window — or extracts
/// the cycle it would create.
#[derive(Clone, Debug)]
pub struct DiGraph {
    n: usize,
    head: Vec<u32>,
    edge_to: Vec<u32>,
    edge_next: Vec<u32>,
    adj: Vec<u64>,
    radj: Vec<u64>,
    /// `ord[v]` = topological index of node `v`.
    ord: Vec<u32>,
    /// `at[i]` = node at topological index `i` (inverse of `ord`).
    at: Vec<u32>,
}

impl DiGraph {
    /// An edgeless graph over `n ≤ 64` nodes, topologically ordered by id.
    pub fn new(n: usize) -> DiGraph {
        assert!(n <= 64, "DiGraph carriers are litmus-sized");
        DiGraph {
            n,
            head: vec![NIL; n],
            edge_to: Vec::new(),
            edge_next: Vec::new(),
            adj: vec![0; n],
            radj: vec![0; n],
            ord: (0..n as u32).collect(),
            at: (0..n as u32).collect(),
        }
    }

    /// `true` if the edge `(u, v)` is present.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj[u] >> v & 1 == 1
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_to.len()
    }

    /// The nodes reachable from `from` (not including `from` itself unless
    /// it lies on a cycle), as a bitmask.
    pub fn reach(&self, from: usize) -> u64 {
        let mut seen = 0u64;
        let mut stack = self.adj[from];
        while stack != 0 {
            let v = stack.trailing_zeros() as usize;
            stack &= stack - 1;
            if seen >> v & 1 == 0 {
                seen |= 1 << v;
                stack |= self.adj[v] & !seen;
            }
        }
        seen
    }

    /// The current edge set as a [`Rel`].
    pub fn to_rel(&self) -> Rel {
        let mut r = Rel::new(self.n);
        for u in 0..self.n {
            let mut row = self.adj[u];
            while row != 0 {
                let v = row.trailing_zeros() as usize;
                row &= row - 1;
                r.add(u, v);
            }
        }
        r
    }

    /// Adds the edge `(u, v)`.
    ///
    /// Returns `Ok(true)` if the edge is new, `Ok(false)` if it was already
    /// present, and `Err(cycle)` — the events along the cycle the edge
    /// closes, starting at `u` — if insertion would create one. After an
    /// `Err` the graph must be discarded: the arena keeps the offending
    /// edge.
    pub fn add_edge(&mut self, u: usize, v: usize) -> Result<bool, Vec<usize>> {
        if u == v {
            return Err(vec![u]);
        }
        if self.has_edge(u, v) {
            return Ok(false);
        }
        self.edge_to.push(v as u32);
        self.edge_next.push(self.head[u]);
        self.head[u] = (self.edge_to.len() - 1) as u32;
        self.adj[u] |= 1 << v;
        self.radj[v] |= 1 << u;
        if self.ord[u] < self.ord[v] {
            return Ok(true);
        }
        // The edge points against the current order: discover the affected
        // window [ord[v], ord[u]] and either find a cycle or reorder it.
        let (lb, ub) = (self.ord[v], self.ord[u]);
        let mut parent = [NIL; 64];
        let mut fwd = 0u64; // reachable from v within the window
        let mut stack = vec![v as u32];
        fwd |= 1 << v;
        while let Some(x) = stack.pop() {
            let mut row = self.adj[x as usize] & !fwd;
            while row != 0 {
                let y = row.trailing_zeros() as usize;
                row &= row - 1;
                if self.ord[y] > ub {
                    continue;
                }
                parent[y] = x;
                if y == u {
                    // Cycle: u → v (the new edge), then the DFS path
                    // v → a₁ → … → aₖ → u. Walk the parent chain back from
                    // u to v to recover a₁…aₖ.
                    let mut rev = Vec::new();
                    let mut node = parent[u] as usize;
                    while node != v {
                        rev.push(node);
                        node = parent[node] as usize;
                    }
                    rev.reverse();
                    let mut cyc = vec![u, v];
                    cyc.extend(rev);
                    return Err(cyc);
                }
                fwd |= 1 << y;
                stack.push(y as u32);
            }
        }
        // No cycle: Pearce-Kelly reorder. Backward-reachable set from u
        // within the window, then merge the two sets into the window slots.
        let mut bwd = 1u64 << u;
        let mut stack = vec![u as u32];
        while let Some(x) = stack.pop() {
            let mut row = self.radj[x as usize] & !bwd;
            while row != 0 {
                let y = row.trailing_zeros() as usize;
                row &= row - 1;
                if self.ord[y] < lb {
                    continue;
                }
                bwd |= 1 << y;
                stack.push(y as u32);
            }
        }
        let mut members: Vec<u32> = Vec::with_capacity((fwd | bwd).count_ones() as usize);
        let mut slots: Vec<u32> = Vec::with_capacity(members.capacity());
        // Backward set first (they must precede), each sorted by old order.
        let order_of = |mask: u64, out: &mut Vec<u32>| {
            let mut picked: Vec<u32> = Vec::new();
            let mut m = mask;
            while m != 0 {
                let y = m.trailing_zeros() as usize;
                m &= m - 1;
                picked.push(y as u32);
            }
            picked.sort_by_key(|&y| self.ord[y as usize]);
            out.extend(picked);
        };
        order_of(bwd, &mut members);
        order_of(fwd, &mut members);
        for &y in &members {
            slots.push(self.ord[y as usize]);
        }
        slots.sort_unstable();
        for (y, s) in members.iter().zip(&slots) {
            self.ord[*y as usize] = *s;
            self.at[*s as usize] = *y;
        }
        Ok(true)
    }
}

/// Which part of the reads-from relation an axiom's acyclic union includes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RfPart {
    /// All rf edges.
    All,
    /// Only cross-thread rf edges (`rfe`, e.g. TSO causality).
    External,
}

/// How an axiom participates in saturation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpecKind {
    /// `acyclic(base ∪ rf-part)` with no coherence in the union: checked
    /// once, never forces co (SCC/C11 `no_thin_air`).
    Static,
    /// `acyclic(base ∪ rf-part ∪ co ∪ fr)`: maintains a graph that receives
    /// every forced co/fr edge and forces `co(w₁,w₂)` whenever `w₁` reaches
    /// `w₂` (sc_per_loc everywhere; SC/TSO causality).
    Closure,
    /// `irreflexive(base ; eco?)` with `base` transitive (C11 coherence):
    /// a one-shot rule pass — every single-address eco path between
    /// `base`-ordered endpoints either forces a co edge or is an outright
    /// violation.
    OrderEco,
}

/// One axiom's saturation interface, computed by the model for a fixed rf
/// choice (bases may depend on rf — C11's happens-before does — but never
/// on co).
#[derive(Clone, Debug)]
pub struct AxiomSpec {
    /// The axiom name, used to label cycle witnesses.
    pub axiom: &'static str,
    /// Participation kind.
    pub kind: SpecKind,
    /// The co/fr-free part of the axiom's relation (po_loc, po, ppo∪fence,
    /// dep, hb — whatever the model says).
    pub base: Rel,
    /// Which rf edges join `base` in the union.
    pub rf: RfPart,
}

/// Saturates the coherence order for one rf choice.
///
/// `rf` maps every read to its source write (or `None` for the initial
/// value); `seed_co` carries externally forced edges (e.g. "every other
/// write precedes the pinned final write"). Returns the forced co as a
/// transitive [`Rel`] (same-address write pairs only), or the first
/// violating cycle if the specs already contradict each other — in which
/// case *no* coherence completion of this rf choice satisfies the model
/// and matches the seeds.
///
/// Soundness: an edge is only ever forced when its reversal closes a cycle
/// through a relation some axiom requires acyclic (or contradicts a seed),
/// so every model-valid, seed-matching execution's co extends the result.
pub fn saturate(
    test: &LitmusTest,
    rf: &BTreeMap<usize, Option<usize>>,
    specs: &[AxiomSpec],
    seed_co: &[(usize, usize)],
) -> Result<Rel, CycleWitness> {
    let n = test.num_events();
    let mut co = DiGraph::new(n);
    let mut graphs: Vec<(usize, DiGraph)> = Vec::new(); // (spec idx, graph)

    let rf_edge_included = |part: RfPart, w: usize, r: usize| match part {
        RfPart::All => true,
        RfPart::External => test.thread_of(w) != test.thread_of(r),
    };

    // Seed the per-axiom graphs with base ∪ rf-part ∪ initial-read fr.
    for (si, spec) in specs.iter().enumerate() {
        if spec.kind == SpecKind::OrderEco {
            continue;
        }
        let mut g = DiGraph::new(n);
        let witness = |cyc| CycleWitness::new(spec.axiom, cyc);
        for (i, j) in spec.base.pairs() {
            g.add_edge(i, j).map_err(witness)?;
        }
        for (&r, &src) in rf {
            if let Some(w) = src {
                if rf_edge_included(spec.rf, w, r) {
                    g.add_edge(w, r).map_err(witness)?;
                }
            }
        }
        if spec.kind == SpecKind::Closure {
            // A read of the initial value from-reads to every same-address
            // write, unconditionally.
            for (&r, &src) in rf {
                if src.is_none() {
                    let addr = test.instr(r).addr().expect("read has address");
                    for w in test.writes_to(addr) {
                        if w != r {
                            g.add_edge(r, w).map_err(witness)?;
                        }
                    }
                }
            }
            graphs.push((si, g));
        }
        // Static specs are fully checked by the insertions above.
    }

    // Worklist of forced co edges.
    let mut pending: Vec<(usize, usize, &'static str)> =
        seed_co.iter().map(|&(a, b)| (a, b, "co")).collect();

    // One-shot OrderEco rule pass (rules consume only base and rf, so new
    // co conclusions never enable further OrderEco rules).
    for spec in specs {
        if spec.kind != SpecKind::OrderEco {
            continue;
        }
        order_eco_rules(test, rf, spec, &mut pending)?;
    }

    loop {
        // Drain: apply forced edges to the co order and every closure
        // graph, deriving fr edges as co grows.
        while let Some((w1, w2, why)) = pending.pop() {
            match co.add_edge(w1, w2) {
                Ok(false) => continue,
                Ok(true) => {}
                Err(cyc) => return Err(CycleWitness::new(why, cyc)),
            }
            for (si, g) in &mut graphs {
                g.add_edge(w1, w2)
                    .map_err(|cyc| CycleWitness::new(specs[*si].axiom, cyc))?;
                // Forced fr: a read of w1 from-reads every write forced
                // co-after w1.
                for (&r, &src) in rf {
                    if src == Some(w1) && r != w2 {
                        g.add_edge(r, w2)
                            .map_err(|cyc| CycleWitness::new(specs[*si].axiom, cyc))?;
                    }
                }
            }
        }
        // Force: same-address writes ordered by any closure graph's
        // reachability must be co-ordered the same way.
        let mut changed = false;
        for (si, g) in &graphs {
            for a in test.addresses() {
                let ws = test.writes_to(a);
                for &w1 in &ws {
                    let reach = g.reach(w1);
                    for &w2 in &ws {
                        if w1 != w2 && reach >> w2 & 1 == 1 && !co.has_edge(w1, w2) {
                            pending.push((w1, w2, specs[*si].axiom));
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed && pending.is_empty() {
            break;
        }
    }

    Ok(co.to_rel().transitive_closure())
}

/// The one-shot rule pass for `irreflexive(order ; eco?)` axioms.
///
/// Every eco (`(rf ∪ co ∪ fr)⁺`) path is single-address — each step relates
/// same-address events and consecutive steps share an endpoint — so a
/// violation pairs `order(a, b)` with an eco path `b → … → a` through one
/// address, and a case split on the roles of `a` and `b` either forces the
/// co edge whose reversal completes that path, or finds the violation
/// outright.
fn order_eco_rules(
    test: &LitmusTest,
    rf: &BTreeMap<usize, Option<usize>>,
    spec: &AxiomSpec,
    pending: &mut Vec<(usize, usize, &'static str)>,
) -> Result<(), CycleWitness> {
    for (a, b) in spec.base.pairs() {
        if a == b {
            // eco? is reflexive, so a reflexive order point is a violation.
            return Err(CycleWitness::new(spec.axiom, vec![a]));
        }
        let (ia, ib) = (test.instr(a), test.instr(b));
        let (Some(aa), Some(ab)) = (ia.addr(), ib.addr()) else {
            continue;
        };
        if aa != ab {
            continue;
        }
        // WW: order(w₁, w₂) forces co(w₁, w₂) — the reversal is
        // order(w₁,w₂) ; co(w₂,w₁).
        if ia.is_write() && ib.is_write() {
            pending.push((a, b, spec.axiom));
        }
        // WR: order(w, r) with r reading w₀ ≠ w forces co(w, w₀) — the
        // reversal puts w co-after w₀, giving fr(r, w) back to w. A read
        // of the initial value loses outright: fr(r, w) holds already.
        if ia.is_write() && ib.is_read() {
            match rf.get(&b) {
                Some(&Some(w0)) if w0 != a => pending.push((a, w0, spec.axiom)),
                Some(&None) => return Err(CycleWitness::new(spec.axiom, vec![a, b])),
                _ => {}
            }
        }
        // RW: order(r, w) with r reading w₀ forces co(w₀, w) — the
        // reversal gives eco(w → w₀ → r). Reading w itself is an
        // immediate violation: order(r, w) ; rf(w, r).
        if ia.is_read() && ib.is_write() {
            match rf.get(&a) {
                Some(&Some(w0)) if w0 == b => {
                    return Err(CycleWitness::new(spec.axiom, vec![a, b]))
                }
                Some(&Some(w0)) => pending.push((w0, b, spec.axiom)),
                _ => {}
            }
        }
        // RR: order(r₁, r₂) with r₁ reading w₁, r₂ reading w₂ ≠ w₁ forces
        // co(w₁, w₂) — the reversal gives eco(r₂ → w₁ → r₁) via fr then
        // rf. If r₂ reads the initial value, fr(r₂, w₁) holds already.
        if ia.is_read() && ib.is_read() {
            match (rf.get(&a), rf.get(&b)) {
                (Some(&Some(w1)), Some(&Some(w2))) if w1 != w2 => {
                    pending.push((w1, w2, spec.axiom))
                }
                (Some(&Some(w1)), Some(&None)) => {
                    return Err(CycleWitness::new(spec.axiom, vec![a, b, w1]))
                }
                _ => {}
            }
        }
    }
    Ok(())
}

/// Streams every per-address coherence order extending `forced` to `visit`
/// (last address varying fastest, each address's extensions in lexicographic
/// gid order — the same order [`crate::Execution::enumerate`] produces when
/// nothing is forced). Stops early — returning `true` — as soon as `visit`
/// returns `true`.
pub fn each_co_extension<F: FnMut(&BTreeMap<Addr, Vec<usize>>) -> bool>(
    test: &LitmusTest,
    forced: &Rel,
    visit: &mut F,
) -> bool {
    let per_addr: Vec<(Addr, Vec<usize>)> = test
        .addresses()
        .into_iter()
        .map(|a| (a, test.writes_to(a)))
        .filter(|(_, ws)| !ws.is_empty())
        .collect();
    let mut chosen: BTreeMap<Addr, Vec<usize>> = BTreeMap::new();
    extend_addr(&per_addr, 0, forced, &mut chosen, visit)
}

fn extend_addr<F: FnMut(&BTreeMap<Addr, Vec<usize>>) -> bool>(
    per_addr: &[(Addr, Vec<usize>)],
    ai: usize,
    forced: &Rel,
    chosen: &mut BTreeMap<Addr, Vec<usize>>,
    visit: &mut F,
) -> bool {
    let Some((addr, ws)) = per_addr.get(ai) else {
        return visit(chosen);
    };
    // Predecessor masks in local indices.
    let k = ws.len();
    let mut pred = vec![0u64; k];
    for (i, &wi) in ws.iter().enumerate() {
        for (j, &wj) in ws.iter().enumerate() {
            if forced.contains(wj, wi) {
                pred[i] |= 1 << j;
            }
        }
    }
    let mut order: Vec<usize> = Vec::with_capacity(k);
    extend_one(
        ws, &pred, 0, &mut order, *addr, per_addr, ai, forced, chosen, visit,
    )
}

#[allow(clippy::too_many_arguments)]
fn extend_one<F: FnMut(&BTreeMap<Addr, Vec<usize>>) -> bool>(
    ws: &[usize],
    pred: &[u64],
    used: u64,
    order: &mut Vec<usize>,
    addr: Addr,
    per_addr: &[(Addr, Vec<usize>)],
    ai: usize,
    forced: &Rel,
    chosen: &mut BTreeMap<Addr, Vec<usize>>,
    visit: &mut F,
) -> bool {
    if order.len() == ws.len() {
        chosen.insert(addr, order.clone());
        let stop = extend_addr(per_addr, ai + 1, forced, chosen, visit);
        if !stop {
            chosen.remove(&addr);
        }
        return stop;
    }
    for (i, &w) in ws.iter().enumerate() {
        if used >> i & 1 == 0 && pred[i] & !used == 0 {
            order.push(w);
            if extend_one(
                ws,
                pred,
                used | 1 << i,
                order,
                addr,
                per_addr,
                ai,
                forced,
                chosen,
                visit,
            ) {
                return true;
            }
            order.pop();
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Instr;

    #[test]
    fn digraph_orders_and_rejects_cycles() {
        let mut g = DiGraph::new(4);
        assert_eq!(g.add_edge(2, 1), Ok(true));
        assert_eq!(g.add_edge(2, 1), Ok(false), "duplicate is a no-op");
        assert_eq!(g.add_edge(1, 0), Ok(true));
        assert_eq!(g.add_edge(3, 2), Ok(true));
        // Order respects 3 → 2 → 1 → 0 after reorderings.
        assert!(g.ord[3] < g.ord[2] && g.ord[2] < g.ord[1] && g.ord[1] < g.ord[0]);
        assert_eq!(g.reach(3), 0b0111);
        let cyc = g.add_edge(0, 3).unwrap_err();
        assert_eq!(cyc.len(), 4, "0→3→2→1→0");
        assert_eq!(cyc[0], 0);
        assert_eq!(cyc[1], 3);
    }

    #[test]
    fn digraph_self_loop_is_a_cycle() {
        let mut g = DiGraph::new(2);
        assert_eq!(g.add_edge(1, 1), Err(vec![1]));
    }

    #[test]
    fn digraph_two_cycle_witness() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1).unwrap();
        assert_eq!(g.add_edge(1, 0), Err(vec![1, 0]));
    }

    #[test]
    fn digraph_dense_random_insertions_match_rel_acyclicity() {
        // Insert edges in a scrambled order; the incremental structure must
        // accept exactly while the Rel closure stays acyclic.
        let edges = [
            (4usize, 2usize),
            (2, 7),
            (7, 1),
            (1, 5),
            (0, 4),
            (5, 3),
            (3, 6),
            (6, 0),
        ];
        let mut g = DiGraph::new(8);
        let mut r = Rel::new(8);
        for (i, &(u, v)) in edges.iter().enumerate() {
            let mut trial = r.clone();
            trial.add(u, v);
            if trial.is_acyclic() {
                assert!(g.add_edge(u, v).is_ok(), "edge {i} ({u},{v})");
                r = trial;
            } else {
                assert!(g.add_edge(u, v).is_err(), "edge {i} ({u},{v})");
                return;
            }
        }
        // The last edge closes the 8-cycle, so we must have returned.
        unreachable!("the edge list ends in a cycle");
    }

    fn two_writes() -> LitmusTest {
        // T0: Ld x; T1: St x; St x.
        LitmusTest::new(
            "t",
            vec![vec![Instr::load(0)], vec![Instr::store(0), Instr::store(0)]],
        )
    }

    fn spec_sc_per_loc(test: &LitmusTest) -> AxiomSpec {
        AxiomSpec {
            axiom: "sc_per_loc",
            kind: SpecKind::Closure,
            base: test.po_loc(),
            rf: RfPart::All,
        }
    }

    #[test]
    fn saturation_forces_po_loc_write_order() {
        let t = two_writes();
        // Read the first write: fr saturation forces nothing beyond po_loc,
        // but po_loc(1,2) forces co(1,2).
        let rf = BTreeMap::from([(0usize, Some(1usize))]);
        let forced = saturate(&t, &rf, &[spec_sc_per_loc(&t)], &[]).unwrap();
        assert!(forced.contains(1, 2));
        assert!(!forced.contains(2, 1));
    }

    #[test]
    fn saturation_detects_contradictory_seed() {
        let t = two_writes();
        let rf = BTreeMap::from([(0usize, None)]);
        // Seeding co(2,1) contradicts po_loc-forced co(1,2).
        let err = saturate(&t, &rf, &[spec_sc_per_loc(&t)], &[(2, 1)]).unwrap_err();
        assert!(!err.events.is_empty());
    }

    #[test]
    fn saturation_derives_fr_cycle_for_stale_read() {
        // T0: St x; Ld x — reading the initial value after the po-earlier
        // write violates sc_per_loc: po_loc(0,1) and fr(1,0).
        let t = LitmusTest::new("t", vec![vec![Instr::store(0), Instr::load(0)]]);
        let rf = BTreeMap::from([(1usize, None)]);
        let err = saturate(&t, &rf, &[spec_sc_per_loc(&t)], &[]).unwrap_err();
        assert_eq!(err.axiom, "sc_per_loc");
    }

    #[test]
    fn extensions_respect_forced_edges() {
        let t = two_writes();
        let mut forced = Rel::new(3);
        forced.add(2, 1);
        let mut seen = Vec::new();
        each_co_extension(&t, &forced, &mut |co| {
            seen.push(co[&Addr(0)].clone());
            false
        });
        assert_eq!(seen, vec![vec![2, 1]], "only the forced order survives");
    }

    #[test]
    fn extensions_enumerate_all_orders_when_unforced() {
        let t = two_writes();
        let forced = Rel::new(3);
        let mut seen = Vec::new();
        each_co_extension(&t, &forced, &mut |co| {
            seen.push(co[&Addr(0)].clone());
            false
        });
        assert_eq!(seen, vec![vec![1, 2], vec![2, 1]]);
    }

    #[test]
    fn extension_early_exit_stops_enumeration() {
        let t = two_writes();
        let forced = Rel::new(3);
        let mut calls = 0;
        let stopped = each_co_extension(&t, &forced, &mut |_| {
            calls += 1;
            true
        });
        assert!(stopped);
        assert_eq!(calls, 1);
    }
}
