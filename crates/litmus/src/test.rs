//! Litmus tests: multi-threaded programs plus a (usually forbidden) outcome.

use crate::event::{Addr, DepKind, Instr};
use crate::rel::Rel;
use std::collections::BTreeMap;
use std::fmt;

/// An intra-thread dependency edge (Power/ARM-style).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Dep {
    /// Thread containing both endpoints.
    pub tid: usize,
    /// Index of the source instruction (must be a read) within the thread.
    pub from: usize,
    /// Index of the target instruction within the thread; must be po-later.
    pub to: usize,
    /// Dependency flavor.
    pub kind: DepKind,
}

/// An RMW formalized as an adjacent load/store pair linked by an `rmw` edge
/// (the two-instruction formalization; the paper counts these as two
/// instructions, and single-instruction [`Instr::Rmw`]s as one).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RmwPair {
    /// Thread containing the pair.
    pub tid: usize,
    /// Index of the load within the thread.
    pub load: usize,
    /// Index of the store within the thread (must be `load + 1`).
    pub store: usize,
}

/// A multi-threaded litmus-test program.
///
/// Instructions are identified either by `(thread, index)` or by a *global
/// id*: threads flattened in order. Values follow the litmus convention:
/// the k-th write (in global-id order) to an address writes value `k+1`, the
/// initial value of every address is `0`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct LitmusTest {
    name: String,
    threads: Vec<Vec<Instr>>,
    deps: Vec<Dep>,
    rmw_pairs: Vec<RmwPair>,
    // Flattened cache.
    flat: Vec<Instr>,
    thread_of: Vec<usize>,
    index_of: Vec<usize>,
    start: Vec<usize>,
}

impl LitmusTest {
    /// Builds a test from per-thread instruction lists.
    ///
    /// # Panics
    ///
    /// Panics if more than 64 events are supplied (the concrete relation
    /// layer is 64-bounded).
    pub fn new(name: impl Into<String>, threads: Vec<Vec<Instr>>) -> LitmusTest {
        let mut flat = Vec::new();
        let mut thread_of = Vec::new();
        let mut index_of = Vec::new();
        let mut start = Vec::new();
        for (tid, t) in threads.iter().enumerate() {
            start.push(flat.len());
            for (idx, &i) in t.iter().enumerate() {
                flat.push(i);
                thread_of.push(tid);
                index_of.push(idx);
            }
        }
        assert!(flat.len() <= 64, "too many events");
        LitmusTest {
            name: name.into(),
            threads,
            deps: Vec::new(),
            rmw_pairs: Vec::new(),
            flat,
            thread_of,
            index_of,
            start,
        }
    }

    /// Adds a dependency edge.
    ///
    /// # Panics
    ///
    /// Panics if the endpoints are out of range, `from >= to`, or the source
    /// is not a read.
    pub fn with_dep(mut self, tid: usize, from: usize, to: usize, kind: DepKind) -> LitmusTest {
        assert!(from < to, "dependencies go forward in program order");
        assert!(to < self.threads[tid].len(), "dep target out of range");
        assert!(
            self.threads[tid][from].is_read(),
            "dependencies originate at reads"
        );
        self.deps.push(Dep {
            tid,
            from,
            to,
            kind,
        });
        self
    }

    /// Declares instructions `load` and `load + 1` of `tid` an RMW pair.
    ///
    /// # Panics
    ///
    /// Panics unless the pair is an adjacent same-address load/store.
    pub fn with_rmw_pair(mut self, tid: usize, load: usize) -> LitmusTest {
        let store = load + 1;
        let t = &self.threads[tid];
        assert!(store < t.len(), "rmw store out of range");
        assert!(
            t[load].is_read() && !t[load].is_write(),
            "rmw pair starts with a load"
        );
        assert!(
            t[store].is_write() && !t[store].is_read(),
            "rmw pair ends with a store"
        );
        assert_eq!(
            t[load].addr(),
            t[store].addr(),
            "rmw pair must target one address"
        );
        self.rmw_pairs.push(RmwPair { tid, load, store });
        self
    }

    /// Renames the test.
    pub fn with_name(mut self, name: impl Into<String>) -> LitmusTest {
        self.name = name.into();
        self
    }

    /// The test's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The per-thread instruction lists.
    pub fn threads(&self) -> &[Vec<Instr>] {
        &self.threads
    }

    /// All dependency edges.
    pub fn deps(&self) -> &[Dep] {
        &self.deps
    }

    /// All two-instruction RMW pairs.
    pub fn rmw_pairs(&self) -> &[RmwPair] {
        &self.rmw_pairs
    }

    /// Total number of events (instructions).
    pub fn num_events(&self) -> usize {
        self.flat.len()
    }

    /// Number of threads.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// The instruction with global id `gid`.
    pub fn instr(&self, gid: usize) -> Instr {
        self.flat[gid]
    }

    /// The thread of event `gid`.
    pub fn thread_of(&self, gid: usize) -> usize {
        self.thread_of[gid]
    }

    /// The intra-thread index of event `gid`.
    pub fn index_of(&self, gid: usize) -> usize {
        self.index_of[gid]
    }

    /// The global id of `(tid, idx)`.
    pub fn gid(&self, tid: usize, idx: usize) -> usize {
        self.start[tid] + idx
    }

    /// Global ids of all read events (loads and RMWs).
    pub fn reads(&self) -> Vec<usize> {
        (0..self.flat.len())
            .filter(|&g| self.flat[g].is_read())
            .collect()
    }

    /// Global ids of all write events (stores and RMWs).
    pub fn writes(&self) -> Vec<usize> {
        (0..self.flat.len())
            .filter(|&g| self.flat[g].is_write())
            .collect()
    }

    /// Global ids of writes to `addr`, in global-id order.
    pub fn writes_to(&self, addr: Addr) -> Vec<usize> {
        self.writes()
            .into_iter()
            .filter(|&g| self.flat[g].addr() == Some(addr))
            .collect()
    }

    /// The distinct addresses accessed, sorted.
    pub fn addresses(&self) -> Vec<Addr> {
        let mut v: Vec<Addr> = self.flat.iter().filter_map(|i| i.addr()).collect();
        v.sort();
        v.dedup();
        v
    }

    /// The write to `addr` that writes value `value` (1-based rank), i.e.
    /// the inverse of [`LitmusTest::write_value`].
    ///
    /// # Panics
    ///
    /// Panics if no such write exists.
    pub fn write_with_value(&self, addr: Addr, value: u32) -> usize {
        let ws = self.writes_to(addr);
        assert!(
            value >= 1 && (value as usize) <= ws.len(),
            "no write of {value} to {addr}"
        );
        ws[value as usize - 1]
    }

    /// The value written by write `gid` (per-address 1-based rank).
    ///
    /// # Panics
    ///
    /// Panics if `gid` is not a write.
    pub fn write_value(&self, gid: usize) -> u32 {
        let addr = self.flat[gid].addr().expect("write has an address");
        let ws = self.writes_to(addr);
        ws.iter()
            .position(|&w| w == gid)
            .expect("gid is a write to addr") as u32
            + 1
    }

    // -------------------------------------------------------------------
    // Static relations (fully determined by the program text)
    // -------------------------------------------------------------------

    /// Program order: strictly earlier in the same thread. (Transitive; the
    /// paper keeps po non-transitive for display only.)
    pub fn po(&self) -> Rel {
        let n = self.num_events();
        let mut r = Rel::new(n);
        for i in 0..n {
            for j in 0..n {
                if self.thread_of[i] == self.thread_of[j] && self.index_of[i] < self.index_of[j] {
                    r.add(i, j);
                }
            }
        }
        r
    }

    /// Same-address pairs among memory accesses (reflexive on accesses).
    pub fn same_addr(&self) -> Rel {
        let n = self.num_events();
        let mut r = Rel::new(n);
        for i in 0..n {
            for j in 0..n {
                if let (Some(a), Some(b)) = (self.flat[i].addr(), self.flat[j].addr()) {
                    if a == b {
                        r.add(i, j);
                    }
                }
            }
        }
        r
    }

    /// `po_loc`: program order restricted to same-address accesses.
    pub fn po_loc(&self) -> Rel {
        self.po().intersect(&self.same_addr())
    }

    /// Dependency edges of the given kinds, as a relation.
    pub fn dep_rel(&self, kinds: &[DepKind]) -> Rel {
        let mut r = Rel::new(self.num_events());
        for d in &self.deps {
            if kinds.contains(&d.kind) {
                r.add(self.gid(d.tid, d.from), self.gid(d.tid, d.to));
            }
        }
        r
    }

    /// All dependency edges as a relation.
    pub fn dep_rel_all(&self) -> Rel {
        self.dep_rel(&[
            DepKind::Addr,
            DepKind::Data,
            DepKind::Ctrl,
            DepKind::CtrlIsync,
        ])
    }

    /// The `rmw` relation: two-instruction pairs *and* single-instruction
    /// RMWs (which relate to themselves, read-part to write-part).
    pub fn rmw_rel(&self) -> Rel {
        let mut r = Rel::new(self.num_events());
        for p in &self.rmw_pairs {
            r.add(self.gid(p.tid, p.load), self.gid(p.tid, p.store));
        }
        for (g, i) in self.flat.iter().enumerate() {
            if matches!(i, Instr::Rmw { .. }) {
                r.add(g, g);
            }
        }
        r
    }

    /// Bitmask of read events.
    pub fn read_mask(&self) -> u64 {
        self.reads().iter().fold(0, |m, &g| m | 1 << g)
    }

    /// Bitmask of write events.
    pub fn write_mask(&self) -> u64 {
        self.writes().iter().fold(0, |m, &g| m | 1 << g)
    }

    /// Bitmask of fence events.
    pub fn fence_mask(&self) -> u64 {
        (0..self.flat.len())
            .filter(|&g| self.flat[g].is_fence())
            .fold(0, |m, g| m | 1 << g)
    }
}

impl fmt::Display for LitmusTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}:", self.name)?;
        for (tid, t) in self.threads.iter().enumerate() {
            write!(f, "  T{tid}:")?;
            for i in t {
                write!(f, " {i};")?;
            }
            writeln!(f)?;
        }
        for d in &self.deps {
            writeln!(
                f,
                "  dep[{}] T{} {}->{}",
                d.kind.mnemonic(),
                d.tid,
                d.from,
                d.to
            )?;
        }
        for p in &self.rmw_pairs {
            writeln!(f, "  rmw T{} {}->{}", p.tid, p.load, p.store)?;
        }
        Ok(())
    }
}

/// The observable outcome of one execution: who each read read from, and the
/// final (coherence-maximal) write per address.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Outcome {
    /// For each read gid: `Some(write gid)` or `None` for the initial value.
    pub rf: BTreeMap<usize, Option<usize>>,
    /// For each address with at least one write: the final write's gid.
    pub finals: BTreeMap<Addr, usize>,
}

impl Outcome {
    /// An empty (fully unconstrained) outcome.
    pub fn empty() -> Outcome {
        Outcome {
            rf: BTreeMap::new(),
            finals: BTreeMap::new(),
        }
    }

    /// Builds a (possibly partial) outcome from rf entries (read gid →
    /// source write gid or `None` for initial) and final-write entries.
    pub fn of(
        rf: impl IntoIterator<Item = (usize, Option<usize>)>,
        finals: impl IntoIterator<Item = (Addr, usize)>,
    ) -> Outcome {
        Outcome {
            rf: rf.into_iter().collect(),
            finals: finals.into_iter().collect(),
        }
    }

    /// `true` if every constraint in this (possibly partial) outcome holds in
    /// the complete outcome `full`.
    ///
    /// Suites typically specify only the components the original authors
    /// wrote down (e.g. `r1=1 ∧ r2=0` with no final values); an outcome is
    /// *observable* if some allowed execution's full outcome matches it.
    pub fn matches(&self, full: &Outcome) -> bool {
        self.rf.iter().all(|(r, w)| full.rf.get(r) == Some(w))
            && self
                .finals
                .iter()
                .all(|(a, w)| full.finals.get(a) == Some(w))
    }

    /// Human-readable rendering like `(r0=1, r1=0, [x]=2)` against `test`.
    pub fn display(&self, test: &LitmusTest) -> String {
        let mut parts = Vec::new();
        for (i, (&read, &src)) in self.rf.iter().enumerate() {
            let val = src.map(|w| test.write_value(w)).unwrap_or(0);
            let addr = test.instr(read).addr().expect("reads have addresses");
            parts.push(format!("r{i}:[{addr}]={val}"));
        }
        for (&addr, &w) in &self.finals {
            parts.push(format!("[{addr}]={}", test.write_value(w)));
        }
        format!("({})", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{FenceKind, MemOrder};

    /// The message-passing test of the paper's Figure 1.
    pub(crate) fn mp_acq_rel() -> LitmusTest {
        LitmusTest::new(
            "MP",
            vec![
                vec![Instr::store(0), Instr::store_ord(1, MemOrder::Release)],
                vec![Instr::load_ord(1, MemOrder::Acquire), Instr::load(0)],
            ],
        )
    }

    #[test]
    fn flattening_and_ids() {
        let t = mp_acq_rel();
        assert_eq!(t.num_events(), 4);
        assert_eq!(t.num_threads(), 2);
        assert_eq!(t.gid(1, 0), 2);
        assert_eq!(t.thread_of(3), 1);
        assert_eq!(t.index_of(3), 1);
        assert_eq!(t.reads(), vec![2, 3]);
        assert_eq!(t.writes(), vec![0, 1]);
    }

    #[test]
    fn po_and_po_loc() {
        let t = mp_acq_rel();
        let po = t.po();
        assert!(po.contains(0, 1));
        assert!(po.contains(2, 3));
        assert!(!po.contains(1, 2));
        assert!(!po.contains(1, 0));
        // No same-address pair is po-adjacent in MP.
        assert!(t.po_loc().no_edges());
    }

    #[test]
    fn same_addr_ignores_fences() {
        let t = LitmusTest::new(
            "t",
            vec![vec![
                Instr::store(0),
                Instr::fence(FenceKind::Full),
                Instr::load(0),
            ]],
        );
        let sa = t.same_addr();
        assert!(sa.contains(0, 2));
        assert!(sa.contains(0, 0));
        assert!(!sa.contains(0, 1));
        assert!(!sa.contains(1, 1));
        assert_eq!(t.fence_mask(), 0b010);
    }

    #[test]
    fn write_values_are_per_address_ranks() {
        let t = LitmusTest::new(
            "t",
            vec![
                vec![Instr::store(0), Instr::store(1)],
                vec![Instr::store(0)],
            ],
        );
        assert_eq!(t.write_value(0), 1);
        assert_eq!(t.write_value(1), 1);
        assert_eq!(t.write_value(2), 2);
    }

    #[test]
    fn deps_and_rmw() {
        let t = LitmusTest::new("t", vec![vec![Instr::load(0), Instr::store(1)]]).with_dep(
            0,
            0,
            1,
            DepKind::Data,
        );
        assert_eq!(t.dep_rel(&[DepKind::Data]).edge_count(), 1);
        assert!(t.dep_rel(&[DepKind::Addr]).no_edges());
        assert_eq!(t.dep_rel_all().edge_count(), 1);

        let t2 =
            LitmusTest::new("t2", vec![vec![Instr::load(0), Instr::store(0)]]).with_rmw_pair(0, 0);
        assert!(t2.rmw_rel().contains(0, 1));

        let t3 = LitmusTest::new("t3", vec![vec![Instr::rmw(0)]]);
        assert!(t3.rmw_rel().contains(0, 0));
        assert!(t3.instr(0).is_read() && t3.instr(0).is_write());
    }

    #[test]
    #[should_panic(expected = "rmw pair must target one address")]
    fn rmw_pair_address_mismatch_panics() {
        let _ =
            LitmusTest::new("bad", vec![vec![Instr::load(0), Instr::store(1)]]).with_rmw_pair(0, 0);
    }

    #[test]
    #[should_panic(expected = "dependencies originate at reads")]
    fn dep_from_store_panics() {
        let _ = LitmusTest::new("bad", vec![vec![Instr::store(0), Instr::store(1)]]).with_dep(
            0,
            0,
            1,
            DepKind::Addr,
        );
    }

    #[test]
    fn display_contains_threads() {
        let s = mp_acq_rel().to_string();
        assert!(s.contains("T0:"));
        assert!(s.contains("St.release [y]"));
        assert!(s.contains("Ld.acquire [y]"));
    }
}
