//! # litsynth-litmus
//!
//! Litmus-test infrastructure: the program/outcome AST, concrete relation
//! algebra, explicit execution enumeration, the saturation-based
//! consistency-checking core ([`check`]), a line-oriented wire codec
//! ([`wire`]), canonicalization, reference suites, and a diy-style
//! randomized generator.
//!
//! A [`LitmusTest`] is a small multi-threaded program; an [`Outcome`] is the
//! observable result of one execution (who each read read from, plus the
//! final write per location). A memory model (see `litsynth-models`) decides
//! which outcomes are legal; a litmus test *in a suite* is a program paired
//! with a forbidden outcome.
//!
//! # Example
//!
//! ```
//! use litsynth_litmus::{Instr, LitmusTest, MemOrder, Execution};
//!
//! // The message-passing (MP) test of the paper's Figure 1.
//! let mp = LitmusTest::new(
//!     "MP",
//!     vec![
//!         vec![Instr::store(0), Instr::store_ord(1, MemOrder::Release)],
//!         vec![Instr::load_ord(1, MemOrder::Acquire), Instr::load(0)],
//!     ],
//! );
//! assert_eq!(mp.num_events(), 4);
//! // Four candidate executions (2 rf choices per read).
//! assert_eq!(Execution::enumerate(&mp).len(), 4);
//! ```

mod canon;
mod convert;
mod event;
mod exec;
mod rel;
mod test;

pub mod check;
pub mod diy;
pub mod format;
pub mod rng;
pub mod suites;
pub mod wire;

pub use canon::{
    apply_thread_order, canonical_key_exact, canonical_key_hash, canonicalize_exact, serialize,
    TwoTierCanon,
};
pub use check::{each_co_extension, saturate, AxiomSpec, CycleWitness, DiGraph, RfPart, SpecKind};
pub use convert::to_rmw_pairs;
pub use event::{Addr, DepKind, FenceKind, Instr, MemOrder, Scope};
pub use exec::{Execution, ExecutionIter};
pub use rel::{union_all, Rel};
pub use rng::SplitMix64;
pub use test::{Dep, LitmusTest, Outcome, RmwPair};
