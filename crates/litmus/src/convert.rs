//! Conversions between the two RMW formalizations.
//!
//! The paper's Figure 4 models RMWs as adjacent load/store pairs linked by
//! an `rmw` edge; ISA suites (and our Owens encoding) often use
//! single-instruction RMW primitives instead. §5.2: "load-store pairs …
//! count as two instructions, while atomic RMW primitives count as one" —
//! so the same conceptual test has different sizes in the two forms.

use crate::event::Instr;
use crate::test::{LitmusTest, Outcome};
use litsynth_litmus_memorder_split::split_orders;

mod litsynth_litmus_memorder_split {
    use crate::event::MemOrder;

    /// Splits an RMW's order annotation into its read and write halves.
    pub fn split_orders(o: MemOrder) -> (MemOrder, MemOrder) {
        let load = match o {
            MemOrder::SeqCst => MemOrder::SeqCst,
            MemOrder::AcqRel | MemOrder::Acquire => MemOrder::Acquire,
            MemOrder::Consume => MemOrder::Consume,
            _ => MemOrder::Relaxed,
        };
        let store = match o {
            MemOrder::SeqCst => MemOrder::SeqCst,
            MemOrder::AcqRel | MemOrder::Release => MemOrder::Release,
            _ => MemOrder::Relaxed,
        };
        (load, store)
    }
}

/// Rewrites every single-instruction RMW into an adjacent load/store pair
/// linked by an `rmw` edge, remapping the outcome's event ids: reads stay
/// on the load half, write references move to the store half.
///
/// Tests already in pair form are returned unchanged.
pub fn to_rmw_pairs(test: &LitmusTest, outcome: &Outcome) -> (LitmusTest, Outcome) {
    let mut cur = test.clone();
    let mut out = outcome.clone();
    loop {
        let Some(gid) = (0..cur.num_events()).find(|&g| matches!(cur.instr(g), Instr::Rmw { .. }))
        else {
            return (cur, out);
        };
        let tid = cur.thread_of(gid);
        let idx = cur.index_of(gid);
        let Instr::Rmw { addr, order, scope } = cur.instr(gid) else {
            unreachable!()
        };
        let (lo, so) = split_orders(order);
        let mut threads = cur.threads().to_vec();
        threads[tid][idx] = Instr::Load {
            addr,
            order: lo,
            scope,
        };
        threads[tid].insert(
            idx + 1,
            Instr::Store {
                addr,
                order: so,
                scope,
            },
        );
        let mut next = LitmusTest::new(cur.name().to_string(), threads);
        let shift = |d_tid: usize, i: usize| if d_tid == tid && i > idx { i + 1 } else { i };
        for d in cur.deps() {
            next = next.with_dep(d.tid, shift(d.tid, d.from), shift(d.tid, d.to), d.kind);
        }
        for p in cur.rmw_pairs() {
            next = next.with_rmw_pair(p.tid, shift(p.tid, p.load));
        }
        next = next.with_rmw_pair(tid, idx);
        // Remap the outcome: reads stay at `gid`, writes move to `gid+1`,
        // later ids shift by one.
        let map_read = |g: usize| if g > gid { g + 1 } else { g };
        let map_write = |g: usize| if g >= gid { g + 1 } else { g };
        out = Outcome {
            rf: out
                .rf
                .iter()
                .map(|(&r, &w)| (map_read(r), w.map(map_write)))
                .collect(),
            finals: out
                .finals
                .iter()
                .map(|(&a, &w)| (a, map_write(w)))
                .collect(),
        };
        cur = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::MemOrder;
    use crate::suites::classics;
    use crate::test::LitmusTest;

    #[test]
    fn rmw_st_converts_to_three_events() {
        let (t, o) = classics::rmw_st();
        let (t2, o2) = to_rmw_pairs(&t, &o);
        assert_eq!(t2.num_events(), 3);
        assert_eq!(t2.rmw_pairs().len(), 1);
        assert!(t2.instr(0).is_read() && !t2.instr(0).is_write());
        assert!(t2.instr(1).is_write() && !t2.instr(1).is_read());
        // The final write moved from gid 0 (the RMW) to gid 1 (the store).
        assert_eq!(o2.finals[&crate::event::Addr(0)], 1);
        // The read entry stays on the load.
        assert!(o2.rf.contains_key(&0));
    }

    #[test]
    fn sb_rmws_converts_to_six_events() {
        let (t, o) = classics::sb_rmws();
        let (t2, o2) = to_rmw_pairs(&t, &o);
        assert_eq!(t2.num_events(), 6);
        assert_eq!(t2.rmw_pairs().len(), 2);
        // The two plain loads' init entries survive with shifted gids.
        assert_eq!(o2.rf.values().filter(|w| w.is_none()).count(), 2);
    }

    #[test]
    fn orders_split_correctly() {
        let t = LitmusTest::new(
            "acqrel",
            vec![vec![Instr::Rmw {
                addr: crate::event::Addr(0),
                order: MemOrder::AcqRel,
                scope: crate::event::Scope::System,
            }]],
        );
        let (t2, _) = to_rmw_pairs(&t, &Outcome::empty());
        assert_eq!(t2.instr(0).order(), Some(MemOrder::Acquire));
        assert_eq!(t2.instr(1).order(), Some(MemOrder::Release));
    }

    #[test]
    fn pair_form_is_identity() {
        let t = LitmusTest::new("pair", vec![vec![Instr::load(0), Instr::store(0)]])
            .with_rmw_pair(0, 0);
        let o = Outcome::empty();
        let (t2, _) = to_rmw_pairs(&t, &o);
        assert_eq!(t, t2);
    }

    #[test]
    fn legality_is_preserved_under_conversion() {
        // The conversion is semantics-preserving: a forbidden outcome stays
        // forbidden (checked in the cross-crate tests against the models;
        // here structurally: the candidate outcome remains realizable).
        let (t, o) = classics::rmw_rmw();
        let (t2, o2) = to_rmw_pairs(&t, &o);
        // Streaming: stop at the first witness instead of materializing
        // every candidate.
        let ok = crate::exec::Execution::iter(&t2).any(|e| o2.matches(&e.outcome()));
        assert!(ok);
    }
}
