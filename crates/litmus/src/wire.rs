//! Line-oriented wire codec for tests and outcomes.
//!
//! The serve layer's `CHECK` verb ships a whole litmus test plus the
//! outcome to check across the wire. The encoding is the same discipline as
//! the serve protocol's key=value bodies: one `key=value` per line, strict
//! parsing (unknown keys are errors — the encoded body feeds a fingerprint
//! cache, so a silently dropped field could serve the wrong verdict),
//! dependency-free.
//!
//! ```text
//! name=MP
//! thread=load,1,relaxed,system;store,0,release,system
//! dep=0:0:1:addr
//! rmw=1:0
//! rf=2:1
//! rf=3:init
//! final=0:0
//! ```
//!
//! `thread` lines appear once per thread in order; instructions are
//! `;`-separated. `rf`/`final` lines carry the outcome (gids; `init` for
//! the initial value). `dep` is `tid:from:to:kind`, `rmw` is `tid:load`.

use crate::event::{Addr, DepKind, FenceKind, Instr, MemOrder, Scope};
use crate::test::{LitmusTest, Outcome};
use std::fmt::Write as _;

/// A malformed wire body.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire: {}", self.0)
    }
}

impl std::error::Error for WireError {}

fn err<T>(msg: impl Into<String>) -> Result<T, WireError> {
    Err(WireError(msg.into()))
}

fn order_name(o: MemOrder) -> &'static str {
    match o {
        MemOrder::Relaxed => "relaxed",
        MemOrder::Consume => "consume",
        MemOrder::Acquire => "acquire",
        MemOrder::Release => "release",
        MemOrder::AcqRel => "acqrel",
        MemOrder::SeqCst => "seqcst",
    }
}

fn order_of(s: &str) -> Result<MemOrder, WireError> {
    Ok(match s {
        "relaxed" => MemOrder::Relaxed,
        "consume" => MemOrder::Consume,
        "acquire" => MemOrder::Acquire,
        "release" => MemOrder::Release,
        "acqrel" => MemOrder::AcqRel,
        "seqcst" => MemOrder::SeqCst,
        _ => return err(format!("unknown memory order `{s}`")),
    })
}

fn scope_name(s: Scope) -> &'static str {
    match s {
        Scope::WorkItem => "workitem",
        Scope::WorkGroup => "workgroup",
        Scope::Device => "device",
        Scope::System => "system",
    }
}

fn scope_of(s: &str) -> Result<Scope, WireError> {
    Ok(match s {
        "workitem" => Scope::WorkItem,
        "workgroup" => Scope::WorkGroup,
        "device" => Scope::Device,
        "system" => Scope::System,
        _ => return err(format!("unknown scope `{s}`")),
    })
}

fn fence_name(k: FenceKind) -> &'static str {
    match k {
        FenceKind::Full => "full",
        FenceKind::Lightweight => "lightweight",
        FenceKind::AcqRel => "acqrel",
        FenceKind::Acquire => "acquire",
        FenceKind::Release => "release",
    }
}

fn fence_of(s: &str) -> Result<FenceKind, WireError> {
    Ok(match s {
        "full" => FenceKind::Full,
        "lightweight" => FenceKind::Lightweight,
        "acqrel" => FenceKind::AcqRel,
        "acquire" => FenceKind::Acquire,
        "release" => FenceKind::Release,
        _ => return err(format!("unknown fence kind `{s}`")),
    })
}

fn dep_name(k: DepKind) -> &'static str {
    match k {
        DepKind::Addr => "addr",
        DepKind::Data => "data",
        DepKind::Ctrl => "ctrl",
        DepKind::CtrlIsync => "ctrlisync",
    }
}

fn dep_of(s: &str) -> Result<DepKind, WireError> {
    Ok(match s {
        "addr" => DepKind::Addr,
        "data" => DepKind::Data,
        "ctrl" => DepKind::Ctrl,
        "ctrlisync" => DepKind::CtrlIsync,
        _ => return err(format!("unknown dep kind `{s}`")),
    })
}

fn instr_str(i: &Instr) -> String {
    match *i {
        Instr::Load { addr, order, scope } => {
            format!(
                "load,{},{},{}",
                addr.0,
                order_name(order),
                scope_name(scope)
            )
        }
        Instr::Store { addr, order, scope } => {
            format!(
                "store,{},{},{}",
                addr.0,
                order_name(order),
                scope_name(scope)
            )
        }
        Instr::Rmw { addr, order, scope } => {
            format!("rmw,{},{},{}", addr.0, order_name(order), scope_name(scope))
        }
        Instr::Fence { kind, scope } => {
            format!("fence,{},{}", fence_name(kind), scope_name(scope))
        }
    }
}

fn instr_of(s: &str) -> Result<Instr, WireError> {
    let parts: Vec<&str> = s.split(',').collect();
    match parts.as_slice() {
        ["fence", kind, scope] => Ok(Instr::Fence {
            kind: fence_of(kind)?,
            scope: scope_of(scope)?,
        }),
        [op @ ("load" | "store" | "rmw"), addr, order, scope] => {
            let addr = Addr(
                addr.parse::<u8>()
                    .map_err(|_| WireError(format!("bad address `{addr}`")))?,
            );
            let order = order_of(order)?;
            let scope = scope_of(scope)?;
            Ok(match *op {
                "load" => Instr::Load { addr, order, scope },
                "store" => Instr::Store { addr, order, scope },
                _ => Instr::Rmw { addr, order, scope },
            })
        }
        _ => err(format!("malformed instruction `{s}`")),
    }
}

/// Encodes a test plus outcome as the `CHECK` wire body.
pub fn encode(test: &LitmusTest, outcome: &Outcome) -> String {
    let mut s = String::new();
    // A newline or '=' in the name would corrupt the framing.
    let name: String = test
        .name()
        .chars()
        .map(|c| if c == '\n' || c == '=' { '_' } else { c })
        .collect();
    writeln!(s, "name={name}").unwrap();
    for t in test.threads() {
        let instrs: Vec<String> = t.iter().map(instr_str).collect();
        writeln!(s, "thread={}", instrs.join(";")).unwrap();
    }
    for d in test.deps() {
        writeln!(s, "dep={}:{}:{}:{}", d.tid, d.from, d.to, dep_name(d.kind)).unwrap();
    }
    for p in test.rmw_pairs() {
        writeln!(s, "rmw={}:{}", p.tid, p.load).unwrap();
    }
    for (&r, &src) in &outcome.rf {
        match src {
            Some(w) => writeln!(s, "rf={r}:{w}").unwrap(),
            None => writeln!(s, "rf={r}:init").unwrap(),
        }
    }
    for (&a, &w) in &outcome.finals {
        writeln!(s, "final={}:{}", a.0, w).unwrap();
    }
    s
}

fn parse_usize(s: &str, what: &str) -> Result<usize, WireError> {
    s.parse::<usize>()
        .map_err(|_| WireError(format!("bad {what} `{s}`")))
}

/// Decodes a `CHECK` wire body back into a test plus outcome.
///
/// Strict: unknown keys, malformed fields, and structurally invalid
/// deps/rmw-pairs (which the `LitmusTest` builders would panic on) are all
/// errors.
pub fn decode(body: &str) -> Result<(LitmusTest, Outcome), WireError> {
    let mut name: Option<String> = None;
    let mut threads: Vec<Vec<Instr>> = Vec::new();
    let mut deps: Vec<(usize, usize, usize, DepKind)> = Vec::new();
    let mut rmws: Vec<(usize, usize)> = Vec::new();
    let mut outcome = Outcome::empty();
    for line in body.lines() {
        if line.is_empty() {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return err(format!("missing `=` in `{line}`"));
        };
        match key {
            "name" => name = Some(value.to_string()),
            "thread" => {
                let mut instrs = Vec::new();
                for part in value.split(';') {
                    instrs.push(instr_of(part)?);
                }
                threads.push(instrs);
            }
            "dep" => {
                let parts: Vec<&str> = value.split(':').collect();
                let [tid, from, to, kind] = parts.as_slice() else {
                    return err(format!("malformed dep `{value}`"));
                };
                deps.push((
                    parse_usize(tid, "dep tid")?,
                    parse_usize(from, "dep from")?,
                    parse_usize(to, "dep to")?,
                    dep_of(kind)?,
                ));
            }
            "rmw" => {
                let Some((tid, load)) = value.split_once(':') else {
                    return err(format!("malformed rmw pair `{value}`"));
                };
                rmws.push((parse_usize(tid, "rmw tid")?, parse_usize(load, "rmw load")?));
            }
            "rf" => {
                let Some((r, w)) = value.split_once(':') else {
                    return err(format!("malformed rf `{value}`"));
                };
                let r = parse_usize(r, "rf read")?;
                let src = if w == "init" {
                    None
                } else {
                    Some(parse_usize(w, "rf write")?)
                };
                outcome.rf.insert(r, src);
            }
            "final" => {
                let Some((a, w)) = value.split_once(':') else {
                    return err(format!("malformed final `{value}`"));
                };
                let a = a
                    .parse::<u8>()
                    .map_err(|_| WireError(format!("bad final address `{a}`")))?;
                outcome
                    .finals
                    .insert(Addr(a), parse_usize(w, "final write")?);
            }
            _ => return err(format!("unknown key `{key}`")),
        }
    }
    let Some(name) = name else {
        return err("missing name");
    };
    if threads.is_empty() {
        return err("no threads");
    }
    let total: usize = threads.iter().map(Vec::len).sum();
    if total == 0 || total > 64 {
        return err(format!("{total} events (must be 1..=64)"));
    }
    // Validate dep/rmw shapes up front: the builders assert on them.
    for &(tid, from, to, _) in &deps {
        let Some(t) = threads.get(tid) else {
            return err(format!("dep tid {tid} out of range"));
        };
        if from >= to || to >= t.len() {
            return err(format!("dep {from}->{to} out of range in thread {tid}"));
        }
        if !t[from].is_read() {
            return err(format!("dep source {tid}:{from} is not a read"));
        }
    }
    for &(tid, load) in &rmws {
        let Some(t) = threads.get(tid) else {
            return err(format!("rmw tid {tid} out of range"));
        };
        let ok = t.get(load).is_some_and(|i| matches!(i, Instr::Load { .. }))
            && t.get(load + 1)
                .is_some_and(|i| matches!(i, Instr::Store { .. }))
            && t[load].addr() == t[load + 1].addr();
        if !ok {
            return err(format!(
                "rmw pair {tid}:{load} is not an adjacent same-address load/store"
            ));
        }
    }
    let mut test = LitmusTest::new(name, threads);
    for (tid, from, to, kind) in deps {
        test = test.with_dep(tid, from, to, kind);
    }
    for (tid, load) in rmws {
        test = test.with_rmw_pair(tid, load);
    }
    Ok((test, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mp_with_everything() -> (LitmusTest, Outcome) {
        let t = LitmusTest::new(
            "MP+dep",
            vec![
                vec![
                    Instr::store(0),
                    Instr::fence(FenceKind::Lightweight),
                    Instr::store_ord(1, MemOrder::Release),
                ],
                vec![Instr::load_ord(1, MemOrder::Acquire), Instr::load(0)],
                vec![Instr::load(2), Instr::store(2)],
            ],
        )
        .with_dep(1, 0, 1, DepKind::Addr)
        .with_rmw_pair(2, 0);
        let o = Outcome::of([(3, Some(2)), (4, None)], [(Addr(0), 0)]);
        (t, o)
    }

    #[test]
    fn round_trip_preserves_everything() {
        let (t, o) = mp_with_everything();
        let body = encode(&t, &o);
        let (t2, o2) = decode(&body).expect("decodes");
        assert_eq!(t2.name(), t.name());
        assert_eq!(t2.threads(), t.threads());
        assert_eq!(t2.deps(), t.deps());
        assert_eq!(t2.rmw_pairs(), t.rmw_pairs());
        assert_eq!(o2, o);
        // And the re-encoding is byte-identical (cache-key stability).
        assert_eq!(encode(&t2, &o2), body);
    }

    #[test]
    fn unknown_key_is_rejected() {
        let (t, o) = mp_with_everything();
        let body = format!("{}bogus=1\n", encode(&t, &o));
        assert!(decode(&body).is_err());
    }

    #[test]
    fn malformed_fields_are_rejected() {
        for body in [
            "thread=load,0,relaxed,system\n",             // missing name
            "name=t\n",                                   // no threads
            "name=t\nthread=load,0,upsidedown,system\n",  // bad order
            "name=t\nthread=teleport,0,relaxed,system\n", // bad op
            "name=t\nthread=load,0,relaxed,system\ndep=0:0:5:addr\n", // dep range
            "name=t\nthread=store,0,relaxed,system;load,0,relaxed,system\nrmw=0:0\n", // rmw shape
            "name=t\nthread=load,0,relaxed,system\nrf=zero:init\n", // bad gid
        ] {
            assert!(decode(body).is_err(), "{body:?} must not decode");
        }
    }

    #[test]
    fn name_with_equals_is_sanitized() {
        let t = LitmusTest::new("a=b\nc", vec![vec![Instr::load(0)]]);
        let body = encode(&t, &Outcome::empty());
        let (t2, _) = decode(&body).expect("decodes");
        assert_eq!(t2.name(), "a_b_c");
    }
}
