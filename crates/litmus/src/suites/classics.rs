//! Builders for the classic named litmus tests.
//!
//! Each builder returns the program together with the outcome of interest
//! (the one whose legality distinguishes models). Values in comments follow
//! the standard convention: the k-th write to an address (global order)
//! writes `k`, `0` is the initial value.

use crate::event::{Addr, DepKind, FenceKind, Instr, MemOrder};
use crate::test::{LitmusTest, Outcome};

/// Shorthand used throughout: builds a partial outcome.
pub fn oc(
    rf: impl IntoIterator<Item = (usize, Option<usize>)>,
    finals: impl IntoIterator<Item = (u8, usize)>,
) -> Outcome {
    Outcome::of(rf, finals.into_iter().map(|(a, w)| (Addr(a), w)))
}

/// Message passing: `St x; St y ‖ Ld y; Ld x`, outcome `r_y=1 ∧ r_x=0`
/// (paper Figure 1, relaxed flavor).
pub fn mp() -> (LitmusTest, Outcome) {
    let t = LitmusTest::new(
        "MP",
        vec![
            vec![Instr::store(0), Instr::store(1)],
            vec![Instr::load(1), Instr::load(0)],
        ],
    );
    (t, oc([(2, Some(1)), (3, None)], []))
}

/// MP with release/acquire synchronization (paper Figure 1).
pub fn mp_rel_acq() -> (LitmusTest, Outcome) {
    let t = LitmusTest::new(
        "MP+rel+acq",
        vec![
            vec![Instr::store(0), Instr::store_ord(1, MemOrder::Release)],
            vec![Instr::load_ord(1, MemOrder::Acquire), Instr::load(0)],
        ],
    );
    (t, oc([(2, Some(1)), (3, None)], []))
}

/// MP with *two* releases and *two* acquires — the over-synchronized,
/// non-minimal flavor of the paper's Figure 2.
pub fn mp_rel2_acq2() -> (LitmusTest, Outcome) {
    let t = LitmusTest::new(
        "MP+rels+acqs",
        vec![
            vec![
                Instr::store_ord(0, MemOrder::Release),
                Instr::store_ord(1, MemOrder::Release),
            ],
            vec![
                Instr::load_ord(1, MemOrder::Acquire),
                Instr::load_ord(0, MemOrder::Acquire),
            ],
        ],
    );
    (t, oc([(2, Some(1)), (3, None)], []))
}

/// MP with a fence in each thread.
pub fn mp_fences(kind: FenceKind, name: &str) -> (LitmusTest, Outcome) {
    let t = LitmusTest::new(
        name,
        vec![
            vec![Instr::store(0), Instr::fence(kind), Instr::store(1)],
            vec![Instr::load(1), Instr::fence(kind), Instr::load(0)],
        ],
    );
    (t, oc([(3, Some(2)), (5, None)], []))
}

/// MP with a fence on the writer and an address dependency on the reader.
pub fn mp_fence_addr(kind: FenceKind, name: &str) -> (LitmusTest, Outcome) {
    let t = LitmusTest::new(
        name,
        vec![
            vec![Instr::store(0), Instr::fence(kind), Instr::store(1)],
            vec![Instr::load(1), Instr::load(0)],
        ],
    )
    .with_dep(1, 0, 1, DepKind::Addr);
    (t, oc([(3, Some(2)), (4, None)], []))
}

/// MP with only an address dependency on the reader side (writer unfenced).
pub fn mp_addr() -> (LitmusTest, Outcome) {
    let t = LitmusTest::new(
        "MP+po+addr",
        vec![
            vec![Instr::store(0), Instr::store(1)],
            vec![Instr::load(1), Instr::load(0)],
        ],
    )
    .with_dep(1, 0, 1, DepKind::Addr);
    (t, oc([(2, Some(1)), (3, None)], []))
}

/// Store buffering: `St x; Ld y ‖ St y; Ld x`, outcome `0 ∧ 0`.
pub fn sb() -> (LitmusTest, Outcome) {
    let t = LitmusTest::new(
        "SB",
        vec![
            vec![Instr::store(0), Instr::load(1)],
            vec![Instr::store(1), Instr::load(0)],
        ],
    );
    (t, oc([(1, None), (3, None)], []))
}

/// SB with a full fence in each thread (x86 `mfence`, Power `sync`).
pub fn sb_fences() -> (LitmusTest, Outcome) {
    let t = LitmusTest::new(
        "SB+fences",
        vec![
            vec![
                Instr::store(0),
                Instr::fence(FenceKind::Full),
                Instr::load(1),
            ],
            vec![
                Instr::store(1),
                Instr::fence(FenceKind::Full),
                Instr::load(0),
            ],
        ],
    );
    (t, oc([(2, None), (5, None)], []))
}

/// SB with a single fence (in thread 0 only).
pub fn sb_one_fence() -> (LitmusTest, Outcome) {
    let t = LitmusTest::new(
        "SB+fence+po",
        vec![
            vec![
                Instr::store(0),
                Instr::fence(FenceKind::Full),
                Instr::load(1),
            ],
            vec![Instr::store(1), Instr::load(0)],
        ],
    );
    (t, oc([(2, None), (4, None)], []))
}

/// Load buffering: `Ld x; St y ‖ Ld y; St x`, outcome `1 ∧ 1`.
pub fn lb() -> (LitmusTest, Outcome) {
    let t = LitmusTest::new(
        "LB",
        vec![
            vec![Instr::load(0), Instr::store(1)],
            vec![Instr::load(1), Instr::store(0)],
        ],
    );
    (t, oc([(0, Some(3)), (2, Some(1))], []))
}

/// LB with address dependencies in both threads.
pub fn lb_addrs() -> (LitmusTest, Outcome) {
    let (t, o) = lb();
    let t = t
        .with_name("LB+addrs")
        .with_dep(0, 0, 1, DepKind::Addr)
        .with_dep(1, 0, 1, DepKind::Addr);
    (t, o)
}

/// LB with data dependencies in both threads.
pub fn lb_datas() -> (LitmusTest, Outcome) {
    let (t, o) = lb();
    let t = t
        .with_name("LB+datas")
        .with_dep(0, 0, 1, DepKind::Data)
        .with_dep(1, 0, 1, DepKind::Data);
    (t, o)
}

/// The store-after-read test S: `St x(1); St y ‖ Ld y; St x(2)`, outcome
/// `r_y=1 ∧ x finally 1` (thread 1's write coherence-before thread 0's).
pub fn s() -> (LitmusTest, Outcome) {
    let t = LitmusTest::new(
        "S",
        vec![
            vec![Instr::store(0), Instr::store(1)],
            vec![Instr::load(1), Instr::store(0)],
        ],
    );
    (t, oc([(2, Some(1))], [(0, 0)]))
}

/// The R test: `St x; St y(1) ‖ St y(2); Ld x`, outcome `y finally 2 ∧
/// r_x=0`.
pub fn r() -> (LitmusTest, Outcome) {
    let t = LitmusTest::new(
        "R",
        vec![
            vec![Instr::store(0), Instr::store(1)],
            vec![Instr::store(1), Instr::load(0)],
        ],
    );
    (t, oc([(3, None)], [(1, 2)]))
}

/// 2+2W: `St x(1); St y(1) ‖ St y(2); St x(2)`, outcome `x finally 1 ∧ y
/// finally 2` (each thread's first write loses).
pub fn two_plus_two_w() -> (LitmusTest, Outcome) {
    let t = LitmusTest::new(
        "2+2W",
        vec![
            vec![Instr::store(0), Instr::store(1)],
            vec![Instr::store(1), Instr::store(0)],
        ],
    );
    (t, oc([], [(0, 0), (1, 2)]))
}

/// Write-to-read causality WRC: `St x ‖ Ld x; St y ‖ Ld y; Ld x`,
/// outcome `1 ∧ 1 ∧ 0`.
pub fn wrc() -> (LitmusTest, Outcome) {
    let t = LitmusTest::new(
        "WRC",
        vec![
            vec![Instr::store(0)],
            vec![Instr::load(0), Instr::store(1)],
            vec![Instr::load(1), Instr::load(0)],
        ],
    );
    (t, oc([(1, Some(0)), (3, Some(2)), (4, None)], []))
}

/// WRC with dependencies in the middle and final threads.
pub fn wrc_deps() -> (LitmusTest, Outcome) {
    let (t, o) = wrc();
    let t = t
        .with_name("WRC+data+addr")
        .with_dep(1, 0, 1, DepKind::Data)
        .with_dep(2, 0, 1, DepKind::Addr);
    (t, o)
}

/// WWC (paper Figure 14): `St x(2) ‖ Ld x; St y ‖ Ld y; St x(1)`,
/// outcome `r=2 ∧ r2=1 ∧ x finally 2`.
pub fn wwc() -> (LitmusTest, Outcome) {
    let t = LitmusTest::new(
        "WWC",
        vec![
            vec![Instr::store(0)],
            vec![Instr::load(0), Instr::store(1)],
            vec![Instr::load(1), Instr::store(0)],
        ],
    );
    // Writes to x in gid order: 0 (thread 0) then 4 (thread 2); the outcome
    // pins co as 4 → 0, i.e. x finally thread 0's write.
    (t, oc([(1, Some(0)), (3, Some(2))], [(0, 0)]))
}

/// RWC: `St x ‖ Ld x; Ld y ‖ St y; Ld x`, outcome `1 ∧ 0 ∧ 0`.
pub fn rwc() -> (LitmusTest, Outcome) {
    let t = LitmusTest::new(
        "RWC",
        vec![
            vec![Instr::store(0)],
            vec![Instr::load(0), Instr::load(1)],
            vec![Instr::store(1), Instr::load(0)],
        ],
    );
    (t, oc([(1, Some(0)), (2, None), (4, None)], []))
}

/// RWC with a full fence in the writing/reading thread 2.
pub fn rwc_fence() -> (LitmusTest, Outcome) {
    let t = LitmusTest::new(
        "RWC+fence",
        vec![
            vec![Instr::store(0)],
            vec![Instr::load(0), Instr::load(1)],
            vec![
                Instr::store(1),
                Instr::fence(FenceKind::Full),
                Instr::load(0),
            ],
        ],
    );
    (t, oc([(1, Some(0)), (2, None), (5, None)], []))
}

/// Independent reads of independent writes (amd6/IRIW).
pub fn iriw() -> (LitmusTest, Outcome) {
    let t = LitmusTest::new(
        "IRIW",
        vec![
            vec![Instr::store(0)],
            vec![Instr::store(1)],
            vec![Instr::load(0), Instr::load(1)],
            vec![Instr::load(1), Instr::load(0)],
        ],
    );
    (
        t,
        oc([(2, Some(0)), (3, None), (4, Some(1)), (5, None)], []),
    )
}

/// IRIW where all four reads target the *same* location (iwp2.6/CoIRIW):
/// the two readers disagree on the coherence order.
pub fn coiriw() -> (LitmusTest, Outcome) {
    let t = LitmusTest::new(
        "CoIRIW",
        vec![
            vec![Instr::store(0)],
            vec![Instr::store(0)],
            vec![Instr::load(0), Instr::load(0)],
            vec![Instr::load(0), Instr::load(0)],
        ],
    );
    (
        t,
        oc([(2, Some(0)), (3, Some(1)), (4, Some(1)), (5, Some(0))], []),
    )
}

/// ISA2: `St x; St y ‖ Ld y; St z ‖ Ld z; Ld x`, outcome `1 ∧ 1 ∧ 0`.
pub fn isa2() -> (LitmusTest, Outcome) {
    let t = LitmusTest::new(
        "ISA2",
        vec![
            vec![Instr::store(0), Instr::store(1)],
            vec![Instr::load(1), Instr::store(2)],
            vec![Instr::load(2), Instr::load(0)],
        ],
    );
    (t, oc([(2, Some(1)), (4, Some(3)), (5, None)], []))
}

/// ISA2 strengthened with sync + dependencies (forbidden on Power).
pub fn isa2_sync_deps() -> (LitmusTest, Outcome) {
    let t = LitmusTest::new(
        "ISA2+sync+data+addr",
        vec![
            vec![
                Instr::store(0),
                Instr::fence(FenceKind::Full),
                Instr::store(1),
            ],
            vec![Instr::load(1), Instr::store(2)],
            vec![Instr::load(2), Instr::load(0)],
        ],
    )
    .with_dep(1, 0, 1, DepKind::Data)
    .with_dep(2, 0, 1, DepKind::Addr);
    (t, oc([(3, Some(2)), (5, Some(4)), (6, None)], []))
}

// ---------------------------------------------------------------------
// Coherence (sc_per_loc) tests
// ---------------------------------------------------------------------

/// CoRR: `St x ‖ Ld x; Ld x`, outcome `new-then-old` (`1 ∧ 0`).
pub fn corr() -> (LitmusTest, Outcome) {
    let t = LitmusTest::new(
        "CoRR",
        vec![vec![Instr::store(0)], vec![Instr::load(0), Instr::load(0)]],
    );
    (t, oc([(1, Some(0)), (2, None)], []))
}

/// CoWW: `St x; St x` with the *first* write winning — forbidden everywhere.
pub fn coww() -> (LitmusTest, Outcome) {
    let t = LitmusTest::new("CoWW", vec![vec![Instr::store(0), Instr::store(0)]]);
    (t, oc([], [(0, 0)]))
}

/// CoRW (paper Figure 7): `Ld x; St x(1) ‖ St x(2)`, outcome `r=2 ∧ x
/// finally 2`.
pub fn corw() -> (LitmusTest, Outcome) {
    let t = LitmusTest::new(
        "CoRW",
        vec![vec![Instr::load(0), Instr::store(0)], vec![Instr::store(0)]],
    );
    // Writes to x in gid order: 1 (value 1), 2 (value 2).
    (t, oc([(0, Some(2))], [(0, 2)]))
}

/// CoWR: `St x(1); Ld x ‖ St x(2)`, outcome `r=2 ∧ x finally 1`
/// (own store overtaken despite being read… wait — the read sees the other
/// write but coherence puts it before the own store).
pub fn cowr() -> (LitmusTest, Outcome) {
    let t = LitmusTest::new(
        "CoWR",
        vec![vec![Instr::store(0), Instr::load(0)], vec![Instr::store(0)]],
    );
    (t, oc([(1, Some(2))], [(0, 0)]))
}

/// CoLB / n5 (paper Figure 10): `Ld x; St x(1) ‖ Ld x; St x(2)`, outcome
/// `r=1 ∧ r2=2 ∧ x finally 2` — each load reads its own thread's later
/// store.
pub fn colb() -> (LitmusTest, Outcome) {
    let t = LitmusTest::new(
        "n5/CoLB",
        vec![
            vec![Instr::load(0), Instr::store(0)],
            vec![Instr::load(0), Instr::store(0)],
        ],
    );
    (t, oc([(0, Some(1)), (2, Some(3))], [(0, 3)]))
}

// ---------------------------------------------------------------------
// RMW (atomicity) tests
// ---------------------------------------------------------------------

/// Two competing single-instruction RMWs on one location: both reading the
/// initial value is an atomicity violation.
pub fn rmw_rmw() -> (LitmusTest, Outcome) {
    let t = LitmusTest::new("RMW+RMW", vec![vec![Instr::rmw(0)], vec![Instr::rmw(0)]]);
    (t, oc([(0, None), (1, None)], []))
}

/// An RMW with a plain store slipping between its read and write:
/// the RMW reads the initial value but the store is coherence-between.
pub fn rmw_st() -> (LitmusTest, Outcome) {
    let t = LitmusTest::new("RMW+St", vec![vec![Instr::rmw(0)], vec![Instr::store(0)]]);
    // Writes to x in gid order: 0 (the RMW, value 1), 1 (the store, value
    // 2). RMW reads init but final value is the RMW's — store in between.
    (t, oc([(0, None)], [(0, 0)]))
}

/// SB with the stores replaced by RMWs (iwp2.8.a-style).
pub fn sb_rmws() -> (LitmusTest, Outcome) {
    let t = LitmusTest::new(
        "SB+rmws",
        vec![
            vec![Instr::rmw(0), Instr::load(1)],
            vec![Instr::rmw(1), Instr::load(0)],
        ],
    );
    (t, oc([(1, None), (3, None)], []))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Execution;

    #[test]
    fn all_builders_produce_well_formed_outcomes() {
        let all: Vec<(LitmusTest, Outcome)> = vec![
            mp(),
            mp_rel_acq(),
            mp_rel2_acq2(),
            mp_fences(FenceKind::Full, "MP+fences"),
            mp_fence_addr(FenceKind::Lightweight, "MP+lwsync+addr"),
            mp_addr(),
            sb(),
            sb_fences(),
            sb_one_fence(),
            lb(),
            lb_addrs(),
            lb_datas(),
            s(),
            r(),
            two_plus_two_w(),
            wrc(),
            wrc_deps(),
            wwc(),
            rwc(),
            rwc_fence(),
            iriw(),
            coiriw(),
            isa2(),
            isa2_sync_deps(),
            corr(),
            coww(),
            corw(),
            cowr(),
            colb(),
            rmw_rmw(),
            rmw_st(),
            sb_rmws(),
        ];
        for (t, o) in &all {
            // Every outcome is realizable by at least one *candidate*
            // execution (whether any model allows it is a separate story).
            let found = Execution::enumerate(t)
                .iter()
                .any(|e| o.matches(&e.outcome()));
            assert!(found, "{}: outcome {} unrealizable", t.name(), o.display(t));
        }
    }

    #[test]
    fn mp_outcome_display() {
        let (t, o) = mp();
        let d = o.display(&t);
        assert!(d.contains("[y]=1"), "{d}");
        assert!(d.contains("[x]=0"), "{d}");
    }

    #[test]
    fn wwc_outcome_pins_final() {
        let (t, o) = wwc();
        assert_eq!(o.finals[&Addr(0)], 0);
        assert_eq!(t.write_value(0), 1);
        assert_eq!(t.write_value(4), 2);
    }
}
