//! Reference litmus-test suites from the literature.
//!
//! * [`classics`] — the named tests every memory-model paper uses (MP, SB,
//!   LB, WRC, IRIW, the coherence tests, …), as reusable builders.
//! * [`owens`] — the x86-TSO suite gathered by Owens et al. (2009), the
//!   baseline for the paper's Table 4 / Figure 13.
//! * [`cambridge`] — the Cambridge Power/ARM test summary (Sarkar et al.
//!   2011), the baseline for Figure 16.
//!
//! Every entry carries the status (`forbidden` or allowed) claimed by its
//! source; integration tests cross-check each claim against our model
//! oracles, so an encoding error here cannot survive `cargo test`.

pub mod cambridge;
pub mod classics;
pub mod owens;

use crate::test::{LitmusTest, Outcome};

/// One suite entry: a program, the outcome the source discusses, and whether
/// the source claims that outcome is forbidden under the suite's model.
#[derive(Clone, Debug)]
pub struct SuiteEntry {
    /// The program.
    pub test: LitmusTest,
    /// The (possibly partial) outcome of interest.
    pub outcome: Outcome,
    /// `true` if the source claims the outcome is forbidden.
    pub forbidden: bool,
}

impl SuiteEntry {
    /// Convenience constructor.
    pub fn new(test: LitmusTest, outcome: Outcome, forbidden: bool) -> SuiteEntry {
        SuiteEntry {
            test,
            outcome,
            forbidden,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owens_suite_shape() {
        let s = owens::suite();
        assert_eq!(s.len(), 24, "the Owens suite has 24 tests");
        let forbidden = s.iter().filter(|e| e.forbidden).count();
        assert_eq!(forbidden, 15, "…of which 15 specify forbidden outcomes");
        // Names are unique.
        let mut names: Vec<&str> = s.iter().map(|e| e.test.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 24);
    }

    #[test]
    fn cambridge_suite_shape() {
        let s = cambridge::suite();
        assert!(s.len() >= 30, "representative Cambridge subset");
        let mut names: Vec<&str> = s.iter().map(|e| e.test.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), s.len(), "names unique");
    }

    #[test]
    fn every_outcome_references_valid_events() {
        for e in owens::suite().iter().chain(cambridge::suite().iter()) {
            for (&r, &w) in &e.outcome.rf {
                assert!(
                    e.test.instr(r).is_read(),
                    "{}: rf target is a read",
                    e.test.name()
                );
                if let Some(w) = w {
                    assert!(
                        e.test.instr(w).is_write(),
                        "{}: rf source is a write",
                        e.test.name()
                    );
                    assert_eq!(
                        e.test.instr(r).addr(),
                        e.test.instr(w).addr(),
                        "{}: rf respects addresses",
                        e.test.name()
                    );
                }
            }
            for (&a, &w) in &e.outcome.finals {
                assert_eq!(
                    e.test.instr(w).addr(),
                    Some(a),
                    "{}: final is a write to the address",
                    e.test.name()
                );
                assert!(e.test.instr(w).is_write());
            }
        }
    }
}
