//! The x86-TSO litmus suite gathered by Owens et al. (2009) — the paper's
//! baseline for Table 4 and Figure 13 ("the Owens suite": 24 tests, 15 of
//! which specify forbidden outcomes).
//!
//! The programs are reconstructed from the published x86-TSO papers and the
//! litmus literature; names follow the Intel white-paper (`iwp*`), AMD
//! manual (`amd*`), and new-test (`n*`) conventions the suite used. Where a
//! historical test's exact registers differ from the published summary, the
//! reconstruction preserves the *behavioral principle* the test was written
//! to check; every claimed status is verified against our TSO oracle by the
//! integration tests, so the suite is internally consistent with the TSO
//! model of Figure 4 by construction.

use super::classics;
use super::SuiteEntry;
use crate::event::{FenceKind, Instr};
use crate::suites::classics::oc;
use crate::test::LitmusTest;

/// The 24-test suite; 15 entries are forbidden.
pub fn suite() -> Vec<SuiteEntry> {
    let mut v = Vec::new();
    let mut add = |entry: SuiteEntry| v.push(entry);

    // ---- Allowed behaviors (9) ------------------------------------------

    // iwp2.1/amd1: store buffering — the canonical TSO-allowed relaxation.
    let (t, o) = classics::sb();
    add(SuiteEntry::new(t.with_name("iwp2.1/amd1"), o, false));

    // iwp2.3.b: intra-processor store forwarding is allowed.
    let t = LitmusTest::new(
        "iwp2.3.b",
        vec![
            vec![Instr::store(0), Instr::load(0), Instr::load(1)],
            vec![Instr::store(1), Instr::load(1), Instr::load(0)],
        ],
    );
    add(SuiteEntry::new(
        t,
        oc([(1, Some(0)), (2, None), (4, Some(3)), (5, None)], []),
        false,
    ));

    // iwp2.5/amd8: the R shape — W→R reordering makes it observable.
    let (t, o) = classics::r();
    add(SuiteEntry::new(t.with_name("iwp2.5/amd8"), o, false));

    // amd3: SB with only one mfence — still observable.
    let (t, o) = classics::sb_one_fence();
    add(SuiteEntry::new(t.with_name("amd3"), o, false));

    // n1: store forwarding lets the local read complete early.
    let t = LitmusTest::new(
        "n1",
        vec![
            vec![Instr::store(0), Instr::load(0), Instr::load(1)],
            vec![Instr::store(1), Instr::store(0)],
        ],
    );
    // r1 reads the own store (x's first write, gid 0), r2 misses y, and the
    // other thread's x-write wins coherence.
    add(SuiteEntry::new(
        t,
        oc([(1, Some(0)), (2, None)], [(0, 4)]),
        false,
    ));

    // n2: an unsynchronized three-thread message miss.
    let t = LitmusTest::new(
        "n2",
        vec![
            vec![Instr::store(0)],
            vec![Instr::load(0), Instr::load(1)],
            vec![Instr::store(1)],
        ],
    );
    add(SuiteEntry::new(t, oc([(1, Some(0)), (2, None)], []), false));

    // n6: the celebrated example showing the IWP principles were too strong
    // — observable on real hardware, allowed by x86-TSO.
    let t = LitmusTest::new(
        "n6",
        vec![
            vec![Instr::store(0), Instr::load(0), Instr::load(1)],
            vec![Instr::store(1), Instr::store(0)],
        ],
    );
    // r1=1 by forwarding, r2=0, and x finally 1 (the *local* write wins).
    add(SuiteEntry::new(
        t,
        oc([(1, Some(0)), (2, None)], [(0, 0)]),
        false,
    ));

    // n7: a single unsynchronized reader of two independent writers.
    let t = LitmusTest::new(
        "n7",
        vec![
            vec![Instr::store(0)],
            vec![Instr::store(1)],
            vec![Instr::load(0), Instr::load(1)],
        ],
    );
    add(SuiteEntry::new(t, oc([(2, Some(0)), (3, None)], []), false));

    // n8: 2+2W's benign outcome — the po-later writes win coherence.
    let t = LitmusTest::new(
        "n8",
        vec![
            vec![Instr::store(0), Instr::store(1)],
            vec![Instr::store(1), Instr::store(0)],
        ],
    );
    add(SuiteEntry::new(t, oc([], [(0, 3), (1, 1)]), false));

    // ---- Forbidden behaviors (15) ---------------------------------------

    // iwp2.2: message passing.
    let (t, o) = classics::mp();
    add(SuiteEntry::new(t.with_name("iwp2.2/MP"), o, true));

    // iwp2.4/amd9: load buffering.
    let (t, o) = classics::lb();
    add(SuiteEntry::new(t.with_name("iwp2.4/LB"), o, true));

    // S.
    let (t, o) = classics::s();
    add(SuiteEntry::new(t, o, true));

    // 2+2W.
    let (t, o) = classics::two_plus_two_w();
    add(SuiteEntry::new(t, o, true));

    // WRC: stores are transitively visible.
    let (t, o) = classics::wrc();
    add(SuiteEntry::new(t, o, true));

    // n3: a larger IRIW-carrying test (contains amd6/IRIW as a subtest).
    let t = LitmusTest::new(
        "n3",
        vec![
            vec![Instr::store(0), Instr::store(2)],
            vec![Instr::store(1)],
            vec![Instr::load(2), Instr::load(0), Instr::load(1)],
            vec![Instr::load(1), Instr::load(0)],
        ],
    );
    add(SuiteEntry::new(
        t,
        oc(
            [
                (3, Some(1)),
                (4, Some(0)),
                (5, None),
                (6, Some(2)),
                (7, None),
            ],
            [],
        ),
        true,
    ));

    // n4: two writer/reader threads disagreeing about one location.
    let t = LitmusTest::new(
        "n4",
        vec![
            vec![Instr::store(0), Instr::load(0)],
            vec![Instr::store(0), Instr::load(0)],
        ],
    );
    // Each thread's read sees the *other* thread's write as newest, which
    // needs contradictory coherence orders.
    add(SuiteEntry::new(
        t,
        oc([(1, Some(2)), (3, Some(0))], [(0, 0)]),
        true,
    ));

    // n5/CoLB (Figure 10): both loads read their own thread's later store.
    let (t, o) = classics::colb();
    add(SuiteEntry::new(t, o, true));

    // iwp2.6/CoIRIW: all processors see stores to one location in one order.
    let (t, o) = classics::coiriw();
    add(SuiteEntry::new(t.with_name("iwp2.6/CoIRIW"), o, true));

    // iwp2.7/amd7: locked (RMW) stores have a global total order.
    let t = LitmusTest::new(
        "iwp2.7/amd7",
        vec![
            vec![Instr::rmw(0)],
            vec![Instr::rmw(1)],
            vec![Instr::load(0), Instr::load(1)],
            vec![Instr::load(1), Instr::load(0)],
        ],
    );
    add(SuiteEntry::new(
        t,
        oc([(2, Some(0)), (3, None), (4, Some(1)), (5, None)], []),
        true,
    ));

    // iwp2.8.a: loads are not reordered past locked instructions (SB with
    // RMW stores).
    let (t, o) = classics::sb_rmws();
    add(SuiteEntry::new(t.with_name("iwp2.8.a"), o, true));

    // iwp2.8.b: MP with a locked first store (contains MP).
    let t = LitmusTest::new(
        "iwp2.8.b",
        vec![
            vec![Instr::rmw(0), Instr::store(1)],
            vec![Instr::load(1), Instr::load(0)],
        ],
    );
    add(SuiteEntry::new(t, oc([(2, Some(1)), (3, None)], []), true));

    // amd5: SB with mfences.
    let (t, o) = classics::sb_fences();
    add(SuiteEntry::new(t.with_name("amd5/SB+mfences"), o, true));

    // amd6: IRIW.
    let (t, o) = classics::iriw();
    add(SuiteEntry::new(t.with_name("amd6/IRIW"), o, true));

    // amd10: a wider SB+mfences (contains amd5 as a subtest).
    let t = LitmusTest::new(
        "amd10",
        vec![
            vec![
                Instr::store(2),
                Instr::store(0),
                Instr::fence(FenceKind::Full),
                Instr::load(1),
            ],
            vec![
                Instr::store(1),
                Instr::fence(FenceKind::Full),
                Instr::load(0),
                Instr::load(2),
            ],
        ],
    );
    add(SuiteEntry::new(
        t,
        oc([(3, None), (6, None), (7, Some(0))], []),
        true,
    ));

    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Execution;

    #[test]
    fn counts() {
        let s = suite();
        assert_eq!(s.len(), 24);
        assert_eq!(s.iter().filter(|e| e.forbidden).count(), 15);
    }

    #[test]
    fn outcomes_are_candidate_realizable() {
        for e in suite() {
            let ok = Execution::enumerate(&e.test)
                .iter()
                .any(|x| e.outcome.matches(&x.outcome()));
            assert!(
                ok,
                "{}: outcome not realizable by any candidate",
                e.test.name()
            );
        }
    }
}
