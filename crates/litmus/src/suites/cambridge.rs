//! The Cambridge Power/ARM test summary (Sarkar et al. 2011) — the paper's
//! baseline suite for Figure 16.
//!
//! A representative encoding of the published 55-test summary: the classic
//! shapes in their plain, fenced (`sync`/`lwsync`), and dependency (`addr`/
//! `data`/`ctrl`/`ctrlisync`) variants, with the statuses the Cambridge work
//! established for the Power model. As with the Owens suite, every claimed
//! status is cross-checked against our herding-cats-style Power oracle by
//! integration tests.
//!
//! `FenceKind::Full` encodes `sync` and `FenceKind::Lightweight` encodes
//! `lwsync` throughout.

use super::classics;
use super::SuiteEntry;
use crate::event::{DepKind, FenceKind, Instr};
use crate::suites::classics::oc;
use crate::test::LitmusTest;

fn sync() -> Instr {
    Instr::fence(FenceKind::Full)
}

fn lwsync() -> Instr {
    Instr::fence(FenceKind::Lightweight)
}

/// MP with chosen per-thread strengthenings: an optional fence between the
/// writes and an optional fence or dependency between the reads.
fn mp_variant(
    name: &str,
    wfence: Option<Instr>,
    rsync: Option<Instr>,
    rdep: Option<DepKind>,
) -> SuiteEntry {
    let mut t0 = vec![Instr::store(0)];
    if let Some(f) = wfence {
        t0.push(f);
    }
    t0.push(Instr::store(1));
    let mut t1 = vec![Instr::load(1)];
    if let Some(f) = rsync {
        t1.push(f);
    }
    t1.push(Instr::load(0));
    let read0 = t0.len(); // gid of Ld y
    let read1 = t0.len() + t1.len() - 1; // gid of Ld x
    let wy = t0.len() - 1;
    let mut t = LitmusTest::new(name, vec![t0, t1]);
    if let Some(k) = rdep {
        let last = t.threads()[1].len() - 1;
        t = t.with_dep(1, 0, last, k);
    }
    // Placeholder `forbidden` — the caller overrides it.
    SuiteEntry::new(t, oc([(read0, Some(wy)), (read1, None)], []), false)
}

fn forbid(mut e: SuiteEntry) -> SuiteEntry {
    e.forbidden = true;
    e
}

/// The suite (41 entries).
pub fn suite() -> Vec<SuiteEntry> {
    let mut v: Vec<SuiteEntry> = Vec::new();

    // ---- MP family -------------------------------------------------------
    let (t, o) = classics::mp();
    v.push(SuiteEntry::new(t, o, false));
    v.push(forbid(mp_variant(
        "MP+syncs",
        Some(sync()),
        Some(sync()),
        None,
    )));
    v.push(forbid(mp_variant(
        "MP+lwsyncs",
        Some(lwsync()),
        Some(lwsync()),
        None,
    )));
    v.push(forbid(mp_variant(
        "MP+lwsync+addr",
        Some(lwsync()),
        None,
        Some(DepKind::Addr),
    )));
    v.push(forbid(mp_variant(
        "MP+sync+addr",
        Some(sync()),
        None,
        Some(DepKind::Addr),
    )));
    v.push(mp_variant("MP+po+addr", None, None, Some(DepKind::Addr)));
    v.push(mp_variant("MP+lwsync+po", Some(lwsync()), None, None));
    // ctrl does not order read→read on Power…
    v.push(mp_variant(
        "MP+lwsync+ctrl",
        Some(lwsync()),
        None,
        Some(DepKind::Ctrl),
    ));
    // …but ctrl+isync does.
    v.push(forbid(mp_variant(
        "MP+lwsync+ctrlisync",
        Some(lwsync()),
        None,
        Some(DepKind::CtrlIsync),
    )));

    // ---- SB family -------------------------------------------------------
    let (t, o) = classics::sb();
    v.push(SuiteEntry::new(t, o, false));
    let (t, o) = classics::sb_fences();
    v.push(SuiteEntry::new(t.with_name("SB+syncs"), o, true));
    // lwsync does not order write→read: still observable.
    let t = LitmusTest::new(
        "SB+lwsyncs",
        vec![
            vec![Instr::store(0), lwsync(), Instr::load(1)],
            vec![Instr::store(1), lwsync(), Instr::load(0)],
        ],
    );
    v.push(SuiteEntry::new(t, oc([(2, None), (5, None)], []), false));

    // ---- LB family -------------------------------------------------------
    let (t, o) = classics::lb();
    v.push(SuiteEntry::new(t, o, false));
    let (t, o) = classics::lb_addrs();
    v.push(SuiteEntry::new(t, o, true));
    let (t, o) = classics::lb_datas();
    v.push(SuiteEntry::new(t, o, true));
    let (t, o) = classics::lb();
    let t = t
        .with_name("LB+ctrls")
        .with_dep(0, 0, 1, DepKind::Ctrl)
        .with_dep(1, 0, 1, DepKind::Ctrl);
    v.push(SuiteEntry::new(t, o, true));

    // ---- S and R ---------------------------------------------------------
    let (t, o) = classics::s();
    v.push(SuiteEntry::new(t, o, false));
    let t = LitmusTest::new(
        "S+lwsync+data",
        vec![
            vec![Instr::store(0), lwsync(), Instr::store(1)],
            vec![Instr::load(1), Instr::store(0)],
        ],
    )
    .with_dep(1, 0, 1, DepKind::Data);
    v.push(SuiteEntry::new(t, oc([(3, Some(2))], [(0, 0)]), true));
    let (t, o) = classics::r();
    v.push(SuiteEntry::new(t, o, false));
    let t = LitmusTest::new(
        "R+syncs",
        vec![
            vec![Instr::store(0), sync(), Instr::store(1)],
            vec![Instr::store(1), sync(), Instr::load(0)],
        ],
    );
    v.push(SuiteEntry::new(t, oc([(5, None)], [(1, 3)]), true));

    // ---- 2+2W ------------------------------------------------------------
    let (t, o) = classics::two_plus_two_w();
    v.push(SuiteEntry::new(t, o, false));
    let t = LitmusTest::new(
        "2+2W+lwsyncs",
        vec![
            vec![Instr::store(0), lwsync(), Instr::store(1)],
            vec![Instr::store(1), lwsync(), Instr::store(0)],
        ],
    );
    v.push(SuiteEntry::new(t, oc([], [(0, 0), (1, 3)]), true));

    // ---- WRC family ------------------------------------------------------
    let (t, o) = classics::wrc();
    v.push(SuiteEntry::new(t, o, false));
    let (t, o) = classics::wrc_deps();
    v.push(SuiteEntry::new(t, o, false)); // deps alone: Power is not MCA
    let t = LitmusTest::new(
        "WRC+lwsync+addr",
        vec![
            vec![Instr::store(0)],
            vec![Instr::load(0), lwsync(), Instr::store(1)],
            vec![Instr::load(1), Instr::load(0)],
        ],
    )
    .with_dep(2, 0, 1, DepKind::Addr);
    v.push(SuiteEntry::new(
        t,
        oc([(1, Some(0)), (4, Some(3)), (5, None)], []),
        true,
    ));
    let t = LitmusTest::new(
        "WRC+sync+addr",
        vec![
            vec![Instr::store(0)],
            vec![Instr::load(0), sync(), Instr::store(1)],
            vec![Instr::load(1), Instr::load(0)],
        ],
    )
    .with_dep(2, 0, 1, DepKind::Addr);
    v.push(SuiteEntry::new(
        t,
        oc([(1, Some(0)), (4, Some(3)), (5, None)], []),
        true,
    ));

    // ---- IRIW family -----------------------------------------------------
    let (t, o) = classics::iriw();
    v.push(SuiteEntry::new(t, o, false));
    let t = LitmusTest::new(
        "IRIW+addrs",
        vec![
            vec![Instr::store(0)],
            vec![Instr::store(1)],
            vec![Instr::load(0), Instr::load(1)],
            vec![Instr::load(1), Instr::load(0)],
        ],
    )
    .with_dep(2, 0, 1, DepKind::Addr)
    .with_dep(3, 0, 1, DepKind::Addr);
    v.push(SuiteEntry::new(
        t,
        oc([(2, Some(0)), (3, None), (4, Some(1)), (5, None)], []),
        false,
    ));
    let t = LitmusTest::new(
        "IRIW+lwsyncs",
        vec![
            vec![Instr::store(0)],
            vec![Instr::store(1)],
            vec![Instr::load(0), lwsync(), Instr::load(1)],
            vec![Instr::load(1), lwsync(), Instr::load(0)],
        ],
    );
    // The famous one: lwsync is *not* enough for IRIW on Power.
    v.push(SuiteEntry::new(
        t,
        oc([(2, Some(0)), (4, None), (5, Some(1)), (7, None)], []),
        false,
    ));
    let t = LitmusTest::new(
        "IRIW+syncs",
        vec![
            vec![Instr::store(0)],
            vec![Instr::store(1)],
            vec![Instr::load(0), sync(), Instr::load(1)],
            vec![Instr::load(1), sync(), Instr::load(0)],
        ],
    );
    v.push(SuiteEntry::new(
        t,
        oc([(2, Some(0)), (4, None), (5, Some(1)), (7, None)], []),
        true,
    ));

    // ---- RWC, WWC, ISA2 --------------------------------------------------
    let (t, o) = classics::rwc();
    v.push(SuiteEntry::new(t, o, false));
    let t = LitmusTest::new(
        "RWC+syncs",
        vec![
            vec![Instr::store(0)],
            vec![Instr::load(0), sync(), Instr::load(1)],
            vec![Instr::store(1), sync(), Instr::load(0)],
        ],
    );
    v.push(SuiteEntry::new(
        t,
        oc([(1, Some(0)), (3, None), (6, None)], []),
        true,
    ));
    let (t, o) = classics::wwc();
    v.push(SuiteEntry::new(t, o, false));
    let (t, o) = classics::isa2();
    v.push(SuiteEntry::new(t, o, false));
    let (t, o) = classics::isa2_sync_deps();
    v.push(SuiteEntry::new(t, o, true));

    // ---- Coherence -------------------------------------------------------
    let (t, o) = classics::corr();
    v.push(SuiteEntry::new(t, o, true));
    let (t, o) = classics::coww();
    v.push(SuiteEntry::new(t, o, true));
    let (t, o) = classics::corw();
    v.push(SuiteEntry::new(t, o, true));
    let (t, o) = classics::cowr();
    v.push(SuiteEntry::new(t, o, true));

    // ---- Preserved-program-order subtleties -------------------------------
    // PPOCA: ctrl + internal rf — observable (speculative store forwarding).
    let t = LitmusTest::new(
        "PPOCA",
        vec![
            vec![Instr::store(2), sync(), Instr::store(1)],
            vec![
                Instr::load(1),
                Instr::store(0),
                Instr::load(0),
                Instr::load(2),
            ],
        ],
    )
    .with_dep(1, 0, 1, DepKind::Ctrl)
    .with_dep(1, 2, 3, DepKind::Addr);
    v.push(SuiteEntry::new(
        t,
        oc([(3, Some(2)), (5, Some(4)), (6, None)], []),
        false,
    ));
    // PPOAA: addr + internal rf — forbidden. The Cambridge summary presents
    // it with a full sync; the paper notes only lwsync is needed (§6.2).
    let t = LitmusTest::new(
        "PPOAA",
        vec![
            vec![Instr::store(2), sync(), Instr::store(1)],
            vec![
                Instr::load(1),
                Instr::store(0),
                Instr::load(0),
                Instr::load(2),
            ],
        ],
    )
    .with_dep(1, 0, 1, DepKind::Addr)
    .with_dep(1, 2, 3, DepKind::Addr);
    v.push(SuiteEntry::new(
        t,
        oc([(3, Some(2)), (5, Some(4)), (6, None)], []),
        true,
    ));

    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Execution;

    #[test]
    fn suite_size_and_realizability() {
        let s = suite();
        assert_eq!(s.len(), 41);
        for e in &s {
            let ok = Execution::enumerate(&e.test)
                .iter()
                .any(|x| e.outcome.matches(&x.outcome()));
            assert!(ok, "{}: outcome not realizable", e.test.name());
        }
    }

    #[test]
    fn ppoaa_and_ppoca_differ_only_in_one_dep() {
        let s = suite();
        let ppoca = s.iter().find(|e| e.test.name() == "PPOCA").unwrap();
        let ppoaa = s.iter().find(|e| e.test.name() == "PPOAA").unwrap();
        assert_eq!(ppoca.test.threads(), ppoaa.test.threads());
        assert_ne!(ppoca.test.deps()[0].kind, ppoaa.test.deps()[0].kind);
        assert!(!ppoca.forbidden && ppoaa.forbidden);
    }
}
