//! A textual litmus-test format (round-trippable), in the spirit of the
//! `.litmus` files used by herd/litmus7 — the interchange point between the
//! synthesizer and external testing infrastructure ("these tests can then
//! be fed into any existing testing infrastructure", §1).
//!
//! ```text
//! test MP+rel+acq
//! thread
//!   St [x]
//!   St.release [y]
//! thread
//!   Ld.acquire [y]
//!   Ld [x]
//! forbid rf 2 <- 1
//! forbid rf 3 <- init
//! end
//! ```
//!
//! Lines: `test <name>`, `thread`, one instruction per line, `dep <tid>
//! <from> <to> <kind>`, `rmwpair <tid> <load>`, `forbid rf <read> <- <write
//! | init>`, `forbid final <addr> = <write>`, `end`.

use crate::event::{Addr, DepKind, FenceKind, Instr, MemOrder, Scope};
use crate::test::{LitmusTest, Outcome};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Renders a test and its forbidden outcome in the textual format.
pub fn to_text(test: &LitmusTest, outcome: &Outcome) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "test {}",
        if test.name().is_empty() {
            "unnamed"
        } else {
            test.name()
        }
    );
    for t in test.threads() {
        let _ = writeln!(s, "thread");
        for i in t {
            let _ = writeln!(s, "  {i}");
        }
    }
    for d in test.deps() {
        let _ = writeln!(s, "dep {} {} {} {}", d.tid, d.from, d.to, d.kind.mnemonic());
    }
    for p in test.rmw_pairs() {
        let _ = writeln!(s, "rmwpair {} {}", p.tid, p.load);
    }
    for (&r, &w) in &outcome.rf {
        match w {
            Some(w) => {
                let _ = writeln!(s, "forbid rf {r} <- {w}");
            }
            None => {
                let _ = writeln!(s, "forbid rf {r} <- init");
            }
        }
    }
    for (&a, &w) in &outcome.finals {
        let _ = writeln!(s, "forbid final {a} = {w}");
    }
    let _ = writeln!(s, "end");
    s
}

/// Parse error with a 1-based line number.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseTestError {
    /// Line the error occurred on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseTestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTestError {}

fn err(line: usize, message: impl Into<String>) -> ParseTestError {
    ParseTestError {
        line,
        message: message.into(),
    }
}

/// Parses the textual format back into a test and outcome.
///
/// # Errors
///
/// Returns the first syntax or consistency error with its line number.
pub fn from_text(text: &str) -> Result<(LitmusTest, Outcome), ParseTestError> {
    let mut name = String::from("unnamed");
    let mut threads: Vec<Vec<Instr>> = Vec::new();
    let mut deps: Vec<(usize, usize, usize, DepKind)> = Vec::new();
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    let mut rf: BTreeMap<usize, Option<usize>> = BTreeMap::new();
    let mut finals: BTreeMap<Addr, usize> = BTreeMap::new();
    let mut ended = false;

    for (ln, raw) in text.lines().enumerate() {
        let ln = ln + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if ended {
            return Err(err(ln, "content after 'end'"));
        }
        let mut words = line.split_whitespace();
        match words.next().unwrap() {
            "test" => {
                name = words.collect::<Vec<_>>().join(" ");
                if name.is_empty() {
                    return Err(err(ln, "missing test name"));
                }
            }
            "thread" => threads.push(Vec::new()),
            "dep" => {
                let (t, f, to, k) = parse_dep(&mut words).map_err(|m| err(ln, m))?;
                deps.push((t, f, to, k));
            }
            "rmwpair" => {
                let t = parse_num(words.next(), "tid").map_err(|m| err(ln, m))?;
                let l = parse_num(words.next(), "load index").map_err(|m| err(ln, m))?;
                pairs.push((t, l));
            }
            "forbid" => match words.next() {
                Some("rf") => {
                    let r = parse_num(words.next(), "read gid").map_err(|m| err(ln, m))?;
                    if words.next() != Some("<-") {
                        return Err(err(ln, "expected '<-'"));
                    }
                    let src = match words.next() {
                        Some("init") => None,
                        Some(w) => Some(
                            w.parse::<usize>()
                                .map_err(|_| err(ln, format!("bad write gid {w:?}")))?,
                        ),
                        None => return Err(err(ln, "missing rf source")),
                    };
                    rf.insert(r, src);
                }
                Some("final") => {
                    let a = words.next().ok_or_else(|| err(ln, "missing address"))?;
                    let addr =
                        parse_addr(a).ok_or_else(|| err(ln, format!("bad address {a:?}")))?;
                    if words.next() != Some("=") {
                        return Err(err(ln, "expected '='"));
                    }
                    let w = parse_num(words.next(), "write gid").map_err(|m| err(ln, m))?;
                    finals.insert(addr, w);
                }
                other => return Err(err(ln, format!("unknown forbid clause {other:?}"))),
            },
            "end" => ended = true,
            instr_head => {
                let Some(current) = threads.last_mut() else {
                    return Err(err(ln, "instruction before any 'thread'"));
                };
                let i = parse_instr(instr_head, &mut words).map_err(|m| err(ln, m))?;
                current.push(i);
            }
        }
    }
    if !ended {
        return Err(err(text.lines().count().max(1), "missing 'end'"));
    }
    if threads.is_empty() {
        return Err(err(1, "no threads"));
    }
    let mut test = LitmusTest::new(name, threads);
    for (t, f, to, k) in deps {
        test = test.with_dep(t, f, to, k);
    }
    for (t, l) in pairs {
        test = test.with_rmw_pair(t, l);
    }
    Ok((test, Outcome { rf, finals }))
}

fn parse_num(word: Option<&str>, what: &str) -> Result<usize, String> {
    word.ok_or_else(|| format!("missing {what}"))?
        .parse()
        .map_err(|_| format!("bad {what}"))
}

fn parse_addr(s: &str) -> Option<Addr> {
    // Inverse of the Display names "x y z w a b c d" / "mN".
    const NAMES: &[u8] = b"xyzwabcd";
    let s = s.trim_matches(|c| c == '[' || c == ']');
    if s.len() == 1 {
        if let Some(pos) = NAMES.iter().position(|&c| c == s.as_bytes()[0]) {
            return Some(Addr(pos as u8));
        }
    }
    s.strip_prefix('m').and_then(|n| n.parse().ok()).map(Addr)
}

fn parse_dep<'a>(
    words: &mut impl Iterator<Item = &'a str>,
) -> Result<(usize, usize, usize, DepKind), String> {
    let t = parse_num(words.next(), "tid")?;
    let f = parse_num(words.next(), "from")?;
    let to = parse_num(words.next(), "to")?;
    let kind = match words.next() {
        Some("addr") => DepKind::Addr,
        Some("data") => DepKind::Data,
        Some("ctrl") => DepKind::Ctrl,
        Some("ctrlisync") => DepKind::CtrlIsync,
        other => return Err(format!("unknown dep kind {other:?}")),
    };
    Ok((t, f, to, kind))
}

fn parse_order(suffix: &str) -> Result<MemOrder, String> {
    match suffix {
        "" => Ok(MemOrder::Relaxed),
        ".consume" => Ok(MemOrder::Consume),
        ".acquire" => Ok(MemOrder::Acquire),
        ".release" => Ok(MemOrder::Release),
        ".acq_rel" => Ok(MemOrder::AcqRel),
        ".sc" => Ok(MemOrder::SeqCst),
        other => Err(format!("unknown order suffix {other:?}")),
    }
}

fn parse_instr<'a>(head: &str, words: &mut impl Iterator<Item = &'a str>) -> Result<Instr, String> {
    let fence = |kind| {
        Ok(Instr::Fence {
            kind,
            scope: Scope::System,
        })
    };
    match head {
        "FenceSC" => return fence(FenceKind::Full),
        "lwsync" => return fence(FenceKind::Lightweight),
        "FenceAcqRel" => return fence(FenceKind::AcqRel),
        "FenceAcq" => return fence(FenceKind::Acquire),
        "FenceRel" => return fence(FenceKind::Release),
        _ => {}
    }
    let (mnemonic, order) = if let Some(rest) = head.strip_prefix("Ld") {
        ("Ld", parse_order(rest)?)
    } else if let Some(rest) = head.strip_prefix("St") {
        ("St", parse_order(rest)?)
    } else if let Some(rest) = head.strip_prefix("RMW") {
        ("RMW", parse_order(rest)?)
    } else {
        return Err(format!("unknown instruction {head:?}"));
    };
    let a = words.next().ok_or("missing address")?;
    let addr = parse_addr(a).ok_or_else(|| format!("bad address {a:?}"))?;
    Ok(match mnemonic {
        "Ld" => Instr::Load {
            addr,
            order,
            scope: Scope::System,
        },
        "St" => Instr::Store {
            addr,
            order,
            scope: Scope::System,
        },
        _ => Instr::Rmw {
            addr,
            order,
            scope: Scope::System,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suites::classics;

    #[test]
    fn roundtrip_classics() {
        for (t, o) in [
            classics::mp(),
            classics::mp_rel_acq(),
            classics::sb_fences(),
            classics::lb_addrs(),
            classics::wrc(),
            classics::iriw(),
            classics::rmw_st(),
            classics::colb(),
        ] {
            let text = to_text(&t, &o);
            let (t2, o2) = from_text(&text).unwrap_or_else(|e| panic!("{}:\n{text}", e));
            assert_eq!(t.threads(), t2.threads(), "{text}");
            assert_eq!(t.deps(), t2.deps());
            assert_eq!(t.rmw_pairs(), t2.rmw_pairs());
            assert_eq!(o, o2);
            assert_eq!(t.name(), t2.name());
        }
    }

    #[test]
    fn roundtrip_rmw_pair_and_scoped() {
        let t = LitmusTest::new(
            "pairster",
            vec![vec![Instr::load(0), Instr::store(0)], vec![Instr::store(0)]],
        )
        .with_rmw_pair(0, 0);
        let o = Outcome::of([(0, None)], [(Addr(0), 1)]);
        let (t2, o2) = from_text(&to_text(&t, &o)).unwrap();
        assert_eq!(t.rmw_pairs(), t2.rmw_pairs());
        assert_eq!(o, o2);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let cases = [
            ("test x\nLd [x]\nend\n", 2, "before any 'thread'"),
            ("test x\nthread\n  Zap [x]\nend\n", 3, "unknown instruction"),
            ("test x\nthread\n  Ld [q9]\nend\n", 3, "bad address"),
            ("test x\nthread\n  Ld [x]\n", 3, "missing 'end'"),
            (
                "test x\nthread\n  Ld [x]\nend\nmore\n",
                5,
                "content after 'end'",
            ),
            (
                "test x\nthread\n  Ld [x]\nforbid rf 0 <- zap\nend\n",
                4,
                "bad write gid",
            ),
            ("test x\nthread\n  Ld.zap [x]\nend\n", 3, "unknown order"),
        ];
        for (text, line, needle) in cases {
            let e = from_text(text).unwrap_err();
            assert_eq!(e.line, line, "{text:?} → {e}");
            assert!(e.message.contains(needle), "{e}");
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# header\n\ntest c\nthread\n  # not here though\n  Ld [x]\nend\n";
        // '#' only starts a comment at line start after trim; the indented
        // comment line is also trimmed and skipped.
        let (t, _) = from_text(text).unwrap();
        assert_eq!(t.num_events(), 1);
    }

    #[test]
    fn addresses_beyond_the_names_roundtrip() {
        let t = LitmusTest::new("big", vec![vec![Instr::load(9)]]);
        let o = Outcome::of([(0, None)], []);
        let (t2, _) = from_text(&to_text(&t, &o)).unwrap();
        assert_eq!(t2.instr(0).addr(), Some(Addr(9)));
    }
}
