//! Instruction-level vocabulary: memory orders, scopes, fences, dependencies.

use std::fmt;

/// A memory location, identified by a small dense index.
///
/// Display uses the conventional litmus names `x, y, z, …`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Addr(pub u8);

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const NAMES: &[u8] = b"xyzwabcd";
        if (self.0 as usize) < NAMES.len() {
            write!(f, "{}", NAMES[self.0 as usize] as char)
        } else {
            write!(f, "m{}", self.0)
        }
    }
}

/// Memory-order annotation ladder, ordered by decreasing strength
/// (paper Table 1). Hardware models use the subsets that apply: ARMv8/SCC
/// use `SeqCst`/`Acquire`/`Release`/`Relaxed`; TSO and Power accesses are
/// all `Relaxed` (their ordering comes from fences and dependencies).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum MemOrder {
    /// `memory_order_relaxed`: no ordering beyond coherence.
    Relaxed,
    /// `memory_order_consume`: dependency-ordered before.
    Consume,
    /// `memory_order_acquire` (loads / RMWs).
    Acquire,
    /// `memory_order_release` (stores / RMWs).
    Release,
    /// `memory_order_acq_rel` (RMWs).
    AcqRel,
    /// `memory_order_seq_cst`.
    SeqCst,
}

impl MemOrder {
    /// Short annotation used by the pretty printer (empty for relaxed).
    pub fn suffix(self) -> &'static str {
        match self {
            MemOrder::Relaxed => "",
            MemOrder::Consume => ".consume",
            MemOrder::Acquire => ".acquire",
            MemOrder::Release => ".release",
            MemOrder::AcqRel => ".acq_rel",
            MemOrder::SeqCst => ".sc",
        }
    }

    /// The orders one DMO (demote-memory-order) step can produce from this
    /// one, per the paper's §3.2: e.g. `acq_rel` demotes to either `acquire`
    /// or `release`.
    pub fn demotions(self) -> &'static [MemOrder] {
        match self {
            MemOrder::Relaxed => &[],
            MemOrder::Consume => &[MemOrder::Relaxed],
            MemOrder::Acquire => &[MemOrder::Consume],
            MemOrder::Release => &[MemOrder::Relaxed],
            MemOrder::AcqRel => &[MemOrder::Acquire, MemOrder::Release],
            MemOrder::SeqCst => &[MemOrder::AcqRel],
        }
    }
}

/// Synchronization scope (OpenCL/HSA-style). Only models with scoped
/// synchronization (our C11 fragment ignores it; SCC/TSO/Power ignore it)
/// consult this; `System` is the strongest and the default.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Scope {
    /// A single work-item / thread.
    WorkItem,
    /// A work-group / CTA.
    WorkGroup,
    /// The whole device.
    Device,
    /// The whole system (default; unscoped models behave as if all
    /// instructions were `System`-scoped).
    System,
}

impl Scope {
    /// One demotion step (DS relaxation), or `None` at the bottom.
    pub fn demotion(self) -> Option<Scope> {
        match self {
            Scope::System => Some(Scope::Device),
            Scope::Device => Some(Scope::WorkGroup),
            Scope::WorkGroup => Some(Scope::WorkItem),
            Scope::WorkItem => None,
        }
    }
}

/// Fence flavor. Each model interprets the subset it defines and treats the
/// rest as ill-formed (the synthesis never emits them for that model).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum FenceKind {
    /// Full/heavyweight fence: x86 `mfence`, Power `sync`, ARM `dmb`,
    /// SCC `FenceSC`.
    Full,
    /// Power `lwsync` — the lightweight fence (no equivalent on ARMv7,
    /// which is exactly how our ARMv7 variant differs from Power, §6.2).
    Lightweight,
    /// SCC `FenceAcqRel` / C11 `atomic_thread_fence(memory_order_acq_rel)`.
    AcqRel,
    /// C11 acquire fence.
    Acquire,
    /// C11 release fence.
    Release,
}

impl FenceKind {
    /// Printable mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FenceKind::Full => "FenceSC",
            FenceKind::Lightweight => "lwsync",
            FenceKind::AcqRel => "FenceAcqRel",
            FenceKind::Acquire => "FenceAcq",
            FenceKind::Release => "FenceRel",
        }
    }
}

/// Dependency kinds used by Power/ARM (`RD` removes these).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum DepKind {
    /// Address dependency.
    Addr,
    /// Data dependency (into a store's value).
    Data,
    /// Control dependency.
    Ctrl,
    /// Control + isync/isb.
    CtrlIsync,
}

impl DepKind {
    /// Printable mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            DepKind::Addr => "addr",
            DepKind::Data => "data",
            DepKind::Ctrl => "ctrl",
            DepKind::CtrlIsync => "ctrlisync",
        }
    }
}

/// One instruction in a litmus-test thread.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Instr {
    /// A load from `addr`.
    Load {
        /// Location read.
        addr: Addr,
        /// Ordering annotation.
        order: MemOrder,
        /// Synchronization scope.
        scope: Scope,
    },
    /// A store to `addr`. The value is implicit: every store in a test writes
    /// a distinct non-zero value (the store's 1-based per-address index), the
    /// standard litmus convention.
    Store {
        /// Location written.
        addr: Addr,
        /// Ordering annotation.
        order: MemOrder,
        /// Synchronization scope.
        scope: Scope,
    },
    /// A single-instruction atomic read-modify-write (reads and writes
    /// `addr` atomically). Models that formalize RMWs as load/store pairs
    /// use two instructions linked by an `rmw` edge instead — see
    /// [`crate::LitmusTest::rmw_pairs`].
    Rmw {
        /// Location updated.
        addr: Addr,
        /// Ordering annotation.
        order: MemOrder,
        /// Synchronization scope.
        scope: Scope,
    },
    /// A fence.
    Fence {
        /// Fence flavor.
        kind: FenceKind,
        /// Synchronization scope.
        scope: Scope,
    },
}

impl Instr {
    /// Plain relaxed load.
    pub fn load(addr: u8) -> Instr {
        Instr::Load {
            addr: Addr(addr),
            order: MemOrder::Relaxed,
            scope: Scope::System,
        }
    }

    /// Plain relaxed store.
    pub fn store(addr: u8) -> Instr {
        Instr::Store {
            addr: Addr(addr),
            order: MemOrder::Relaxed,
            scope: Scope::System,
        }
    }

    /// Load with an explicit order.
    pub fn load_ord(addr: u8, order: MemOrder) -> Instr {
        Instr::Load {
            addr: Addr(addr),
            order,
            scope: Scope::System,
        }
    }

    /// Store with an explicit order.
    pub fn store_ord(addr: u8, order: MemOrder) -> Instr {
        Instr::Store {
            addr: Addr(addr),
            order,
            scope: Scope::System,
        }
    }

    /// Atomic RMW (relaxed unless overridden).
    pub fn rmw(addr: u8) -> Instr {
        Instr::Rmw {
            addr: Addr(addr),
            order: MemOrder::Relaxed,
            scope: Scope::System,
        }
    }

    /// A fence of the given kind.
    pub fn fence(kind: FenceKind) -> Instr {
        Instr::Fence {
            kind,
            scope: Scope::System,
        }
    }

    /// The address accessed, if this is a memory access.
    pub fn addr(&self) -> Option<Addr> {
        match *self {
            Instr::Load { addr, .. } | Instr::Store { addr, .. } | Instr::Rmw { addr, .. } => {
                Some(addr)
            }
            Instr::Fence { .. } => None,
        }
    }

    /// Rewrites the address (used by canonicalization).
    pub fn with_addr(self, addr: Addr) -> Instr {
        match self {
            Instr::Load { order, scope, .. } => Instr::Load { addr, order, scope },
            Instr::Store { order, scope, .. } => Instr::Store { addr, order, scope },
            Instr::Rmw { order, scope, .. } => Instr::Rmw { addr, order, scope },
            f @ Instr::Fence { .. } => f,
        }
    }

    /// The memory-order annotation, if any.
    pub fn order(&self) -> Option<MemOrder> {
        match *self {
            Instr::Load { order, .. } | Instr::Store { order, .. } | Instr::Rmw { order, .. } => {
                Some(order)
            }
            Instr::Fence { .. } => None,
        }
    }

    /// Rewrites the memory order (used by DMO).
    pub fn with_order(self, order: MemOrder) -> Instr {
        match self {
            Instr::Load { addr, scope, .. } => Instr::Load { addr, order, scope },
            Instr::Store { addr, scope, .. } => Instr::Store { addr, order, scope },
            Instr::Rmw { addr, scope, .. } => Instr::Rmw { addr, order, scope },
            f @ Instr::Fence { .. } => f,
        }
    }

    /// The scope annotation.
    pub fn scope(&self) -> Scope {
        match *self {
            Instr::Load { scope, .. }
            | Instr::Store { scope, .. }
            | Instr::Rmw { scope, .. }
            | Instr::Fence { scope, .. } => scope,
        }
    }

    /// Rewrites the scope (used by DS).
    pub fn with_scope(self, scope: Scope) -> Instr {
        match self {
            Instr::Load { addr, order, .. } => Instr::Load { addr, order, scope },
            Instr::Store { addr, order, .. } => Instr::Store { addr, order, scope },
            Instr::Rmw { addr, order, .. } => Instr::Rmw { addr, order, scope },
            Instr::Fence { kind, .. } => Instr::Fence { kind, scope },
        }
    }

    /// `true` for loads and RMWs.
    pub fn is_read(&self) -> bool {
        matches!(self, Instr::Load { .. } | Instr::Rmw { .. })
    }

    /// `true` for stores and RMWs.
    pub fn is_write(&self) -> bool {
        matches!(self, Instr::Store { .. } | Instr::Rmw { .. })
    }

    /// `true` for fences.
    pub fn is_fence(&self) -> bool {
        matches!(self, Instr::Fence { .. })
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Load { addr, order, .. } => write!(f, "Ld{} [{}]", order.suffix(), addr),
            Instr::Store { addr, order, .. } => write!(f, "St{} [{}]", order.suffix(), addr),
            Instr::Rmw { addr, order, .. } => write!(f, "RMW{} [{}]", order.suffix(), addr),
            Instr::Fence { kind, .. } => write!(f, "{}", kind.mnemonic()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_display_names() {
        assert_eq!(Addr(0).to_string(), "x");
        assert_eq!(Addr(1).to_string(), "y");
        assert_eq!(Addr(9).to_string(), "m9");
    }

    #[test]
    fn demotion_ladder() {
        assert_eq!(MemOrder::SeqCst.demotions(), &[MemOrder::AcqRel]);
        assert_eq!(
            MemOrder::AcqRel.demotions(),
            &[MemOrder::Acquire, MemOrder::Release]
        );
        assert!(MemOrder::Relaxed.demotions().is_empty());
        assert_eq!(Scope::System.demotion(), Some(Scope::Device));
        assert_eq!(Scope::WorkItem.demotion(), None);
    }

    #[test]
    fn instr_accessors() {
        let ld = Instr::load_ord(1, MemOrder::Acquire);
        assert!(ld.is_read());
        assert!(!ld.is_write());
        assert_eq!(ld.addr(), Some(Addr(1)));
        assert_eq!(ld.order(), Some(MemOrder::Acquire));
        let st = ld.with_addr(Addr(0));
        assert_eq!(st.addr(), Some(Addr(0)));
        assert_eq!(st.order(), Some(MemOrder::Acquire));
        let rmw = Instr::rmw(0);
        assert!(rmw.is_read() && rmw.is_write());
        let fence = Instr::fence(FenceKind::Full);
        assert!(fence.is_fence());
        assert_eq!(fence.addr(), None);
        assert_eq!(fence.order(), None);
    }

    #[test]
    fn instr_display() {
        assert_eq!(Instr::load(0).to_string(), "Ld [x]");
        assert_eq!(
            Instr::store_ord(1, MemOrder::Release).to_string(),
            "St.release [y]"
        );
        assert_eq!(Instr::fence(FenceKind::Lightweight).to_string(), "lwsync");
    }
}
