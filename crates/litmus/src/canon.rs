//! Litmus-test canonicalization (paper §5.1).
//!
//! Two symmetric tests — same structure up to thread reordering and address
//! renaming (Figure 9) — should count once in a suite. This module provides:
//!
//! * [`canonical_key_hash`]: the paper's scheme (adapted from Mador-Haim et
//!   al., extended with instruction features such as memory orders and
//!   fences): threads are keyed and sorted, then addresses are relabelled in
//!   first-use order. It deliberately reproduces the paper's known
//!   limitation: two threads with identical instruction shapes (litmus test
//!   WWC, Figure 14) tie, so the two swapped variants canonicalize
//!   differently.
//! * [`canonical_key_exact`]: an exact canonical form that minimizes the
//!   serialization over *all* thread permutations, closing the WWC gap (the
//!   enhancement the paper leaves as future work).

use crate::event::Addr;
use crate::test::{Dep, LitmusTest, Outcome, RmwPair};
use std::collections::{BTreeMap, HashMap};

/// Reorders threads by `order` (new tid `k` is old thread `order[k]`),
/// remaps global ids and addresses (first-use order), and returns the
/// renamed test and outcome.
pub fn apply_thread_order(
    test: &LitmusTest,
    outcome: &Outcome,
    order: &[usize],
) -> (LitmusTest, Outcome) {
    assert_eq!(order.len(), test.num_threads());
    // Address map: first use scanning the new thread order.
    let mut addr_map: BTreeMap<Addr, Addr> = BTreeMap::new();
    for &old_tid in order {
        for instr in &test.threads()[old_tid] {
            if let Some(a) = instr.addr() {
                let next = addr_map.len() as u8;
                addr_map.entry(a).or_insert(Addr(next));
            }
        }
    }
    // New thread bodies.
    let threads: Vec<Vec<crate::event::Instr>> = order
        .iter()
        .map(|&old_tid| {
            test.threads()[old_tid]
                .iter()
                .map(|i| match i.addr() {
                    Some(a) => i.with_addr(addr_map[&a]),
                    None => *i,
                })
                .collect()
        })
        .collect();
    let mut out = LitmusTest::new(test.name().to_string(), threads);
    // Old gid → new gid.
    let mut gid_map = vec![0usize; test.num_events()];
    for (new_tid, &old_tid) in order.iter().enumerate() {
        for idx in 0..test.threads()[old_tid].len() {
            gid_map[test.gid(old_tid, idx)] = out.gid(new_tid, idx);
        }
    }
    // Deps and rmw pairs.
    let old_tid_to_new: BTreeMap<usize, usize> = order
        .iter()
        .enumerate()
        .map(|(new, &old)| (old, new))
        .collect();
    for &Dep {
        tid,
        from,
        to,
        kind,
    } in test.deps()
    {
        out = out.with_dep(old_tid_to_new[&tid], from, to, kind);
    }
    for &RmwPair { tid, load, .. } in test.rmw_pairs() {
        out = out.with_rmw_pair(old_tid_to_new[&tid], load);
    }
    // Outcome.
    let rf = outcome
        .rf
        .iter()
        .map(|(&r, &w)| (gid_map[r], w.map(|w| gid_map[w])))
        .collect();
    let finals = outcome
        .finals
        .iter()
        .map(|(&a, &w)| (addr_map[&a], gid_map[w]))
        .collect();
    (out, Outcome { rf, finals })
}

/// Serializes a (test, outcome) pair into a stable textual key.
///
/// Addresses, orders, scopes, fences, dependencies, RMW pairing, and the
/// outcome all participate, so two keys are equal iff the named tests are
/// identical after renaming.
pub fn serialize(test: &LitmusTest, outcome: &Outcome) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for t in test.threads() {
        s.push('|');
        for i in t {
            let _ = write!(s, "{i};");
        }
    }
    let mut deps: Vec<_> = test.deps().to_vec();
    deps.sort();
    for d in &deps {
        let _ = write!(s, "#d{},{},{},{}", d.tid, d.from, d.to, d.kind.mnemonic());
    }
    let mut rmws: Vec<_> = test.rmw_pairs().to_vec();
    rmws.sort();
    for p in &rmws {
        let _ = write!(s, "#a{},{}", p.tid, p.load);
    }
    for (&r, &w) in &outcome.rf {
        match w {
            Some(w) => {
                let _ = write!(s, "#rf{r}<-{w}");
            }
            None => {
                let _ = write!(s, "#rf{r}<-init");
            }
        }
    }
    for (&a, &w) in &outcome.finals {
        let _ = write!(s, "#fin{a}={w}");
    }
    s
}

/// The per-thread key used by the hash-based canonicalizer: the thread's
/// instructions with addresses relabelled *locally* (first use within the
/// thread), so that symmetric threads in different tests compare equal.
fn thread_local_key(test: &LitmusTest, tid: usize) -> String {
    use std::fmt::Write as _;
    let mut addr_map: BTreeMap<Addr, Addr> = BTreeMap::new();
    let mut s = String::new();
    for instr in &test.threads()[tid] {
        let i = match instr.addr() {
            Some(a) => {
                let next = addr_map.len() as u8;
                let local = *addr_map.entry(a).or_insert(Addr(next));
                instr.with_addr(local)
            }
            None => *instr,
        };
        let _ = write!(s, "{i};");
    }
    for d in test.deps().iter().filter(|d| d.tid == tid) {
        let _ = write!(s, "#d{},{},{}", d.from, d.to, d.kind.mnemonic());
    }
    for p in test.rmw_pairs().iter().filter(|p| p.tid == tid) {
        let _ = write!(s, "#a{}", p.load);
    }
    s
}

/// The paper's canonicalization: sort threads by their local keys (stable —
/// ties keep original order, which is exactly the WWC limitation), relabel
/// addresses in first-use order, serialize.
pub fn canonical_key_hash(test: &LitmusTest, outcome: &Outcome) -> String {
    let mut order: Vec<usize> = (0..test.num_threads()).collect();
    let keys: Vec<String> = order.iter().map(|&t| thread_local_key(test, t)).collect();
    order.sort_by(|&a, &b| keys[a].cmp(&keys[b]));
    let (t, o) = apply_thread_order(test, outcome, &order);
    serialize(&t, &o)
}

/// The exact canonical form: minimum serialization over all thread
/// permutations. Cost is `threads!`, trivially small for litmus tests.
pub fn canonical_key_exact(test: &LitmusTest, outcome: &Outcome) -> String {
    canonicalize_exact(test, outcome).0
}

/// Like [`canonical_key_exact`], also returning the renamed test/outcome
/// that realizes the canonical key.
pub fn canonicalize_exact(test: &LitmusTest, outcome: &Outcome) -> (String, LitmusTest, Outcome) {
    let n = test.num_threads();
    let mut best: Option<(String, LitmusTest, Outcome)> = None;
    for order in thread_permutations(n) {
        let (t, o) = apply_thread_order(test, outcome, &order);
        let key = serialize(&t, &o);
        if best.as_ref().is_none_or(|(bk, _, _)| key < *bk) {
            best = Some((key, t, o));
        }
    }
    best.expect("at least one permutation")
}

/// A two-tier canonicalizer: exact-canonical output at hash-canonical cost
/// for every member of a class after the first.
///
/// [`canonical_key_hash`] *refines* the exact partition: the hash key is a
/// full serialization of the test after one concrete thread reordering, so
/// hash-equal tests are literally identical after renaming — and therefore
/// exact-equal. The converse can fail only when identically-shaped threads
/// tie in the hash sort (WWC, Figure 14), in which case the tied variants
/// hash apart but exact-canonicalize together. Memoizing hash key → exact
/// result is thus lossless: the `threads!`-cost exact search runs once per
/// distinct hash key, every later member of the class resolves with a hash
/// and a map lookup, and tied variants simply occupy two memo slots that
/// agree on the exact key. Output is byte-identical to calling
/// [`canonicalize_exact`] everywhere.
#[derive(Debug, Default)]
pub struct TwoTierCanon {
    memo: HashMap<String, (String, LitmusTest, Outcome)>,
    hits: u64,
    misses: u64,
}

impl TwoTierCanon {
    /// An empty cache.
    pub fn new() -> TwoTierCanon {
        TwoTierCanon::default()
    }

    /// The exact canonical (key, test, outcome) of the input — identical to
    /// [`canonicalize_exact`], amortized to one hash canonicalization per
    /// call plus one exact search per distinct hash key.
    pub fn canonicalize(
        &mut self,
        test: &LitmusTest,
        outcome: &Outcome,
    ) -> (String, LitmusTest, Outcome) {
        let hash = canonical_key_hash(test, outcome);
        if let Some((k, t, o)) = self.memo.get(&hash) {
            self.hits += 1;
            return (k.clone(), t.clone(), o.clone());
        }
        self.misses += 1;
        let (k, t, o) = canonicalize_exact(test, outcome);
        self.memo.insert(hash, (k.clone(), t.clone(), o.clone()));
        (k, t, o)
    }

    /// Calls answered from the memo (no exact search).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Calls that paid the exact permutation search.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

fn thread_permutations(n: usize) -> Vec<Vec<usize>> {
    fn go(prefix: &mut Vec<usize>, rest: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if rest.is_empty() {
            out.push(prefix.clone());
            return;
        }
        for i in 0..rest.len() {
            let x = rest.remove(i);
            prefix.push(x);
            go(prefix, rest, out);
            prefix.pop();
            rest.insert(i, x);
        }
    }
    let mut out = Vec::new();
    go(&mut Vec::new(), &mut (0..n).collect(), &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DepKind, Instr, MemOrder};
    use std::collections::BTreeMap;

    /// The two symmetric MP flavors of the paper's Figure 9.
    fn fig9_pair() -> ((LitmusTest, Outcome), (LitmusTest, Outcome)) {
        // Test 1: T0 = St x; St.release y   T1 = Ld.acquire y; Ld x
        let t1 = LitmusTest::new(
            "fig9a",
            vec![
                vec![Instr::store(0), Instr::store_ord(1, MemOrder::Release)],
                vec![Instr::load_ord(1, MemOrder::Acquire), Instr::load(0)],
            ],
        );
        let o1 = Outcome {
            rf: BTreeMap::from([(2, Some(1)), (3, None)]),
            finals: BTreeMap::from([(Addr(0), 0), (Addr(1), 1)]),
        };
        // Test 2: threads and addresses swapped.
        let t2 = LitmusTest::new(
            "fig9b",
            vec![
                vec![Instr::load_ord(0, MemOrder::Acquire), Instr::load(1)],
                vec![Instr::store(1), Instr::store_ord(0, MemOrder::Release)],
            ],
        );
        let o2 = Outcome {
            rf: BTreeMap::from([(0, Some(3)), (1, None)]),
            finals: BTreeMap::from([(Addr(0), 3), (Addr(1), 2)]),
        };
        ((t1, o1), (t2, o2))
    }

    #[test]
    fn fig9_symmetry_is_detected_by_both_canonicalizers() {
        let ((t1, o1), (t2, o2)) = fig9_pair();
        assert_eq!(canonical_key_hash(&t1, &o1), canonical_key_hash(&t2, &o2));
        assert_eq!(canonical_key_exact(&t1, &o1), canonical_key_exact(&t2, &o2));
    }

    /// WWC (Figure 14): threads 1 and 2 have identical instruction shapes,
    /// so the hash canonicalizer cannot merge the two swapped variants — but
    /// the exact canonicalizer can.
    fn wwc_variants() -> ((LitmusTest, Outcome), (LitmusTest, Outcome)) {
        // T0: Ld x           T1: St y; St x (x=2)     T2: St x? — use the
        // paper's WWC shape: T0: Ld x, St y / T1: Ld y, St x ... Figure 14:
        //   T0: St [x],2 | Ld r1=[x]? — we encode the essential symmetric
        // pair instead: two threads with identical Ld a; St b patterns.
        let t1 = LitmusTest::new(
            "wwc1",
            vec![
                vec![Instr::store(0)],
                vec![Instr::load(0), Instr::store(1)],
                vec![Instr::load(1), Instr::store(0)],
            ],
        );
        let o1 = Outcome {
            rf: BTreeMap::from([(1, Some(0)), (3, Some(2))]),
            finals: BTreeMap::from([(Addr(0), 0), (Addr(1), 2)]),
        };
        // Swap the two identical-shape threads; relabel addresses to match.
        let t2 = LitmusTest::new(
            "wwc2",
            vec![
                vec![Instr::store(1)],
                vec![Instr::load(0), Instr::store(1)],
                vec![Instr::load(1), Instr::store(0)],
            ],
        );
        let o2 = Outcome {
            rf: BTreeMap::from([(3, Some(0)), (1, Some(4))]),
            finals: BTreeMap::from([(Addr(1), 0), (Addr(0), 4)]),
        };
        ((t1, o1), (t2, o2))
    }

    #[test]
    fn wwc_limitation_hash_misses_exact_catches() {
        let ((t1, o1), (t2, o2)) = wwc_variants();
        // The exact canonicalizer merges the pair…
        assert_eq!(canonical_key_exact(&t1, &o1), canonical_key_exact(&t2, &o2));
        // …while the paper's hash scheme does not (documented limitation).
        assert_ne!(canonical_key_hash(&t1, &o1), canonical_key_hash(&t2, &o2));
    }

    #[test]
    fn exact_key_invariant_under_any_thread_permutation() {
        let ((t1, o1), _) = fig9_pair();
        let base = canonical_key_exact(&t1, &o1);
        for order in thread_permutations(t1.num_threads()) {
            let (t, o) = apply_thread_order(&t1, &o1, &order);
            assert_eq!(canonical_key_exact(&t, &o), base, "order {order:?}");
        }
    }

    #[test]
    fn deps_participate_in_keys() {
        let mk = |with_dep: bool| {
            let t = LitmusTest::new("t", vec![vec![Instr::load(0), Instr::store(1)]]);
            let t = if with_dep {
                t.with_dep(0, 0, 1, DepKind::Addr)
            } else {
                t
            };
            let o = Outcome {
                rf: BTreeMap::from([(0, None)]),
                finals: BTreeMap::from([(Addr(1), 1)]),
            };
            canonical_key_exact(&t, &o)
        };
        assert_ne!(mk(true), mk(false));
    }

    #[test]
    fn orders_participate_in_keys() {
        let mk = |ord: MemOrder| {
            let t = LitmusTest::new("t", vec![vec![Instr::load_ord(0, ord)]]);
            let o = Outcome {
                rf: BTreeMap::from([(0, None)]),
                finals: BTreeMap::new(),
            };
            canonical_key_exact(&t, &o)
        };
        assert_ne!(mk(MemOrder::Relaxed), mk(MemOrder::Acquire));
    }

    #[test]
    fn outcome_participates_in_keys() {
        let t = LitmusTest::new("t", vec![vec![Instr::store(0)], vec![Instr::load(0)]]);
        let o1 = Outcome {
            rf: BTreeMap::from([(1, None)]),
            finals: BTreeMap::from([(Addr(0), 0)]),
        };
        let o2 = Outcome {
            rf: BTreeMap::from([(1, Some(0))]),
            finals: BTreeMap::from([(Addr(0), 0)]),
        };
        assert_ne!(canonical_key_exact(&t, &o1), canonical_key_exact(&t, &o2));
    }

    #[test]
    fn two_tier_canon_is_byte_identical_to_exact_only() {
        // Every fixture pair — including the WWC Figure-14 tie, where the
        // hash tier keys the two variants apart — must come out of the
        // two-tier path exactly as from exact-only canonicalization.
        let ((f1, fo1), (f2, fo2)) = fig9_pair();
        let ((w1, wo1), (w2, wo2)) = wwc_variants();
        let inputs = [(f1, fo1), (f2, fo2), (w1, wo1), (w2, wo2)];
        let mut canon = TwoTierCanon::new();
        for (t, o) in &inputs {
            // Canonicalize everything twice: the second pass must be all
            // memo hits and still byte-identical.
            for _ in 0..2 {
                let (k, ct, co) = canon.canonicalize(t, o);
                let (ek, ect, eco) = canonicalize_exact(t, o);
                assert_eq!(k, ek);
                assert_eq!(serialize(&ct, &co), serialize(&ect, &eco));
                assert_eq!(k, serialize(&ct, &co), "key is the representative");
            }
        }
        // fig9's two variants share a hash key (one memo slot); the WWC
        // variants hash apart (two slots) yet agree on the exact key —
        // the "fallback on collision" case.
        assert_eq!(canon.misses(), 3, "one exact search per distinct hash key");
        assert_eq!(canon.hits(), 5);
        let (w1k, _, _) = canon.canonicalize(&inputs[2].0, &inputs[2].1);
        let (w2k, _, _) = canon.canonicalize(&inputs[3].0, &inputs[3].1);
        assert_eq!(w1k, w2k, "WWC variants merge through the exact tier");
    }

    #[test]
    fn apply_thread_order_preserves_structure() {
        let ((t1, o1), _) = fig9_pair();
        let (t, o) = apply_thread_order(&t1, &o1, &[1, 0]);
        assert_eq!(t.num_events(), t1.num_events());
        assert_eq!(o.rf.len(), o1.rf.len());
        // Thread 0 of the permuted test is thread 1 of the original.
        assert_eq!(t.threads()[0].len(), t1.threads()[1].len());
        // Address relabelling: first-used address becomes x.
        assert_eq!(t.threads()[0][0].addr(), Some(Addr(0)));
    }
}
