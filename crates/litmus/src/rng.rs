//! A tiny deterministic PRNG (SplitMix64), used by the diy-style generator
//! and the property tests.
//!
//! Keeping the generator in-tree keeps the whole workspace free of external
//! dependencies (`cargo build --offline` must always succeed), and the
//! fixed algorithm keeps every seeded stream stable across toolchains —
//! unlike, say, `StdRng`, whose algorithm is explicitly unspecified.

/// SplitMix64: a small, fast, well-mixed 64-bit PRNG.
///
/// The finalizer is the standard one from Steele, Lea & Flood's
/// "Fast Splittable Pseudorandom Number Generators" (OOPSLA 2014); each
/// output is a bijective hash of the counter, so the stream has period
/// 2^64 and never gets stuck regardless of seed.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator with the given seed. Equal seeds give equal
    /// streams, forever.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        // Debiased multiply-shift (Lemire). The rejection loop runs at
        // most a handful of times for any n.
        let n = n as u64;
        loop {
            let x = self.next_u64();
            let (hi, lo) = {
                let wide = (x as u128) * (n as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= n.wrapping_neg() % n {
                return hi as usize;
            }
        }
    }

    /// A uniform value in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "empty range");
        lo + self.below(hi - lo + 1)
    }

    /// A uniform boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A uniform element of `xs`.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len())]
    }

    /// An in-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            xs.swap(i, self.below(i + 1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..10).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..10).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = SplitMix64::new(43).next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn reference_vector() {
        // First outputs for seed 0, per the reference SplitMix64
        // implementation — pins the algorithm, not just self-consistency.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220A8397B1DCDAF);
        assert_eq!(r.next_u64(), 0x6E789E6AA1B965F4);
        assert_eq!(r.next_u64(), 0x06C45D188009454F);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = SplitMix64::new(7);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let x = r.below(5);
            assert!(x < 5);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit: {seen:?}");
    }

    #[test]
    fn range_is_inclusive() {
        let mut r = SplitMix64::new(9);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..500 {
            let x = r.range(2, 4);
            assert!((2..=4).contains(&x));
            lo_seen |= x == 2;
            hi_seen |= x == 4;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::new(3);
        let mut xs: Vec<usize> = (0..20).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }
}
