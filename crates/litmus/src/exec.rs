//! Candidate executions of a litmus test, enumerated explicitly.
//!
//! A *candidate execution* fixes each read's source write (or the initial
//! value) and a coherence order per address. Whether a candidate is *allowed*
//! is the memory model's decision (`litsynth-models`); this module only
//! enumerates the well-formed candidates — the ground truth against which the
//! SAT-based synthesis is cross-validated.

use crate::event::Addr;
use crate::rel::Rel;
use crate::test::{LitmusTest, Outcome};
use std::collections::BTreeMap;

/// One candidate execution: a reads-from choice plus per-address coherence
/// orders.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Execution {
    /// For each read gid (sorted): the source write gid, or `None` for the
    /// initial value.
    pub rf: BTreeMap<usize, Option<usize>>,
    /// For each address with ≥1 write: write gids in coherence order.
    pub co: BTreeMap<Addr, Vec<usize>>,
}

impl Execution {
    /// Enumerates every candidate execution of `test`.
    ///
    /// Each read may source from any same-address write (including po-later
    /// ones — filtering those is the `sc_per_loc` axiom's job) or the initial
    /// value; each address's writes may be coherence-ordered in any
    /// permutation.
    pub fn enumerate(test: &LitmusTest) -> Vec<Execution> {
        let reads = test.reads();
        let addrs = test.addresses();

        // All rf choices: cartesian product over reads.
        let mut rf_choices: Vec<BTreeMap<usize, Option<usize>>> = vec![BTreeMap::new()];
        for &r in &reads {
            let addr = test.instr(r).addr().expect("read has address");
            let mut sources: Vec<Option<usize>> = vec![None];
            for w in test.writes_to(addr) {
                if w != r {
                    sources.push(Some(w));
                }
            }
            let mut next = Vec::with_capacity(rf_choices.len() * sources.len());
            for base in &rf_choices {
                for &s in &sources {
                    let mut m = base.clone();
                    m.insert(r, s);
                    next.push(m);
                }
            }
            rf_choices = next;
        }

        // All co choices: product of permutations per address.
        let mut co_choices: Vec<BTreeMap<Addr, Vec<usize>>> = vec![BTreeMap::new()];
        for &a in &addrs {
            let ws = test.writes_to(a);
            if ws.is_empty() {
                continue;
            }
            let perms = permutations(&ws);
            let mut next = Vec::with_capacity(co_choices.len() * perms.len());
            for base in &co_choices {
                for p in &perms {
                    let mut m = base.clone();
                    m.insert(a, p.clone());
                    next.push(m);
                }
            }
            co_choices = next;
        }

        let mut out = Vec::with_capacity(rf_choices.len() * co_choices.len());
        for rf in &rf_choices {
            for co in &co_choices {
                out.push(Execution {
                    rf: rf.clone(),
                    co: co.clone(),
                });
            }
        }
        out
    }

    /// The observable outcome of this execution.
    pub fn outcome(&self) -> Outcome {
        Outcome {
            rf: self.rf.clone(),
            finals: self
                .co
                .iter()
                .map(|(&a, order)| (a, *order.last().expect("non-empty co")))
                .collect(),
        }
    }

    /// The `rf` relation (write → read edges; initial reads have none).
    pub fn rf_rel(&self, n: usize) -> Rel {
        let mut r = Rel::new(n);
        for (&read, &src) in &self.rf {
            if let Some(w) = src {
                r.add(w, read);
            }
        }
        r
    }

    /// The `co` relation: transitive same-address write order.
    pub fn co_rel(&self, n: usize) -> Rel {
        let mut r = Rel::new(n);
        for order in self.co.values() {
            for i in 0..order.len() {
                for j in (i + 1)..order.len() {
                    r.add(order[i], order[j]);
                }
            }
        }
        r
    }

    /// The `fr` (from-reads) relation, accounting for implicit initial
    /// writes: a read of the initial value reads-before *every* write to its
    /// address; a read of write `w` reads-before every write co-after `w`.
    pub fn fr_rel(&self, test: &LitmusTest) -> Rel {
        let n = test.num_events();
        let mut r = Rel::new(n);
        for (&read, &src) in &self.rf {
            let addr = test.instr(read).addr().expect("read has address");
            let order = match self.co.get(&addr) {
                Some(o) => o.as_slice(),
                None => continue,
            };
            let after: &[usize] = match src {
                None => order,
                Some(w) => {
                    let pos = order.iter().position(|&x| x == w).expect("rf source in co");
                    &order[pos + 1..]
                }
            };
            for &w in after {
                if w != read {
                    r.add(read, w);
                }
            }
        }
        r
    }

    /// External (inter-thread) restriction of a relation, e.g. `rfe` from
    /// `rf`.
    pub fn externalize(rel: &Rel, test: &LitmusTest) -> Rel {
        let mut r = Rel::new(rel.len());
        for (i, j) in rel.pairs() {
            if test.thread_of(i) != test.thread_of(j) {
                r.add(i, j);
            }
        }
        r
    }

    /// Internal (intra-thread) restriction of a relation.
    pub fn internalize(rel: &Rel, test: &LitmusTest) -> Rel {
        let mut r = Rel::new(rel.len());
        for (i, j) in rel.pairs() {
            if test.thread_of(i) == test.thread_of(j) {
                r.add(i, j);
            }
        }
        r
    }
}

fn permutations(items: &[usize]) -> Vec<Vec<usize>> {
    if items.is_empty() {
        return vec![vec![]];
    }
    let mut out = Vec::new();
    for (i, &x) in items.iter().enumerate() {
        let mut rest: Vec<usize> = items.to_vec();
        rest.remove(i);
        for mut p in permutations(&rest) {
            p.insert(0, x);
            out.push(p);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Instr, MemOrder};

    fn mp() -> LitmusTest {
        LitmusTest::new(
            "MP",
            vec![
                vec![Instr::store(0), Instr::store_ord(1, MemOrder::Release)],
                vec![Instr::load_ord(1, MemOrder::Acquire), Instr::load(0)],
            ],
        )
    }

    #[test]
    fn enumeration_count_mp() {
        // Each read: 1 same-address write + initial = 2 choices; co orders
        // are singletons. 2 * 2 = 4 candidates.
        let t = mp();
        let execs = Execution::enumerate(&t);
        assert_eq!(execs.len(), 4);
        // All outcomes distinct.
        let mut outcomes: Vec<_> = execs.iter().map(|e| e.outcome()).collect();
        outcomes.sort();
        outcomes.dedup();
        assert_eq!(outcomes.len(), 4);
    }

    #[test]
    fn enumeration_count_two_writes_same_addr() {
        // CoRW-ish: one read of x, two writes to x (one same thread).
        // rf choices: init, w1, w2 → 3; co: 2 permutations. Total 6.
        let t = LitmusTest::new(
            "CoRW",
            vec![vec![Instr::load(0), Instr::store(0)], vec![Instr::store(0)]],
        );
        assert_eq!(Execution::enumerate(&t).len(), 6);
    }

    #[test]
    fn fr_with_initial_read() {
        let t = mp();
        // Read of x (gid 3) reads initial; write to x is gid 0.
        let mut rf: BTreeMap<usize, Option<usize>> = BTreeMap::new();
        rf.insert(2, Some(1));
        rf.insert(3, None);
        let e = Execution {
            rf,
            co: BTreeMap::from([(Addr(0), vec![0]), (Addr(1), vec![1])]),
        };
        let fr = e.fr_rel(&t);
        assert!(fr.contains(3, 0), "initial read frs to the write");
        assert!(!fr.contains(2, 1), "read of the final write has no fr");
    }

    #[test]
    fn fr_with_co_chain() {
        // One read + two writes to x in another thread.
        let t = LitmusTest::new(
            "t",
            vec![vec![Instr::load(0)], vec![Instr::store(0), Instr::store(0)]],
        );
        let e = Execution {
            rf: BTreeMap::from([(0usize, Some(1usize))]),
            co: BTreeMap::from([(Addr(0), vec![1, 2])]),
        };
        let fr = e.fr_rel(&t);
        assert!(fr.contains(0, 2));
        assert!(!fr.contains(0, 1));
    }

    #[test]
    fn outcome_finals_are_co_max() {
        let _two_writes = LitmusTest::new("t", vec![vec![Instr::store(0)], vec![Instr::store(0)]]);
        let e = Execution {
            rf: BTreeMap::new(),
            co: BTreeMap::from([(Addr(0), vec![1, 0])]),
        };
        assert_eq!(e.outcome().finals[&Addr(0)], 0);
    }

    #[test]
    fn externalize_internalize_partition() {
        let t = mp();
        let e = &Execution::enumerate(&t)[0];
        let rf = e.rf_rel(t.num_events());
        let rfe = Execution::externalize(&rf, &t);
        let rfi = Execution::internalize(&rf, &t);
        assert_eq!(rfe.union(&rfi), rf);
        assert!(rfe.intersect(&rfi).no_edges());
    }

    #[test]
    fn rmw_instruction_does_not_read_itself() {
        let t = LitmusTest::new("t", vec![vec![Instr::rmw(0)], vec![Instr::store(0)]]);
        for e in Execution::enumerate(&t) {
            assert_ne!(e.rf[&0], Some(0), "an RMW cannot read its own write");
        }
    }

    #[test]
    fn permutation_count() {
        assert_eq!(permutations(&[1, 2, 3]).len(), 6);
        assert_eq!(permutations(&[]).len(), 1);
    }
}
