//! Candidate executions of a litmus test, enumerated explicitly.
//!
//! A *candidate execution* fixes each read's source write (or the initial
//! value) and a coherence order per address. Whether a candidate is *allowed*
//! is the memory model's decision (`litsynth-models`); this module only
//! enumerates the well-formed candidates — the ground truth against which the
//! SAT-based synthesis is cross-validated.

use crate::event::Addr;
use crate::rel::Rel;
use crate::test::{LitmusTest, Outcome};
use std::collections::BTreeMap;

/// One candidate execution: a reads-from choice plus per-address coherence
/// orders.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Execution {
    /// For each read gid (sorted): the source write gid, or `None` for the
    /// initial value.
    pub rf: BTreeMap<usize, Option<usize>>,
    /// For each address with ≥1 write: write gids in coherence order.
    pub co: BTreeMap<Addr, Vec<usize>>,
}

impl Execution {
    /// Enumerates every candidate execution of `test`.
    ///
    /// Materializes [`Execution::iter`]; callers that can stop early (first
    /// witness found) should iterate instead of collecting.
    pub fn enumerate(test: &LitmusTest) -> Vec<Execution> {
        Execution::iter(test).collect()
    }

    /// Streams every candidate execution of `test` without materializing
    /// the (factorial-sized) candidate set.
    ///
    /// Each read may source from any same-address write (including po-later
    /// ones — filtering those is the `sc_per_loc` axiom's job) or the initial
    /// value; each address's writes may be coherence-ordered in any
    /// permutation. The order matches the historical `enumerate`: coherence
    /// permutations vary fastest (last address innermost, lexicographic by
    /// gid), then reads-from choices (last read innermost, initial value
    /// first then writes in gid order).
    pub fn iter(test: &LitmusTest) -> ExecutionIter {
        let reads = test.reads();
        let mut sources: Vec<(usize, Vec<Option<usize>>)> = Vec::with_capacity(reads.len());
        for &r in &reads {
            let addr = test.instr(r).addr().expect("read has address");
            let mut srcs: Vec<Option<usize>> = vec![None];
            for w in test.writes_to(addr) {
                if w != r {
                    srcs.push(Some(w));
                }
            }
            sources.push((r, srcs));
        }
        let perms: Vec<(Addr, Vec<usize>)> = test
            .addresses()
            .into_iter()
            .filter_map(|a| {
                let ws = test.writes_to(a); // gid order = lexicographic start
                (!ws.is_empty()).then_some((a, ws))
            })
            .collect();
        ExecutionIter {
            rf_idx: vec![0; sources.len()],
            sources,
            perms,
            done: false,
        }
    }

    /// The observable outcome of this execution.
    pub fn outcome(&self) -> Outcome {
        Outcome {
            rf: self.rf.clone(),
            finals: self
                .co
                .iter()
                .map(|(&a, order)| (a, *order.last().expect("non-empty co")))
                .collect(),
        }
    }

    /// The `rf` relation (write → read edges; initial reads have none).
    pub fn rf_rel(&self, n: usize) -> Rel {
        let mut r = Rel::new(n);
        for (&read, &src) in &self.rf {
            if let Some(w) = src {
                r.add(w, read);
            }
        }
        r
    }

    /// The `co` relation: transitive same-address write order.
    pub fn co_rel(&self, n: usize) -> Rel {
        let mut r = Rel::new(n);
        for order in self.co.values() {
            for i in 0..order.len() {
                for j in (i + 1)..order.len() {
                    r.add(order[i], order[j]);
                }
            }
        }
        r
    }

    /// The `fr` (from-reads) relation, accounting for implicit initial
    /// writes: a read of the initial value reads-before *every* write to its
    /// address; a read of write `w` reads-before every write co-after `w`.
    pub fn fr_rel(&self, test: &LitmusTest) -> Rel {
        let n = test.num_events();
        let mut r = Rel::new(n);
        for (&read, &src) in &self.rf {
            let addr = test.instr(read).addr().expect("read has address");
            let order = match self.co.get(&addr) {
                Some(o) => o.as_slice(),
                None => continue,
            };
            let after: &[usize] = match src {
                None => order,
                Some(w) => {
                    let pos = order.iter().position(|&x| x == w).expect("rf source in co");
                    &order[pos + 1..]
                }
            };
            for &w in after {
                if w != read {
                    r.add(read, w);
                }
            }
        }
        r
    }

    /// External (inter-thread) restriction of a relation, e.g. `rfe` from
    /// `rf`.
    pub fn externalize(rel: &Rel, test: &LitmusTest) -> Rel {
        let mut r = Rel::new(rel.len());
        for (i, j) in rel.pairs() {
            if test.thread_of(i) != test.thread_of(j) {
                r.add(i, j);
            }
        }
        r
    }

    /// Internal (intra-thread) restriction of a relation.
    pub fn internalize(rel: &Rel, test: &LitmusTest) -> Rel {
        let mut r = Rel::new(rel.len());
        for (i, j) in rel.pairs() {
            if test.thread_of(i) == test.thread_of(j) {
                r.add(i, j);
            }
        }
        r
    }
}

/// Streaming candidate-execution enumerator: an odometer over per-read
/// reads-from choices and per-address coherence permutations. Holds O(events)
/// state regardless of how many candidates exist.
pub struct ExecutionIter {
    /// Per read: (gid, source choices — `None` first, then writes in gid
    /// order).
    sources: Vec<(usize, Vec<Option<usize>>)>,
    /// Current source index per read.
    rf_idx: Vec<usize>,
    /// Per address with ≥1 write: current coherence permutation, advanced
    /// lexicographically in place.
    perms: Vec<(Addr, Vec<usize>)>,
    done: bool,
}

impl Iterator for ExecutionIter {
    type Item = Execution;

    fn next(&mut self) -> Option<Execution> {
        if self.done {
            return None;
        }
        let current = Execution {
            rf: self
                .sources
                .iter()
                .zip(&self.rf_idx)
                .map(|((r, srcs), &i)| (*r, srcs[i]))
                .collect(),
            co: self.perms.iter().map(|(a, p)| (*a, p.clone())).collect(),
        };
        // Advance: co digits first (last address fastest), then rf digits
        // (last read fastest) — the historical nesting order.
        let mut carried = true;
        for (_, p) in self.perms.iter_mut().rev() {
            if next_permutation(p) {
                carried = false;
                break;
            }
            p.sort_unstable(); // wrap to the lexicographic minimum
        }
        if carried {
            for (i, (_, srcs)) in self.rf_idx.iter_mut().zip(&self.sources).rev() {
                *i += 1;
                if *i < srcs.len() {
                    carried = false;
                    break;
                }
                *i = 0;
            }
        }
        self.done = carried;
        Some(current)
    }
}

/// Advances `items` to its lexicographic successor in place; `false` (and
/// leaves the maximal permutation) when already at the last one.
fn next_permutation(items: &mut [usize]) -> bool {
    if items.len() < 2 {
        return false;
    }
    let Some(i) = (0..items.len() - 1)
        .rev()
        .find(|&i| items[i] < items[i + 1])
    else {
        return false;
    };
    let j = (i + 1..items.len())
        .rev()
        .find(|&j| items[j] > items[i])
        .expect("successor exists right of pivot");
    items.swap(i, j);
    items[i + 1..].reverse();
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Instr, MemOrder};

    fn mp() -> LitmusTest {
        LitmusTest::new(
            "MP",
            vec![
                vec![Instr::store(0), Instr::store_ord(1, MemOrder::Release)],
                vec![Instr::load_ord(1, MemOrder::Acquire), Instr::load(0)],
            ],
        )
    }

    #[test]
    fn enumeration_count_mp() {
        // Each read: 1 same-address write + initial = 2 choices; co orders
        // are singletons. 2 * 2 = 4 candidates.
        let t = mp();
        let execs = Execution::enumerate(&t);
        assert_eq!(execs.len(), 4);
        // All outcomes distinct.
        let mut outcomes: Vec<_> = execs.iter().map(|e| e.outcome()).collect();
        outcomes.sort();
        outcomes.dedup();
        assert_eq!(outcomes.len(), 4);
    }

    #[test]
    fn enumeration_count_two_writes_same_addr() {
        // CoRW-ish: one read of x, two writes to x (one same thread).
        // rf choices: init, w1, w2 → 3; co: 2 permutations. Total 6.
        let t = LitmusTest::new(
            "CoRW",
            vec![vec![Instr::load(0), Instr::store(0)], vec![Instr::store(0)]],
        );
        assert_eq!(Execution::enumerate(&t).len(), 6);
    }

    #[test]
    fn fr_with_initial_read() {
        let t = mp();
        // Read of x (gid 3) reads initial; write to x is gid 0.
        let mut rf: BTreeMap<usize, Option<usize>> = BTreeMap::new();
        rf.insert(2, Some(1));
        rf.insert(3, None);
        let e = Execution {
            rf,
            co: BTreeMap::from([(Addr(0), vec![0]), (Addr(1), vec![1])]),
        };
        let fr = e.fr_rel(&t);
        assert!(fr.contains(3, 0), "initial read frs to the write");
        assert!(!fr.contains(2, 1), "read of the final write has no fr");
    }

    #[test]
    fn fr_with_co_chain() {
        // One read + two writes to x in another thread.
        let t = LitmusTest::new(
            "t",
            vec![vec![Instr::load(0)], vec![Instr::store(0), Instr::store(0)]],
        );
        let e = Execution {
            rf: BTreeMap::from([(0usize, Some(1usize))]),
            co: BTreeMap::from([(Addr(0), vec![1, 2])]),
        };
        let fr = e.fr_rel(&t);
        assert!(fr.contains(0, 2));
        assert!(!fr.contains(0, 1));
    }

    #[test]
    fn outcome_finals_are_co_max() {
        let _two_writes = LitmusTest::new("t", vec![vec![Instr::store(0)], vec![Instr::store(0)]]);
        let e = Execution {
            rf: BTreeMap::new(),
            co: BTreeMap::from([(Addr(0), vec![1, 0])]),
        };
        assert_eq!(e.outcome().finals[&Addr(0)], 0);
    }

    #[test]
    fn externalize_internalize_partition() {
        let t = mp();
        let e = &Execution::enumerate(&t)[0];
        let rf = e.rf_rel(t.num_events());
        let rfe = Execution::externalize(&rf, &t);
        let rfi = Execution::internalize(&rf, &t);
        assert_eq!(rfe.union(&rfi), rf);
        assert!(rfe.intersect(&rfi).no_edges());
    }

    #[test]
    fn rmw_instruction_does_not_read_itself() {
        let t = LitmusTest::new("t", vec![vec![Instr::rmw(0)], vec![Instr::store(0)]]);
        for e in Execution::enumerate(&t) {
            assert_ne!(e.rf[&0], Some(0), "an RMW cannot read its own write");
        }
    }

    #[test]
    fn next_permutation_is_lexicographic() {
        let mut p = vec![1, 2, 3];
        let mut seen = vec![p.clone()];
        while next_permutation(&mut p) {
            seen.push(p.clone());
        }
        assert_eq!(seen.len(), 6);
        let mut sorted = seen.clone();
        sorted.sort();
        assert_eq!(seen, sorted, "visited in lexicographic order");
        assert!(!next_permutation(&mut []));
        assert!(!next_permutation(&mut [7]));
    }

    /// The pre-iterator enumeration (materializing cartesian products), kept
    /// as the reference the streaming odometer must reproduce exactly —
    /// same candidates, same order.
    fn naive_enumerate(test: &LitmusTest) -> Vec<Execution> {
        fn permutations(items: &[usize]) -> Vec<Vec<usize>> {
            if items.is_empty() {
                return vec![vec![]];
            }
            let mut out = Vec::new();
            for (i, &x) in items.iter().enumerate() {
                let mut rest: Vec<usize> = items.to_vec();
                rest.remove(i);
                for mut p in permutations(&rest) {
                    p.insert(0, x);
                    out.push(p);
                }
            }
            out
        }
        let mut rf_choices: Vec<BTreeMap<usize, Option<usize>>> = vec![BTreeMap::new()];
        for &r in &test.reads() {
            let addr = test.instr(r).addr().expect("read has address");
            let mut sources: Vec<Option<usize>> = vec![None];
            for w in test.writes_to(addr) {
                if w != r {
                    sources.push(Some(w));
                }
            }
            let mut next = Vec::new();
            for base in &rf_choices {
                for &s in &sources {
                    let mut m = base.clone();
                    m.insert(r, s);
                    next.push(m);
                }
            }
            rf_choices = next;
        }
        let mut co_choices: Vec<BTreeMap<Addr, Vec<usize>>> = vec![BTreeMap::new()];
        for &a in &test.addresses() {
            let ws = test.writes_to(a);
            if ws.is_empty() {
                continue;
            }
            let mut next = Vec::new();
            for base in &co_choices {
                for p in permutations(&ws) {
                    let mut m = base.clone();
                    m.insert(a, p);
                    next.push(m);
                }
            }
            co_choices = next;
        }
        let mut out = Vec::new();
        for rf in &rf_choices {
            for co in &co_choices {
                out.push(Execution {
                    rf: rf.clone(),
                    co: co.clone(),
                });
            }
        }
        out
    }

    #[test]
    fn streaming_iterator_matches_naive_enumeration_exactly() {
        let tests = vec![
            mp(),
            LitmusTest::new(
                "CoRW",
                vec![vec![Instr::load(0), Instr::store(0)], vec![Instr::store(0)]],
            ),
            LitmusTest::new("rmw", vec![vec![Instr::rmw(0)], vec![Instr::store(0)]]),
            LitmusTest::new(
                "3w1r",
                vec![
                    vec![Instr::store(0), Instr::store(0)],
                    vec![Instr::store(0), Instr::load(0)],
                    vec![Instr::load(1)],
                ],
            ),
            LitmusTest::new("no_events_read", vec![vec![Instr::load(0)]]),
        ];
        for t in tests {
            let naive = naive_enumerate(&t);
            let streamed: Vec<Execution> = Execution::iter(&t).collect();
            assert_eq!(
                streamed,
                naive,
                "{}: same candidates in the same order",
                t.name()
            );
        }
    }

    #[test]
    fn streaming_iterator_is_lazy() {
        // 3 writes + 2 reads to one address: the full set is 3! × (4 × 4)
        // candidates, but taking one costs one.
        let t = LitmusTest::new(
            "big",
            vec![
                vec![Instr::store(0), Instr::store(0), Instr::store(0)],
                vec![Instr::load(0), Instr::load(0)],
            ],
        );
        let first = Execution::iter(&t).next().expect("nonempty");
        assert_eq!(first.rf[&3], None);
        assert_eq!(first.rf[&4], None);
        assert_eq!(first.co[&Addr(0)], vec![0, 1, 2]);
        assert_eq!(Execution::iter(&t).count(), 6 * 16);
    }
}
