//! Concrete (fully known) finite relations as bitset adjacency matrices.
//!
//! This mirrors the *symbolic* relational algebra in `litsynth-relalg`, but
//! over concrete executions: every edge is a known boolean. It powers the
//! explicit-enumeration oracle that cross-validates the SAT-based synthesis.
//!
//! Relations are over at most 64 elements (litmus tests have well under 16
//! events), so a row is a single `u64`.

/// A concrete binary relation over `0..n` with `n ≤ 64`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Rel {
    n: usize,
    rows: Vec<u64>,
}

impl Rel {
    /// The empty relation over `n` elements.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn new(n: usize) -> Rel {
        assert!(n <= 64, "Rel supports at most 64 elements");
        Rel {
            n,
            rows: vec![0; n],
        }
    }

    /// The identity relation.
    pub fn identity(n: usize) -> Rel {
        let mut r = Rel::new(n);
        for i in 0..n {
            r.add(i, i);
        }
        r
    }

    /// Builds a relation from an edge list.
    pub fn from_pairs(n: usize, pairs: impl IntoIterator<Item = (usize, usize)>) -> Rel {
        let mut r = Rel::new(n);
        for (i, j) in pairs {
            r.add(i, j);
        }
        r
    }

    /// Number of elements in the carrier.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the carrier is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds the edge `(i, j)`.
    pub fn add(&mut self, i: usize, j: usize) {
        debug_assert!(i < self.n && j < self.n);
        self.rows[i] |= 1 << j;
    }

    /// Removes the edge `(i, j)`.
    pub fn remove(&mut self, i: usize, j: usize) {
        self.rows[i] &= !(1 << j);
    }

    /// `true` if the edge `(i, j)` is present.
    pub fn contains(&self, i: usize, j: usize) -> bool {
        i < self.n && j < self.n && self.rows[i] >> j & 1 == 1
    }

    /// The successor set of `i` as a bitmask.
    pub fn row(&self, i: usize) -> u64 {
        self.rows[i]
    }

    /// `true` if the relation has no edges.
    pub fn no_edges(&self) -> bool {
        self.rows.iter().all(|&r| r == 0)
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.rows.iter().map(|r| r.count_ones() as usize).sum()
    }

    /// Iterates over all edges in row-major order.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n).flat_map(move |i| {
            let mut row = self.rows[i];
            std::iter::from_fn(move || {
                if row == 0 {
                    None
                } else {
                    let j = row.trailing_zeros() as usize;
                    row &= row - 1;
                    Some((i, j))
                }
            })
        })
    }

    /// Union.
    pub fn union(&self, other: &Rel) -> Rel {
        self.zip(other, |a, b| a | b)
    }

    /// Intersection.
    pub fn intersect(&self, other: &Rel) -> Rel {
        self.zip(other, |a, b| a & b)
    }

    /// Difference.
    pub fn difference(&self, other: &Rel) -> Rel {
        self.zip(other, |a, b| a & !b)
    }

    fn zip(&self, other: &Rel, f: impl Fn(u64, u64) -> u64) -> Rel {
        assert_eq!(self.n, other.n);
        Rel {
            n: self.n,
            rows: self
                .rows
                .iter()
                .zip(&other.rows)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Converse relation.
    pub fn transpose(&self) -> Rel {
        let mut r = Rel::new(self.n);
        for (i, j) in self.pairs() {
            r.add(j, i);
        }
        r
    }

    /// Relational composition `self ; other`.
    pub fn compose(&self, other: &Rel) -> Rel {
        assert_eq!(self.n, other.n);
        let mut r = Rel::new(self.n);
        for i in 0..self.n {
            let mut mid = self.rows[i];
            let mut acc = 0u64;
            while mid != 0 {
                let k = mid.trailing_zeros() as usize;
                mid &= mid - 1;
                acc |= other.rows[k];
            }
            r.rows[i] = acc;
        }
        r
    }

    /// Transitive closure (repeated squaring).
    pub fn transitive_closure(&self) -> Rel {
        let mut acc = self.clone();
        let mut span = 1;
        while span < self.n {
            let sq = acc.compose(&acc);
            acc = acc.union(&sq);
            span *= 2;
        }
        acc
    }

    /// Reflexive-transitive closure.
    pub fn reflexive_transitive_closure(&self) -> Rel {
        self.transitive_closure().union(&Rel::identity(self.n))
    }

    /// Restricts to edges whose source is in `domain` and target in `range`
    /// (bitmask sets).
    pub fn restrict(&self, domain: u64, range: u64) -> Rel {
        let mut r = Rel::new(self.n);
        for i in 0..self.n {
            if domain >> i & 1 == 1 {
                r.rows[i] = self.rows[i] & range;
            }
        }
        r
    }

    /// `true` if no element is related to itself.
    pub fn is_irreflexive(&self) -> bool {
        (0..self.n).all(|i| !self.contains(i, i))
    }

    /// `true` if the relation has no cycle (closure is irreflexive).
    pub fn is_acyclic(&self) -> bool {
        self.transitive_closure().is_irreflexive()
    }

    /// `true` if `self ⊆ other`.
    pub fn is_subset(&self, other: &Rel) -> bool {
        assert_eq!(self.n, other.n);
        self.rows
            .iter()
            .zip(&other.rows)
            .all(|(&a, &b)| a & !b == 0)
    }
}

/// Union of several relations over the same carrier.
pub fn union_all(n: usize, rels: &[&Rel]) -> Rel {
    let mut acc = Rel::new(n);
    for r in rels {
        acc = acc.union(r);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_chain() {
        let r = Rel::from_pairs(4, [(0, 1), (1, 2), (2, 3)]);
        let tc = r.transitive_closure();
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(tc.contains(i, j), i < j, "({i},{j})");
            }
        }
    }

    #[test]
    fn cycle_detection() {
        assert!(!Rel::from_pairs(3, [(0, 1), (1, 2), (2, 0)]).is_acyclic());
        assert!(Rel::from_pairs(3, [(0, 1), (1, 2), (0, 2)]).is_acyclic());
        assert!(!Rel::from_pairs(1, [(0, 0)]).is_acyclic());
        assert!(Rel::new(0).is_acyclic());
    }

    #[test]
    fn compose_and_transpose() {
        let a = Rel::from_pairs(3, [(0, 1)]);
        let b = Rel::from_pairs(3, [(1, 2)]);
        assert!(a.compose(&b).contains(0, 2));
        assert_eq!(a.compose(&b).edge_count(), 1);
        assert!(a.transpose().contains(1, 0));
    }

    #[test]
    fn pairs_iteration() {
        let r = Rel::from_pairs(4, [(3, 0), (1, 2), (1, 3)]);
        let got: Vec<_> = r.pairs().collect();
        assert_eq!(got, vec![(1, 2), (1, 3), (3, 0)]);
    }

    #[test]
    fn set_ops() {
        let a = Rel::from_pairs(3, [(0, 1), (1, 2)]);
        let b = Rel::from_pairs(3, [(1, 2), (2, 0)]);
        assert_eq!(a.union(&b).edge_count(), 3);
        assert_eq!(a.intersect(&b).edge_count(), 1);
        assert_eq!(a.difference(&b).edge_count(), 1);
        assert!(a.intersect(&b).contains(1, 2));
        assert!(a.difference(&b).contains(0, 1));
        assert!(a.intersect(&b).is_subset(&a));
    }

    #[test]
    fn restriction() {
        let r = Rel::from_pairs(3, [(0, 1), (1, 2), (2, 0)]);
        let restricted = r.restrict(0b011, 0b110);
        assert!(restricted.contains(0, 1));
        assert!(restricted.contains(1, 2));
        assert!(!restricted.contains(2, 0));
    }

    #[test]
    fn rstc_includes_identity() {
        let r = Rel::from_pairs(2, [(0, 1)]);
        let s = r.reflexive_transitive_closure();
        assert!(s.contains(0, 0) && s.contains(1, 1) && s.contains(0, 1));
        assert!(!s.contains(1, 0));
    }
}
