//! A diy-style randomized litmus-test generator.
//!
//! The paper compares its synthesized suites against the `cats` suite of
//! Alglave et al., which was largely produced by the diy tool: tests are
//! built from *critical cycles* — alternating communication edges (`rf`,
//! `fr`, `co` between threads) and local edges (program order, optionally
//! strengthened by a fence or dependency). We reimplement that construction
//! as our stand-in baseline (see DESIGN.md, substitution 2).
//!
//! Each generated test's outcome is the one that observes the whole cycle;
//! whether the cycle is actually forbidden is the memory model's call.

use crate::event::{Addr, DepKind, FenceKind, Instr};
use crate::rng::SplitMix64;
use crate::test::{LitmusTest, Outcome};
use std::collections::BTreeMap;

/// A communication (inter-thread) edge of a critical cycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CommEdge {
    /// External reads-from: write → read.
    Rfe,
    /// External from-reads: read → write (the read sees an older value).
    Fre,
    /// External coherence: write → write.
    Coe,
}

impl CommEdge {
    fn src_is_write(self) -> bool {
        matches!(self, CommEdge::Rfe | CommEdge::Coe)
    }

    fn dst_is_write(self) -> bool {
        matches!(self, CommEdge::Fre | CommEdge::Coe)
    }
}

/// The strengthening applied to a local (intra-thread) edge.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LocalEdge {
    /// Plain program order.
    Po,
    /// A fence between the two accesses.
    Fence(FenceKind),
    /// A dependency (requires the source to be a read).
    Dep(DepKind),
}

/// Configuration for the generator.
#[derive(Clone, Debug)]
pub struct DiyConfig {
    /// Candidate local-edge strengthenings to draw from.
    pub local_edges: Vec<LocalEdge>,
    /// Minimum cycle length (number of communication edges), ≥ 2.
    pub min_comm: usize,
    /// Maximum cycle length.
    pub max_comm: usize,
}

impl Default for DiyConfig {
    fn default() -> Self {
        DiyConfig {
            local_edges: vec![
                LocalEdge::Po,
                LocalEdge::Fence(FenceKind::Full),
                LocalEdge::Fence(FenceKind::Lightweight),
                LocalEdge::Dep(DepKind::Addr),
                LocalEdge::Dep(DepKind::Data),
                LocalEdge::Dep(DepKind::Ctrl),
            ],
            min_comm: 2,
            max_comm: 3,
        }
    }
}

/// The generator. Deterministic for a given seed.
#[derive(Debug)]
pub struct DiyGenerator {
    rng: SplitMix64,
    config: DiyConfig,
    counter: usize,
}

impl DiyGenerator {
    /// Creates a generator with the given seed and configuration.
    pub fn new(seed: u64, config: DiyConfig) -> DiyGenerator {
        DiyGenerator {
            rng: SplitMix64::new(seed),
            config,
            counter: 0,
        }
    }

    /// Generates `n` tests (programs + cycle-observing outcomes).
    pub fn generate(&mut self, n: usize) -> Vec<(LitmusTest, Outcome)> {
        let mut out = Vec::with_capacity(n);
        let mut guard = 0;
        while out.len() < n && guard < n * 1000 {
            guard += 1;
            if let Some(t) = self.try_one() {
                out.push(t);
            }
        }
        out
    }

    /// Attempts to realize one random critical cycle.
    fn try_one(&mut self) -> Option<(LitmusTest, Outcome)> {
        let k = self.rng.range(self.config.min_comm, self.config.max_comm);
        // Draw k communication edges and k local segments; thread i hosts
        // segment i (between comm edge i-1's dst and comm edge i's src).
        let comms: Vec<CommEdge> = (0..k)
            .map(|_| match self.rng.below(3) {
                0 => CommEdge::Rfe,
                1 => CommEdge::Fre,
                _ => CommEdge::Coe,
            })
            .collect();
        let locals: Vec<LocalEdge> = (0..k)
            .map(|_| *self.rng.choose(&self.config.local_edges))
            .collect();

        // Thread i's first event is comm[i-1].dst, second is comm[i].src.
        // Kinds must be consistent; a Dep local edge needs a read source.
        for i in 0..k {
            let first_is_write = comms[(i + k - 1) % k].dst_is_write();
            if let LocalEdge::Dep(_) = locals[i] {
                if first_is_write {
                    return None; // dependencies originate at reads
                }
            }
        }

        // Build the program: one thread per segment, one address per comm
        // edge (shared by its two endpoints).
        let mut threads: Vec<Vec<Instr>> = Vec::with_capacity(k);
        let mut deps: Vec<(usize, usize, usize, DepKind)> = Vec::new();
        // Per-thread (first_event_idx, second_event_idx).
        let mut positions: Vec<(usize, usize)> = Vec::with_capacity(k);
        for i in 0..k {
            let in_edge = comms[(i + k - 1) % k];
            let out_edge = comms[i];
            let addr_in = ((i + k - 1) % k) as u8;
            let addr_out = i as u8;
            let first = if in_edge.dst_is_write() {
                Instr::store(addr_in)
            } else {
                Instr::load(addr_in)
            };
            let second = if out_edge.src_is_write() {
                Instr::store(addr_out)
            } else {
                Instr::load(addr_out)
            };
            let mut body = vec![first];
            match locals[i] {
                LocalEdge::Po => body.push(second),
                LocalEdge::Fence(f) => {
                    body.push(Instr::fence(f));
                    body.push(second);
                }
                LocalEdge::Dep(d) => {
                    body.push(second);
                    deps.push((i, 0, 1, d));
                }
            }
            positions.push((0, body.len() - 1));
            threads.push(body);
        }

        self.counter += 1;
        let mut test = LitmusTest::new(format!("diy{:04}", self.counter), threads);
        for (tid, from, to, kind) in deps {
            // A data dependency must target a write; retarget to addr if not.
            let kind = if kind == DepKind::Data && !test.threads()[tid][to].is_write() {
                DepKind::Addr
            } else {
                kind
            };
            test = test.with_dep(tid, from, to, kind);
        }

        // The cycle-observing outcome. Comm edge i runs from thread i's
        // second event to thread (i+1)%k's first event, on address i.
        let mut rf: BTreeMap<usize, Option<usize>> = BTreeMap::new();
        let mut finals: BTreeMap<Addr, usize> = BTreeMap::new();
        for i in 0..k {
            let src = test.gid(i, positions[i].1);
            let dst = test.gid((i + 1) % k, positions[(i + 1) % k].0);
            match comms[i] {
                CommEdge::Rfe => {
                    rf.insert(dst, Some(src));
                }
                CommEdge::Fre => {
                    // The read saw an older value than dst's write: read
                    // initial, so fr reaches every write to the address.
                    rf.insert(src, None);
                    finals.insert(Addr(i as u8), dst);
                }
                CommEdge::Coe => {
                    finals.insert(Addr(i as u8), dst);
                }
            }
        }
        // Reads not on any rf edge are unconstrained; that is fine for a
        // cycle-observing outcome.
        Some((test, Outcome { rf, finals }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Execution;

    #[test]
    fn deterministic_for_seed() {
        let mk = || {
            DiyGenerator::new(42, DiyConfig::default())
                .generate(10)
                .iter()
                .map(|(t, o)| crate::canon::serialize(t, o))
                .collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn generated_outcomes_are_realizable() {
        let tests = DiyGenerator::new(7, DiyConfig::default()).generate(30);
        assert_eq!(tests.len(), 30);
        for (t, o) in &tests {
            // Streaming first-witness check: early-exits at the first
            // matching execution.
            let ok = Execution::iter(t).any(|e| o.matches(&e.outcome()));
            assert!(ok, "{}: cycle outcome unrealizable\n{t}", t.name());
        }
    }

    #[test]
    fn generated_tests_are_well_formed() {
        let tests = DiyGenerator::new(3, DiyConfig::default()).generate(50);
        for (t, _) in &tests {
            assert!(t.num_threads() >= 2);
            assert!(t.num_events() >= 4);
            // Each dependency originates at a read.
            for d in t.deps() {
                assert!(t.threads()[d.tid][d.from].is_read());
            }
        }
    }

    #[test]
    fn respects_cycle_length_bounds() {
        let cfg = DiyConfig {
            min_comm: 3,
            max_comm: 3,
            ..DiyConfig::default()
        };
        for (t, _) in DiyGenerator::new(1, cfg).generate(20) {
            assert_eq!(t.num_threads(), 3);
        }
    }
}
