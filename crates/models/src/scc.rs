//! Streamlined Causal Consistency (SCC) — the CPU-like model the paper
//! introduces in §6.3 (Figure 17) to strip Power/ARM's corner cases while
//! keeping similar relaxed behavior.

use crate::alg::RelAlg;
use crate::ctx::Ctx;
use crate::model::MemoryModel;
use litsynth_litmus::{DepKind, FenceKind, MemOrder};

/// SCC: acquire/release instructions (ARMv8-flavored), `FenceAcqRel` and
/// `FenceSC` fences, a single dependency type (thin-air only), and *no*
/// Power-style `ppo` fixpoint.
///
/// ```text
/// acyclic(rf ∪ co ∪ fr ∪ po_loc)            -- sc_per_loc
/// acyclic(rf ∪ dep)                         -- no_thin_air
/// no (fr ; co) ∩ rmw                        -- rmw_atomicity
/// irreflexive((rf ∪ co ∪ fr)* ; cause⁺)     -- causality
///   prefix = iden ∪ (Fence <: po) ∪ (Release <: po_loc)
///   suffix = iden ∪ (po :> Fence) ∪ (po_loc :> Acquire)
///   sync   = Releasers <: prefix ; (rf ∪ rmw)⁺ ; suffix :> Acquirers
///   cause  = po* ; (sc ∪ sync) ; po*
/// ```
///
/// `sc` is an auxiliary total order over `FenceSC` events — exactly the
/// case where the paper's Figure 5c approximation loses tests (Figure 18)
/// and the Figure 19 workaround applies.
#[derive(Clone, Copy, Default, Debug)]
pub struct Scc;

impl Scc {
    /// Creates the model.
    pub fn new() -> Scc {
        Scc
    }

    /// The `cause` relation of Figure 17, with the `sc` relation supplied
    /// explicitly so the Figure 19 workaround can pass its reversal.
    pub fn cause<A: RelAlg>(&self, alg: &mut A, ctx: &Ctx<A>, sc: &A::Rel) -> A::Rel {
        // Fences of either SCC kind participate in prefix/suffix.
        let fences = alg.set_union(&ctx.fence_full, &ctx.fence_acqrel);
        let id = alg.iden(ctx.n);
        let po_loc = ctx.po_loc(alg);

        let fence_po = alg.dom(&fences, &ctx.po);
        let rel_poloc = alg.dom(&ctx.release, &po_loc);
        let prefix = alg.union_many(&[&id, &fence_po, &rel_poloc]);

        let po_fence = alg.ran(&ctx.po, &fences);
        let poloc_acq = alg.ran(&po_loc, &ctx.acquire);
        let suffix = alg.union_many(&[&id, &po_fence, &poloc_acq]);

        // Releasers/Acquirers: release writes or fences / acquire reads or
        // fences.
        let releasers = alg.set_union(&ctx.release, &fences);
        let acquirers = alg.set_union(&ctx.acquire, &fences);

        let rf_rmw = alg.union(&ctx.rf, &ctx.rmw);
        let chain = alg.tc(&rf_rmw);
        let mid = alg.seq(&prefix, &chain);
        let mid = alg.seq(&mid, &suffix);
        let mid = alg.dom(&releasers, &mid);
        let sync = alg.ran(&mid, &acquirers);

        let po_star = alg.rtc(&ctx.po);
        let hub = alg.union(sc, &sync);
        let t = alg.seq(&po_star, &hub);
        alg.seq(&t, &po_star)
    }

    /// The causality axiom body for a given `sc` orientation.
    pub fn causality_with_sc<A: RelAlg>(&self, alg: &mut A, ctx: &Ctx<A>, sc: &A::Rel) -> A::B {
        let cause = self.cause(alg, ctx, sc);
        let cause_tc = alg.tc(&cause);
        let com = ctx.com(alg);
        let com_star = alg.rtc(&com);
        let t = alg.seq(&com_star, &cause_tc);
        alg.irreflexive(&t)
    }
}

impl MemoryModel for Scc {
    fn name(&self) -> &'static str {
        "SCC"
    }

    fn axioms(&self) -> &'static [&'static str] {
        &["sc_per_loc", "no_thin_air", "rmw_atomicity", "causality"]
    }

    fn axiom<A: RelAlg>(&self, alg: &mut A, ctx: &Ctx<A>, axiom: &str) -> A::B {
        match axiom {
            "sc_per_loc" => {
                let com = ctx.com(alg);
                let pl = ctx.po_loc(alg);
                let u = alg.union(&com, &pl);
                alg.acyclic(&u)
            }
            "no_thin_air" => {
                let dep = ctx.dep(alg);
                let u = alg.union(&ctx.rf, &dep);
                alg.acyclic(&u)
            }
            "rmw_atomicity" => {
                let fr = ctx.fr(alg);
                let s = alg.seq(&fr, &ctx.co);
                let bad = alg.inter(&s, &ctx.rmw);
                alg.is_empty(&bad)
            }
            "causality" => {
                let sc = ctx.sc.clone();
                self.causality_with_sc(alg, ctx, &sc)
            }
            other => panic!("SCC has no axiom {other:?}"),
        }
    }

    fn check_specs(
        &self,
        test: &litsynth_litmus::LitmusTest,
        ctx: &Ctx<crate::alg::ConcreteAlg>,
    ) -> Vec<litsynth_litmus::AxiomSpec> {
        use litsynth_litmus::{AxiomSpec, RfPart, SpecKind};
        let mut alg = crate::alg::ConcreteAlg;
        vec![
            AxiomSpec {
                axiom: "sc_per_loc",
                kind: SpecKind::Closure,
                base: test.po_loc(),
                rf: RfPart::All,
            },
            // no_thin_air = acyclic(rf ∪ dep): co-free, so Static.
            // causality (with its existential sc order) and rmw_atomicity
            // are left to the extension backstop.
            AxiomSpec {
                axiom: "no_thin_air",
                kind: SpecKind::Static,
                base: ctx.dep(&mut alg),
                rf: RfPart::All,
            },
        ]
    }

    fn synthesis_axiom<A: RelAlg>(&self, alg: &mut A, ctx: &Ctx<A>, axiom: &str) -> A::B {
        if axiom != "causality" {
            return self.axiom(alg, ctx, axiom);
        }
        // Figure 19: with at most one `sc` edge, enumerate both orientations
        // — the outcome is valid if either orientation satisfies causality.
        let fwd = {
            let sc = ctx.sc.clone();
            self.causality_with_sc(alg, ctx, &sc)
        };
        let bwd = {
            let rev = alg.inv(&ctx.sc);
            self.causality_with_sc(alg, ctx, &rev)
        };
        alg.or(fwd, bwd)
    }

    fn fence_kinds(&self) -> &'static [FenceKind] {
        &[FenceKind::Full, FenceKind::AcqRel]
    }

    fn read_orders(&self) -> &'static [MemOrder] {
        &[MemOrder::Relaxed, MemOrder::Acquire]
    }

    fn write_orders(&self) -> &'static [MemOrder] {
        &[MemOrder::Relaxed, MemOrder::Release]
    }

    fn rmw_orders(&self) -> &'static [MemOrder] {
        &[MemOrder::Relaxed]
    }

    fn dep_kinds(&self) -> &'static [DepKind] {
        &[DepKind::Data]
    }

    fn uses_sc_order(&self) -> bool {
        true
    }

    fn fence_demotions(&self, kind: FenceKind) -> Vec<FenceKind> {
        match kind {
            FenceKind::Full => vec![FenceKind::AcqRel],
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::ConcreteAlg;
    use crate::ctx::concrete_ctx;
    use crate::model::RelaxKind;
    use crate::oracle;
    use litsynth_litmus::suites::classics;
    use litsynth_litmus::{Execution, FenceKind, Instr, LitmusTest};

    #[test]
    fn relaxed_behaviors_allowed() {
        let m = Scc::new();
        for (t, o) in [
            classics::mp(),
            classics::sb(),
            classics::lb(),
            classics::iriw(),
            classics::wrc(),
        ] {
            assert!(
                oracle::observable(&m, &t, &o),
                "{} allowed under SCC",
                t.name()
            );
        }
    }

    #[test]
    fn acquire_release_forbids_mp() {
        let m = Scc::new();
        let (t, o) = classics::mp_rel_acq();
        assert!(
            !oracle::observable(&m, &t, &o),
            "MP+rel+acq forbidden under SCC"
        );
        let (t, o) = classics::mp_rel2_acq2();
        assert!(!oracle::observable(&m, &t, &o), "the Figure 2 flavor too");
        // …but one-sided synchronization is not enough.
        let (t, o) = classics::mp_addr();
        assert!(oracle::observable(&m, &t, &o));
    }

    #[test]
    fn fence_sc_forbids_sb() {
        let m = Scc::new();
        let (t, o) = classics::sb_fences();
        assert!(
            !oracle::observable(&m, &t, &o),
            "SB+FenceSCs forbidden (Figure 18)"
        );
        // FenceAcqRel is too weak for SB.
        let t2 = LitmusTest::new(
            "SB+acqrel-fences",
            vec![
                vec![
                    Instr::store(0),
                    Instr::fence(FenceKind::AcqRel),
                    Instr::load(1),
                ],
                vec![
                    Instr::store(1),
                    Instr::fence(FenceKind::AcqRel),
                    Instr::load(0),
                ],
            ],
        );
        let o2 = classics::oc([(2, None), (5, None)], []);
        assert!(oracle::observable(&m, &t2, &o2));
    }

    #[test]
    fn acqrel_fences_forbid_mp() {
        let m = Scc::new();
        let (t, o) = classics::mp_fences(FenceKind::AcqRel, "MP+acqrel-fences");
        assert!(!oracle::observable(&m, &t, &o));
    }

    #[test]
    fn coherence_and_atomicity_hold() {
        let m = Scc::new();
        for (t, o) in [
            classics::corr(),
            classics::coww(),
            classics::corw(),
            classics::cowr(),
            classics::rmw_rmw(),
            classics::rmw_st(),
        ] {
            assert!(
                !oracle::observable(&m, &t, &o),
                "{} forbidden under SCC",
                t.name()
            );
        }
    }

    #[test]
    fn thin_air_needs_deps() {
        let m = Scc::new();
        let (t, o) = classics::lb();
        assert!(oracle::observable(&m, &t, &o), "plain LB allowed");
        let (t, o) = classics::lb_datas();
        assert!(!oracle::observable(&m, &t, &o), "LB+datas hits no_thin_air");
    }

    #[test]
    fn relaxation_row() {
        let r = Scc::new().relaxations();
        assert_eq!(
            r,
            vec![
                RelaxKind::Ri,
                RelaxKind::Drmw,
                RelaxKind::Df,
                RelaxKind::Dmo,
                RelaxKind::Rd
            ]
        );
    }

    #[test]
    fn dmo_ladder_skips_consume() {
        let m = Scc::new();
        let acq = Instr::load_ord(0, MemOrder::Acquire);
        assert_eq!(m.order_demotions(acq), vec![MemOrder::Relaxed]);
        let rel = Instr::store_ord(0, MemOrder::Release);
        assert_eq!(m.order_demotions(rel), vec![MemOrder::Relaxed]);
    }

    #[test]
    fn causality_depends_on_sc_orientation() {
        // For SB+FenceSCs, each sc orientation alone forbids the outcome —
        // but the *sets of executions* each allows differ (Figure 18/19).
        let m = Scc::new();
        let (t, o) = classics::sb_fences();
        let fences: Vec<usize> = (0..t.num_events())
            .filter(|&g| t.instr(g).is_fence())
            .collect();
        assert_eq!(fences.len(), 2);
        let mut alg = ConcreteAlg;
        let mut diff = false;
        for e in Execution::enumerate(&t) {
            if !o.matches(&e.outcome()) {
                continue;
            }
            let c1 = concrete_ctx(&t, &e, &[fences[0], fences[1]]);
            let c2 = concrete_ctx(&t, &e, &[fences[1], fences[0]]);
            let v1 = m.valid(&mut alg, &c1);
            let v2 = m.valid(&mut alg, &c2);
            diff |= v1 != v2;
            assert!(!v1 && !v2, "outcome stays forbidden either way");
        }
        let _ = diff;
    }
}
