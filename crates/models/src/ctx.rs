//! The execution context: every primitive set and relation an axiom may
//! consult, in either the concrete or the symbolic world.

use crate::alg::{CSet, ConcreteAlg, RelAlg};
use litsynth_litmus::{Execution, FenceKind, Instr, LitmusTest, MemOrder, Rel};

/// All primitive sets and relations describing one (concrete or symbolic)
/// execution of a litmus test.
///
/// Derived relations (`fr`, `po_loc`, `rfe`, fence orders, …) are computed
/// by methods so that perturbed contexts (see `litsynth-core`) rebuild them
/// from perturbed primitives, exactly as the paper's `_p` relations do.
#[derive(Debug)]
pub struct Ctx<A: RelAlg> {
    /// Number of events.
    pub n: usize,
    /// Read events (loads and RMWs).
    pub read: A::Set,
    /// Write events (stores and RMWs).
    pub write: A::Set,
    /// Full fences (`mfence`/`sync`/`FenceSC`).
    pub fence_full: A::Set,
    /// Lightweight fences (`lwsync`).
    pub fence_lw: A::Set,
    /// Acquire-release fences (`FenceAcqRel` / C11 acq_rel fences).
    pub fence_acqrel: A::Set,
    /// C11 acquire fences.
    pub fence_acq: A::Set,
    /// C11 release fences.
    pub fence_rel: A::Set,
    /// Events with acquire semantics on their read side
    /// (order ∈ {Acquire, AcqRel, SeqCst} on a read).
    pub acquire: A::Set,
    /// Events with release semantics on their write side.
    pub release: A::Set,
    /// Events annotated `seq_cst`.
    pub seqcst: A::Set,
    /// Events annotated `consume` (reads).
    pub consume: A::Set,
    /// Program order (transitive, intra-thread).
    pub po: A::Rel,
    /// Same-address pairs among memory accesses (symmetric, reflexive on
    /// accesses).
    pub loc: A::Rel,
    /// Reads-from.
    pub rf: A::Rel,
    /// Coherence (transitive, per address).
    pub co: A::Rel,
    /// Address dependencies.
    pub addr_dep: A::Rel,
    /// Data dependencies.
    pub data_dep: A::Rel,
    /// Control dependencies.
    pub ctrl_dep: A::Rel,
    /// Control+isync dependencies.
    pub ctrlisync_dep: A::Rel,
    /// RMW pairing (pair edges; single-instruction RMWs self-paired).
    pub rmw: A::Rel,
    /// The SCC `sc` total order over full fences (empty when unused).
    pub sc: A::Rel,
    /// Same-thread pairs (irreflexive).
    pub int: A::Rel,
    /// Different-thread pairs.
    pub ext: A::Rel,
    /// Reads whose value is *unconstrained* (RI removed their rf source,
    /// §4.3): they contribute no `fr` edges. Empty in concrete contexts.
    pub orphan: A::Set,
}

impl<A: RelAlg> Clone for Ctx<A> {
    fn clone(&self) -> Self {
        Ctx {
            n: self.n,
            read: self.read.clone(),
            write: self.write.clone(),
            fence_full: self.fence_full.clone(),
            fence_lw: self.fence_lw.clone(),
            fence_acqrel: self.fence_acqrel.clone(),
            fence_acq: self.fence_acq.clone(),
            fence_rel: self.fence_rel.clone(),
            acquire: self.acquire.clone(),
            release: self.release.clone(),
            seqcst: self.seqcst.clone(),
            consume: self.consume.clone(),
            po: self.po.clone(),
            loc: self.loc.clone(),
            rf: self.rf.clone(),
            co: self.co.clone(),
            addr_dep: self.addr_dep.clone(),
            data_dep: self.data_dep.clone(),
            ctrl_dep: self.ctrl_dep.clone(),
            ctrlisync_dep: self.ctrlisync_dep.clone(),
            rmw: self.rmw.clone(),
            sc: self.sc.clone(),
            int: self.int.clone(),
            ext: self.ext.clone(),
            orphan: self.orphan.clone(),
        }
    }
}

impl<A: RelAlg> Ctx<A> {
    /// `po_loc`: program order between same-address accesses.
    pub fn po_loc(&self, alg: &mut A) -> A::Rel {
        alg.inter(&self.po, &self.loc)
    }

    /// All dependency edges.
    pub fn dep(&self, alg: &mut A) -> A::Rel {
        alg.union_many(&[
            &self.addr_dep,
            &self.data_dep,
            &self.ctrl_dep,
            &self.ctrlisync_dep,
        ])
    }

    /// From-reads: `fr = (R <: loc :> W) − (rf⁻¹ ; co*⁻¹) − iden`, the
    /// paper's initial-write-aware formulation (Figure 4).
    pub fn fr(&self, alg: &mut A) -> A::Rel {
        let rw = {
            let d = alg.dom(&self.read, &self.loc);
            alg.ran(&d, &self.write)
        };
        let inv_rf = alg.inv(&self.rf);
        let co_star = alg.rtc(&self.co);
        let inv_co_star = alg.inv(&co_star);
        let covered = alg.seq(&inv_rf, &inv_co_star);
        let minus = alg.diff(&rw, &covered);
        let id = alg.iden(self.n);
        let fr = alg.diff(&minus, &id);
        // Orphaned reads (rf source removed by RI) are value-unconstrained:
        // they read neither the initial value nor any particular write, so
        // they impose no from-reads edges (§4.3).
        let orphan_rows = alg.dom(&self.orphan, &fr);
        alg.diff(&fr, &orphan_rows)
    }

    /// External restriction of a relation (cross-thread edges only).
    pub fn external(&self, alg: &mut A, r: &A::Rel) -> A::Rel {
        alg.inter(r, &self.ext)
    }

    /// Internal restriction.
    pub fn internal(&self, alg: &mut A, r: &A::Rel) -> A::Rel {
        alg.inter(r, &self.int)
    }

    /// External reads-from.
    pub fn rfe(&self, alg: &mut A) -> A::Rel {
        let rf = self.rf.clone();
        self.external(alg, &rf)
    }

    /// Internal reads-from.
    pub fn rfi(&self, alg: &mut A) -> A::Rel {
        let rf = self.rf.clone();
        self.internal(alg, &rf)
    }

    /// External coherence.
    pub fn coe(&self, alg: &mut A) -> A::Rel {
        let co = self.co.clone();
        self.external(alg, &co)
    }

    /// External from-reads.
    pub fn fre(&self, alg: &mut A) -> A::Rel {
        let fr = self.fr(alg);
        self.external(alg, &fr)
    }

    /// The set of fences of `kind`.
    pub fn fences_of(&self, kind: FenceKind) -> &A::Set {
        match kind {
            FenceKind::Full => &self.fence_full,
            FenceKind::Lightweight => &self.fence_lw,
            FenceKind::AcqRel => &self.fence_acqrel,
            FenceKind::Acquire => &self.fence_acq,
            FenceKind::Release => &self.fence_rel,
        }
    }

    /// The fence-order relation for `kind`: `(po :> F) ; po` — pairs
    /// separated by a fence of that kind (paper Figure 4's `fence`).
    pub fn fence_order(&self, alg: &mut A, kind: FenceKind) -> A::Rel {
        let to_fence = alg.ran(&self.po, self.fences_of(kind));
        alg.seq(&to_fence, &self.po)
    }

    /// `com` = rf ∪ co ∪ fr, the communication relation.
    pub fn com(&self, alg: &mut A) -> A::Rel {
        let fr = self.fr(alg);
        alg.union_many(&[&self.rf, &self.co, &fr])
    }
}

/// Builds the concrete context for one candidate execution.
///
/// `sc_order` supplies the SCC `sc` total order over full fences when the
/// model uses one (see `Scc`); pass `&[]` otherwise.
pub fn concrete_ctx(test: &LitmusTest, exec: &Execution, sc_order: &[usize]) -> Ctx<ConcreteAlg> {
    let n = test.num_events();
    let mut acquire = 0u64;
    let mut release = 0u64;
    let mut seqcst = 0u64;
    let mut consume = 0u64;
    let fence = |k: FenceKind| -> u64 {
        let mut m = 0;
        for g in 0..n {
            if matches!(test.instr(g), Instr::Fence { kind, .. } if kind == k) {
                m |= 1 << g;
            }
        }
        m
    };
    let fence_full = fence(FenceKind::Full);
    let fence_lw = fence(FenceKind::Lightweight);
    let fence_acqrel = fence(FenceKind::AcqRel);
    let fence_acq = fence(FenceKind::Acquire);
    let fence_rel = fence(FenceKind::Release);
    for g in 0..n {
        let i = test.instr(g);
        if let Some(ord) = i.order() {
            let read_side = i.is_read();
            let write_side = i.is_write();
            match ord {
                MemOrder::Relaxed => {}
                MemOrder::Consume => {
                    if read_side {
                        consume |= 1 << g;
                    }
                }
                MemOrder::Acquire => {
                    if read_side {
                        acquire |= 1 << g;
                    }
                }
                MemOrder::Release => {
                    if write_side {
                        release |= 1 << g;
                    }
                }
                MemOrder::AcqRel => {
                    if read_side {
                        acquire |= 1 << g;
                    }
                    if write_side {
                        release |= 1 << g;
                    }
                }
                MemOrder::SeqCst => {
                    seqcst |= 1 << g;
                    if read_side {
                        acquire |= 1 << g;
                    }
                    if write_side {
                        release |= 1 << g;
                    }
                }
            }
        }
    }

    let mut int = Rel::new(n);
    let mut ext = Rel::new(n);
    for i in 0..n {
        for j in 0..n {
            if i != j {
                if test.thread_of(i) == test.thread_of(j) {
                    int.add(i, j);
                } else {
                    ext.add(i, j);
                }
            }
        }
    }

    let mut sc = Rel::new(n);
    for i in 0..sc_order.len() {
        for j in (i + 1)..sc_order.len() {
            sc.add(sc_order[i], sc_order[j]);
        }
    }

    Ctx {
        n,
        read: CSet::new(n, test.read_mask()),
        write: CSet::new(n, test.write_mask()),
        fence_full: CSet::new(n, fence_full),
        fence_lw: CSet::new(n, fence_lw),
        fence_acqrel: CSet::new(n, fence_acqrel),
        fence_acq: CSet::new(n, fence_acq),
        fence_rel: CSet::new(n, fence_rel),
        acquire: CSet::new(n, acquire),
        release: CSet::new(n, release),
        seqcst: CSet::new(n, seqcst),
        consume: CSet::new(n, consume),
        po: test.po(),
        loc: test.same_addr(),
        rf: exec.rf_rel(n),
        co: exec.co_rel(n),
        addr_dep: test.dep_rel(&[litsynth_litmus::DepKind::Addr]),
        data_dep: test.dep_rel(&[litsynth_litmus::DepKind::Data]),
        ctrl_dep: test.dep_rel(&[litsynth_litmus::DepKind::Ctrl]),
        ctrlisync_dep: test.dep_rel(&[litsynth_litmus::DepKind::CtrlIsync]),
        rmw: test.rmw_rel(),
        sc,
        int,
        ext,
        orphan: CSet::new(n, 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use litsynth_litmus::suites::classics;

    #[test]
    fn concrete_fr_matches_execution_fr() {
        // On every candidate execution of several classic tests, the ctx's
        // algebraic `fr` must equal the direct enumeration `fr_rel`.
        let mut alg = ConcreteAlg;
        for (t, _) in [
            classics::mp(),
            classics::sb(),
            classics::corw(),
            classics::colb(),
        ] {
            for e in Execution::enumerate(&t) {
                let ctx = concrete_ctx(&t, &e, &[]);
                let algebraic = ctx.fr(&mut alg);
                let direct = e.fr_rel(&t);
                assert_eq!(algebraic, direct, "{} {:?}", t.name(), e);
            }
        }
    }

    #[test]
    fn acquire_release_sets() {
        let (t, _) = classics::mp_rel_acq();
        let e = &Execution::enumerate(&t)[0];
        let ctx = concrete_ctx(&t, e, &[]);
        assert_eq!(ctx.release.mask, 0b0010); // St.release y is gid 1
        assert_eq!(ctx.acquire.mask, 0b0100); // Ld.acquire y is gid 2
        assert_eq!(ctx.seqcst.mask, 0);
    }

    #[test]
    fn fence_order_spans_the_fence() {
        let (t, _) = classics::sb_fences();
        let e = &Execution::enumerate(&t)[0];
        let ctx = concrete_ctx(&t, e, &[]);
        let mut alg = ConcreteAlg;
        let fo = ctx.fence_order(&mut alg, FenceKind::Full);
        // St x (0) → Ld y (2) is fenced; so is St y (3) → Ld x (5).
        assert!(fo.contains(0, 2));
        assert!(fo.contains(3, 5));
        assert!(!fo.contains(0, 5));
        assert!(!fo.contains(2, 0));
    }

    #[test]
    fn int_ext_partition_non_diagonal() {
        let (t, _) = classics::wrc();
        let e = &Execution::enumerate(&t)[0];
        let ctx = concrete_ctx(&t, e, &[]);
        for i in 0..ctx.n {
            for j in 0..ctx.n {
                let in_int = ctx.int.contains(i, j);
                let in_ext = ctx.ext.contains(i, j);
                if i == j {
                    assert!(!in_int && !in_ext);
                } else {
                    assert!(in_int ^ in_ext);
                }
            }
        }
    }

    #[test]
    fn sc_order_becomes_total_order_rel() {
        let (t, _) = classics::sb_fences();
        let e = &Execution::enumerate(&t)[0];
        let ctx = concrete_ctx(&t, e, &[1, 4]);
        assert!(ctx.sc.contains(1, 4));
        assert!(!ctx.sc.contains(4, 1));
    }
}
