//! The polynomial consistency checker: model-aware driver over the
//! saturation core (`litsynth_litmus::check`).
//!
//! Where [`crate::oracle`] decides observability by enumerating every
//! candidate execution (factorial in same-address writes), this module
//! fixes rf from the outcome, *saturates* the coherence order with every
//! edge the model's axioms force, and only enumerates the linear
//! extensions of the forced partial order — usually exactly one, and zero
//! whenever saturation finds a violating cycle, which it reports as a
//! [`CycleWitness`].
//!
//! Exactness: saturation only adds edges whose reversal the model forbids,
//! and every surviving extension is re-validated by [`oracle::allows`], so
//! the verdict agrees with enumeration on every input regardless of how
//! much a model's `check_specs` chooses to saturate.

use crate::ctx::concrete_ctx;
use crate::model::MemoryModel;
use crate::oracle;
use litsynth_litmus::{check, CycleWitness, Execution, LitmusTest, Outcome};
use std::collections::BTreeMap;

/// The checker's answer for one (test, outcome, model) query.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// Some allowed execution matches the outcome.
    Consistent,
    /// No allowed execution matches; when saturation found an explicit
    /// violating cycle (rather than exhausting the extensions), it is
    /// attached.
    Inconsistent(Option<CycleWitness>),
}

impl Verdict {
    /// `true` for [`Verdict::Consistent`].
    pub fn is_consistent(&self) -> bool {
        matches!(self, Verdict::Consistent)
    }
}

/// Checks whether `outcome` is observable under `model`: is there an
/// allowed execution of `test` whose outcome matches?
///
/// Reads pinned by the outcome keep their source; unpinned reads are
/// enumerated (their source choice is the one residual exponential — in
/// practice outcomes pin every read). Finals seed the forced coherence:
/// the recorded final write is forced co-after every other same-address
/// write, which is part of outcome *matching*, not model validity.
pub fn check_outcome<M: MemoryModel>(model: &M, test: &LitmusTest, outcome: &Outcome) -> Verdict {
    let started = std::time::Instant::now();
    let verdict = check_outcome_inner(model, test, outcome);
    if std::env::var_os("LITSYNTH_TRACE").is_some() {
        eprintln!(
            "trace check {} model {} verdict {} in {:.1?}",
            test.name(),
            model.name(),
            match &verdict {
                Verdict::Consistent => "consistent",
                Verdict::Inconsistent(Some(w)) => &w.axiom,
                Verdict::Inconsistent(None) => "exhausted",
            },
            started.elapsed(),
        );
    }
    verdict
}

fn check_outcome_inner<M: MemoryModel>(model: &M, test: &LitmusTest, outcome: &Outcome) -> Verdict {
    // Outcome well-formedness: a malformed outcome matches no execution.
    let reads = test.reads();
    for (&r, &src) in &outcome.rf {
        if !reads.contains(&r) {
            return Verdict::Inconsistent(None);
        }
        if let Some(w) = src {
            let addr = test.instr(r).addr().expect("read has address");
            if w == r || !test.writes_to(addr).contains(&w) {
                return Verdict::Inconsistent(None);
            }
        }
    }
    let mut seed_co: Vec<(usize, usize)> = Vec::new();
    for (&a, &wf) in &outcome.finals {
        let ws = test.writes_to(a);
        if !ws.contains(&wf) {
            return Verdict::Inconsistent(None);
        }
        for &w in &ws {
            if w != wf {
                seed_co.push((w, wf));
            }
        }
    }

    // Unpinned reads: odometer over their candidate sources, last read
    // fastest (the enumeration order, so differential tests see identical
    // tie-breaking).
    let free: Vec<(usize, Vec<Option<usize>>)> = reads
        .iter()
        .filter(|r| !outcome.rf.contains_key(r))
        .map(|&r| {
            let addr = test.instr(r).addr().expect("read has address");
            let mut srcs: Vec<Option<usize>> = vec![None];
            for w in test.writes_to(addr) {
                if w != r {
                    srcs.push(Some(w));
                }
            }
            (r, srcs)
        })
        .collect();
    let mut idx = vec![0usize; free.len()];
    let mut first_witness: Option<CycleWitness> = None;
    loop {
        let mut rf: BTreeMap<usize, Option<usize>> = outcome.rf.clone();
        for ((r, srcs), &i) in free.iter().zip(&idx) {
            rf.insert(*r, srcs[i]);
        }
        match check_rf(model, test, &rf, &seed_co) {
            Ok(()) => return Verdict::Consistent,
            Err(w) => {
                if first_witness.is_none() {
                    first_witness = w;
                }
            }
        }
        // Advance the odometer.
        let mut carried = true;
        for (i, (_, srcs)) in idx.iter_mut().zip(&free).rev() {
            *i += 1;
            if *i < srcs.len() {
                carried = false;
                break;
            }
            *i = 0;
        }
        if carried {
            return Verdict::Inconsistent(first_witness);
        }
    }
}

/// One complete rf choice: saturate, then validate extensions. `Ok` means
/// some allowed execution realizes this rf (and the seeds); `Err` carries
/// the saturation cycle if there was one.
fn check_rf<M: MemoryModel>(
    model: &M,
    test: &LitmusTest,
    rf: &BTreeMap<usize, Option<usize>>,
    seed_co: &[(usize, usize)],
) -> Result<(), Option<CycleWitness>> {
    // Probe context: this rf, empty co. Spec bases may read rf-derived
    // relations (C11's hb) but never co.
    let probe = Execution {
        rf: rf.clone(),
        co: BTreeMap::new(),
    };
    let ctx = concrete_ctx(test, &probe, &[]);
    let specs = model.check_specs(test, &ctx);
    let forced = check::saturate(test, rf, &specs, seed_co).map_err(Some)?;
    let found = check::each_co_extension(test, &forced, &mut |co| {
        let e = Execution {
            rf: rf.clone(),
            co: co.clone(),
        };
        oracle::allows(model, test, &e)
    });
    if found {
        Ok(())
    } else {
        Err(None)
    }
}

/// Checks one fully explicit candidate execution: its own co is the seed,
/// so saturation degenerates to a single cycle check plus one
/// [`oracle::allows`] validation — but with a [`CycleWitness`] when the
/// model rejects it through a saturable axiom.
pub fn check_execution<M: MemoryModel>(model: &M, test: &LitmusTest, exec: &Execution) -> Verdict {
    let mut seed_co: Vec<(usize, usize)> = Vec::new();
    for order in exec.co.values() {
        for i in 0..order.len() {
            for j in (i + 1)..order.len() {
                seed_co.push((order[i], order[j]));
            }
        }
    }
    let ctx = concrete_ctx(
        test,
        &Execution {
            rf: exec.rf.clone(),
            co: BTreeMap::new(),
        },
        &[],
    );
    let specs = model.check_specs(test, &ctx);
    if let Err(w) = check::saturate(test, &exec.rf, &specs, &seed_co) {
        return Verdict::Inconsistent(Some(w));
    }
    if oracle::allows(model, test, exec) {
        Verdict::Consistent
    } else {
        Verdict::Inconsistent(None)
    }
}

/// `true` if some allowed execution matches `outcome` — the checker-backed
/// counterpart of [`oracle::observable`].
pub fn observable<M: MemoryModel>(model: &M, test: &LitmusTest, outcome: &Outcome) -> bool {
    check_outcome(model, test, outcome).is_consistent()
}

/// `true` if no allowed execution matches `outcome` — the checker-backed
/// counterpart of [`oracle::forbidden`].
pub fn forbidden<M: MemoryModel>(model: &M, test: &LitmusTest, outcome: &Outcome) -> bool {
    !observable(model, test, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c11::C11;
    use crate::sc::Sc;
    use crate::tso::Tso;
    use litsynth_litmus::suites::classics;

    #[test]
    fn mp_is_inconsistent_under_sc_with_witness() {
        let (t, o) = classics::mp();
        let v = check_outcome(&Sc::new(), &t, &o);
        let Verdict::Inconsistent(Some(w)) = v else {
            panic!("expected a cycle witness, got {v:?}");
        };
        assert!(
            w.axiom == "causality" || w.axiom == "sc_per_loc" || w.axiom == "co",
            "unexpected axiom {}",
            w.axiom
        );
        assert!(w.events.len() >= 2);
    }

    #[test]
    fn sb_is_consistent_under_tso() {
        let (t, o) = classics::sb();
        assert_eq!(check_outcome(&Tso::new(), &t, &o), Verdict::Consistent);
    }

    #[test]
    fn verdicts_match_oracle_on_classics() {
        let entries = [
            classics::mp(),
            classics::sb(),
            classics::lb(),
            classics::corr(),
            classics::coww(),
            classics::corw(),
            classics::cowr(),
            classics::rmw_rmw(),
        ];
        let sc = Sc::new();
        let tso = Tso::new();
        let c11 = C11::new();
        for (t, o) in &entries {
            assert_eq!(
                observable(&sc, t, o),
                oracle::observable(&sc, t, o),
                "{} under SC",
                t.name()
            );
            assert_eq!(
                observable(&tso, t, o),
                oracle::observable(&tso, t, o),
                "{} under TSO",
                t.name()
            );
            assert_eq!(
                observable(&c11, t, o),
                oracle::observable(&c11, t, o),
                "{} under C11",
                t.name()
            );
        }
    }

    #[test]
    fn malformed_outcomes_are_inconsistent() {
        let (t, _) = classics::mp();
        // gid 0 is a write, not a read.
        let o = Outcome::of([(0, None)], []);
        assert_eq!(
            check_outcome(&Sc::new(), &t, &o),
            Verdict::Inconsistent(None)
        );
        // final write must be a write to that address: gid 2 reads y.
        let o = Outcome::of([], [(litsynth_litmus::Addr(0), 2)]);
        assert_eq!(
            check_outcome(&Sc::new(), &t, &o),
            Verdict::Inconsistent(None)
        );
    }

    #[test]
    fn check_execution_agrees_with_allows_on_mp() {
        let (t, _) = classics::mp();
        let sc = Sc::new();
        for e in Execution::iter(&t) {
            let v = check_execution(&sc, &t, &e);
            assert_eq!(v.is_consistent(), oracle::allows(&sc, &t, &e), "exec {e:?}");
        }
    }
}
