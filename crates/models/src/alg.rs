//! The relational-algebra abstraction that lets each memory model be written
//! once and evaluated two ways.
//!
//! Axioms are generic over [`RelAlg`]. Instantiated with [`ConcreteAlg`]
//! they evaluate a fully known execution to a `bool` (the explicit oracle);
//! instantiated with [`SymAlg`] they build boolean circuits over a symbolic
//! execution (the SAT-based synthesis). Divergence between the two is
//! impossible by construction — there is only one definition of each model.

use litsynth_litmus::Rel;
use litsynth_relalg::{Bit, Circuit, Matrix1, Matrix2};

/// Bounded relational operations over booleans `B`, sets `Set`, and binary
/// relations `Rel`.
pub trait RelAlg {
    /// Truth values (bool or circuit bit).
    type B: Copy;
    /// Sets of events.
    type Set: Clone;
    /// Binary relations over events.
    type Rel: Clone;

    /// Constant true.
    fn tt(&self) -> Self::B;
    /// Constant false.
    fn ff(&self) -> Self::B;
    /// Conjunction.
    fn and(&mut self, a: Self::B, b: Self::B) -> Self::B;
    /// Disjunction.
    fn or(&mut self, a: Self::B, b: Self::B) -> Self::B;
    /// Negation.
    fn not(&mut self, a: Self::B) -> Self::B;
    /// Conjunction of many.
    fn and_many(&mut self, bs: Vec<Self::B>) -> Self::B {
        let mut acc = self.tt();
        for b in bs {
            acc = self.and(acc, b);
        }
        acc
    }
    /// Disjunction of many.
    fn or_many(&mut self, bs: Vec<Self::B>) -> Self::B {
        let mut acc = self.ff();
        for b in bs {
            acc = self.or(acc, b);
        }
        acc
    }

    /// The empty set over `n` events.
    fn empty_set(&self, n: usize) -> Self::Set;
    /// Set union.
    fn set_union(&mut self, a: &Self::Set, b: &Self::Set) -> Self::Set;
    /// Set intersection.
    fn set_inter(&mut self, a: &Self::Set, b: &Self::Set) -> Self::Set;
    /// Set difference.
    fn set_diff(&mut self, a: &Self::Set, b: &Self::Set) -> Self::Set;

    /// The empty relation over `n` events.
    fn empty_rel(&self, n: usize) -> Self::Rel;
    /// The identity relation.
    fn iden(&self, n: usize) -> Self::Rel;
    /// Relation union.
    fn union(&mut self, a: &Self::Rel, b: &Self::Rel) -> Self::Rel;
    /// Relation intersection.
    fn inter(&mut self, a: &Self::Rel, b: &Self::Rel) -> Self::Rel;
    /// Relation difference.
    fn diff(&mut self, a: &Self::Rel, b: &Self::Rel) -> Self::Rel;
    /// Relational composition `a ; b`.
    fn seq(&mut self, a: &Self::Rel, b: &Self::Rel) -> Self::Rel;
    /// Converse.
    fn inv(&mut self, a: &Self::Rel) -> Self::Rel;
    /// Transitive closure.
    fn tc(&mut self, a: &Self::Rel) -> Self::Rel;
    /// Reflexive-transitive closure.
    fn rtc(&mut self, a: &Self::Rel) -> Self::Rel;
    /// Domain restriction `s <: r`.
    fn dom(&mut self, s: &Self::Set, r: &Self::Rel) -> Self::Rel;
    /// Range restriction `r :> s`.
    fn ran(&mut self, r: &Self::Rel, s: &Self::Set) -> Self::Rel;
    /// Cross product `a -> b`.
    fn cross(&mut self, a: &Self::Set, b: &Self::Set) -> Self::Rel;
    /// The domain of a relation, as a set.
    fn dom_set(&mut self, r: &Self::Rel) -> Self::Set;
    /// The range of a relation, as a set.
    fn ran_set(&mut self, r: &Self::Rel) -> Self::Set;
    /// Acyclicity.
    fn acyclic(&mut self, r: &Self::Rel) -> Self::B;
    /// Irreflexivity.
    fn irreflexive(&mut self, r: &Self::Rel) -> Self::B;
    /// Emptiness (`no r`).
    fn is_empty(&mut self, r: &Self::Rel) -> Self::B;

    /// Structural equality, when decidable without solving: `Some(_)` in the
    /// concrete world, `None` symbolically. Fixpoint computations use this to
    /// stop early when they can.
    fn rel_eq(&self, a: &Self::Rel, b: &Self::Rel) -> Option<bool> {
        let _ = (a, b);
        None
    }

    /// Union of many relations.
    fn union_many(&mut self, rels: &[&Self::Rel]) -> Self::Rel {
        assert!(!rels.is_empty());
        let mut acc = rels[0].clone();
        for r in &rels[1..] {
            acc = self.union(&acc, r);
        }
        acc
    }
}

/// A concrete set: a bitmask over event ids, tagged with the carrier size.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CSet {
    /// Carrier size (number of events).
    pub n: usize,
    /// Membership bitmask.
    pub mask: u64,
}

impl CSet {
    /// Builds a set from a carrier size and bitmask.
    pub fn new(n: usize, mask: u64) -> CSet {
        CSet { n, mask }
    }
}

/// The concrete instantiation: everything is fully known.
#[derive(Clone, Copy, Default, Debug)]
pub struct ConcreteAlg;

impl RelAlg for ConcreteAlg {
    type B = bool;
    type Set = CSet;
    type Rel = Rel;

    fn tt(&self) -> bool {
        true
    }
    fn ff(&self) -> bool {
        false
    }
    fn and(&mut self, a: bool, b: bool) -> bool {
        a && b
    }
    fn or(&mut self, a: bool, b: bool) -> bool {
        a || b
    }
    fn not(&mut self, a: bool) -> bool {
        !a
    }

    fn empty_set(&self, n: usize) -> CSet {
        CSet::new(n, 0)
    }
    fn set_union(&mut self, a: &CSet, b: &CSet) -> CSet {
        debug_assert_eq!(a.n, b.n);
        CSet::new(a.n, a.mask | b.mask)
    }
    fn set_inter(&mut self, a: &CSet, b: &CSet) -> CSet {
        debug_assert_eq!(a.n, b.n);
        CSet::new(a.n, a.mask & b.mask)
    }
    fn set_diff(&mut self, a: &CSet, b: &CSet) -> CSet {
        debug_assert_eq!(a.n, b.n);
        CSet::new(a.n, a.mask & !b.mask)
    }

    fn empty_rel(&self, n: usize) -> Rel {
        Rel::new(n)
    }
    fn iden(&self, n: usize) -> Rel {
        Rel::identity(n)
    }
    fn union(&mut self, a: &Rel, b: &Rel) -> Rel {
        a.union(b)
    }
    fn inter(&mut self, a: &Rel, b: &Rel) -> Rel {
        a.intersect(b)
    }
    fn diff(&mut self, a: &Rel, b: &Rel) -> Rel {
        a.difference(b)
    }
    fn seq(&mut self, a: &Rel, b: &Rel) -> Rel {
        a.compose(b)
    }
    fn inv(&mut self, a: &Rel) -> Rel {
        a.transpose()
    }
    fn tc(&mut self, a: &Rel) -> Rel {
        a.transitive_closure()
    }
    fn rtc(&mut self, a: &Rel) -> Rel {
        a.reflexive_transitive_closure()
    }
    fn dom(&mut self, s: &CSet, r: &Rel) -> Rel {
        r.restrict(s.mask, u64::MAX)
    }
    fn ran(&mut self, r: &Rel, s: &CSet) -> Rel {
        r.restrict(u64::MAX, s.mask)
    }
    fn dom_set(&mut self, r: &Rel) -> CSet {
        let mut m = 0u64;
        for (i, _) in r.pairs() {
            m |= 1 << i;
        }
        CSet::new(r.len(), m)
    }
    fn ran_set(&mut self, r: &Rel) -> CSet {
        let mut m = 0u64;
        for (_, j) in r.pairs() {
            m |= 1 << j;
        }
        CSet::new(r.len(), m)
    }
    fn cross(&mut self, a: &CSet, b: &CSet) -> Rel {
        debug_assert_eq!(a.n, b.n);
        let mut r = Rel::new(a.n);
        for i in 0..a.n {
            if a.mask >> i & 1 == 1 {
                for j in 0..b.n {
                    if b.mask >> j & 1 == 1 {
                        r.add(i, j);
                    }
                }
            }
        }
        r
    }
    fn acyclic(&mut self, r: &Rel) -> bool {
        r.is_acyclic()
    }
    fn irreflexive(&mut self, r: &Rel) -> bool {
        r.is_irreflexive()
    }
    fn is_empty(&mut self, r: &Rel) -> bool {
        r.no_edges()
    }
    fn rel_eq(&self, a: &Rel, b: &Rel) -> Option<bool> {
        Some(a == b)
    }
}

/// The symbolic instantiation: operations build circuits.
#[derive(Debug, Default)]
pub struct SymAlg {
    /// The circuit being built.
    pub circuit: Circuit,
}

impl SymAlg {
    /// Creates an algebra with a fresh circuit.
    pub fn new() -> SymAlg {
        SymAlg {
            circuit: Circuit::new(),
        }
    }

    /// Wraps an existing circuit.
    pub fn from_circuit(circuit: Circuit) -> SymAlg {
        SymAlg { circuit }
    }

    /// Consumes the algebra, returning the built circuit.
    pub fn into_circuit(self) -> Circuit {
        self.circuit
    }
}

impl RelAlg for SymAlg {
    type B = Bit;
    type Set = Matrix1;
    type Rel = Matrix2;

    fn tt(&self) -> Bit {
        Circuit::TRUE
    }
    fn ff(&self) -> Bit {
        Circuit::FALSE
    }
    fn and(&mut self, a: Bit, b: Bit) -> Bit {
        self.circuit.and(a, b)
    }
    fn or(&mut self, a: Bit, b: Bit) -> Bit {
        self.circuit.or(a, b)
    }
    fn not(&mut self, a: Bit) -> Bit {
        a.not()
    }

    fn empty_set(&self, n: usize) -> Matrix1 {
        Matrix1::empty(n)
    }
    fn set_union(&mut self, a: &Matrix1, b: &Matrix1) -> Matrix1 {
        a.union(&mut self.circuit, b)
    }
    fn set_inter(&mut self, a: &Matrix1, b: &Matrix1) -> Matrix1 {
        a.intersect(&mut self.circuit, b)
    }
    fn set_diff(&mut self, a: &Matrix1, b: &Matrix1) -> Matrix1 {
        a.difference(&mut self.circuit, b)
    }

    fn empty_rel(&self, n: usize) -> Matrix2 {
        Matrix2::empty(n, n)
    }
    fn iden(&self, n: usize) -> Matrix2 {
        Matrix2::identity(n)
    }
    fn union(&mut self, a: &Matrix2, b: &Matrix2) -> Matrix2 {
        a.union(&mut self.circuit, b)
    }
    fn inter(&mut self, a: &Matrix2, b: &Matrix2) -> Matrix2 {
        a.intersect(&mut self.circuit, b)
    }
    fn diff(&mut self, a: &Matrix2, b: &Matrix2) -> Matrix2 {
        a.difference(&mut self.circuit, b)
    }
    fn seq(&mut self, a: &Matrix2, b: &Matrix2) -> Matrix2 {
        a.compose(&mut self.circuit, b)
    }
    fn inv(&mut self, a: &Matrix2) -> Matrix2 {
        a.transpose()
    }
    fn tc(&mut self, a: &Matrix2) -> Matrix2 {
        a.transitive_closure(&mut self.circuit)
    }
    fn rtc(&mut self, a: &Matrix2) -> Matrix2 {
        a.reflexive_transitive_closure(&mut self.circuit)
    }
    fn dom(&mut self, s: &Matrix1, r: &Matrix2) -> Matrix2 {
        r.restrict_domain(&mut self.circuit, s)
    }
    fn ran(&mut self, r: &Matrix2, s: &Matrix1) -> Matrix2 {
        r.restrict_range(&mut self.circuit, s)
    }
    fn cross(&mut self, a: &Matrix1, b: &Matrix1) -> Matrix2 {
        a.product(&mut self.circuit, b)
    }
    fn dom_set(&mut self, r: &Matrix2) -> Matrix1 {
        r.domain(&mut self.circuit)
    }
    fn ran_set(&mut self, r: &Matrix2) -> Matrix1 {
        r.range(&mut self.circuit)
    }
    fn acyclic(&mut self, r: &Matrix2) -> Bit {
        r.is_acyclic(&mut self.circuit)
    }
    fn irreflexive(&mut self, r: &Matrix2) -> Bit {
        r.is_irreflexive(&mut self.circuit)
    }
    fn is_empty(&mut self, r: &Matrix2) -> Bit {
        r.is_no(&mut self.circuit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use litsynth_relalg::Finder;

    /// The same generic computation must agree concretely and symbolically.
    fn check_both(edges: &[(usize, usize)], n: usize) {
        fn compute<A: RelAlg>(alg: &mut A, r: &A::Rel) -> A::B {
            let t = alg.tc(r);
            let sq = alg.seq(&t, &t);
            let u = alg.union(&t, &sq);
            alg.acyclic(&u)
        }
        let mut ca = ConcreteAlg;
        let cr = Rel::from_pairs(n, edges.iter().copied());
        let want = compute(&mut ca, &cr);

        let mut sr = Matrix2::empty(n, n);
        for &(i, j) in edges {
            sr.set(i, j, Circuit::TRUE);
        }
        let mut sa = SymAlg::new();
        let got_bit = compute(&mut sa, &sr);
        // With constant inputs the circuit folds to a constant.
        assert_eq!(got_bit == Circuit::TRUE, want);
        assert!(got_bit == Circuit::TRUE || got_bit == Circuit::FALSE);
    }

    #[test]
    fn concrete_and_symbolic_agree_on_constants() {
        check_both(&[(0, 1), (1, 2)], 3);
        check_both(&[(0, 1), (1, 0)], 2);
        check_both(&[], 3);
        check_both(&[(0, 0)], 1);
    }

    #[test]
    fn symbolic_acyclicity_is_solvable() {
        // Find a non-empty acyclic orientation of a free 3×3 relation.
        let mut alg = SymAlg::new();
        let r = Matrix2::free(&mut alg.circuit, 3, 3, "r");
        let ac = alg.acyclic(&r);
        let some = {
            let e = alg.is_empty(&r);
            alg.not(e)
        };
        let root = alg.and(ac, some);
        let circ = alg.into_circuit();
        let mut f = Finder::new(&circ);
        let inst = f.next_instance(&circ, &[root]).expect("exists");
        // Extract and verify concretely.
        let mut cr = Rel::new(3);
        for i in 0..3 {
            for j in 0..3 {
                if inst.eval(&circ, r.get(i, j)) {
                    cr.add(i, j);
                }
            }
        }
        assert!(cr.is_acyclic());
        assert!(!cr.no_edges());
    }

    #[test]
    fn concrete_set_ops() {
        let mut a = ConcreteAlg;
        let s1 = CSet::new(4, 0b0110);
        let s2 = CSet::new(4, 0b0011);
        assert_eq!(a.set_union(&s1, &s2).mask, 0b0111);
        assert_eq!(a.set_inter(&s1, &s2).mask, 0b0010);
        assert_eq!(a.set_diff(&s1, &s2).mask, 0b0100);
    }

    #[test]
    fn concrete_dom_ran_cross() {
        let mut a = ConcreteAlg;
        let r = Rel::from_pairs(3, [(0, 1), (1, 2)]);
        let d = a.dom(&CSet::new(3, 0b001), &r);
        assert!(d.contains(0, 1) && !d.contains(1, 2));
        let rr = a.ran(&r, &CSet::new(3, 0b100));
        assert!(rr.contains(1, 2) && !rr.contains(0, 1));
        let x = a.cross(&CSet::new(3, 0b001), &CSet::new(3, 0b110));
        assert_eq!(x.len(), 3);
        assert!(x.contains(0, 1) && x.contains(0, 2) && !x.contains(1, 2));
    }
}
