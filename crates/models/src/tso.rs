//! Total Store Order (SPARC / x86), the paper's Figure 4 formulation with
//! atomic read-modify-writes.

use crate::alg::RelAlg;
use crate::ctx::Ctx;
use crate::model::MemoryModel;
use litsynth_litmus::{FenceKind, MemOrder};

/// TSO: SC-per-location, RMW atomicity, and store-buffer causality.
///
/// ```text
/// acyclic(rf ∪ co ∪ fr ∪ po_loc)          -- sc_per_loc
/// no (fre ; coe) ∩ rmw                    -- rmw_atomicity
/// acyclic(rfe ∪ co ∪ fr ∪ ppo ∪ fence)    -- causality
///   where ppo = po − (W×R), fence = (po :> Fence) ; po
/// ```
#[derive(Clone, Copy, Default, Debug)]
pub struct Tso;

impl Tso {
    /// Creates the model.
    pub fn new() -> Tso {
        Tso
    }

    /// The rf/co-free parts of the causality union: `(ppo, fence, implied)`.
    ///
    /// ppo is program order minus write→read pairs (the store buffer's one
    /// relaxation); `fence` closes it around full fences; x86 locked
    /// instructions are serializing, so program order to and from an RMW
    /// event is preserved ("implied fences" in herd's x86 model — Figure 4
    /// elides this because it formalizes RMWs as load/store pairs whose
    /// load orders). Returned unmerged so the symbolic axiom keeps its
    /// original flat union (circuit-node order is part of the determinism
    /// contract: it fixes CNF variable numbering).
    fn causality_parts<A: RelAlg>(&self, alg: &mut A, ctx: &Ctx<A>) -> (A::Rel, A::Rel, A::Rel) {
        let wr = alg.cross(&ctx.write, &ctx.read);
        let ppo = alg.diff(&ctx.po, &wr);
        let fence = ctx.fence_order(alg, FenceKind::Full);
        let locked = {
            let d = alg.dom_set(&ctx.rmw);
            let r = alg.ran_set(&ctx.rmw);
            alg.set_union(&d, &r)
        };
        let implied_to = alg.ran(&ctx.po, &locked);
        let implied_from = alg.dom(&locked, &ctx.po);
        let implied = alg.union(&implied_to, &implied_from);
        (ppo, fence, implied)
    }

    /// `ppo ∪ fence ∪ implied`, merged — the saturation checker's
    /// causality base.
    pub fn causality_base<A: RelAlg>(&self, alg: &mut A, ctx: &Ctx<A>) -> A::Rel {
        let (ppo, fence, implied) = self.causality_parts(alg, ctx);
        alg.union_many(&[&ppo, &fence, &implied])
    }
}

impl MemoryModel for Tso {
    fn name(&self) -> &'static str {
        "TSO"
    }

    fn axioms(&self) -> &'static [&'static str] {
        &["sc_per_loc", "rmw_atomicity", "causality"]
    }

    fn axiom<A: RelAlg>(&self, alg: &mut A, ctx: &Ctx<A>, axiom: &str) -> A::B {
        match axiom {
            "sc_per_loc" => {
                let com = ctx.com(alg);
                let pl = ctx.po_loc(alg);
                let u = alg.union(&com, &pl);
                alg.acyclic(&u)
            }
            "rmw_atomicity" => {
                let fre = ctx.fre(alg);
                let coe = ctx.coe(alg);
                let seq = alg.seq(&fre, &coe);
                let bad = alg.inter(&seq, &ctx.rmw);
                alg.is_empty(&bad)
            }
            "causality" => {
                let (ppo, fence, implied) = self.causality_parts(alg, ctx);
                let rfe = ctx.rfe(alg);
                let fr = ctx.fr(alg);
                let u = alg.union_many(&[&rfe, &ctx.co, &fr, &ppo, &fence, &implied]);
                alg.acyclic(&u)
            }
            other => panic!("TSO has no axiom {other:?}"),
        }
    }

    fn check_specs(
        &self,
        test: &litsynth_litmus::LitmusTest,
        ctx: &Ctx<crate::alg::ConcreteAlg>,
    ) -> Vec<litsynth_litmus::AxiomSpec> {
        use litsynth_litmus::{AxiomSpec, RfPart, SpecKind};
        let mut alg = crate::alg::ConcreteAlg;
        vec![
            AxiomSpec {
                axiom: "sc_per_loc",
                kind: SpecKind::Closure,
                base: test.po_loc(),
                rf: RfPart::All,
            },
            // causality = acyclic(rfe ∪ co ∪ fr ∪ ppo ∪ fence ∪ implied):
            // only *external* rf joins the union. rmw_atomicity is not a
            // saturation shape; the extension backstop covers it.
            AxiomSpec {
                axiom: "causality",
                kind: SpecKind::Closure,
                base: self.causality_base(&mut alg, ctx),
                rf: RfPart::External,
            },
        ]
    }

    fn fence_kinds(&self) -> &'static [FenceKind] {
        &[FenceKind::Full]
    }

    fn rmw_orders(&self) -> &'static [MemOrder] {
        &[MemOrder::Relaxed]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::ConcreteAlg;
    use crate::ctx::concrete_ctx;
    use crate::model::RelaxKind;
    use litsynth_litmus::suites::classics;
    use litsynth_litmus::{Execution, LitmusTest, Outcome};

    fn observable(test: &LitmusTest, o: &Outcome) -> bool {
        let m = Tso::new();
        let mut alg = ConcreteAlg;
        Execution::enumerate(test)
            .iter()
            .any(|e| o.matches(&e.outcome()) && m.valid(&mut alg, &concrete_ctx(test, e, &[])))
    }

    #[test]
    fn sb_and_r_are_the_allowed_relaxations() {
        let (t, o) = classics::sb();
        assert!(observable(&t, &o), "SB is TSO's signature relaxation");
        let (t, o) = classics::r();
        assert!(observable(&t, &o), "R exercises the same W→R slack");
    }

    #[test]
    fn classic_forbidden_outcomes() {
        for (t, o) in [
            classics::mp(),
            classics::lb(),
            classics::s(),
            classics::two_plus_two_w(),
            classics::wrc(),
            classics::wwc(),
            classics::iriw(),
            classics::coiriw(),
            classics::sb_fences(),
            classics::sb_rmws(),
            classics::corr(),
            classics::coww(),
            classics::corw(),
            classics::cowr(),
            classics::colb(),
            classics::rmw_rmw(),
            classics::rmw_st(),
        ] {
            assert!(
                !observable(&t, &o),
                "{} must be forbidden under TSO",
                t.name()
            );
        }
    }

    #[test]
    fn rwc_split_by_fence() {
        let (t, o) = classics::rwc();
        assert!(observable(&t, &o), "RWC is allowed (W→R in thread 2)");
        let (t, o) = classics::rwc_fence();
        assert!(!observable(&t, &o), "RWC+fence closes the W→R slack");
    }

    #[test]
    fn one_fence_does_not_forbid_sb() {
        let (t, o) = classics::sb_one_fence();
        assert!(observable(&t, &o));
    }

    #[test]
    fn relaxation_row() {
        assert_eq!(
            Tso::new().relaxations(),
            vec![RelaxKind::Ri, RelaxKind::Drmw]
        );
    }

    #[test]
    fn per_axiom_verdicts_on_corw() {
        // CoRW violates sc_per_loc in every execution matching its outcome,
        // but some matching execution satisfies causality alone.
        let (t, o) = classics::corw();
        let m = Tso::new();
        let mut alg = ConcreteAlg;
        let mut sc_ok = false;
        let mut caus_ok = false;
        for e in Execution::enumerate(&t) {
            if !o.matches(&e.outcome()) {
                continue;
            }
            let ctx = concrete_ctx(&t, &e, &[]);
            sc_ok |= m.axiom(&mut alg, &ctx, "sc_per_loc");
            caus_ok |= m.axiom(&mut alg, &ctx, "causality");
        }
        assert!(!sc_ok, "CoRW violates sc_per_loc");
        // causality includes co∪fr∪rfe with ppo; for CoRW the cycle needs
        // po_loc which causality does not include wholesale — but the
        // outcome also violates causality? The interesting fact for the
        // suite split is just that sc_per_loc rejects it:
        let _ = caus_ok;
    }
}
