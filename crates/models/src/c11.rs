//! A C/C++11 memory-model fragment (§6.4), following the repaired
//! Batty-style axiomatization (coherence as `hb ; eco?` irreflexivity) with
//! initialization events elided — the same simplification the paper makes
//! "in order to scale more easily to larger tests".
//!
//! Out-of-thin-air is axiomatized via explicit dependencies (`acyclic(dep ∪
//! rf)`), mirroring the paper's observation that in software models RD
//! applies to no-thin-air axioms only; full OOTA remains an open problem the
//! paper (and we) sidestep.

use crate::alg::RelAlg;
use crate::ctx::Ctx;
use crate::model::MemoryModel;
use litsynth_litmus::{DepKind, FenceKind, MemOrder};

/// The C11 fragment.
///
/// ```text
/// irreflexive(hb ; eco?)                       -- coherence
/// no (fr ; co) ∩ rmw                           -- atomicity
/// acyclic(dep ∪ rf)                            -- no_thin_air
/// acyclic((hb ∪ co ∪ rf ∪ fr) ∩ SC×SC)         -- seq_cst
///   sw  = [REL ∪ Frel;po] ; rf ; [ACQ ∪ po;Facq]
///   hb  = (po ∪ sw)⁺,  eco = (rf ∪ co ∪ fr)⁺
/// ```
#[derive(Clone, Copy, Default, Debug)]
pub struct C11;

impl C11 {
    /// Creates the model.
    pub fn new() -> C11 {
        C11
    }

    /// Synchronizes-with: release writes (or writes after a release-ish
    /// fence) reading into acquire reads (or reads before an acquire-ish
    /// fence).
    pub fn sw<A: RelAlg>(&self, alg: &mut A, ctx: &Ctx<A>) -> A::Rel {
        // Fences with release semantics: release, acq_rel, seq_cst fences.
        let frel0 = alg.set_union(&ctx.fence_rel, &ctx.fence_acqrel);
        let frel = alg.set_union(&frel0, &ctx.fence_full);
        let facq0 = alg.set_union(&ctx.fence_acq, &ctx.fence_acqrel);
        let facq = alg.set_union(&facq0, &ctx.fence_full);

        let direct = {
            let d = alg.dom(&ctx.release, &ctx.rf);
            alg.ran(&d, &ctx.acquire)
        };
        let fence_pre = {
            let p = alg.dom(&frel, &ctx.po);
            let pr = alg.seq(&p, &ctx.rf);
            alg.ran(&pr, &ctx.acquire)
        };
        let fence_post = {
            let p = alg.ran(&ctx.po, &facq);
            let rp = alg.seq(&ctx.rf, &p);
            alg.dom(&ctx.release, &rp)
        };
        let fence_both = {
            let pre = alg.dom(&frel, &ctx.po);
            let post = alg.ran(&ctx.po, &facq);
            let t = alg.seq(&pre, &ctx.rf);
            alg.seq(&t, &post)
        };
        alg.union_many(&[&direct, &fence_pre, &fence_post, &fence_both])
    }

    /// Happens-before: `(po ∪ sw)⁺`.
    pub fn hb<A: RelAlg>(&self, alg: &mut A, ctx: &Ctx<A>) -> A::Rel {
        let sw = self.sw(alg, ctx);
        let u = alg.union(&ctx.po, &sw);
        alg.tc(&u)
    }
}

impl MemoryModel for C11 {
    fn name(&self) -> &'static str {
        "C11"
    }

    fn axioms(&self) -> &'static [&'static str] {
        &["coherence", "atomicity", "no_thin_air", "seq_cst"]
    }

    fn axiom<A: RelAlg>(&self, alg: &mut A, ctx: &Ctx<A>, axiom: &str) -> A::B {
        match axiom {
            "coherence" => {
                let hb = self.hb(alg, ctx);
                let com = ctx.com(alg);
                let eco = alg.tc(&com);
                let id = alg.iden(ctx.n);
                let eco_opt = alg.union(&eco, &id);
                let t = alg.seq(&hb, &eco_opt);
                alg.irreflexive(&t)
            }
            "atomicity" => {
                let fr = ctx.fr(alg);
                let s = alg.seq(&fr, &ctx.co);
                let bad = alg.inter(&s, &ctx.rmw);
                alg.is_empty(&bad)
            }
            "no_thin_air" => {
                let dep = ctx.dep(alg);
                let u = alg.union(&dep, &ctx.rf);
                alg.acyclic(&u)
            }
            "seq_cst" => {
                // RC11-style psc: SC accesses anchor directly; SC fences
                // anchor through happens-before.
                //   scb  = po ∪ po;hb;po ∪ (hb ∩ loc) ∪ co ∪ fr
                //   pre  = [SC] ∪ [F_sc];hb?     post = [SC] ∪ hb?;[F_sc]
                //   acyclic(pre ; scb ; post)
                let hb = self.hb(alg, ctx);
                let fr = ctx.fr(alg);
                let id = alg.iden(ctx.n);
                let hb_opt = alg.union(&hb, &id);
                let po_hb = alg.seq(&ctx.po, &hb);
                let po_hb_po = alg.seq(&po_hb, &ctx.po);
                let hb_loc = alg.inter(&hb, &ctx.loc);
                let scb = alg.union_many(&[&ctx.po, &po_hb_po, &hb_loc, &ctx.co, &fr]);
                let sc_id = alg.dom(&ctx.seqcst, &id);
                let fsc_hb = alg.dom(&ctx.fence_full, &hb_opt);
                let pre = alg.union(&sc_id, &fsc_hb);
                let hb_fsc = alg.ran(&hb_opt, &ctx.fence_full);
                let post = alg.union(&sc_id, &hb_fsc);
                let psc = {
                    let a = alg.seq(&pre, &scb);
                    alg.seq(&a, &post)
                };
                alg.acyclic(&psc)
            }
            other => panic!("C11 has no axiom {other:?}"),
        }
    }

    fn check_specs(
        &self,
        _test: &litsynth_litmus::LitmusTest,
        ctx: &Ctx<crate::alg::ConcreteAlg>,
    ) -> Vec<litsynth_litmus::AxiomSpec> {
        use litsynth_litmus::{AxiomSpec, RfPart, SpecKind};
        let mut alg = crate::alg::ConcreteAlg;
        vec![
            // coherence = irreflexive(hb ; eco?): hb depends on rf (via sw)
            // but never on co, so the probe context computes it exactly.
            AxiomSpec {
                axiom: "coherence",
                kind: SpecKind::OrderEco,
                base: self.hb(&mut alg, ctx),
                rf: RfPart::All,
            },
            // no_thin_air = acyclic(dep ∪ rf): no coherence in the union, so
            // it checks once and never forces.
            AxiomSpec {
                axiom: "no_thin_air",
                kind: SpecKind::Static,
                base: ctx.dep(&mut alg),
                rf: RfPart::All,
            },
            // atomicity and seq_cst are left to the extension backstop.
        ]
    }

    fn fence_kinds(&self) -> &'static [FenceKind] {
        &[
            FenceKind::Full,
            FenceKind::AcqRel,
            FenceKind::Acquire,
            FenceKind::Release,
        ]
    }

    fn read_orders(&self) -> &'static [MemOrder] {
        &[MemOrder::Relaxed, MemOrder::Acquire, MemOrder::SeqCst]
    }

    fn write_orders(&self) -> &'static [MemOrder] {
        &[MemOrder::Relaxed, MemOrder::Release, MemOrder::SeqCst]
    }

    fn rmw_orders(&self) -> &'static [MemOrder] {
        &[
            MemOrder::Relaxed,
            MemOrder::Acquire,
            MemOrder::Release,
            MemOrder::AcqRel,
            MemOrder::SeqCst,
        ]
    }

    fn dep_kinds(&self) -> &'static [DepKind] {
        &[DepKind::Data]
    }

    fn fence_demotions(&self, kind: FenceKind) -> Vec<FenceKind> {
        match kind {
            FenceKind::Full => vec![FenceKind::AcqRel],
            FenceKind::AcqRel => vec![FenceKind::Acquire, FenceKind::Release],
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::RelaxKind;
    use crate::oracle;
    use litsynth_litmus::suites::classics;
    use litsynth_litmus::{Instr, LitmusTest};

    #[test]
    fn relaxed_atomics_allow_the_classics() {
        let m = C11::new();
        for (t, o) in [
            classics::mp(),
            classics::sb(),
            classics::lb(),
            classics::iriw(),
        ] {
            assert!(
                oracle::observable(&m, &t, &o),
                "{} allowed with relaxed atomics",
                t.name()
            );
        }
    }

    #[test]
    fn release_acquire_forbids_mp() {
        let m = C11::new();
        let (t, o) = classics::mp_rel_acq();
        assert!(!oracle::observable(&m, &t, &o));
        let (t, o) = classics::mp_rel2_acq2();
        assert!(
            !oracle::observable(&m, &t, &o),
            "Figure 2's flavor is equally forbidden"
        );
    }

    #[test]
    fn seq_cst_forbids_sb() {
        let m = C11::new();
        let t = LitmusTest::new(
            "SB+scs",
            vec![
                vec![
                    Instr::store_ord(0, MemOrder::SeqCst),
                    Instr::load_ord(1, MemOrder::SeqCst),
                ],
                vec![
                    Instr::store_ord(1, MemOrder::SeqCst),
                    Instr::load_ord(0, MemOrder::SeqCst),
                ],
            ],
        );
        let o = classics::oc([(1, None), (3, None)], []);
        assert!(!oracle::observable(&m, &t, &o));
        // Release/acquire alone leaves SB observable.
        let t2 = LitmusTest::new(
            "SB+rel+acq",
            vec![
                vec![
                    Instr::store_ord(0, MemOrder::Release),
                    Instr::load_ord(1, MemOrder::Acquire),
                ],
                vec![
                    Instr::store_ord(1, MemOrder::Release),
                    Instr::load_ord(0, MemOrder::Acquire),
                ],
            ],
        );
        let o2 = classics::oc([(1, None), (3, None)], []);
        assert!(oracle::observable(&m, &t2, &o2));
    }

    #[test]
    fn coherence_holds_for_relaxed_atomics() {
        let m = C11::new();
        for (t, o) in [
            classics::corr(),
            classics::coww(),
            classics::corw(),
            classics::cowr(),
        ] {
            assert!(!oracle::observable(&m, &t, &o), "{} forbidden", t.name());
        }
    }

    #[test]
    fn fence_based_synchronization() {
        let m = C11::new();
        // MP with release/acquire *fences* around relaxed accesses.
        let t = LitmusTest::new(
            "MP+fence-rel+fence-acq",
            vec![
                vec![
                    Instr::store(0),
                    Instr::fence(FenceKind::Release),
                    Instr::store(1),
                ],
                vec![
                    Instr::load(1),
                    Instr::fence(FenceKind::Acquire),
                    Instr::load(0),
                ],
            ],
        );
        let o = classics::oc([(3, Some(2)), (5, None)], []);
        assert!(!oracle::observable(&m, &t, &o));
    }

    #[test]
    fn sc_fences_forbid_sb() {
        // SB with relaxed accesses and seq_cst *fences* — the psc anchors
        // through hb, so this must be forbidden too.
        let m = C11::new();
        let t = LitmusTest::new(
            "SB+sc-fences",
            vec![
                vec![
                    Instr::store(0),
                    Instr::fence(FenceKind::Full),
                    Instr::load(1),
                ],
                vec![
                    Instr::store(1),
                    Instr::fence(FenceKind::Full),
                    Instr::load(0),
                ],
            ],
        );
        let o = classics::oc([(2, None), (5, None)], []);
        assert!(!oracle::observable(&m, &t, &o));
        // …while acq_rel fences are not enough for SB.
        let t2 = LitmusTest::new(
            "SB+acqrel-fences",
            vec![
                vec![
                    Instr::store(0),
                    Instr::fence(FenceKind::AcqRel),
                    Instr::load(1),
                ],
                vec![
                    Instr::store(1),
                    Instr::fence(FenceKind::AcqRel),
                    Instr::load(0),
                ],
            ],
        );
        let o2 = classics::oc([(2, None), (5, None)], []);
        assert!(oracle::observable(&m, &t2, &o2));
    }

    #[test]
    fn psc_does_not_over_forbid_release_acquire() {
        // A single SC fence in one thread must not forbid SB.
        let m = C11::new();
        let t = LitmusTest::new(
            "SB+sc-fence+po",
            vec![
                vec![
                    Instr::store(0),
                    Instr::fence(FenceKind::Full),
                    Instr::load(1),
                ],
                vec![Instr::store(1), Instr::load(0)],
            ],
        );
        let o = classics::oc([(2, None), (4, None)], []);
        assert!(oracle::observable(&m, &t, &o));
    }

    #[test]
    fn no_thin_air_with_deps() {
        let m = C11::new();
        let (t, o) = classics::lb_datas();
        assert!(!oracle::observable(&m, &t, &o));
    }

    #[test]
    fn relaxation_row_is_the_widest() {
        let r = C11::new().relaxations();
        for k in [
            RelaxKind::Ri,
            RelaxKind::Drmw,
            RelaxKind::Df,
            RelaxKind::Dmo,
            RelaxKind::Rd,
        ] {
            assert!(r.contains(&k), "{k:?}");
        }
    }

    #[test]
    fn dmo_ladders() {
        let m = C11::new();
        assert_eq!(
            m.order_demotions(Instr::load_ord(0, MemOrder::SeqCst)),
            vec![MemOrder::Acquire]
        );
        assert_eq!(
            m.order_demotions(Instr::store_ord(0, MemOrder::SeqCst)),
            vec![MemOrder::Release]
        );
        let rmw_sc = Instr::Rmw {
            addr: litsynth_litmus::Addr(0),
            order: MemOrder::SeqCst,
            scope: litsynth_litmus::Scope::System,
        };
        assert_eq!(m.order_demotions(rmw_sc), vec![MemOrder::AcqRel]);
    }
}
