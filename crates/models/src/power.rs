//! The Power memory model of Alglave, Maranget & Tautschnig ("herding
//! cats", 2014) — the formulation the paper uses (Figure 15) — and its
//! ARMv7 variant (§6.2: broadly Power without `lwsync`).

use crate::alg::RelAlg;
use crate::ctx::Ctx;
use crate::model::MemoryModel;
use litsynth_litmus::{DepKind, FenceKind};

/// Power (or ARMv7 when built with [`Power::armv7`]).
///
/// Four axioms over the herding-cats derived relations:
///
/// ```text
/// acyclic(po_loc ∪ com)                    -- sc_per_loc (uniproc)
/// acyclic(ppo ∪ fences ∪ rfe)              -- no_thin_air
/// irreflexive(fre ; prop ; hb*)            -- observation
/// acyclic(co ∪ prop)                       -- propagation
/// ```
///
/// with `ppo` the fixed point of the four mutually recursive `ii/ic/ci/cc`
/// relations — the computational cost the paper's §6.2 calls out.
#[derive(Clone, Copy, Debug)]
pub struct Power {
    armv7: bool,
}

impl Default for Power {
    fn default() -> Self {
        Power::new()
    }
}

/// The derived relations an axiom needs; computed once per context.
struct Derived<A: RelAlg> {
    hb: A::Rel,
    prop: A::Rel,
}

impl Power {
    /// The Power model (with `lwsync`).
    pub fn new() -> Power {
        Power { armv7: false }
    }

    /// The ARMv7 variant: `dmb` only (no lightweight fence).
    pub fn armv7() -> Power {
        Power { armv7: true }
    }

    /// Preserved program order: the fixed point of the herding-cats
    /// `ii/ic/ci/cc` system, then `(R×R ∩ ii) ∪ (R×W ∩ ic)`.
    pub fn ppo<A: RelAlg>(&self, alg: &mut A, ctx: &Ctx<A>) -> A::Rel {
        self.ppo_with_rounds(alg, ctx, ctx.n + 2)
    }

    /// `ppo` with an explicit round bound (tests use a large bound to verify
    /// that `n + 2` rounds already reach the fixed point).
    pub fn ppo_with_rounds<A: RelAlg>(&self, alg: &mut A, ctx: &Ctx<A>, rounds: usize) -> A::Rel {
        let po_loc = ctx.po_loc(alg);
        let dp = alg.union(&ctx.addr_dep, &ctx.data_dep);
        let rfi = ctx.rfi(alg);
        let rfe = ctx.rfe(alg);
        let fre = ctx.fre(alg);
        let coe = ctx.coe(alg);
        // rdw: two po_loc reads seeing writes "the wrong way round";
        // detour: a write locally overtaken by an external write.
        let rdw = {
            let s = alg.seq(&fre, &rfe);
            alg.inter(&po_loc, &s)
        };
        let detour = {
            let s = alg.seq(&coe, &rfe);
            alg.inter(&po_loc, &s)
        };
        let addr_po = alg.seq(&ctx.addr_dep, &ctx.po);

        let ii0 = alg.union_many(&[&dp, &rdw, &rfi]);
        let ic0 = alg.empty_rel(ctx.n);
        let ci0 = alg.union(&ctx.ctrlisync_dep, &detour);
        let cc0 = alg.union_many(&[&dp, &po_loc, &ctx.ctrl_dep, &addr_po]);

        let mut ii = ii0.clone();
        let mut ic = ic0.clone();
        let mut ci = ci0.clone();
        let mut cc = cc0.clone();
        // The system is monotone; iterate simultaneously. `ii;ii` and
        // `cc;cc` double path lengths each round, so convergence needs only
        // logarithmically many rounds; n+2 is a safe overshoot at litmus
        // scale, and the concrete world stops as soon as nothing changes.
        for _ in 0..rounds {
            let ic_ci = alg.seq(&ic, &ci);
            let ii_ii = alg.seq(&ii, &ii);
            let ii2 = alg.union_many(&[&ii0, &ci, &ic_ci, &ii_ii]);

            let ic_cc = alg.seq(&ic, &cc);
            let ii_ic = alg.seq(&ii, &ic);
            let ic2 = alg.union_many(&[&ic0, &ii, &cc, &ic_cc, &ii_ic]);

            let ci_ii = alg.seq(&ci, &ii);
            let cc_ci = alg.seq(&cc, &ci);
            let ci2 = alg.union_many(&[&ci0, &ci_ii, &cc_ci]);

            let ci_ic = alg.seq(&ci, &ic);
            let cc_cc = alg.seq(&cc, &cc);
            let cc2 = alg.union_many(&[&cc0, &ci, &ci_ic, &cc_cc]);

            let stable = alg.rel_eq(&ii, &ii2) == Some(true)
                && alg.rel_eq(&ic, &ic2) == Some(true)
                && alg.rel_eq(&ci, &ci2) == Some(true)
                && alg.rel_eq(&cc, &cc2) == Some(true);
            ii = ii2;
            ic = ic2;
            ci = ci2;
            cc = cc2;
            if stable {
                break;
            }
        }

        let rr = alg.cross(&ctx.read, &ctx.read);
        let rw = alg.cross(&ctx.read, &ctx.write);
        let rr_ii = alg.inter(&rr, &ii);
        let rw_ic = alg.inter(&rw, &ic);
        alg.union(&rr_ii, &rw_ic)
    }

    /// The effective fence order: `sync` plus (on Power) `lwsync` minus its
    /// write→read blind spot.
    pub fn fences<A: RelAlg>(&self, alg: &mut A, ctx: &Ctx<A>) -> A::Rel {
        let ffence = ctx.fence_order(alg, FenceKind::Full);
        if self.armv7 {
            return ffence;
        }
        let lw = ctx.fence_order(alg, FenceKind::Lightweight);
        let wr = alg.cross(&ctx.write, &ctx.read);
        let lw_eff = alg.diff(&lw, &wr);
        alg.union(&ffence, &lw_eff)
    }

    fn derived<A: RelAlg>(&self, alg: &mut A, ctx: &Ctx<A>) -> Derived<A> {
        let ppo = self.ppo(alg, ctx);
        let fences = self.fences(alg, ctx);
        let rfe = ctx.rfe(alg);
        let hb = alg.union_many(&[&ppo, &fences, &rfe]);
        // prop-base = (fences ∪ rfe;fences) ; hb*
        let hb_star = alg.rtc(&hb);
        let rfe_f = alg.seq(&rfe, &fences);
        let base0 = alg.union(&fences, &rfe_f);
        let prop_base = alg.seq(&base0, &hb_star);
        // prop = (W×W ∩ prop-base) ∪ (com* ; prop-base* ; sync ; hb*)
        let ww = alg.cross(&ctx.write, &ctx.write);
        let chunk1 = alg.inter(&ww, &prop_base);
        let com = ctx.com(alg);
        let com_star = alg.rtc(&com);
        let pb_star = alg.rtc(&prop_base);
        let ffence = ctx.fence_order(alg, FenceKind::Full);
        let t1 = alg.seq(&com_star, &pb_star);
        let t2 = alg.seq(&t1, &ffence);
        let chunk2 = alg.seq(&t2, &hb_star);
        let prop = alg.union(&chunk1, &chunk2);
        Derived { hb, prop }
    }
}

impl MemoryModel for Power {
    fn name(&self) -> &'static str {
        if self.armv7 {
            "ARMv7"
        } else {
            "Power"
        }
    }

    fn axioms(&self) -> &'static [&'static str] {
        &["sc_per_loc", "no_thin_air", "observation", "propagation"]
    }

    fn axiom<A: RelAlg>(&self, alg: &mut A, ctx: &Ctx<A>, axiom: &str) -> A::B {
        match axiom {
            "sc_per_loc" => {
                let com = ctx.com(alg);
                let pl = ctx.po_loc(alg);
                let u = alg.union(&com, &pl);
                alg.acyclic(&u)
            }
            "no_thin_air" => {
                let d = self.derived(alg, ctx);
                alg.acyclic(&d.hb)
            }
            "observation" => {
                let d = self.derived(alg, ctx);
                let fre = ctx.fre(alg);
                let hb_star = alg.rtc(&d.hb);
                let t = alg.seq(&fre, &d.prop);
                let t = alg.seq(&t, &hb_star);
                alg.irreflexive(&t)
            }
            "propagation" => {
                let d = self.derived(alg, ctx);
                let u = alg.union(&ctx.co, &d.prop);
                alg.acyclic(&u)
            }
            other => panic!("Power has no axiom {other:?}"),
        }
    }

    fn fence_kinds(&self) -> &'static [FenceKind] {
        if self.armv7 {
            &[FenceKind::Full]
        } else {
            &[FenceKind::Full, FenceKind::Lightweight]
        }
    }

    fn dep_kinds(&self) -> &'static [DepKind] {
        &[
            DepKind::Addr,
            DepKind::Data,
            DepKind::Ctrl,
            DepKind::CtrlIsync,
        ]
    }

    fn fence_demotions(&self, kind: FenceKind) -> Vec<litsynth_litmus::FenceKind> {
        // DF on Power demotes the heavyweight sync to lwsync; lwsync has no
        // weaker fence (removal is RI's job). ARMv7 has only dmb.
        match kind {
            FenceKind::Full if !self.armv7 => vec![FenceKind::Lightweight],
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::ConcreteAlg;
    use crate::ctx::concrete_ctx;
    use crate::model::RelaxKind;
    use litsynth_litmus::suites::classics;
    use litsynth_litmus::{Execution, LitmusTest, Outcome};

    fn observable(test: &LitmusTest, o: &Outcome) -> bool {
        let m = Power::new();
        let mut alg = ConcreteAlg;
        Execution::enumerate(test)
            .iter()
            .any(|e| o.matches(&e.outcome()) && m.valid(&mut alg, &concrete_ctx(test, e, &[])))
    }

    #[test]
    fn power_allows_the_classic_relaxed_behaviors() {
        for (t, o) in [
            classics::mp(),
            classics::sb(),
            classics::lb(),
            classics::s(),
            classics::r(),
            classics::two_plus_two_w(),
            classics::wrc(),
            classics::iriw(),
            classics::rwc(),
            classics::wwc(),
            classics::isa2(),
            classics::mp_addr(), // reader-side dep alone is not enough
        ] {
            assert!(
                observable(&t, &o),
                "{} must be allowed under Power",
                t.name()
            );
        }
    }

    #[test]
    fn power_keeps_coherence() {
        for (t, o) in [
            classics::corr(),
            classics::coww(),
            classics::corw(),
            classics::cowr(),
            classics::colb(),
        ] {
            assert!(!observable(&t, &o), "{} must stay forbidden", t.name());
        }
    }

    #[test]
    fn fences_and_deps_forbid() {
        for (t, o) in [
            classics::sb_fences(),
            classics::mp_fences(FenceKind::Full, "MP+syncs"),
            classics::mp_fences(FenceKind::Lightweight, "MP+lwsyncs"),
            classics::mp_fence_addr(FenceKind::Lightweight, "MP+lwsync+addr"),
            classics::lb_addrs(),
            classics::lb_datas(),
            classics::isa2_sync_deps(),
        ] {
            assert!(
                !observable(&t, &o),
                "{} must be forbidden under Power",
                t.name()
            );
        }
    }

    #[test]
    fn lwsync_does_not_stop_sb() {
        // lwsync has no write→read power.
        let t = LitmusTest::new(
            "SB+lwsyncs",
            vec![
                vec![
                    litsynth_litmus::Instr::store(0),
                    litsynth_litmus::Instr::fence(FenceKind::Lightweight),
                    litsynth_litmus::Instr::load(1),
                ],
                vec![
                    litsynth_litmus::Instr::store(1),
                    litsynth_litmus::Instr::fence(FenceKind::Lightweight),
                    litsynth_litmus::Instr::load(0),
                ],
            ],
        );
        let o = classics::oc([(2, None), (5, None)], []);
        assert!(observable(&t, &o));
    }

    #[test]
    fn armv7_lacks_lwsync() {
        let a = Power::armv7();
        assert_eq!(a.name(), "ARMv7");
        assert_eq!(a.fence_kinds(), &[FenceKind::Full]);
        // DF needs ≥2 fence strengths.
        assert!(!a.relaxations().contains(&RelaxKind::Df));
        assert!(Power::new().relaxations().contains(&RelaxKind::Df));
    }

    #[test]
    fn ppo_fixed_iterations_match_true_fixpoint() {
        // For a batch of executions, iterating the ppo system until
        // stability (what ConcreteAlg's rel_eq enables) must equal a much
        // longer fixed-round iteration — guarding the symbolic bound.
        let m = Power::new();
        let mut alg = ConcreteAlg;
        for (t, _) in [
            classics::lb_addrs(),
            classics::isa2_sync_deps(),
            classics::wrc_deps(),
        ] {
            for e in Execution::enumerate(&t).into_iter().take(20) {
                let ctx = concrete_ctx(&t, &e, &[]);
                let fast = m.ppo(&mut alg, &ctx);
                // A far larger round budget must not add any edges.
                let slow = m.ppo_with_rounds(&mut alg, &ctx, 8 * ctx.n + 32);
                assert_eq!(fast, slow);
            }
        }
    }
}
