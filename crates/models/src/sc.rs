//! Sequential consistency (Lamport 1979).

use crate::alg::RelAlg;
use crate::ctx::Ctx;
use crate::model::MemoryModel;

/// The SC model: all communication and program order embed in one total
/// order, i.e. `acyclic(rf ∪ co ∪ fr ∪ po)`.
///
/// Only RI applies (Table 2): there are no fences, orders, dependencies, or
/// RMW primitives to weaken.
#[derive(Clone, Copy, Default, Debug)]
pub struct Sc;

impl Sc {
    /// Creates the model.
    pub fn new() -> Sc {
        Sc
    }
}

impl MemoryModel for Sc {
    fn name(&self) -> &'static str {
        "SC"
    }

    fn axioms(&self) -> &'static [&'static str] {
        &["sc_per_loc", "causality"]
    }

    fn axiom<A: RelAlg>(&self, alg: &mut A, ctx: &Ctx<A>, axiom: &str) -> A::B {
        match axiom {
            "sc_per_loc" => {
                let com = ctx.com(alg);
                let pl = ctx.po_loc(alg);
                let u = alg.union(&com, &pl);
                alg.acyclic(&u)
            }
            "causality" => {
                let com = ctx.com(alg);
                let u = alg.union(&com, &ctx.po);
                alg.acyclic(&u)
            }
            other => panic!("SC has no axiom {other:?}"),
        }
    }

    fn check_specs(
        &self,
        test: &litsynth_litmus::LitmusTest,
        _ctx: &Ctx<crate::alg::ConcreteAlg>,
    ) -> Vec<litsynth_litmus::AxiomSpec> {
        use litsynth_litmus::{AxiomSpec, RfPart, SpecKind};
        vec![
            AxiomSpec {
                axiom: "sc_per_loc",
                kind: SpecKind::Closure,
                base: test.po_loc(),
                rf: RfPart::All,
            },
            // causality = acyclic(com ∪ po): same shape with full po.
            AxiomSpec {
                axiom: "causality",
                kind: SpecKind::Closure,
                base: test.po(),
                rf: RfPart::All,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::ConcreteAlg;
    use crate::ctx::concrete_ctx;
    use litsynth_litmus::suites::classics;
    use litsynth_litmus::Execution;

    fn observable(test: &litsynth_litmus::LitmusTest, o: &litsynth_litmus::Outcome) -> bool {
        let sc = Sc::new();
        let mut alg = ConcreteAlg;
        Execution::enumerate(test)
            .iter()
            .any(|e| o.matches(&e.outcome()) && sc.valid(&mut alg, &concrete_ctx(test, e, &[])))
    }

    #[test]
    fn sc_forbids_all_classic_relaxations() {
        for (t, o) in [
            classics::mp(),
            classics::sb(),
            classics::lb(),
            classics::s(),
            classics::r(),
            classics::two_plus_two_w(),
            classics::wrc(),
            classics::iriw(),
            classics::corr(),
            classics::coww(),
            classics::corw(),
            classics::colb(),
        ] {
            assert!(
                !observable(&t, &o),
                "{} must be forbidden under SC",
                t.name()
            );
        }
    }

    #[test]
    fn sc_allows_benign_outcomes() {
        // MP with the message seen: r_y=1 ∧ r_x=1.
        let (t, _) = classics::mp();
        let o = classics::oc([(2, Some(1)), (3, Some(0))], []);
        assert!(observable(&t, &o));
        // And the all-zero pre-read.
        let o = classics::oc([(2, None), (3, None)], []);
        assert!(observable(&t, &o));
    }

    #[test]
    fn only_ri_applies() {
        use crate::model::RelaxKind;
        assert_eq!(Sc::new().relaxations(), vec![RelaxKind::Ri]);
    }
}
