//! The explicit-enumeration oracle: ground-truth legality by brute force.
//!
//! For litmus-scale tests, every candidate execution (and, for models with
//! an auxiliary `sc` order, every `sc` permutation) can be enumerated
//! outright. This is the reference semantics against which the SAT-based
//! synthesis is cross-validated, and it implements the *proper*
//! exists-forall reading of the paper's definitions that Figure 5c only
//! approximates.

use crate::alg::ConcreteAlg;
use crate::ctx::concrete_ctx;
use crate::model::MemoryModel;
use litsynth_litmus::{Execution, LitmusTest, Outcome};

/// All `sc` total orders the model needs to consider for `test`: the
/// permutations of its full fences, or just the empty order for models
/// without an auxiliary `sc`.
fn sc_orders<M: MemoryModel>(model: &M, test: &LitmusTest) -> Vec<Vec<usize>> {
    if !model.uses_sc_order() {
        return vec![Vec::new()];
    }
    let fences: Vec<usize> = (0..test.num_events())
        .filter(|&g| {
            matches!(
                test.instr(g),
                litsynth_litmus::Instr::Fence {
                    kind: litsynth_litmus::FenceKind::Full,
                    ..
                }
            )
        })
        .collect();
    permutations(&fences)
}

fn permutations(items: &[usize]) -> Vec<Vec<usize>> {
    if items.is_empty() {
        return vec![vec![]];
    }
    let mut out = Vec::new();
    for (i, &x) in items.iter().enumerate() {
        let mut rest = items.to_vec();
        rest.remove(i);
        for mut p in permutations(&rest) {
            p.insert(0, x);
            out.push(p);
        }
    }
    out
}

/// `true` if the model allows this candidate execution (for some `sc` order
/// where applicable — `sc` is auxiliary, hence existential, §4.3).
pub fn allows<M: MemoryModel>(model: &M, test: &LitmusTest, exec: &Execution) -> bool {
    let mut alg = ConcreteAlg;
    sc_orders(model, test)
        .iter()
        .any(|sc| model.valid(&mut alg, &concrete_ctx(test, exec, sc)))
}

/// `true` if some execution satisfying the single named `axiom` (for some
/// `sc` order) produces an outcome matching `outcome`.
pub fn observable_axiom<M: MemoryModel>(
    model: &M,
    axiom: &str,
    test: &LitmusTest,
    outcome: &Outcome,
) -> bool {
    let mut alg = ConcreteAlg;
    Execution::iter(test).any(|e| {
        outcome.matches(&e.outcome())
            && sc_orders(model, test)
                .iter()
                .any(|sc| model.axiom(&mut alg, &concrete_ctx(test, &e, sc), axiom))
    })
}

/// `true` if some fully-allowed execution produces an outcome matching
/// `outcome`.
pub fn observable<M: MemoryModel>(model: &M, test: &LitmusTest, outcome: &Outcome) -> bool {
    // Streaming: stop at the first allowed matching execution.
    Execution::iter(test).any(|e| outcome.matches(&e.outcome()) && allows(model, test, &e))
}

/// The outcome is forbidden: no allowed execution matches it.
pub fn forbidden<M: MemoryModel>(model: &M, test: &LitmusTest, outcome: &Outcome) -> bool {
    !observable(model, test, outcome)
}

/// All *distinct complete* outcomes of the test's candidate executions that
/// no allowed execution produces.
pub fn forbidden_outcomes<M: MemoryModel>(model: &M, test: &LitmusTest) -> Vec<Outcome> {
    let execs = Execution::enumerate(test);
    let mut outcomes: Vec<Outcome> = execs.iter().map(|e| e.outcome()).collect();
    outcomes.sort();
    outcomes.dedup();
    outcomes
        .into_iter()
        .filter(|o| {
            !execs
                .iter()
                .any(|e| o.matches(&e.outcome()) && allows(model, test, e))
        })
        .collect()
}

/// Outcomes forbidden by the single named axiom alone.
pub fn forbidden_outcomes_axiom<M: MemoryModel>(
    model: &M,
    axiom: &str,
    test: &LitmusTest,
) -> Vec<Outcome> {
    let execs = Execution::enumerate(test);
    let mut outcomes: Vec<Outcome> = execs.iter().map(|e| e.outcome()).collect();
    outcomes.sort();
    outcomes.dedup();
    outcomes
        .into_iter()
        .filter(|o| !observable_axiom(model, axiom, test, o))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sc::Sc;
    use crate::tso::Tso;
    use litsynth_litmus::suites::classics;

    #[test]
    fn forbidden_outcomes_of_mp_under_sc() {
        let (t, o) = classics::mp();
        let forb = forbidden_outcomes(&Sc::new(), &t);
        // Exactly the (r_y=1, r_x=0) outcome is forbidden (Figure 1).
        assert_eq!(forb.len(), 1);
        assert!(o.matches(&forb[0]));
    }

    #[test]
    fn sb_has_no_forbidden_outcome_under_tso() {
        let (t, _) = classics::sb();
        assert!(forbidden_outcomes(&Tso::new(), &t).is_empty());
    }

    #[test]
    fn per_axiom_forbidden_sets_union_to_model_set() {
        // Any outcome forbidden by a single axiom is forbidden by the whole
        // model (more axioms only shrink the allowed set).
        let m = Tso::new();
        for (t, _) in [classics::mp(), classics::corw(), classics::rmw_st()] {
            let whole = forbidden_outcomes(&m, &t);
            for ax in m.axioms() {
                for o in forbidden_outcomes_axiom(&m, ax, &t) {
                    assert!(
                        whole.contains(&o),
                        "{}: axiom {} forbids an outcome the model allows",
                        t.name(),
                        ax
                    );
                }
            }
        }
    }
}
