//! # litsynth-models
//!
//! Axiomatic memory-model definitions, written once against a relational
//! algebra abstraction and evaluated two ways:
//!
//! * **concretely** ([`ConcreteAlg`]) over fully known executions — the
//!   explicit-enumeration oracle in [`oracle`] and the polynomial
//!   saturation checker in [`check`];
//! * **symbolically** ([`SymAlg`]) over boolean-circuit relations — the
//!   SAT-based synthesis in `litsynth-core`.
//!
//! Bundled models: [`Sc`], [`Tso`] (paper Figure 4), [`Power`] and its
//! ARMv7 variant (Figure 15, herding-cats), [`Scc`] (Figure 17), and a
//! [`C11`] fragment (§6.4).
//!
//! # Example: is MP's weak outcome allowed?
//!
//! ```
//! use litsynth_models::{oracle, MemoryModel, Sc, Tso, Power};
//! use litsynth_litmus::suites::classics;
//!
//! let (mp, weak) = classics::mp();
//! assert!(oracle::forbidden(&Tso::new(), &mp, &weak));   // forbidden on TSO
//! assert!(oracle::observable(&Power::new(), &mp, &weak)); // allowed on Power
//! ```

mod alg;
mod c11;
mod ctx;
mod model;
mod power;
mod sc;
mod scc;
mod tso;

pub mod check;
pub mod oracle;

pub use alg::{CSet, ConcreteAlg, RelAlg, SymAlg};
pub use c11::C11;
pub use ctx::{concrete_ctx, Ctx};
pub use model::{MemoryModel, RelaxKind};
pub use power::Power;
pub use sc::Sc;
pub use scc::Scc;
pub use tso::Tso;
