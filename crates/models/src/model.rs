//! The memory-model abstraction and the instruction-relaxation vocabulary.

use crate::alg::{ConcreteAlg, RelAlg};
use crate::ctx::Ctx;
use litsynth_litmus::{
    AxiomSpec, DepKind, FenceKind, Instr, LitmusTest, MemOrder, RfPart, SpecKind,
};

/// The instruction-relaxation kinds of the paper's §3.2.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum RelaxKind {
    /// Remove Instruction.
    Ri,
    /// Decompose atomic read-modify-write.
    Drmw,
    /// Demote Fence strength.
    Df,
    /// Demote Memory Order.
    Dmo,
    /// Remove Dependency.
    Rd,
    /// Demote Scope.
    Ds,
}

impl RelaxKind {
    /// All six kinds, in the paper's order.
    pub const ALL: [RelaxKind; 6] = [
        RelaxKind::Ri,
        RelaxKind::Drmw,
        RelaxKind::Df,
        RelaxKind::Dmo,
        RelaxKind::Rd,
        RelaxKind::Ds,
    ];

    /// The paper's abbreviation.
    pub fn abbrev(self) -> &'static str {
        match self {
            RelaxKind::Ri => "RI",
            RelaxKind::Drmw => "DRMW",
            RelaxKind::Df => "DF",
            RelaxKind::Dmo => "DMO",
            RelaxKind::Rd => "RD",
            RelaxKind::Ds => "DS",
        }
    }
}

/// An axiomatic memory model, written once against [`RelAlg`] and therefore
/// evaluable both concretely (oracle) and symbolically (synthesis).
///
/// The vocabulary methods (`fence_kinds`, `read_orders`, …) tell the
/// synthesizer which instruction features exist in this model's ISA; the
/// relaxation methods encode the model's row of the paper's Table 2.
pub trait MemoryModel {
    /// Short display name (`"TSO"`, `"Power"`, …).
    fn name(&self) -> &'static str;

    /// The named axioms; each generates its own suite (§5.2).
    fn axioms(&self) -> &'static [&'static str];

    /// Evaluates one named axiom over an execution context.
    ///
    /// # Panics
    ///
    /// Panics if `axiom` is not one of [`MemoryModel::axioms`].
    fn axiom<A: RelAlg>(&self, alg: &mut A, ctx: &Ctx<A>, axiom: &str) -> A::B;

    /// Conjunction of all axioms: the model's validity predicate.
    fn valid<A: RelAlg>(&self, alg: &mut A, ctx: &Ctx<A>) -> A::B {
        let bs: Vec<A::B> = self
            .axioms()
            .iter()
            .map(|a| self.axiom(alg, ctx, a))
            .collect();
        alg.and_many(bs)
    }

    /// The axiom body the SAT-based synthesis uses. Defaults to
    /// [`MemoryModel::axiom`]; models with auxiliary relations override it
    /// to emulate enumeration (the paper's Figure 19 `sc`-reversal
    /// workaround in SCC).
    fn synthesis_axiom<A: RelAlg>(&self, alg: &mut A, ctx: &Ctx<A>, axiom: &str) -> A::B {
        self.axiom(alg, ctx, axiom)
    }

    /// Conjunction of all axioms in their synthesis form.
    fn synthesis_valid<A: RelAlg>(&self, alg: &mut A, ctx: &Ctx<A>) -> A::B {
        let bs: Vec<A::B> = self
            .axioms()
            .iter()
            .map(|a| self.synthesis_axiom(alg, ctx, a))
            .collect();
        alg.and_many(bs)
    }

    /// The saturation interface of this model's axioms for the polynomial
    /// consistency checker (`crate::check`): which acyclicity requirements
    /// can *force* coherence edges for a fixed rf choice.
    ///
    /// `ctx` is a probe context built from that rf choice with an **empty**
    /// coherence order — spec bases may depend on rf (C11's happens-before
    /// does) but must never read `ctx.co` or `ctx.fr`. The default covers
    /// every model with an `sc_per_loc` axiom (acyclic(po_loc ∪ com));
    /// models whose other axioms also admit saturation override and extend.
    /// Under-approximation is safe: the checker falls back to validating
    /// the linear extensions of whatever was forced.
    fn check_specs(&self, test: &LitmusTest, ctx: &Ctx<ConcreteAlg>) -> Vec<AxiomSpec> {
        let _ = ctx;
        let mut specs = Vec::new();
        if self.axioms().contains(&"sc_per_loc") {
            specs.push(AxiomSpec {
                axiom: "sc_per_loc",
                kind: SpecKind::Closure,
                base: test.po_loc(),
                rf: RfPart::All,
            });
        }
        specs
    }

    /// Fence kinds in this model's ISA.
    fn fence_kinds(&self) -> &'static [FenceKind] {
        &[]
    }

    /// Memory orders available on loads.
    fn read_orders(&self) -> &'static [MemOrder] {
        &[MemOrder::Relaxed]
    }

    /// Memory orders available on stores.
    fn write_orders(&self) -> &'static [MemOrder] {
        &[MemOrder::Relaxed]
    }

    /// Memory orders available on single-instruction RMWs (empty if the
    /// model has no single-instruction RMW primitive).
    fn rmw_orders(&self) -> &'static [MemOrder] {
        &[]
    }

    /// Dependency kinds the model gives semantics to.
    fn dep_kinds(&self) -> &'static [DepKind] {
        &[]
    }

    /// `true` if the model formalizes RMWs as adjacent load/store pairs.
    fn uses_rmw_pairs(&self) -> bool {
        false
    }

    /// `true` if the model needs the auxiliary `sc` total order over full
    /// fences (SCC, Figure 17).
    fn uses_sc_order(&self) -> bool {
        false
    }

    /// The model's applicable instruction relaxations (Table 2 row),
    /// restricted — as the paper's experiments are — to features the
    /// formalization actually exercises.
    fn relaxations(&self) -> Vec<RelaxKind> {
        let mut v = vec![RelaxKind::Ri];
        if !self.rmw_orders().is_empty() || self.uses_rmw_pairs() {
            v.push(RelaxKind::Drmw);
        }
        if self.fence_kinds().len() > 1 {
            v.push(RelaxKind::Df);
        }
        if self.read_orders().len() > 1 || self.write_orders().len() > 1 {
            v.push(RelaxKind::Dmo);
        }
        if !self.dep_kinds().is_empty() {
            v.push(RelaxKind::Rd);
        }
        v
    }

    /// One DF step for a fence of `kind`: the weaker kinds it may demote to
    /// (empty = DF inapplicable; removal is RI's job).
    fn fence_demotions(&self, kind: FenceKind) -> Vec<FenceKind> {
        let _ = kind;
        Vec::new()
    }

    /// One DMO step for `instr`: the weaker orders it may demote to within
    /// this model's vocabulary.
    ///
    /// Loads follow the chain `seq_cst > acquire > consume > relaxed`,
    /// stores `seq_cst > release > relaxed` (paper Table 1); orders absent
    /// from the model's vocabulary are skipped over. RMWs follow the full
    /// diamond, so `acq_rel` may demote to *either* `acquire` or `release`
    /// (§3.2's "multiple variants of DMO").
    fn order_demotions(&self, instr: Instr) -> Vec<MemOrder> {
        let Some(o) = instr.order() else {
            return Vec::new();
        };
        if instr.is_read() && instr.is_write() {
            // RMW: walk the demotion DAG, emitting the first orders (per
            // branch) that exist in the model's RMW vocabulary.
            let ladder = self.rmw_orders();
            let mut out = Vec::new();
            let mut frontier: Vec<MemOrder> = o.demotions().to_vec();
            while let Some(d) = frontier.pop() {
                if ladder.contains(&d) {
                    if !out.contains(&d) {
                        out.push(d);
                    }
                } else {
                    frontier.extend_from_slice(d.demotions());
                }
            }
            out.sort();
            out
        } else {
            let (chain, ladder): (&[MemOrder], &[MemOrder]) = if instr.is_read() {
                (
                    &[
                        MemOrder::SeqCst,
                        MemOrder::Acquire,
                        MemOrder::Consume,
                        MemOrder::Relaxed,
                    ],
                    self.read_orders(),
                )
            } else if instr.is_write() {
                (
                    &[MemOrder::SeqCst, MemOrder::Release, MemOrder::Relaxed],
                    self.write_orders(),
                )
            } else {
                return Vec::new();
            };
            let Some(pos) = chain.iter().position(|&c| c == o) else {
                return Vec::new();
            };
            chain[pos + 1..]
                .iter()
                .copied()
                .find(|d| ladder.contains(d))
                .into_iter()
                .collect()
        }
    }

    /// `true` if `instr` is part of this model's vocabulary (the synthesizer
    /// only emits well-formed tests; the oracle rejects ill-formed input).
    fn instr_wellformed(&self, instr: Instr) -> bool {
        match instr {
            Instr::Load { order, .. } => self.read_orders().contains(&order),
            Instr::Store { order, .. } => self.write_orders().contains(&order),
            Instr::Rmw { order, .. } => self.rmw_orders().contains(&order),
            Instr::Fence { kind, .. } => self.fence_kinds().contains(&kind),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abbrevs() {
        assert_eq!(RelaxKind::Ri.abbrev(), "RI");
        assert_eq!(RelaxKind::ALL.len(), 6);
    }
}
