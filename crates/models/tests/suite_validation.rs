//! Cross-validation: every status claimed by the reference suites must match
//! the corresponding model. This pins the suite encodings to the models
//! (and vice versa) — an error in either cannot survive `cargo test`.
//!
//! The verdict source is the polynomial saturation checker
//! (`litsynth_models::check`), not the enumeration oracle — the checker is
//! exact by construction (every surviving coherence extension is
//! re-validated), and running it here keeps the suite sweep fast as the
//! suites grow. Checker-vs-enumeration agreement itself is pinned by the
//! differential test in `litsynth-core`.

use litsynth_litmus::suites::{cambridge, classics, owens};
use litsynth_models::{check, Power, Sc, Tso};

#[test]
fn owens_suite_statuses_match_tso_checker() {
    let tso = Tso::new();
    let mut bad = Vec::new();
    for e in owens::suite() {
        let forbidden = check::forbidden(&tso, &e.test, &e.outcome);
        if forbidden != e.forbidden {
            bad.push(format!(
                "{}: claimed {} but checker says {}",
                e.test.name(),
                if e.forbidden { "forbidden" } else { "allowed" },
                if forbidden { "forbidden" } else { "allowed" },
            ));
        }
    }
    assert!(bad.is_empty(), "mismatches:\n{}", bad.join("\n"));
}

#[test]
fn cambridge_suite_statuses_match_power_checker() {
    let power = Power::new();
    let mut bad = Vec::new();
    for e in cambridge::suite() {
        let forbidden = check::forbidden(&power, &e.test, &e.outcome);
        if forbidden != e.forbidden {
            bad.push(format!(
                "{}: claimed {} but checker says {}",
                e.test.name(),
                if e.forbidden { "forbidden" } else { "allowed" },
                if forbidden { "forbidden" } else { "allowed" },
            ));
        }
    }
    assert!(bad.is_empty(), "mismatches:\n{}", bad.join("\n"));
}

#[test]
fn classic_tests_match_their_textbook_verdicts() {
    // The classics module ships constructors rather than a suite; pin the
    // canonical verdicts here through the checker: every classic weak
    // outcome is forbidden under SC, and TSO splits them on store-buffer
    // visibility.
    let sc = Sc::new();
    for (t, o) in [
        classics::mp(),
        classics::sb(),
        classics::lb(),
        classics::s(),
        classics::r(),
        classics::two_plus_two_w(),
        classics::wrc(),
        classics::iriw(),
        classics::corr(),
        classics::coww(),
        classics::corw(),
        classics::colb(),
    ] {
        assert!(
            check::forbidden(&sc, &t, &o),
            "{} must be forbidden under SC",
            t.name()
        );
    }
    let tso = Tso::new();
    for (t, o) in [classics::sb(), classics::r(), classics::rwc()] {
        assert!(
            check::observable(&tso, &t, &o),
            "{} is TSO's store-buffer relaxation",
            t.name()
        );
    }
    for (t, o) in [
        classics::mp(),
        classics::lb(),
        classics::sb_fences(),
        classics::rwc_fence(),
        classics::rmw_rmw(),
    ] {
        assert!(
            check::forbidden(&tso, &t, &o),
            "{} must be forbidden under TSO",
            t.name()
        );
    }
}
