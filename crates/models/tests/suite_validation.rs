//! Cross-validation: every status claimed by the reference suites must match
//! the corresponding model oracle. This pins the suite encodings to the
//! models (and vice versa) — an error in either cannot survive `cargo test`.

use litsynth_litmus::suites::{cambridge, owens};
use litsynth_models::{oracle, Power, Tso};

#[test]
fn owens_suite_statuses_match_tso_oracle() {
    let tso = Tso::new();
    let mut bad = Vec::new();
    for e in owens::suite() {
        let forbidden = oracle::forbidden(&tso, &e.test, &e.outcome);
        if forbidden != e.forbidden {
            bad.push(format!(
                "{}: claimed {} but oracle says {}",
                e.test.name(),
                if e.forbidden { "forbidden" } else { "allowed" },
                if forbidden { "forbidden" } else { "allowed" },
            ));
        }
    }
    assert!(bad.is_empty(), "mismatches:\n{}", bad.join("\n"));
}

#[test]
fn cambridge_suite_statuses_match_power_oracle() {
    let power = Power::new();
    let mut bad = Vec::new();
    for e in cambridge::suite() {
        let forbidden = oracle::forbidden(&power, &e.test, &e.outcome);
        if forbidden != e.forbidden {
            bad.push(format!(
                "{}: claimed {} but oracle says {}",
                e.test.name(),
                if e.forbidden { "forbidden" } else { "allowed" },
                if forbidden { "forbidden" } else { "allowed" },
            ));
        }
    }
    assert!(bad.is_empty(), "mismatches:\n{}", bad.join("\n"));
}
