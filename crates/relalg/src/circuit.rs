//! Hash-consed AND-inverter-graph (AIG) boolean circuits.
//!
//! Every boolean function is built from AND gates, inputs, and complemented
//! edges. Hash consing plus local constant folding keeps the circuits the
//! relational layer generates compact before they ever reach CNF.

use std::collections::HashMap;

/// A reference to a circuit node, with a complement flag in the low bit.
///
/// `Bit`s are created through [`Circuit`] methods; [`Circuit::TRUE`] and
/// [`Circuit::FALSE`] are the constants.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Bit(u32);

impl Bit {
    #[inline]
    pub(crate) fn node(self) -> usize {
        (self.0 >> 1) as usize
    }

    #[inline]
    pub(crate) fn is_negated(self) -> bool {
        self.0 & 1 == 1
    }

    #[inline]
    fn make(node: usize, neg: bool) -> Bit {
        Bit(((node as u32) << 1) | neg as u32)
    }

    /// The complement of this bit. Free: just flips the edge polarity.
    /// (Named `not` deliberately — `Bit` is a logic value, and callers read
    /// `b.not()` as negation; no `Not` impl exists to confuse it with.)
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn not(self) -> Bit {
        Bit(self.0 ^ 1)
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub(crate) enum Node {
    /// The constant true node (node 0 by convention).
    ConstTrue,
    /// An input variable, identified by a dense input index.
    Input(u32),
    /// Conjunction of two bits.
    And(Bit, Bit),
}

/// A boolean circuit builder with hash consing and constant folding.
#[derive(Clone, Debug)]
pub struct Circuit {
    nodes: Vec<Node>,
    dedup: HashMap<(Bit, Bit), u32>,
    inputs: Vec<String>,
}

impl Default for Circuit {
    fn default() -> Self {
        Circuit::new()
    }
}

impl Circuit {
    /// The constant-true bit.
    pub const TRUE: Bit = Bit(0);
    /// The constant-false bit.
    pub const FALSE: Bit = Bit(1);

    /// Creates a circuit containing only the constants.
    pub fn new() -> Circuit {
        Circuit {
            nodes: vec![Node::ConstTrue],
            dedup: HashMap::new(),
            inputs: Vec::new(),
        }
    }

    /// Allocates a fresh input (free variable). `name` is kept for debugging
    /// and instance display.
    pub fn input(&mut self, name: impl Into<String>) -> Bit {
        let idx = self.inputs.len() as u32;
        self.inputs.push(name.into());
        let node = self.nodes.len();
        self.nodes.push(Node::Input(idx));
        Bit::make(node, false)
    }

    /// Number of inputs allocated so far.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of nodes (constants + inputs + gates).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The debug name of input `idx`.
    pub fn input_name(&self, idx: usize) -> &str {
        &self.inputs[idx]
    }

    pub(crate) fn node(&self, i: usize) -> Node {
        self.nodes[i]
    }

    /// If `bit` is (possibly negated) input `i`, returns `(i, negated)`.
    pub fn as_input(&self, bit: Bit) -> Option<(usize, bool)> {
        match self.nodes[bit.node()] {
            Node::Input(i) => Some((i as usize, bit.is_negated())),
            _ => None,
        }
    }

    /// Conjunction with constant folding and hash consing.
    pub fn and(&mut self, a: Bit, b: Bit) -> Bit {
        if a == Self::FALSE || b == Self::FALSE || a == b.not() {
            return Self::FALSE;
        }
        if a == Self::TRUE {
            return b;
        }
        if b == Self::TRUE || a == b {
            return a;
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        if let Some(&n) = self.dedup.get(&(a, b)) {
            return Bit::make(n as usize, false);
        }
        let node = self.nodes.len();
        self.nodes.push(Node::And(a, b));
        self.dedup.insert((a, b), node as u32);
        Bit::make(node, false)
    }

    /// Disjunction, via De Morgan.
    pub fn or(&mut self, a: Bit, b: Bit) -> Bit {
        self.and(a.not(), b.not()).not()
    }

    /// Implication `a → b`.
    pub fn implies(&mut self, a: Bit, b: Bit) -> Bit {
        self.or(a.not(), b)
    }

    /// Exclusive or.
    pub fn xor(&mut self, a: Bit, b: Bit) -> Bit {
        let n1 = self.and(a, b.not());
        let n2 = self.and(a.not(), b);
        self.or(n1, n2)
    }

    /// Biconditional `a ↔ b`.
    pub fn iff(&mut self, a: Bit, b: Bit) -> Bit {
        self.xor(a, b).not()
    }

    /// If-then-else `c ? t : e`.
    pub fn ite(&mut self, c: Bit, t: Bit, e: Bit) -> Bit {
        let ct = self.and(c, t);
        let ce = self.and(c.not(), e);
        self.or(ct, ce)
    }

    /// Conjunction of many bits (balanced reduction).
    pub fn and_many<I: IntoIterator<Item = Bit>>(&mut self, bits: I) -> Bit {
        let mut layer: Vec<Bit> = bits.into_iter().collect();
        if layer.is_empty() {
            return Self::TRUE;
        }
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                next.push(if pair.len() == 2 {
                    self.and(pair[0], pair[1])
                } else {
                    pair[0]
                });
            }
            layer = next;
        }
        layer[0]
    }

    /// Disjunction of many bits (balanced reduction).
    pub fn or_many<I: IntoIterator<Item = Bit>>(&mut self, bits: I) -> Bit {
        let negs: Vec<Bit> = bits.into_iter().map(Bit::not).collect();
        self.and_many(negs).not()
    }

    /// At most one of `bits` is true (pairwise encoding — fine at our scales).
    pub fn at_most_one(&mut self, bits: &[Bit]) -> Bit {
        let mut conj = Vec::new();
        for i in 0..bits.len() {
            for j in (i + 1)..bits.len() {
                conj.push(self.and(bits[i], bits[j]).not());
            }
        }
        self.and_many(conj)
    }

    /// Exactly one of `bits` is true.
    pub fn exactly_one(&mut self, bits: &[Bit]) -> Bit {
        let some = self.or_many(bits.iter().copied());
        let amo = self.at_most_one(bits);
        self.and(some, amo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_folding() {
        let mut c = Circuit::new();
        let x = c.input("x");
        assert_eq!(c.and(x, Circuit::TRUE), x);
        assert_eq!(c.and(Circuit::TRUE, x), x);
        assert_eq!(c.and(x, Circuit::FALSE), Circuit::FALSE);
        assert_eq!(c.and(x, x), x);
        assert_eq!(c.and(x, x.not()), Circuit::FALSE);
        assert_eq!(c.or(x, x.not()), Circuit::TRUE);
        assert_eq!(Circuit::TRUE.not(), Circuit::FALSE);
    }

    #[test]
    fn hash_consing_dedupes() {
        let mut c = Circuit::new();
        let x = c.input("x");
        let y = c.input("y");
        let a = c.and(x, y);
        let b = c.and(y, x);
        assert_eq!(a, b);
        let n = c.num_nodes();
        let _ = c.and(x, y);
        assert_eq!(c.num_nodes(), n);
    }

    #[test]
    fn and_many_empty_is_true() {
        let mut c = Circuit::new();
        assert_eq!(c.and_many([]), Circuit::TRUE);
        assert_eq!(c.or_many([]), Circuit::FALSE);
    }

    /// Depth of the cone under `bit`, in AND gates.
    fn gate_depth(c: &Circuit, bit: Bit) -> usize {
        match c.node(bit.node()) {
            Node::ConstTrue | Node::Input(_) => 0,
            Node::And(a, b) => 1 + gate_depth(c, a).max(gate_depth(c, b)),
        }
    }

    /// Regression guard for the balanced `and_many`/`or_many` reductions:
    /// a left-fold over n fresh inputs would build a depth-(n-1) chain,
    /// while the balanced tree must stay at ⌈log₂ n⌉ depth with exactly
    /// n-1 gates. Tseitin depth and hash-consing hit rate both depend on
    /// this shape, so a silent revert to folding should fail loudly here.
    #[test]
    fn and_many_builds_balanced_trees_without_extra_nodes() {
        for n in [2usize, 3, 5, 8, 13, 32, 57] {
            let mut c = Circuit::new();
            let xs: Vec<Bit> = (0..n).map(|i| c.input(format!("x{i}"))).collect();
            let before = c.num_nodes();
            let root = c.and_many(xs.iter().copied());
            assert_eq!(c.num_nodes() - before, n - 1, "n={n}: n-1 AND gates");
            let want_depth = (usize::BITS - (n - 1).leading_zeros()) as usize; // ⌈log₂ n⌉
            assert_eq!(gate_depth(&c, root), want_depth, "n={n}: logarithmic depth");
            // or_many shares the shape (De Morgan over the same reduction).
            let mut c2 = Circuit::new();
            let ys: Vec<Bit> = (0..n).map(|i| c2.input(format!("y{i}"))).collect();
            let before = c2.num_nodes();
            let oroot = c2.or_many(ys.iter().copied());
            assert_eq!(c2.num_nodes() - before, n - 1, "n={n}: or gate count");
            assert_eq!(gate_depth(&c2, oroot), want_depth, "n={n}: or depth");
        }
        // Balanced halving also exposes shared subtrees to the hash-conser:
        // reducing the same prefix twice must reuse every gate.
        let mut c = Circuit::new();
        let xs: Vec<Bit> = (0..8).map(|i| c.input(format!("x{i}"))).collect();
        let _ = c.and_many(xs.iter().copied());
        let n = c.num_nodes();
        let _ = c.and_many(xs.iter().copied());
        assert_eq!(c.num_nodes(), n, "identical reduction is fully hash-consed");
    }

    #[test]
    fn exactly_one_semantics_exhaustive() {
        // Check exactly_one against all assignments of 3 inputs by evaluation.
        let mut c = Circuit::new();
        let xs = [c.input("a"), c.input("b"), c.input("c")];
        let f = c.exactly_one(&xs);
        for m in 0u32..8 {
            let vals = vec![(m & 1) != 0, (m & 2) != 0, (m & 4) != 0];
            let got = eval(&c, f, &vals);
            let want = vals.iter().filter(|&&b| b).count() == 1;
            assert_eq!(got, want, "assignment {vals:?}");
        }
    }

    #[test]
    fn ite_and_xor_semantics() {
        let mut c = Circuit::new();
        let xs = [c.input("c"), c.input("t"), c.input("e")];
        let f = c.ite(xs[0], xs[1], xs[2]);
        let g = c.xor(xs[0], xs[1]);
        for m in 0u32..8 {
            let vals = vec![(m & 1) != 0, (m & 2) != 0, (m & 4) != 0];
            assert_eq!(eval(&c, f, &vals), if vals[0] { vals[1] } else { vals[2] });
            assert_eq!(eval(&c, g, &vals), vals[0] ^ vals[1]);
        }
    }

    /// Direct recursive evaluation used by the tests.
    pub(crate) fn eval(c: &Circuit, bit: Bit, inputs: &[bool]) -> bool {
        let v = match c.node(bit.node()) {
            Node::ConstTrue => true,
            Node::Input(i) => inputs[i as usize],
            Node::And(a, b) => eval(c, a, inputs) && eval(c, b, inputs),
        };
        v ^ bit.is_negated()
    }
}
