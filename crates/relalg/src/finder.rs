//! CNF compilation (Tseitin) and instance enumeration.

use crate::circuit::{Bit, Circuit, Node};
use crate::compiled::CompiledCircuit;
use litsynth_sat::{
    BudgetedResult, ClauseExchange, Interrupt, Lit, NoExchange, SolveBudget, SolveResult, Solver,
    Var,
};

/// A satisfying assignment to the circuit inputs.
///
/// Inputs that never reached the solver (unconstrained) default to `false`,
/// which is always a legal completion.
#[derive(Clone, Debug)]
pub struct Instance {
    inputs: Vec<bool>,
}

impl Instance {
    /// The value of input `idx`.
    pub fn input(&self, idx: usize) -> bool {
        self.inputs.get(idx).copied().unwrap_or(false)
    }

    /// Evaluates an arbitrary circuit bit under this instance.
    pub fn eval(&self, c: &Circuit, bit: Bit) -> bool {
        let mut memo: Vec<Option<bool>> = vec![None; c.num_nodes()];
        self.eval_memo(c, bit, &mut memo)
    }

    /// Evaluates many bits, sharing the memo table.
    pub fn eval_many(&self, c: &Circuit, bits: &[Bit]) -> Vec<bool> {
        let mut memo: Vec<Option<bool>> = vec![None; c.num_nodes()];
        bits.iter()
            .map(|&b| self.eval_memo(c, b, &mut memo))
            .collect()
    }

    fn eval_memo(&self, c: &Circuit, bit: Bit, memo: &mut [Option<bool>]) -> bool {
        // Iterative DFS to avoid deep recursion on large circuits.
        let mut stack = vec![bit.node()];
        while let Some(&n) = stack.last() {
            if memo[n].is_some() {
                stack.pop();
                continue;
            }
            match c.node(n) {
                Node::ConstTrue => {
                    memo[n] = Some(true);
                    stack.pop();
                }
                Node::Input(i) => {
                    memo[n] = Some(self.input(i as usize));
                    stack.pop();
                }
                Node::And(a, b) => {
                    let (na, nb) = (a.node(), b.node());
                    match (memo[na], memo[nb]) {
                        (Some(va), Some(vb)) => {
                            let ra = va ^ a.is_negated();
                            let rb = vb ^ b.is_negated();
                            memo[n] = Some(ra && rb);
                            stack.pop();
                        }
                        (None, _) => stack.push(na),
                        (_, None) => stack.push(nb),
                    }
                }
            }
        }
        memo[bit.node()].expect("evaluated") ^ bit.is_negated()
    }
}

/// Translates circuit formulas to CNF and enumerates satisfying instances.
///
/// The typical enumeration loop is:
///
/// ```ignore
/// let mut finder = Finder::new(&circuit);
/// while let Some(inst) = finder.next_instance(&circuit, &asserts) {
///     /* extract a model instance */
///     finder.block(&circuit, &inst, &observable_bits);
/// }
/// ```
#[derive(Debug)]
pub struct Finder {
    solver: Solver,
    node_var: Vec<Option<Var>>,
    const_true: Option<Var>,
    input_of_var: Vec<Option<usize>>,
}

impl Finder {
    /// Creates a finder for (the current state of) `circuit`.
    ///
    /// The circuit may keep growing afterwards; translation is demand-driven.
    pub fn new(circuit: &Circuit) -> Finder {
        let _ = circuit;
        Finder {
            solver: Solver::new(),
            node_var: Vec::new(),
            const_true: None,
            input_of_var: Vec::new(),
        }
    }

    /// Creates a finder attached to a pre-compiled circuit.
    ///
    /// The CNF clauses stay in the compiled circuit's shared arena — only
    /// the node→variable maps are cloned — so a portfolio of workers pays
    /// the Tseitin transform once (see [`CompiledCircuit::compile`]) and
    /// each attach is cheap. The finder behaves exactly like one built with
    /// [`Finder::new`] afterwards: blocking clauses, incremental
    /// translation of uncompiled bits, and assumptions all work, privately
    /// per finder.
    pub fn attach(compiled: &CompiledCircuit) -> Finder {
        Finder {
            solver: Solver::attach_shared(compiled.cnf().clone()),
            node_var: compiled.node_var().to_vec(),
            const_true: compiled.const_true(),
            input_of_var: compiled.input_of_var().to_vec(),
        }
    }

    /// [`Finder::attach`], but via [`Solver::attach_shared_lazy`]: the
    /// arena's definitional layers (see
    /// [`CompiledCircuit::extend_definitional`]) stay dormant until this
    /// finder's assumptions, blocking clauses, or demand-translated bits
    /// reference one of their variables. Dormant cones cost no watchers
    /// and no propagation; activation only adds constraints the full
    /// formula already contains, so the enumerated instance set is
    /// identical to an eager attach.
    pub fn attach_lazy(compiled: &CompiledCircuit) -> Finder {
        Finder {
            solver: Solver::attach_shared_lazy(compiled.cnf().clone()),
            node_var: compiled.node_var().to_vec(),
            const_true: compiled.const_true(),
            input_of_var: compiled.input_of_var().to_vec(),
        }
    }

    /// Statistics from the underlying SAT solver.
    pub fn solver_stats(&self) -> litsynth_sat::SolverStats {
        self.solver.stats()
    }

    /// Seeds the solver's branching order with the cones of `roots`: every
    /// already-compiled variable reachable from them gets one initial
    /// activity bump. On a formula attached from a shared multi-query
    /// compilation this steers the first decisions into the cone *this*
    /// finder's query constrains instead of plain variable-index order
    /// (which would start in whatever layer was compiled first). Purely a
    /// search-order hint: the set of satisfying instances is untouched.
    pub fn warm<I: IntoIterator<Item = Bit>>(&mut self, c: &Circuit, roots: I) {
        let mut seen = vec![false; c.num_nodes().min(self.node_var.len())];
        let mut stack: Vec<usize> = roots
            .into_iter()
            .map(|b| b.node())
            .filter(|&n| n < seen.len())
            .collect();
        while let Some(n) = stack.pop() {
            if seen[n] {
                continue;
            }
            seen[n] = true;
            if let Some(v) = self.node_var[n] {
                self.solver.warm_var(v);
            }
            if let Node::And(a, b) = c.node(n) {
                for m in [a.node(), b.node()] {
                    if m < seen.len() && !seen[m] {
                        stack.push(m);
                    }
                }
            }
        }
    }

    /// Number of CNF variables allocated so far.
    pub fn num_cnf_vars(&self) -> usize {
        self.solver.num_vars()
    }

    /// Shared-arena layers this finder's solver has activated (all of
    /// them on an eager attach; see [`Finder::attach_lazy`]).
    pub fn active_layer_count(&self) -> usize {
        self.solver.active_layer_count()
    }

    /// CNF variables with watchers live (all of them on an eager attach;
    /// the demand-activated subset after [`Finder::attach_lazy`]).
    pub fn active_var_count(&self) -> usize {
        self.solver.active_var_count()
    }

    /// Declares the cone roots this finder is about to enumerate under
    /// (see [`litsynth_sat::Solver::declare_roots`]): on a lazily
    /// attached solver, activates the bits' defining cones now, so that
    /// pruning clauses seeded *before* the first solve — a vault fetch,
    /// an exchange drain — install immediately instead of passing
    /// through the shelve-and-replay path; and, when the decision domain
    /// is enabled ([`Finder::set_domain_enabled`]), rebuilds the local
    /// decision domain as this query's cone. No-op on an eager attach
    /// with the domain off.
    pub fn declare_roots(&mut self, c: &Circuit, bits: &[Bit]) {
        let lits: Vec<Lit> = bits.iter().map(|&b| self.lit_of(c, b)).collect();
        self.solver.declare_roots(lits);
    }

    /// Controls shelve-and-replay of exchange/vault imports over dormant
    /// cones (see [`litsynth_sat::Solver::set_shelving`]; default on).
    pub fn set_shelving(&mut self, on: bool) {
        self.solver.set_shelving(on);
    }

    /// Enables the two-level decision domain (see
    /// [`litsynth_sat::Solver::set_domain_enabled`]; default off): after
    /// the next [`Finder::declare_roots`], solves branch on the declared
    /// cone first and fall back to global VSIDS once it is exhausted.
    pub fn set_domain_enabled(&mut self, on: bool) {
        self.solver.set_domain_enabled(on);
    }

    /// Controls level-0 inprocessing of the solver's private clause
    /// database (see [`litsynth_sat::Solver::set_inprocessing`]; default
    /// on). Inprocessing only removes satisfied/subsumed clauses and false
    /// literals, so the enumerated instance set is unchanged either way.
    pub fn set_inprocessing(&mut self, on: bool) {
        self.solver.set_inprocessing(on);
    }

    /// Controls tiered learnt-clause retention (see
    /// [`litsynth_sat::Solver::set_tiered_retention`]; default on). `false`
    /// falls back to the legacy single-activity reduction policy. Retention
    /// only discards learnt clauses, so the enumerated instance set is
    /// unchanged either way.
    pub fn set_tiered_retention(&mut self, on: bool) {
        self.solver.set_tiered_retention(on);
    }

    /// Number of CNF clauses added so far.
    pub fn num_cnf_clauses(&self) -> usize {
        self.solver.num_clauses()
    }

    /// The CNF literal equivalent to `bit`, creating Tseitin definitions on
    /// demand.
    pub fn lit_of(&mut self, c: &Circuit, bit: Bit) -> Lit {
        if self.node_var.len() < c.num_nodes() {
            self.node_var.resize(c.num_nodes(), None);
        }
        // Iterative post-order translation.
        let mut stack = vec![bit.node()];
        while let Some(&n) = stack.last() {
            if self.node_var[n].is_some() {
                stack.pop();
                continue;
            }
            match c.node(n) {
                Node::ConstTrue => {
                    let v = *self.const_true.get_or_insert_with(|| {
                        let v = self.solver.new_var();
                        self.input_of_var.push(None);
                        self.solver.add_clause([Lit::pos(v)]);
                        v
                    });
                    self.node_var[n] = Some(v);
                    stack.pop();
                }
                Node::Input(i) => {
                    let v = self.solver.new_var();
                    self.input_of_var.push(Some(i as usize));
                    self.node_var[n] = Some(v);
                    stack.pop();
                }
                Node::And(a, b) => {
                    let (na, nb) = (a.node(), b.node());
                    if self.node_var[na].is_none() {
                        stack.push(na);
                        continue;
                    }
                    if self.node_var[nb].is_none() {
                        stack.push(nb);
                        continue;
                    }
                    let la = Lit::new(
                        self.node_var[na].expect("operand translated before its AND node"),
                        !a.is_negated(),
                    );
                    let lb = Lit::new(
                        self.node_var[nb].expect("operand translated before its AND node"),
                        !b.is_negated(),
                    );
                    let v = self.solver.new_var();
                    self.input_of_var.push(None);
                    // v ↔ la ∧ lb
                    self.solver.add_clause([Lit::neg(v), la]);
                    self.solver.add_clause([Lit::neg(v), lb]);
                    self.solver.add_clause([Lit::pos(v), !la, !lb]);
                    self.node_var[n] = Some(v);
                    stack.pop();
                }
            }
        }
        Lit::new(
            self.node_var[bit.node()].expect("root node translated by the post-order walk"),
            !bit.is_negated(),
        )
    }

    /// Finds the next instance satisfying all `asserts`, or `None`.
    ///
    /// The assertions are passed as solver assumptions, so they constrain
    /// only this call; blocking clauses added via [`Finder::block`] persist.
    pub fn next_instance(&mut self, c: &Circuit, asserts: &[Bit]) -> Option<Instance> {
        self.next_instance_exchanging(c, asserts, &mut NoExchange)
    }

    /// Allocates a fresh activation guard for one enumeration pass.
    ///
    /// A guard is a solver literal with no circuit meaning. Blocking
    /// clauses added under it ([`Finder::block_guarded`]) take the form
    /// `¬guard ∨ block`, so they constrain the search only while the guard
    /// is assumed — which the enumeration loop does by passing the guard in
    /// `extra` to [`Finder::next_instance_budgeted_assuming`]. Once a pass
    /// is over and its guard is never assumed again, its blocking clauses
    /// (and everything the solver derived from them, which necessarily
    /// carries `¬guard`) become inert, so the *same live solver* can serve
    /// a different query of the identical formula and still enumerate that
    /// query's full instance set — while keeping every clause it learnt
    /// from the formula alone. That is the whole point: incremental SAT
    /// across queries instead of a cold solver per query.
    pub fn new_guard(&mut self) -> Lit {
        let v = self.solver.new_var();
        self.input_of_var.push(None);
        Lit::pos(v)
    }

    /// Retires an activation guard that will never be assumed again: the
    /// unit clause `¬guard` is added, which satisfies — permanently, at
    /// level 0 — every blocking clause the guard enclosed and every learnt
    /// derived from them (all carry `¬guard`), so the next inprocessing
    /// pass physically purges them from a pooled solver instead of leaving
    /// them as inert dead weight. Sound because the guard variable occurs
    /// only negatively outside the finished pass's assumptions: asserting
    /// `¬guard` can satisfy clauses but never falsify one, and no future
    /// pass observes or assumes it.
    pub fn retire_guard(&mut self, guard: Lit) {
        self.solver.add_clause([!guard]);
    }

    /// [`Finder::next_instance_budgeted`] with extra assumption literals —
    /// typically one activation guard from [`Finder::new_guard`].
    pub fn next_instance_budgeted_assuming(
        &mut self,
        c: &Circuit,
        asserts: &[Bit],
        extra: &[Lit],
        exchange: &mut dyn ClauseExchange,
        budget: &SolveBudget,
    ) -> Result<Option<Instance>, Interrupt> {
        let Some(mut assumptions) = self.assumptions_for(c, asserts) else {
            return Ok(None);
        };
        assumptions.extend_from_slice(extra);
        self.solve_assuming(c, &assumptions, exchange, budget)
    }

    /// [`Finder::next_instance`] with learnt-clause exchange: the solver
    /// trades learnt clauses with portfolio peers through `exchange` at its
    /// restart boundaries. Imported clauses may only prune the search — the
    /// set of enumerated instances is unchanged as long as the exchange
    /// endpoint honors the soundness contract in
    /// [`litsynth_sat::ClauseExchange`].
    pub fn next_instance_exchanging(
        &mut self,
        c: &Circuit,
        asserts: &[Bit],
        exchange: &mut dyn ClauseExchange,
    ) -> Option<Instance> {
        match self.next_instance_budgeted(c, asserts, exchange, &SolveBudget::unlimited()) {
            Ok(r) => r,
            Err(i) => unreachable!("unlimited budget cannot interrupt, got {i:?}"),
        }
    }

    /// [`Finder::next_instance_exchanging`] under a [`SolveBudget`].
    ///
    /// `Ok(Some(inst))` is the next instance, `Ok(None)` means the query is
    /// exhausted, and `Err(interrupt)` means a budget, deadline,
    /// cancellation, or injected fault stopped the solve first. On `Err`
    /// the finder stays warm (blocking clauses and learnt clauses are
    /// kept), so the call can be retried with a larger budget.
    pub fn next_instance_budgeted(
        &mut self,
        c: &Circuit,
        asserts: &[Bit],
        exchange: &mut dyn ClauseExchange,
        budget: &SolveBudget,
    ) -> Result<Option<Instance>, Interrupt> {
        let Some(assumptions) = self.assumptions_for(c, asserts) else {
            return Ok(None);
        };
        self.solve_assuming(c, &assumptions, exchange, budget)
    }

    fn solve_assuming(
        &mut self,
        c: &Circuit,
        assumptions: &[Lit],
        exchange: &mut dyn ClauseExchange,
        budget: &SolveBudget,
    ) -> Result<Option<Instance>, Interrupt> {
        match self.solver.solve_budgeted(assumptions, exchange, budget) {
            BudgetedResult::Interrupted(i) => Err(i),
            BudgetedResult::Done(SolveResult::Unsat) => Ok(None),
            BudgetedResult::Done(SolveResult::Sat) => {
                let mut inputs = vec![false; c.num_inputs()];
                for (vi, &input) in self.input_of_var.iter().enumerate() {
                    if let Some(i) = input {
                        if let Some(val) = self.solver.value(Var::from_index(vi)) {
                            inputs[i] = val;
                        }
                    }
                }
                Ok(Some(Instance { inputs }))
            }
        }
    }

    /// Translates `asserts` to assumption literals; `None` if one of them
    /// is the constant false.
    fn assumptions_for(&mut self, c: &Circuit, asserts: &[Bit]) -> Option<Vec<Lit>> {
        let mut assumptions = Vec::with_capacity(asserts.len());
        for &a in asserts {
            if a == Circuit::FALSE {
                return None;
            }
            if a == Circuit::TRUE {
                continue;
            }
            assumptions.push(self.lit_of(c, a));
        }
        Some(assumptions)
    }

    /// Runs a short, conflict-bounded probing solve under `asserts`.
    ///
    /// Returns `Some(sat)` on a definitive answer, `None` when the budget
    /// ran out first. Either way the solver is left warm: its VSIDS
    /// activities ([`Finder::activity_of`]) reflect which variables drove
    /// the search, which is what adaptive cube selection ranks pin
    /// candidates by.
    pub fn probe(&mut self, c: &Circuit, asserts: &[Bit], max_conflicts: u64) -> Option<bool> {
        let Some(assumptions) = self.assumptions_for(c, asserts) else {
            return Some(false);
        };
        self.solver
            .solve_limited(&assumptions, max_conflicts)
            .map(SolveResult::is_sat)
    }

    /// The VSIDS activity of the CNF variable behind `bit` (0.0 for
    /// constants and for bits whose cone never conflicted).
    pub fn activity_of(&mut self, c: &Circuit, bit: Bit) -> f64 {
        if bit == Circuit::TRUE || bit == Circuit::FALSE {
            return 0.0;
        }
        let l = self.lit_of(c, bit);
        self.solver.activity(l.var())
    }

    /// Permanently excludes every instance that agrees with `inst` on all of
    /// the `observed` bits.
    pub fn block(&mut self, c: &Circuit, inst: &Instance, observed: &[Bit]) {
        self.block_guarded(c, inst, observed, None);
    }

    /// [`Finder::block`] under an activation guard: the blocking clause is
    /// `¬guard ∨ block`, active only while `guard` is assumed (see
    /// [`Finder::new_guard`]). `None` blocks unconditionally.
    pub fn block_guarded(
        &mut self,
        c: &Circuit,
        inst: &Instance,
        observed: &[Bit],
        guard: Option<Lit>,
    ) {
        let live: Vec<Bit> = observed
            .iter()
            .copied()
            .filter(|&b| b != Circuit::TRUE && b != Circuit::FALSE) // a constant can never differ
            .collect();
        // One shared-memo evaluation pass over all observed bits — the
        // bits share most of their cone, so per-bit eval would redo
        // O(bits × nodes) work on every blocked instance.
        let vals = inst.eval_many(c, &live);
        let mut clause = Vec::with_capacity(live.len() + 1);
        clause.extend(guard.map(|g| !g));
        for (&b, val) in live.iter().zip(vals) {
            let lit = self.lit_of(c, b);
            clause.push(if val { !lit } else { lit });
        }
        self.solver.add_clause(clause);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{Matrix1, Matrix2};

    #[test]
    fn sat_and_unsat_roots() {
        let mut c = Circuit::new();
        let x = c.input("x");
        let y = c.input("y");
        let both = c.and(x, y);
        let mut f = Finder::new(&c);
        let inst = f.next_instance(&c, &[both]).expect("x∧y is satisfiable");
        assert!(inst.eval(&c, x));
        assert!(inst.eval(&c, y));
        let contradiction = c.and(x, x.not());
        assert!(f.next_instance(&c, &[contradiction]).is_none());
    }

    #[test]
    fn constants_as_asserts() {
        let c = Circuit::new();
        let mut f = Finder::new(&c);
        assert!(f.next_instance(&c, &[Circuit::TRUE]).is_some());
        assert!(f.next_instance(&c, &[Circuit::FALSE]).is_none());
    }

    #[test]
    fn enumeration_counts_models() {
        // x ∨ y: 3 models over observed {x, y}.
        let mut c = Circuit::new();
        let x = c.input("x");
        let y = c.input("y");
        let root = c.or(x, y);
        let mut f = Finder::new(&c);
        let mut n = 0;
        while let Some(inst) = f.next_instance(&c, &[root]) {
            n += 1;
            f.block(&c, &inst, &[x, y]);
            assert!(n <= 3);
        }
        assert_eq!(n, 3);
    }

    #[test]
    fn blocking_on_derived_bits() {
        // Observe only x⊕y: two classes {same, different}.
        let mut c = Circuit::new();
        let x = c.input("x");
        let y = c.input("y");
        let obs = c.xor(x, y);
        let mut f = Finder::new(&c);
        let mut n = 0;
        while let Some(inst) = f.next_instance(&c, &[Circuit::TRUE]) {
            n += 1;
            f.block(&c, &inst, &[obs]);
            assert!(n <= 2);
        }
        assert_eq!(n, 2);
    }

    #[test]
    fn assumptions_do_not_persist_across_queries() {
        let mut c = Circuit::new();
        let x = c.input("x");
        let mut f = Finder::new(&c);
        assert!(f.next_instance(&c, &[x]).is_some());
        assert!(f.next_instance(&c, &[x.not()]).is_some());
        assert!(f.next_instance(&c, &[x]).is_some());
    }

    #[test]
    fn instance_eval_matches_solver() {
        let mut c = Circuit::new();
        let xs: Vec<Bit> = (0..4).map(|i| c.input(format!("x{i}"))).collect();
        let f1 = c.xor(xs[0], xs[1]);
        let f2 = c.ite(xs[2], f1, xs[3]);
        let root = c.and(f2, xs[0]);
        let mut f = Finder::new(&c);
        let inst = f.next_instance(&c, &[root]).expect("satisfiable");
        assert!(inst.eval(&c, root));
        assert!(inst.eval(&c, xs[0]));
    }

    #[test]
    fn count_permutation_matrices() {
        // Bijections on 3 atoms: 3! = 6.
        let mut c = Circuit::new();
        let r = Matrix2::free(&mut c, 3, 3, "r");
        let func = r.is_function(&mut c);
        let inj = r.is_injective(&mut c);
        let total: Vec<Bit> = (0..3)
            .map(|i| {
                let row: Vec<Bit> = (0..3).map(|j| r.get(i, j)).collect();
                c.or_many(row)
            })
            .collect();
        let all_total = c.and_many(total);
        let asserts = vec![func, inj, all_total];
        let observed: Vec<Bit> = (0..3)
            .flat_map(|i| (0..3).map(move |j| (i, j)))
            .map(|(i, j)| r.get(i, j))
            .collect();
        let mut f = Finder::new(&c);
        let mut n = 0;
        while let Some(inst) = f.next_instance(&c, &asserts) {
            n += 1;
            f.block(&c, &inst, &observed);
            assert!(n <= 6);
        }
        assert_eq!(n, 6);
    }

    #[test]
    fn interrupted_enumeration_resumes_without_losing_instances() {
        // An expired deadline interrupts before any search; retrying with
        // no budget must then enumerate exactly the clean-run instances.
        let mut c = Circuit::new();
        let x = c.input("x");
        let y = c.input("y");
        let root = c.or(x, y);
        let expired = SolveBudget {
            deadline: Some(std::time::Instant::now()),
            ..SolveBudget::default()
        };
        let mut f = Finder::new(&c);
        let mut n = 0;
        let mut interrupts = 0;
        loop {
            // First try under the expired deadline: always interrupted.
            match f.next_instance_budgeted(&c, &[root], &mut NoExchange, &expired) {
                Err(Interrupt::Deadline) => interrupts += 1,
                other => panic!("expected deadline interrupt, got {other:?}"),
            }
            // Retry without a budget: the finder stayed warm.
            match f.next_instance(&c, &[root]) {
                None => break,
                Some(inst) => {
                    n += 1;
                    f.block(&c, &inst, &[x, y]);
                    assert!(n <= 3);
                }
            }
        }
        assert_eq!(n, 3, "interrupts must not lose or duplicate instances");
        assert_eq!(interrupts, 4);
    }

    #[test]
    fn finder_and_instance_are_send() {
        // The parallel synthesis engine moves a private Finder (and its
        // enumerated Instances) into each worker thread.
        fn assert_send<T: Send>() {}
        assert_send::<Finder>();
        assert_send::<Instance>();
        assert_send::<Circuit>();
    }

    #[test]
    fn cube_assumptions_partition_the_model_count() {
        // Pinning a set of observed bits to every boolean pattern splits
        // one enumeration into disjoint subqueries: the per-cube model
        // counts must sum to the unpartitioned count exactly.
        let build = || {
            let mut c = Circuit::new();
            let xs: Vec<Bit> = (0..5).map(|i| c.input(format!("x{i}"))).collect();
            // x0 ∨ x1 ∨ (x2 ∧ x3): 5 free-ish bits, a non-trivial count.
            let a = c.and(xs[2], xs[3]);
            let b = c.or(xs[0], xs[1]);
            let root = c.or(a, b);
            (c, xs, root)
        };
        let count = |mk_pins: &dyn Fn(&[Bit]) -> Vec<Bit>| {
            let (c, xs, root) = build();
            let mut f = Finder::new(&c);
            let mut asserts = vec![root];
            asserts.extend(mk_pins(&xs));
            let mut n = 0;
            while let Some(inst) = f.next_instance(&c, &asserts) {
                n += 1;
                f.block(&c, &inst, &xs);
                assert!(n <= 32);
            }
            n
        };
        let total = count(&|_| Vec::new());
        assert_eq!(total, 26, "6 of 32 assignments falsify the root");
        for bits in 1..=3usize {
            let mut sum = 0;
            for cube in 0..(1usize << bits) {
                sum += count(&|xs: &[Bit]| {
                    (0..bits)
                        .map(|j| {
                            if cube >> j & 1 == 1 {
                                xs[j]
                            } else {
                                xs[j].not()
                            }
                        })
                        .collect()
                });
            }
            assert_eq!(sum, total, "cube split over {bits} bit(s)");
        }
    }

    #[test]
    fn attached_finder_enumerates_like_a_fresh_one() {
        // The compile-once path must reproduce the demand-driven path
        // class for class, including blocking on derived (non-input) bits.
        let mut c = Circuit::new();
        let xs: Vec<Bit> = (0..5).map(|i| c.input(format!("x{i}"))).collect();
        let a = c.and(xs[2], xs[3]);
        let b = c.or(xs[0], xs[1]);
        let root = c.or(a, b);
        let obs = vec![xs[0], xs[1], a];
        let enumerate = |mut f: Finder| {
            let mut seen = Vec::new();
            while let Some(inst) = f.next_instance(&c, &[root]) {
                seen.push(inst.eval_many(&c, &obs));
                f.block(&c, &inst, &obs);
                assert!(seen.len() <= 8);
            }
            seen.sort();
            seen
        };
        let fresh = enumerate(Finder::new(&c));
        let compiled = CompiledCircuit::compile(&c, [root].into_iter().chain(obs.clone()));
        let attached = enumerate(Finder::attach(&compiled));
        // A second attach is independent of the first one's blocking.
        let attached2 = enumerate(Finder::attach(&compiled));
        assert_eq!(fresh, attached);
        assert_eq!(fresh, attached2);
    }

    #[test]
    fn attached_cubes_partition_like_fresh_cubes() {
        let mut c = Circuit::new();
        let xs: Vec<Bit> = (0..5).map(|i| c.input(format!("x{i}"))).collect();
        let a = c.and(xs[2], xs[3]);
        let b = c.or(xs[0], xs[1]);
        let root = c.or(a, b);
        let compiled = CompiledCircuit::compile(&c, [root].into_iter().chain(xs.iter().copied()));
        let count = |pins: &[Bit]| {
            let mut f = Finder::attach(&compiled);
            let mut asserts = vec![root];
            asserts.extend_from_slice(pins);
            let mut n = 0;
            while let Some(inst) = f.next_instance(&c, &asserts) {
                n += 1;
                f.block(&c, &inst, &xs);
                assert!(n <= 32);
            }
            n
        };
        let total = count(&[]);
        assert_eq!(total, 26);
        let split: usize = (0..4usize)
            .map(|cube| {
                let pins: Vec<Bit> = (0..2)
                    .map(|j| {
                        if cube >> j & 1 == 1 {
                            xs[j]
                        } else {
                            xs[j].not()
                        }
                    })
                    .collect();
                count(&pins)
            })
            .sum();
        assert_eq!(split, total);
    }

    #[test]
    fn one_live_solver_serves_consecutive_guarded_enumerations() {
        // The solver-pool contract: one finder, attached once, runs many
        // enumeration passes in sequence — same query or different queries
        // over the same formula — each pass under its own activation
        // guard. Every pass must see the full class set, because earlier
        // passes' blocking clauses are guarded and inert once their guard
        // is no longer assumed. Learnt clauses survive between passes;
        // they are formula-implied, so they may only prune.
        let mut c = Circuit::new();
        let xs: Vec<Bit> = (0..5).map(|i| c.input(format!("x{i}"))).collect();
        let a = c.and(xs[2], xs[3]);
        let b = c.or(xs[0], xs[1]);
        let root = c.or(a, b);
        let roots: Vec<Bit> = [root, a, b].into_iter().chain(xs.iter().copied()).collect();
        let compiled = CompiledCircuit::compile(&c, roots);
        let mut f = Finder::attach(&compiled);
        let queries: [(&[Bit], usize); 4] = [
            (&[root], 26),   // 6 of 32 assignments falsify the root
            (&[a], 8),       // x2 ∧ x3 pinned
            (&[root], 26),   // the first query again: nothing leaked
            (&[b.not()], 8), // ¬(x0 ∨ x1)
        ];
        for (pass, &(asserts, expected)) in queries.iter().enumerate() {
            let guard = f.new_guard();
            f.warm(&c, asserts.iter().copied());
            let mut n = 0;
            loop {
                let got = f
                    .next_instance_budgeted_assuming(
                        &c,
                        asserts,
                        &[guard],
                        &mut NoExchange,
                        &SolveBudget::unlimited(),
                    )
                    .expect("unlimited budget never interrupts");
                let Some(inst) = got else { break };
                n += 1;
                f.block_guarded(&c, &inst, &xs, Some(guard));
                assert!(n <= 32);
            }
            assert_eq!(n, expected, "pass {pass} must enumerate its full set");
        }
    }

    #[test]
    fn probe_warms_activities_deterministically() {
        let mut c = Circuit::new();
        let r = Matrix2::free(&mut c, 4, 4, "r");
        let func = r.is_function(&mut c);
        let inj = r.is_injective(&mut c);
        let obs: Vec<Bit> = (0..4)
            .flat_map(|i| (0..4).map(move |j| (i, j)))
            .map(|(i, j)| r.get(i, j))
            .collect();
        let roots: Vec<Bit> = [func, inj].into_iter().chain(obs.iter().copied()).collect();
        let compiled = CompiledCircuit::compile(&c, roots);
        let rank = |_: ()| {
            let mut f = Finder::attach(&compiled);
            let _ = f.probe(&c, &[func, inj], 50);
            let mut scored: Vec<(usize, f64)> = obs
                .iter()
                .enumerate()
                .map(|(i, &bit)| (i, f.activity_of(&c, bit)))
                .collect();
            scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
            scored.into_iter().map(|(i, _)| i).collect::<Vec<_>>()
        };
        // Probing is a pure function of the compiled query: two runs agree.
        assert_eq!(rank(()), rank(()));
    }

    #[test]
    fn compiled_circuit_is_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<CompiledCircuit>();
    }

    #[test]
    fn subset_enumeration() {
        // Subsets of a 4-atom sort that contain atom 0: 8.
        let mut c = Circuit::new();
        let s = Matrix1::free(&mut c, 4, "s");
        let has0 = s.get(0);
        let observed: Vec<Bit> = (0..4).map(|i| s.get(i)).collect();
        let mut f = Finder::new(&c);
        let mut n = 0;
        while let Some(inst) = f.next_instance(&c, &[has0]) {
            n += 1;
            f.block(&c, &inst, &observed);
            assert!(n <= 8);
        }
        assert_eq!(n, 8);
    }
}
