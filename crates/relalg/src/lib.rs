//! # litsynth-relalg
//!
//! A bounded relational model finder — the stack's stand-in for Kodkod, the
//! engine underneath Alloy in the paper's pipeline.
//!
//! Relational formulas over a finite universe are compiled to boolean
//! circuits, the circuits are translated to CNF via the Tseitin transform,
//! and the CNF is handed to the CDCL solver in `litsynth-sat`. Instances are
//! enumerated by adding blocking clauses over a caller-chosen set of
//! observable variables.
//!
//! The layers are:
//!
//! * [`Circuit`]/[`Bit`] — hash-consed AND-inverter-graph boolean circuits
//!   with constant folding,
//! * [`Matrix1`]/[`Matrix2`] — unary and binary relations over bounded atom
//!   sorts, represented as matrices of circuit bits, with the full relational
//!   algebra (union, join, transpose, transitive closure, restriction, …) and
//!   relational predicates (subset, acyclicity, irreflexivity, totality, …),
//! * [`Finder`] — CNF compilation, solving, and instance enumeration.
//!
//! # Example: find a 3-atom strict total order
//!
//! ```
//! use litsynth_relalg::{Circuit, Finder, Matrix2};
//!
//! let mut c = Circuit::new();
//! let r = Matrix2::free(&mut c, 3, 3, "r");
//! let tc = r.transitive_closure(&mut c);
//! let asserts = vec![
//!     r.is_acyclic(&mut c),
//!     tc.is_total_on_distinct(&mut c),
//! ];
//! let mut finder = Finder::new(&c);
//! let inst = finder.next_instance(&c, &asserts).expect("a total order exists");
//! let mut edges = 0;
//! for i in 0..3 {
//!     for j in 0..3 {
//!         if inst.eval(&c, tc.get(i, j)) {
//!             edges += 1;
//!         }
//!     }
//! }
//! assert_eq!(edges, 3); // a strict total order on 3 atoms has 3 pairs
//! ```

mod circuit;
mod compiled;
mod finder;
mod matrix;

pub use circuit::{Bit, Circuit};
pub use compiled::{
    compilations, incremental_extensions, reused_clauses, thread_compilations, CompiledCircuit,
};
pub use finder::{Finder, Instance};
pub use matrix::{Matrix1, Matrix2};
