//! Compile-once circuit → CNF translation for portfolio solving.
//!
//! [`Finder`](crate::Finder) translates on demand into a private solver, so
//! every enumeration worker of a cube-split query used to redo the same
//! Tseitin transform. A [`CompiledCircuit`] performs that transform exactly
//! once, into an immutable [`SharedCnf`] arena plus the node→variable map,
//! and any number of finders then attach to it via
//! [`Finder::attach`](crate::Finder::attach) — sharing the clause arena by
//! reference and cloning only the (small) variable maps.

use crate::circuit::{Bit, Circuit, Node};
use litsynth_sat::{CnfBuilder, Lit, SharedCnf, Var};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-wide count of [`CompiledCircuit::compile`] runs. The benchmark
/// harness asserts "exactly one compilation per query" against this.
static COMPILATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Per-thread count of [`CompiledCircuit::compile`] runs, for callers
    /// that need a race-free delta around a compilation they perform
    /// themselves (the process-wide counter can tick concurrently from
    /// other threads' compilations).
    static THREAD_COMPILATIONS: Cell<u64> = const { Cell::new(0) };
}

/// Total number of circuit→CNF compilations performed by this process so
/// far (demand-driven [`Finder::new`](crate::Finder::new) translation is
/// not counted — only whole-circuit [`CompiledCircuit::compile`] runs).
pub fn compilations() -> u64 {
    COMPILATIONS.load(Ordering::Relaxed)
}

/// Number of circuit→CNF compilations performed by the **calling thread**.
/// A delta of this value around a code region counts exactly the region's
/// own compilations, immune to concurrent compilation elsewhere.
pub fn thread_compilations() -> u64 {
    THREAD_COMPILATIONS.with(|c| c.get())
}

/// The frozen result of Tseitin-translating a circuit once.
///
/// Holds the shared clause arena and the maps a [`Finder`](crate::Finder)
/// needs to resume translation incrementally (e.g. for blocking clauses
/// over bits that were not compiled as roots).
#[derive(Debug)]
pub struct CompiledCircuit {
    cnf: Arc<SharedCnf>,
    node_var: Vec<Option<Var>>,
    const_true: Option<Var>,
    input_of_var: Vec<Option<usize>>,
}

impl CompiledCircuit {
    /// Translates the cones of all `roots` to CNF, in one pass.
    ///
    /// The roots should cover every bit the attached finders will touch —
    /// assertions, observables, and candidate cube pins — so that workers
    /// never have to extend the CNF beyond their own blocking clauses. Bits
    /// outside the compiled cone still work after attach; they are simply
    /// translated locally, per finder.
    pub fn compile<I: IntoIterator<Item = Bit>>(c: &Circuit, roots: I) -> CompiledCircuit {
        COMPILATIONS.fetch_add(1, Ordering::Relaxed);
        THREAD_COMPILATIONS.with(|c| c.set(c.get() + 1));
        let mut b = CnfBuilder::new();
        let mut node_var: Vec<Option<Var>> = vec![None; c.num_nodes()];
        let mut const_true = None;
        let mut input_of_var: Vec<Option<usize>> = Vec::new();
        // The same iterative post-order walk as `Finder::lit_of`, emitting
        // into the builder instead of a live solver.
        for root in roots {
            let mut stack = vec![root.node()];
            while let Some(&n) = stack.last() {
                if node_var[n].is_some() {
                    stack.pop();
                    continue;
                }
                match c.node(n) {
                    Node::ConstTrue => {
                        let v = *const_true.get_or_insert_with(|| {
                            let v = b.new_var();
                            input_of_var.push(None);
                            b.add_clause([Lit::pos(v)]);
                            v
                        });
                        node_var[n] = Some(v);
                        stack.pop();
                    }
                    Node::Input(i) => {
                        let v = b.new_var();
                        input_of_var.push(Some(i as usize));
                        node_var[n] = Some(v);
                        stack.pop();
                    }
                    Node::And(x, y) => {
                        let (nx, ny) = (x.node(), y.node());
                        if node_var[nx].is_none() {
                            stack.push(nx);
                            continue;
                        }
                        if node_var[ny].is_none() {
                            stack.push(ny);
                            continue;
                        }
                        let lx = Lit::new(
                            node_var[nx].expect("operand compiled before its AND node"),
                            !x.is_negated(),
                        );
                        let ly = Lit::new(
                            node_var[ny].expect("operand compiled before its AND node"),
                            !y.is_negated(),
                        );
                        let v = b.new_var();
                        input_of_var.push(None);
                        // v ↔ lx ∧ ly
                        b.add_clause([Lit::neg(v), lx]);
                        b.add_clause([Lit::neg(v), ly]);
                        b.add_clause([Lit::pos(v), !lx, !ly]);
                        node_var[n] = Some(v);
                        stack.pop();
                    }
                }
            }
        }
        CompiledCircuit {
            cnf: Arc::new(b.build()),
            node_var,
            const_true,
            input_of_var,
        }
    }

    /// The shared clause arena.
    pub fn cnf(&self) -> &Arc<SharedCnf> {
        &self.cnf
    }

    /// Number of CNF variables in the compiled formula.
    pub fn num_vars(&self) -> usize {
        self.cnf.num_vars()
    }

    /// Number of CNF clauses (including units) in the compiled formula.
    pub fn num_clauses(&self) -> usize {
        self.cnf.num_clauses() + self.cnf.units().len()
    }

    pub(crate) fn node_var(&self) -> &[Option<Var>] {
        &self.node_var
    }

    pub(crate) fn const_true(&self) -> Option<Var> {
        self.const_true
    }

    pub(crate) fn input_of_var(&self) -> &[Option<usize>] {
        &self.input_of_var
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Finder;

    #[test]
    fn compile_covers_shared_cones_once() {
        let mut c = Circuit::new();
        let x = c.input("x");
        let y = c.input("y");
        let z = c.input("z");
        let xy = c.and(x, y);
        let root1 = c.or(xy, z);
        let root2 = c.and(xy, z); // shares the x∧y cone
        let compiled = CompiledCircuit::compile(&c, [root1, root2]);
        // 3 inputs + xy + ¬(¬xy ∧ ¬z) gate + root2 gate = 6 vars.
        assert_eq!(compiled.num_vars(), 6);
        let mut f = Finder::attach(&compiled);
        assert!(f.next_instance(&c, &[root1]).is_some());
        assert!(f.next_instance(&c, &[root2]).is_some());
    }

    #[test]
    fn compilation_counters_tick() {
        let before = compilations();
        let thread_before = thread_compilations();
        let mut c = Circuit::new();
        let x = c.input("x");
        let _ = CompiledCircuit::compile(&c, [x]);
        assert!(compilations() > before);
        // The thread-local counter is exact: no other thread can tick it.
        assert_eq!(thread_compilations(), thread_before + 1);
    }
}
