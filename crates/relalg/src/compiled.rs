//! Compile-once circuit → CNF translation for portfolio solving.
//!
//! [`Finder`](crate::Finder) translates on demand into a private solver, so
//! every enumeration worker of a cube-split query used to redo the same
//! Tseitin transform. A [`CompiledCircuit`] performs that transform exactly
//! once, into an immutable [`SharedCnf`] arena plus the node→variable map,
//! and any number of finders then attach to it via
//! [`Finder::attach`](crate::Finder::attach) — sharing the clause arena by
//! reference and cloning only the (small) variable maps.

use crate::circuit::{Bit, Circuit, Node};
use litsynth_sat::{CnfBuilder, Lit, SharedCnf, Var};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-wide count of [`CompiledCircuit::compile`] runs. The benchmark
/// harness asserts "exactly one compilation per query" against this.
static COMPILATIONS: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of [`CompiledCircuit::extend`] runs: compilations
/// that reused a base formula's layers instead of starting from scratch.
static INCREMENTAL_EXTENSIONS: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of clauses (arena clauses + units) inherited from a
/// base formula across all [`CompiledCircuit::extend`] runs — clauses that
/// a from-scratch compilation would have re-encoded.
static REUSED_CLAUSES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Per-thread count of [`CompiledCircuit::compile`] runs, for callers
    /// that need a race-free delta around a compilation they perform
    /// themselves (the process-wide counter can tick concurrently from
    /// other threads' compilations).
    static THREAD_COMPILATIONS: Cell<u64> = const { Cell::new(0) };
}

/// Total number of circuit→CNF compilations performed by this process so
/// far (demand-driven [`Finder::new`](crate::Finder::new) translation is
/// not counted — only whole-circuit [`CompiledCircuit::compile`] runs).
pub fn compilations() -> u64 {
    COMPILATIONS.load(Ordering::Relaxed)
}

/// Number of circuit→CNF compilations performed by the **calling thread**.
/// A delta of this value around a code region counts exactly the region's
/// own compilations, immune to concurrent compilation elsewhere.
pub fn thread_compilations() -> u64 {
    THREAD_COMPILATIONS.with(|c| c.get())
}

/// Total number of incremental [`CompiledCircuit::extend`] runs performed
/// by this process so far. Together with [`reused_clauses`] this proves an
/// incremental sweep actually reused work instead of silently recompiling.
pub fn incremental_extensions() -> u64 {
    INCREMENTAL_EXTENSIONS.load(Ordering::Relaxed)
}

/// Total number of clauses inherited (not re-encoded) across all
/// [`CompiledCircuit::extend`] runs in this process.
pub fn reused_clauses() -> u64 {
    REUSED_CLAUSES.load(Ordering::Relaxed)
}

/// The frozen result of Tseitin-translating a circuit once.
///
/// Holds the shared clause arena and the maps a [`Finder`](crate::Finder)
/// needs to resume translation incrementally (e.g. for blocking clauses
/// over bits that were not compiled as roots).
#[derive(Debug)]
pub struct CompiledCircuit {
    cnf: Arc<SharedCnf>,
    node_var: Vec<Option<Var>>,
    const_true: Option<Var>,
    input_of_var: Vec<Option<usize>>,
}

impl CompiledCircuit {
    /// Translates the cones of all `roots` to CNF, in one pass.
    ///
    /// The roots should cover every bit the attached finders will touch —
    /// assertions, observables, and candidate cube pins — so that workers
    /// never have to extend the CNF beyond their own blocking clauses. Bits
    /// outside the compiled cone still work after attach; they are simply
    /// translated locally, per finder.
    pub fn compile<I: IntoIterator<Item = Bit>>(c: &Circuit, roots: I) -> CompiledCircuit {
        CompiledCircuit::compile_tagged(c, roots, false)
    }

    /// [`CompiledCircuit::compile`] with an explicit provenance tag for the
    /// built CNF layer: `skeleton == true` marks the formula as
    /// axiom-independent structural skeleton, which makes it eligible both
    /// as a base for [`CompiledCircuit::extend`] chains and as an anchor
    /// for cross-query clause reuse (see the portfolio crate's vault).
    pub fn compile_tagged<I: IntoIterator<Item = Bit>>(
        c: &Circuit,
        roots: I,
        skeleton: bool,
    ) -> CompiledCircuit {
        COMPILATIONS.fetch_add(1, Ordering::Relaxed);
        THREAD_COMPILATIONS.with(|c| c.set(c.get() + 1));
        let mut b = CnfBuilder::new();
        let mut state = TranslationState {
            node_var: vec![None; c.num_nodes()],
            const_true: None,
            input_of_var: Vec::new(),
        };
        translate_cones(c, roots, &mut b, &mut state);
        CompiledCircuit {
            cnf: Arc::new(b.build_tagged(skeleton)),
            node_var: state.node_var,
            const_true: state.const_true,
            input_of_var: state.input_of_var,
        }
    }

    /// Incrementally compiles `roots` as an extension of `base`: the
    /// node→variable map is inherited, so only nodes *not* already covered
    /// by `base`'s cones are Tseitin-encoded — into one new [`SharedCnf`]
    /// layer that `Arc`-shares every clause of `base`. `base` itself is
    /// untouched and can anchor any number of divergent extensions.
    ///
    /// Requires that `c` is the same (possibly grown) circuit arena `base`
    /// was compiled from: node indices must mean the same nodes.
    pub fn extend<I: IntoIterator<Item = Bit>>(
        base: &CompiledCircuit,
        c: &Circuit,
        roots: I,
        skeleton: bool,
    ) -> CompiledCircuit {
        CompiledCircuit::extend_with(base, c, roots, skeleton, false)
    }

    /// [`CompiledCircuit::extend`], additionally tagging the new layer
    /// *definitional* ([`litsynth_sat::CnfLayer::is_definitional`]): a
    /// pure Tseitin cone a lazy solver may leave dormant until the query
    /// references one of its variables. The tag's promise — every clause
    /// mentions a layer-own gate variable, and those gates are functions
    /// of earlier variables — holds for any `translate_cones` output by
    /// construction: each emitted clause names the fresh variable it
    /// defines (the AND-gate triple and the const-true unit both contain
    /// their own fresh var; inputs emit no clauses at all).
    pub fn extend_definitional<I: IntoIterator<Item = Bit>>(
        base: &CompiledCircuit,
        c: &Circuit,
        roots: I,
        skeleton: bool,
    ) -> CompiledCircuit {
        CompiledCircuit::extend_with(base, c, roots, skeleton, true)
    }

    fn extend_with<I: IntoIterator<Item = Bit>>(
        base: &CompiledCircuit,
        c: &Circuit,
        roots: I,
        skeleton: bool,
        definitional: bool,
    ) -> CompiledCircuit {
        INCREMENTAL_EXTENSIONS.fetch_add(1, Ordering::Relaxed);
        REUSED_CLAUSES.fetch_add(
            (base.cnf.num_clauses() + base.cnf.units().len()) as u64,
            Ordering::Relaxed,
        );
        let mut b = CnfBuilder::extending(&base.cnf);
        let mut node_var = base.node_var.clone();
        node_var.resize(c.num_nodes(), None);
        let mut state = TranslationState {
            node_var,
            const_true: base.const_true,
            input_of_var: base.input_of_var.clone(),
        };
        translate_cones(c, roots, &mut b, &mut state);
        CompiledCircuit {
            cnf: Arc::new(b.build_layer(skeleton, definitional)),
            node_var: state.node_var,
            const_true: state.const_true,
            input_of_var: state.input_of_var,
        }
    }

    /// The shared clause arena.
    pub fn cnf(&self) -> &Arc<SharedCnf> {
        &self.cnf
    }

    /// Number of CNF variables in the compiled formula.
    pub fn num_vars(&self) -> usize {
        self.cnf.num_vars()
    }

    /// Number of CNF clauses (including units) in the compiled formula.
    pub fn num_clauses(&self) -> usize {
        self.cnf.num_clauses() + self.cnf.units().len()
    }

    pub(crate) fn node_var(&self) -> &[Option<Var>] {
        &self.node_var
    }

    pub(crate) fn const_true(&self) -> Option<Var> {
        self.const_true
    }

    pub(crate) fn input_of_var(&self) -> &[Option<usize>] {
        &self.input_of_var
    }

    /// Checks that `self` and `other` encode the same CNF clause-for-clause
    /// modulo the variable renaming induced by their node→variable maps:
    /// both must cover exactly the same circuit nodes, and renaming every
    /// literal of `self` through "node's var here ↦ node's var there" must
    /// yield `other`'s clause multiset exactly.
    ///
    /// This is the oracle the incremental-compilation property tests use:
    /// an extension chain built across bounds must be indistinguishable —
    /// up to variable names — from a from-scratch compilation of the same
    /// roots.
    pub fn same_cnf_modulo_renaming(&self, other: &CompiledCircuit) -> bool {
        if self.cnf.num_vars() != other.cnf.num_vars() {
            return false;
        }
        // Build the renaming from the node maps (and the const-true var).
        let mut rename: Vec<Option<Var>> = vec![None; self.cnf.num_vars()];
        let longest = self.node_var.len().max(other.node_var.len());
        for n in 0..longest {
            let a = self.node_var.get(n).copied().flatten();
            let b = other.node_var.get(n).copied().flatten();
            match (a, b) {
                (Some(va), Some(vb)) => rename[va.index()] = Some(vb),
                (None, None) => {}
                _ => return false, // one side compiled a node the other didn't
            }
        }
        if let (Some(ca), Some(cb)) = (self.const_true, other.const_true) {
            rename[ca.index()] = Some(cb);
        } else if self.const_true.is_some() != other.const_true.is_some() {
            return false;
        }
        if rename.iter().any(|r| r.is_none()) {
            return false; // some var of `self` corresponds to no node
        }
        let map_clause = |lits: &[Lit]| -> Option<Vec<Lit>> {
            let mut out = Vec::with_capacity(lits.len());
            for &l in lits {
                out.push(Lit::new(rename[l.var().index()]?, l.is_positive()));
            }
            out.sort();
            Some(out)
        };
        let normalize = |cnf: &SharedCnf, renamed: bool| -> Option<Vec<Vec<Lit>>> {
            let mut all = Vec::with_capacity(cnf.num_clauses() + cnf.units().len());
            for i in 0..cnf.num_clauses() {
                let c = cnf.clause(i);
                all.push(if renamed {
                    map_clause(c)?
                } else {
                    let mut c = c.to_vec();
                    c.sort();
                    c
                });
            }
            for &u in cnf.units() {
                all.push(if renamed { map_clause(&[u])? } else { vec![u] });
            }
            all.sort();
            Some(all)
        };
        normalize(&self.cnf, true) == normalize(&other.cnf, false)
    }
}

/// The mutable maps threaded through a translation pass; for an extension
/// they start as copies of the base's maps so covered nodes are skipped.
struct TranslationState {
    node_var: Vec<Option<Var>>,
    const_true: Option<Var>,
    input_of_var: Vec<Option<usize>>,
}

/// Tseitin-translates the cones of `roots` into `b`, skipping (and
/// reusing) every node already present in `state.node_var`. The same
/// iterative post-order walk as `Finder::lit_of`, emitting into a builder
/// instead of a live solver.
fn translate_cones<I: IntoIterator<Item = Bit>>(
    c: &Circuit,
    roots: I,
    b: &mut CnfBuilder,
    state: &mut TranslationState,
) {
    let TranslationState {
        node_var,
        const_true,
        input_of_var,
    } = state;
    for root in roots {
        let mut stack = vec![root.node()];
        while let Some(&n) = stack.last() {
            if node_var[n].is_some() {
                stack.pop();
                continue;
            }
            match c.node(n) {
                Node::ConstTrue => {
                    let v = *const_true.get_or_insert_with(|| {
                        let v = b.new_var();
                        input_of_var.push(None);
                        b.add_clause([Lit::pos(v)]);
                        v
                    });
                    node_var[n] = Some(v);
                    stack.pop();
                }
                Node::Input(i) => {
                    let v = b.new_var();
                    input_of_var.push(Some(i as usize));
                    node_var[n] = Some(v);
                    stack.pop();
                }
                Node::And(x, y) => {
                    let (nx, ny) = (x.node(), y.node());
                    if node_var[nx].is_none() {
                        stack.push(nx);
                        continue;
                    }
                    if node_var[ny].is_none() {
                        stack.push(ny);
                        continue;
                    }
                    let lx = Lit::new(
                        node_var[nx].expect("operand compiled before its AND node"),
                        !x.is_negated(),
                    );
                    let ly = Lit::new(
                        node_var[ny].expect("operand compiled before its AND node"),
                        !y.is_negated(),
                    );
                    let v = b.new_var();
                    input_of_var.push(None);
                    // v ↔ lx ∧ ly
                    b.add_clause([Lit::neg(v), lx]);
                    b.add_clause([Lit::neg(v), ly]);
                    b.add_clause([Lit::pos(v), !lx, !ly]);
                    node_var[n] = Some(v);
                    stack.pop();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Finder;

    #[test]
    fn compile_covers_shared_cones_once() {
        let mut c = Circuit::new();
        let x = c.input("x");
        let y = c.input("y");
        let z = c.input("z");
        let xy = c.and(x, y);
        let root1 = c.or(xy, z);
        let root2 = c.and(xy, z); // shares the x∧y cone
        let compiled = CompiledCircuit::compile(&c, [root1, root2]);
        // 3 inputs + xy + ¬(¬xy ∧ ¬z) gate + root2 gate = 6 vars.
        assert_eq!(compiled.num_vars(), 6);
        let mut f = Finder::attach(&compiled);
        assert!(f.next_instance(&c, &[root1]).is_some());
        assert!(f.next_instance(&c, &[root2]).is_some());
    }

    #[test]
    fn compilation_counters_tick() {
        let before = compilations();
        let thread_before = thread_compilations();
        let mut c = Circuit::new();
        let x = c.input("x");
        let _ = CompiledCircuit::compile(&c, [x]);
        assert!(compilations() > before);
        // The thread-local counter is exact: no other thread can tick it.
        assert_eq!(thread_compilations(), thread_before + 1);
    }

    #[test]
    fn extend_reuses_base_layers_and_encodes_only_new_nodes() {
        let mut c = Circuit::new();
        let x = c.input("x");
        let y = c.input("y");
        let xy = c.and(x, y);
        let base = CompiledCircuit::compile_tagged(&c, [xy], true);
        let base_vars = base.num_vars();
        let base_clauses = base.num_clauses() as u64;

        let thread_before = thread_compilations();
        let ext_before = incremental_extensions();
        let reuse_before = reused_clauses();
        // Grow the same arena and extend the compilation over it.
        let z = c.input("z");
        let root = c.or(xy, z);
        let ext = CompiledCircuit::extend(&base, &c, [root], false);

        assert_eq!(
            thread_compilations(),
            thread_before,
            "an extension is not a full compilation"
        );
        assert!(incremental_extensions() > ext_before);
        assert!(reused_clauses() >= reuse_before + base_clauses);
        // The base's layer is literally shared, and only the new cone got
        // fresh variables: input z plus the OR gate.
        assert!(Arc::ptr_eq(&base.cnf().layers()[0], &ext.cnf().layers()[0]));
        assert_eq!(ext.cnf().num_layers(), 2);
        assert_eq!(ext.num_vars(), base_vars + 2);
        // The extension is solvable, and the untouched base still is too.
        let mut f = Finder::attach(&ext);
        assert!(f.next_instance(&c, &[root]).is_some());
        let mut fb = Finder::attach(&base);
        assert!(fb.next_instance(&c, &[xy]).is_some());
    }

    #[test]
    fn definitional_extensions_tag_their_layer() {
        let mut c = Circuit::new();
        let x = c.input("x");
        let y = c.input("y");
        let base = CompiledCircuit::compile_tagged(&c, [x, y], true);
        let xy = c.and(x, y);
        let ext = CompiledCircuit::extend_definitional(&base, &c, [xy], true);
        assert!(!ext.cnf().layers()[0].is_definitional());
        assert!(ext.cnf().layers()[1].is_definitional());
        assert!(ext.cnf().layers()[1].is_skeleton());
        // The cone encodes and solves exactly like a plain extension.
        let plain = CompiledCircuit::extend(&base, &c, [xy], true);
        assert_eq!(ext.num_vars(), plain.num_vars());
        assert_eq!(ext.num_clauses(), plain.num_clauses());
        let mut f = Finder::attach_lazy(&ext);
        assert!(f.next_instance(&c, &[xy]).is_some());
    }

    #[test]
    fn extension_chain_matches_from_scratch_modulo_renaming() {
        // Build a three-stage circuit; compile it as a chain (stage by
        // stage) and from scratch, then compare clause-for-clause.
        let mut c = Circuit::new();
        let inputs: Vec<Bit> = (0..4).map(|i| c.input(format!("i{i}"))).collect();
        let s1 = c.and_many(inputs[..2].iter().copied());
        let base = CompiledCircuit::compile_tagged(&c, [s1], true);
        let s2 = c.or(s1, inputs[2]);
        let mid = CompiledCircuit::extend(&base, &c, [s2], true);
        let s3 = c.and(s2, inputs[3]);
        let chain = CompiledCircuit::extend(&mid, &c, [s3], false);
        let scratch = CompiledCircuit::compile(&c, [s3]);
        assert!(chain.same_cnf_modulo_renaming(&scratch));
        assert!(scratch.same_cnf_modulo_renaming(&chain));
        // The oracle is not vacuous: a different root set must not match.
        let other = CompiledCircuit::compile(&c, [s2]);
        assert!(!chain.same_cnf_modulo_renaming(&other));
    }
}
