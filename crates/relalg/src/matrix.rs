//! Relations as boolean matrices over bounded atom sorts.
//!
//! This is the heart of the Kodkod-style translation: a unary relation over a
//! sort of `n` atoms is a vector of `n` circuit bits, and a binary relation is
//! an `n × m` matrix of bits. Relational algebra (union, join, transpose,
//! closure, …) becomes elementwise or matrix-product circuit construction,
//! and relational predicates (subset, acyclicity, …) compile to single bits.

use crate::circuit::{Bit, Circuit};

/// A unary relation (a set of atoms) over a sort of fixed size.
#[derive(Clone, Debug)]
pub struct Matrix1 {
    bits: Vec<Bit>,
}

impl Matrix1 {
    /// A set with explicitly given membership bits.
    pub fn from_bits(bits: Vec<Bit>) -> Matrix1 {
        Matrix1 { bits }
    }

    /// A fully free set over `n` atoms: each membership is a fresh input
    /// named `{name}[i]`.
    pub fn free(c: &mut Circuit, n: usize, name: &str) -> Matrix1 {
        Matrix1 {
            bits: (0..n).map(|i| c.input(format!("{name}[{i}]"))).collect(),
        }
    }

    /// The empty set over `n` atoms.
    pub fn empty(n: usize) -> Matrix1 {
        Matrix1 {
            bits: vec![Circuit::FALSE; n],
        }
    }

    /// The full set over `n` atoms.
    pub fn full(n: usize) -> Matrix1 {
        Matrix1 {
            bits: vec![Circuit::TRUE; n],
        }
    }

    /// The singleton `{atom}` over `n` atoms.
    pub fn singleton(n: usize, atom: usize) -> Matrix1 {
        let mut bits = vec![Circuit::FALSE; n];
        bits[atom] = Circuit::TRUE;
        Matrix1 { bits }
    }

    /// Number of atoms in the sort.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// `true` if the sort is empty (zero atoms — not an empty *set*).
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Membership bit of `atom`.
    pub fn get(&self, atom: usize) -> Bit {
        self.bits[atom]
    }

    /// Replaces the membership bit of `atom`.
    pub fn set(&mut self, atom: usize, bit: Bit) {
        self.bits[atom] = bit;
    }

    /// Set union.
    pub fn union(&self, c: &mut Circuit, other: &Matrix1) -> Matrix1 {
        self.zip(other, |c, a, b| c.or(a, b), c)
    }

    /// Set intersection.
    pub fn intersect(&self, c: &mut Circuit, other: &Matrix1) -> Matrix1 {
        self.zip(other, |c, a, b| c.and(a, b), c)
    }

    /// Set difference.
    pub fn difference(&self, c: &mut Circuit, other: &Matrix1) -> Matrix1 {
        self.zip(other, |c, a, b| c.and(a, b.not()), c)
    }

    fn zip(
        &self,
        other: &Matrix1,
        mut f: impl FnMut(&mut Circuit, Bit, Bit) -> Bit,
        c: &mut Circuit,
    ) -> Matrix1 {
        assert_eq!(self.len(), other.len(), "sort size mismatch");
        Matrix1 {
            bits: self
                .bits
                .iter()
                .zip(&other.bits)
                .map(|(&a, &b)| f(c, a, b))
                .collect(),
        }
    }

    /// Complement within the sort.
    pub fn complement(&self) -> Matrix1 {
        Matrix1 {
            bits: self.bits.iter().map(|b| b.not()).collect(),
        }
    }

    /// `self ⊆ other` as a single bit.
    pub fn is_subset(&self, c: &mut Circuit, other: &Matrix1) -> Bit {
        assert_eq!(self.len(), other.len());
        let imps: Vec<Bit> = self
            .bits
            .iter()
            .zip(&other.bits)
            .map(|(&a, &b)| c.implies(a, b))
            .collect();
        c.and_many(imps)
    }

    /// `self = other` as a single bit.
    pub fn is_equal(&self, c: &mut Circuit, other: &Matrix1) -> Bit {
        assert_eq!(self.len(), other.len());
        let iffs: Vec<Bit> = self
            .bits
            .iter()
            .zip(&other.bits)
            .map(|(&a, &b)| c.iff(a, b))
            .collect();
        c.and_many(iffs)
    }

    /// `some self`: the set is non-empty.
    pub fn is_some(&self, c: &mut Circuit) -> Bit {
        c.or_many(self.bits.iter().copied())
    }

    /// `no self`: the set is empty.
    pub fn is_no(&self, c: &mut Circuit) -> Bit {
        self.is_some(c).not()
    }

    /// `lone self`: at most one member.
    pub fn is_lone(&self, c: &mut Circuit) -> Bit {
        c.at_most_one(&self.bits)
    }

    /// `one self`: exactly one member.
    pub fn is_one(&self, c: &mut Circuit) -> Bit {
        c.exactly_one(&self.bits)
    }

    /// Relational join `self.r`: the image of this set under `r`.
    pub fn join(&self, c: &mut Circuit, r: &Matrix2) -> Matrix1 {
        assert_eq!(self.len(), r.rows());
        let mut bits = Vec::with_capacity(r.cols());
        for j in 0..r.cols() {
            let terms: Vec<Bit> = (0..r.rows())
                .map(|i| c.and(self.bits[i], r.get(i, j)))
                .collect();
            bits.push(c.or_many(terms));
        }
        Matrix1 { bits }
    }

    /// Cross product `self -> other` as a binary relation.
    pub fn product(&self, c: &mut Circuit, other: &Matrix1) -> Matrix2 {
        let mut m = Matrix2::empty(self.len(), other.len());
        for i in 0..self.len() {
            for j in 0..other.len() {
                let b = c.and(self.bits[i], other.bits[j]);
                m.set(i, j, b);
            }
        }
        m
    }
}

/// A binary relation over two (possibly equal) sorts, as a bit matrix.
#[derive(Clone, Debug)]
pub struct Matrix2 {
    rows: usize,
    cols: usize,
    bits: Vec<Bit>, // row-major
}

impl Matrix2 {
    /// A fully free relation: every cell is a fresh input `{name}[i,j]`.
    pub fn free(c: &mut Circuit, rows: usize, cols: usize, name: &str) -> Matrix2 {
        let bits = (0..rows * cols)
            .map(|k| c.input(format!("{name}[{},{}]", k / cols, k % cols)))
            .collect();
        Matrix2 { rows, cols, bits }
    }

    /// The empty relation.
    pub fn empty(rows: usize, cols: usize) -> Matrix2 {
        Matrix2 {
            rows,
            cols,
            bits: vec![Circuit::FALSE; rows * cols],
        }
    }

    /// The identity relation over a sort of size `n`.
    pub fn identity(n: usize) -> Matrix2 {
        let mut m = Matrix2::empty(n, n);
        for i in 0..n {
            m.set(i, i, Circuit::TRUE);
        }
        m
    }

    /// A relation from an explicit edge list, all edges constant-true.
    pub fn from_edges(rows: usize, cols: usize, edges: &[(usize, usize)]) -> Matrix2 {
        let mut m = Matrix2::empty(rows, cols);
        for &(i, j) in edges {
            m.set(i, j, Circuit::TRUE);
        }
        m
    }

    /// Number of rows (size of the domain sort).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (size of the range sort).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The bit at cell `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> Bit {
        self.bits[i * self.cols + j]
    }

    /// Replaces the bit at cell `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, b: Bit) {
        self.bits[i * self.cols + j] = b;
    }

    fn zip(
        &self,
        other: &Matrix2,
        mut f: impl FnMut(&mut Circuit, Bit, Bit) -> Bit,
        c: &mut Circuit,
    ) -> Matrix2 {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        Matrix2 {
            rows: self.rows,
            cols: self.cols,
            bits: self
                .bits
                .iter()
                .zip(&other.bits)
                .map(|(&a, &b)| f(c, a, b))
                .collect(),
        }
    }

    /// Relation union.
    pub fn union(&self, c: &mut Circuit, other: &Matrix2) -> Matrix2 {
        self.zip(other, |c, a, b| c.or(a, b), c)
    }

    /// Relation intersection.
    pub fn intersect(&self, c: &mut Circuit, other: &Matrix2) -> Matrix2 {
        self.zip(other, |c, a, b| c.and(a, b), c)
    }

    /// Relation difference.
    pub fn difference(&self, c: &mut Circuit, other: &Matrix2) -> Matrix2 {
        self.zip(other, |c, a, b| c.and(a, b.not()), c)
    }

    /// Union of several relations.
    pub fn union_many(c: &mut Circuit, rels: &[&Matrix2]) -> Matrix2 {
        assert!(!rels.is_empty());
        let mut acc = rels[0].clone();
        for r in &rels[1..] {
            acc = acc.union(c, r);
        }
        acc
    }

    /// The converse relation `~self`.
    pub fn transpose(&self) -> Matrix2 {
        let mut m = Matrix2::empty(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                m.set(j, i, self.get(i, j));
            }
        }
        m
    }

    /// Relational composition (join) `self ; other`.
    pub fn compose(&self, c: &mut Circuit, other: &Matrix2) -> Matrix2 {
        assert_eq!(self.cols, other.rows, "inner dimension mismatch");
        let mut m = Matrix2::empty(self.rows, other.cols);
        for i in 0..self.rows {
            for j in 0..other.cols {
                let terms: Vec<Bit> = (0..self.cols)
                    .map(|k| c.and(self.get(i, k), other.get(k, j)))
                    .collect();
                let b = c.or_many(terms);
                m.set(i, j, b);
            }
        }
        m
    }

    /// Transitive closure `^self` via iterated squaring.
    pub fn transitive_closure(&self, c: &mut Circuit) -> Matrix2 {
        assert_eq!(self.rows, self.cols, "closure needs a homogeneous relation");
        let mut acc = self.clone();
        let mut span = 1usize;
        while span < self.rows {
            let sq = acc.compose(c, &acc);
            acc = acc.union(c, &sq);
            span *= 2;
        }
        acc
    }

    /// Reflexive-transitive closure `*self`.
    pub fn reflexive_transitive_closure(&self, c: &mut Circuit) -> Matrix2 {
        let tc = self.transitive_closure(c);
        tc.union(c, &Matrix2::identity(self.rows))
    }

    /// Domain restriction `s <: self`.
    pub fn restrict_domain(&self, c: &mut Circuit, s: &Matrix1) -> Matrix2 {
        assert_eq!(s.len(), self.rows);
        let mut m = Matrix2::empty(self.rows, self.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let b = c.and(s.get(i), self.get(i, j));
                m.set(i, j, b);
            }
        }
        m
    }

    /// Range restriction `self :> s`.
    pub fn restrict_range(&self, c: &mut Circuit, s: &Matrix1) -> Matrix2 {
        assert_eq!(s.len(), self.cols);
        let mut m = Matrix2::empty(self.rows, self.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let b = c.and(self.get(i, j), s.get(j));
                m.set(i, j, b);
            }
        }
        m
    }

    /// The domain of the relation, as a set.
    pub fn domain(&self, c: &mut Circuit) -> Matrix1 {
        let mut bits = Vec::with_capacity(self.rows);
        for i in 0..self.rows {
            let row: Vec<Bit> = (0..self.cols).map(|j| self.get(i, j)).collect();
            bits.push(c.or_many(row));
        }
        Matrix1::from_bits(bits)
    }

    /// The range of the relation, as a set.
    pub fn range(&self, c: &mut Circuit) -> Matrix1 {
        self.transpose().domain(c)
    }

    /// Relational join on the right with a set: `self . s` (preimage union).
    pub fn join_right(&self, c: &mut Circuit, s: &Matrix1) -> Matrix1 {
        assert_eq!(s.len(), self.cols);
        let mut bits = Vec::with_capacity(self.rows);
        for i in 0..self.rows {
            let terms: Vec<Bit> = (0..self.cols)
                .map(|j| c.and(self.get(i, j), s.get(j)))
                .collect();
            bits.push(c.or_many(terms));
        }
        Matrix1::from_bits(bits)
    }

    /// `self ⊆ other` as a bit.
    pub fn is_subset(&self, c: &mut Circuit, other: &Matrix2) -> Bit {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let imps: Vec<Bit> = self
            .bits
            .iter()
            .zip(&other.bits)
            .map(|(&a, &b)| c.implies(a, b))
            .collect();
        c.and_many(imps)
    }

    /// `self = other` as a bit.
    pub fn is_equal(&self, c: &mut Circuit, other: &Matrix2) -> Bit {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let iffs: Vec<Bit> = self
            .bits
            .iter()
            .zip(&other.bits)
            .map(|(&a, &b)| c.iff(a, b))
            .collect();
        c.and_many(iffs)
    }

    /// `no self`: the relation is empty.
    pub fn is_no(&self, c: &mut Circuit) -> Bit {
        c.or_many(self.bits.iter().copied()).not()
    }

    /// `some self`: the relation is non-empty.
    pub fn is_some(&self, c: &mut Circuit) -> Bit {
        c.or_many(self.bits.iter().copied())
    }

    /// Irreflexivity: no atom is related to itself.
    pub fn is_irreflexive(&self, c: &mut Circuit) -> Bit {
        assert_eq!(self.rows, self.cols);
        let diag: Vec<Bit> = (0..self.rows).map(|i| self.get(i, i)).collect();
        c.or_many(diag).not()
    }

    /// Acyclicity: the transitive closure is irreflexive
    /// (Alloy's `acyclic[r] ≡ no iden & ^r`).
    pub fn is_acyclic(&self, c: &mut Circuit) -> Bit {
        let tc = self.transitive_closure(c);
        tc.is_irreflexive(c)
    }

    /// Totality over distinct atoms: for every `i ≠ j`, `(i,j)` or `(j,i)`.
    ///
    /// Together with [`Matrix2::is_acyclic`] on the base relation this makes
    /// the closure a strict total order.
    pub fn is_total_on_distinct(&self, c: &mut Circuit) -> Bit {
        assert_eq!(self.rows, self.cols);
        let mut req = Vec::new();
        for i in 0..self.rows {
            for j in (i + 1)..self.rows {
                let fwd = self.get(i, j);
                let bwd = self.get(j, i);
                req.push(c.or(fwd, bwd));
            }
        }
        c.and_many(req)
    }

    /// Totality restricted to a subset `s`: distinct atoms *within s* must be
    /// related one way or the other.
    pub fn is_total_on_set(&self, c: &mut Circuit, s: &Matrix1) -> Bit {
        assert_eq!(self.rows, self.cols);
        assert_eq!(s.len(), self.rows);
        let mut req = Vec::new();
        for i in 0..self.rows {
            for j in (i + 1)..self.rows {
                let both = c.and(s.get(i), s.get(j));
                let fwd = self.get(i, j);
                let bwd = self.get(j, i);
                let either = c.or(fwd, bwd);
                req.push(c.implies(both, either));
            }
        }
        c.and_many(req)
    }

    /// Transitivity: `self;self ⊆ self`.
    pub fn is_transitive(&self, c: &mut Circuit) -> Bit {
        let sq = self.compose(c, self);
        sq.is_subset(c, self)
    }

    /// Functionality on the domain: each row has at most one true cell.
    pub fn is_function(&self, c: &mut Circuit) -> Bit {
        let mut conj = Vec::new();
        for i in 0..self.rows {
            let row: Vec<Bit> = (0..self.cols).map(|j| self.get(i, j)).collect();
            conj.push(c.at_most_one(&row));
        }
        c.and_many(conj)
    }

    /// Injectivity on the range: each column has at most one true cell.
    pub fn is_injective(&self, c: &mut Circuit) -> Bit {
        self.transpose().is_function(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::finder::Finder;

    fn count_instances(c: &Circuit, asserts: &[Bit], observed: &[Bit]) -> usize {
        let mut f = Finder::new(c);
        let mut n = 0;
        while let Some(inst) = f.next_instance(c, asserts) {
            n += 1;
            f.block(c, &inst, observed);
            assert!(n < 10_000, "runaway enumeration");
        }
        n
    }

    #[test]
    fn closure_of_chain_is_upper_triangle() {
        let mut c = Circuit::new();
        let chain = Matrix2::from_edges(4, 4, &[(0, 1), (1, 2), (2, 3)]);
        let tc = chain.transitive_closure(&mut c);
        for i in 0..4 {
            for j in 0..4 {
                let want = i < j;
                assert_eq!(tc.get(i, j) == Circuit::TRUE, want, "({i},{j})");
                assert_eq!(tc.get(i, j) == Circuit::FALSE, !want, "({i},{j})");
            }
        }
    }

    #[test]
    fn closure_detects_cycle() {
        let mut c = Circuit::new();
        let cyc = Matrix2::from_edges(3, 3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(cyc.is_acyclic(&mut c), Circuit::FALSE);
        let dag = Matrix2::from_edges(3, 3, &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(dag.is_acyclic(&mut c), Circuit::TRUE);
    }

    #[test]
    fn compose_is_matrix_product() {
        let mut c = Circuit::new();
        let a = Matrix2::from_edges(2, 3, &[(0, 0), (1, 2)]);
        let b = Matrix2::from_edges(3, 2, &[(0, 1), (2, 0)]);
        let ab = a.compose(&mut c, &b);
        assert_eq!(ab.get(0, 1), Circuit::TRUE);
        assert_eq!(ab.get(1, 0), Circuit::TRUE);
        assert_eq!(ab.get(0, 0), Circuit::FALSE);
        assert_eq!(ab.get(1, 1), Circuit::FALSE);
    }

    #[test]
    fn transpose_roundtrip() {
        let mut c = Circuit::new();
        let r = Matrix2::free(&mut c, 3, 2, "r");
        let rt = r.transpose().transpose();
        assert_eq!(r.is_equal(&mut c, &rt), Circuit::TRUE);
    }

    #[test]
    fn identity_is_compose_neutral() {
        let mut c = Circuit::new();
        let r = Matrix2::free(&mut c, 3, 3, "r");
        let id = Matrix2::identity(3);
        let left = id.compose(&mut c, &r);
        let right = r.compose(&mut c, &id);
        assert_eq!(r.is_equal(&mut c, &left), Circuit::TRUE);
        assert_eq!(r.is_equal(&mut c, &right), Circuit::TRUE);
    }

    #[test]
    fn domain_and_range() {
        let mut c = Circuit::new();
        let r = Matrix2::from_edges(3, 3, &[(0, 2)]);
        let dom = r.domain(&mut c);
        let ran = r.range(&mut c);
        assert_eq!(dom.get(0), Circuit::TRUE);
        assert_eq!(dom.get(1), Circuit::FALSE);
        assert_eq!(ran.get(2), Circuit::TRUE);
        assert_eq!(ran.get(0), Circuit::FALSE);
    }

    #[test]
    fn restrictions() {
        let mut c = Circuit::new();
        let r = Matrix2::from_edges(2, 2, &[(0, 1), (1, 0)]);
        let s = Matrix1::singleton(2, 0);
        let dr = r.restrict_domain(&mut c, &s);
        assert_eq!(dr.get(0, 1), Circuit::TRUE);
        assert_eq!(dr.get(1, 0), Circuit::FALSE);
        let rr = r.restrict_range(&mut c, &s);
        assert_eq!(rr.get(1, 0), Circuit::TRUE);
        assert_eq!(rr.get(0, 1), Circuit::FALSE);
    }

    #[test]
    fn count_strict_total_orders() {
        // Strict total orders on 3 atoms = 3! = 6 (counting the closure
        // matrices; base relations are counted via their closures).
        let mut c = Circuit::new();
        let r = Matrix2::free(&mut c, 3, 3, "r");
        let tc = r.transitive_closure(&mut c);
        let trans = r.is_transitive(&mut c);
        let acyc = r.is_acyclic(&mut c);
        let total = r.is_total_on_distinct(&mut c);
        let asserts = vec![acyc, total, trans];
        let observed: Vec<Bit> = (0..3)
            .flat_map(|i| (0..3).map(move |j| (i, j)))
            .map(|(i, j)| tc.get(i, j))
            .collect();
        // With transitivity, r == its closure, so instances = total orders.
        assert_eq!(count_instances(&c, &asserts, &observed), 6);
    }

    #[test]
    fn function_and_injective() {
        let mut c = Circuit::new();
        let f = Matrix2::from_edges(2, 2, &[(0, 0), (1, 0)]);
        assert_eq!(f.is_function(&mut c), Circuit::TRUE);
        assert_eq!(f.is_injective(&mut c), Circuit::FALSE);
    }

    #[test]
    fn set_algebra() {
        let mut c = Circuit::new();
        let a = Matrix1::singleton(3, 0);
        let b = Matrix1::singleton(3, 1);
        let u = a.union(&mut c, &b);
        assert_eq!(u.get(0), Circuit::TRUE);
        assert_eq!(u.get(1), Circuit::TRUE);
        assert_eq!(u.get(2), Circuit::FALSE);
        let i = a.intersect(&mut c, &b);
        assert_eq!(i.is_some(&mut c), Circuit::FALSE);
        let d = u.difference(&mut c, &a);
        let eq = d.is_equal(&mut c, &b);
        assert_eq!(eq, Circuit::TRUE);
        assert_eq!(a.is_one(&mut c), Circuit::TRUE);
        assert_eq!(u.is_lone(&mut c), Circuit::FALSE);
    }

    #[test]
    fn join_image() {
        let mut c = Circuit::new();
        let s = Matrix1::singleton(3, 0);
        let r = Matrix2::from_edges(3, 3, &[(0, 1), (1, 2)]);
        let img = s.join(&mut c, &r);
        assert_eq!(img.get(1), Circuit::TRUE);
        assert_eq!(img.get(0), Circuit::FALSE);
        assert_eq!(img.get(2), Circuit::FALSE);
    }

    #[test]
    fn product_cross() {
        let mut c = Circuit::new();
        let a = Matrix1::singleton(2, 0);
        let b = Matrix1::full(2);
        let p = a.product(&mut c, &b);
        assert_eq!(p.get(0, 0), Circuit::TRUE);
        assert_eq!(p.get(0, 1), Circuit::TRUE);
        assert_eq!(p.get(1, 0), Circuit::FALSE);
    }
}
