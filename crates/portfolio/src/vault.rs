//! The cross-query clause vault.
//!
//! The exchange bus ([`crate::ExchangeBus`]) shares learnt clauses between
//! the cube workers of *one* query and dies with it. The vault extends that
//! reuse across queries: at solve time every *skeleton-pure* learnt clause
//! (derived exclusively from skeleton-tagged shared layers — see
//! [`litsynth_sat::ClauseExchange`]) is teed into the vault under the
//! fingerprint of the query's skeleton layer chain, and the next query
//! whose chain contains an identical prefix is seeded with those clauses
//! before its first restart, the same way the bus seeds peer cubes.
//!
//! # Why cross-query reuse is sound
//!
//! A skeleton-pure clause is a resolvent whose every antecedent lives in a
//! skeleton-tagged layer, so it is implied by the skeleton chain alone —
//! not by the axiom layer, any blocking clause, or any impure import of
//! the query that learnt it. Layer fingerprints commit to the exact clause
//! *and variable numbering* content of a chain prefix
//! ([`litsynth_sat::SharedCnf::skeleton_fingerprints`]); when a later
//! query's chain contains a prefix with the same fingerprint, the clause
//! is implied by that query's own formula, literally, over the same
//! variable indices. Imports therefore only prune search — enumerated
//! model sets, and hence synthesized suites, stay byte-identical with the
//! vault on or off.
//!
//! On a *lazily* attached receiver ([`litsynth_sat::Solver::attach_shared_lazy`])
//! the fetch is additionally cone-aware: seeds over the query's declared
//! cone install immediately, and seeds touching a still-dormant cone are
//! shelved inside the solver and replayed when that cone activates
//! ([`litsynth_sat::Solver::set_shelving`]), so laziness never costs
//! vaulted pruning.

use litsynth_sat::{ClauseExchange, Lit};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Tuning knobs for the clause vault.
#[derive(Clone, Copy, Debug)]
pub struct VaultConfig {
    /// Master switch; `false` turns publish and seed into no-ops.
    pub enabled: bool,
    /// Only clauses with LBD ≤ this are vaulted.
    pub max_lbd: u32,
    /// Only clauses with at most this many literals are vaulted.
    pub max_len: usize,
    /// Hard cap on clauses vaulted per fingerprint shelf.
    pub max_per_key: usize,
}

impl Default for VaultConfig {
    fn default() -> Self {
        VaultConfig {
            enabled: true,
            max_lbd: 12,
            max_len: 60,
            max_per_key: 16_000,
        }
    }
}

/// Vault-wide counters.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct VaultStats {
    /// Clauses admitted into the vault.
    pub published: u64,
    /// Clauses handed out as seeds (counted per seeding).
    pub imported: u64,
    /// Publish attempts dropped (filter, cap, or duplicate).
    pub filtered: u64,
}

/// One fingerprint's shelf: insertion-ordered clauses (each with the LBD
/// its publisher reported, so seeded solvers file them in the right
/// retention tier) plus a membership set so duplicate publishes (the same
/// clause learnt by several cubes) are dropped.
#[derive(Debug, Default)]
struct Shelf {
    clauses: Vec<(Arc<[Lit]>, u32)>,
    seen: HashSet<Arc<[Lit]>>,
}

fn lock_shelves(m: &Mutex<HashMap<u64, Shelf>>) -> MutexGuard<'_, HashMap<u64, Shelf>> {
    // Like the exchange pool: a worker panicking mid-publish leaves the
    // map consistent, so poisoning is ignored.
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Skeleton-pure learnt clauses, shelved by skeleton-chain fingerprint,
/// surviving from query to query within one synthesis sweep.
#[derive(Debug, Default)]
pub struct ClauseVault {
    cfg: VaultConfig,
    shelves: Mutex<HashMap<u64, Shelf>>,
    published: AtomicU64,
    imported: AtomicU64,
    filtered: AtomicU64,
}

impl ClauseVault {
    /// Creates a vault with the given configuration.
    pub fn new(cfg: VaultConfig) -> Arc<ClauseVault> {
        Arc::new(ClauseVault {
            cfg,
            ..ClauseVault::default()
        })
    }

    /// Offers a skeleton-pure clause learnt by a query whose skeleton
    /// chain has `fingerprint`. Returns `true` if the clause was admitted.
    pub fn publish(&self, fingerprint: u64, lits: &[Lit], lbd: u32) -> bool {
        if !self.cfg.enabled {
            return false;
        }
        if lbd > self.cfg.max_lbd || lits.len() > self.cfg.max_len {
            self.filtered.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let mut sorted: Vec<Lit> = lits.to_vec();
        sorted.sort();
        let clause: Arc<[Lit]> = sorted.into();
        let mut shelves = lock_shelves(&self.shelves);
        let shelf = shelves.entry(fingerprint).or_default();
        if shelf.clauses.len() >= self.cfg.max_per_key || !shelf.seen.insert(clause.clone()) {
            self.filtered.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        shelf.clauses.push((clause, lbd));
        self.published.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Every vaulted clause shelved under any of `fingerprints` — the
    /// receiving query passes its full list of skeleton-chain prefix
    /// fingerprints, and anything published under an identical prefix is a
    /// sound seed. Clauses come back with their publisher-reported LBD and
    /// flagged skeleton-pure, so the receiving solver files them in the
    /// right retention tier and its own derivations from them can be
    /// re-vaulted.
    pub fn seed(&self, fingerprints: &[u64]) -> Vec<(Vec<Lit>, u32, bool)> {
        if !self.cfg.enabled {
            return Vec::new();
        }
        let shelves = lock_shelves(&self.shelves);
        let mut out = Vec::new();
        for fp in fingerprints {
            if let Some(shelf) = shelves.get(fp) {
                out.extend(
                    shelf
                        .clauses
                        .iter()
                        .map(|(c, lbd)| (c.to_vec(), *lbd, true)),
                );
            }
        }
        drop(shelves);
        self.imported.fetch_add(out.len() as u64, Ordering::Relaxed);
        out
    }

    /// The counters accumulated so far.
    pub fn stats(&self) -> VaultStats {
        VaultStats {
            published: self.published.load(Ordering::Relaxed),
            imported: self.imported.load(Ordering::Relaxed),
            filtered: self.filtered.load(Ordering::Relaxed),
        }
    }
}

/// Wraps a per-query exchange endpoint with vault traffic: skeleton-pure
/// exports are teed into the vault under `publish_fp`, and the first fetch
/// seeds the solver with every clause shelved under the query's prefix
/// fingerprints (then defers to the wrapped endpoint as usual).
#[derive(Debug)]
pub struct VaultedExchange<E: ClauseExchange> {
    inner: E,
    vault: Arc<ClauseVault>,
    publish_fp: u64,
    import_fps: Vec<u64>,
    seeded: bool,
    imports_enabled: bool,
}

impl<E: ClauseExchange> VaultedExchange<E> {
    /// Wraps `inner`. `publish_fp` is the fingerprint of the query's full
    /// skeleton chain (what its pure clauses are implied by); `import_fps`
    /// are all the chain's prefix fingerprints
    /// ([`litsynth_sat::SharedCnf::skeleton_fingerprints`]).
    pub fn new(
        inner: E,
        vault: Arc<ClauseVault>,
        publish_fp: u64,
        import_fps: Vec<u64>,
    ) -> VaultedExchange<E> {
        VaultedExchange {
            inner,
            vault,
            publish_fp,
            import_fps,
            seeded: false,
            imports_enabled: true,
        }
    }

    /// Stops vault seeding for this wrapper (publishes still flow), e.g.
    /// on a cube's final retry attempt where the solve must be independent
    /// of all sharing.
    pub fn suppress_imports(&mut self) {
        self.imports_enabled = false;
    }

    /// The wrapped endpoint.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// The wrapped endpoint, mutably (e.g. to disable its peer imports).
    pub fn inner_mut(&mut self) -> &mut E {
        &mut self.inner
    }
}

impl<E: ClauseExchange> ClauseExchange for VaultedExchange<E> {
    fn export(&mut self, lits: &[Lit], lbd: u32, skeleton: bool) {
        if skeleton {
            self.vault.publish(self.publish_fp, lits, lbd);
        }
        self.inner.export(lits, lbd, skeleton);
    }

    fn fetch(&mut self, out: &mut Vec<(Vec<Lit>, u32, bool)>) {
        if !self.seeded {
            self.seeded = true;
            if self.imports_enabled {
                // The whole shelf seeds, cross-axiom clauses included: on a
                // sweep-shared chain every axiom's definitional gates are
                // functions of the shared skeleton variables, so a clause
                // over a sibling's gates still propagates — and prunes — in
                // this query's search. The fetch is cone-aware on a lazily
                // attached solver: a seeded clause over the receiver's
                // *declared* cone installs immediately, while one touching
                // a still-dormant cone is shelved inside the solver and
                // replayed the moment that cone activates, so no vaulted
                // pruning is ever discarded. (Before shelving, such seeds
                // were dropped outright — sound, imports only prune, but
                // measurably costly at deep bounds.)
                out.extend(self.vault.seed(&self.import_fps));
            }
        }
        self.inner.fetch(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use litsynth_sat::{NoExchange, Var};

    fn lit(i: usize) -> Lit {
        Lit::pos(Var::from_index(i))
    }

    #[test]
    fn publish_and_seed_are_keyed_by_fingerprint() {
        let vault = ClauseVault::new(VaultConfig::default());
        assert!(vault.publish(7, &[lit(0), lit(1)], 2));
        assert!(vault.publish(9, &[lit(2), lit(3)], 2));
        assert_eq!(
            vault.seed(&[7]),
            vec![(vec![lit(0), lit(1)], 2, true)],
            "only the matching shelf seeds"
        );
        assert!(vault.seed(&[8]).is_empty(), "unknown fingerprint is empty");
        let both = vault.seed(&[7, 9]);
        assert_eq!(both.len(), 2, "all prefix shelves contribute");
        assert_eq!(vault.stats().published, 2);
        assert_eq!(vault.stats().imported, 3);
    }

    #[test]
    fn filters_caps_and_duplicates_are_dropped() {
        let cfg = VaultConfig {
            max_lbd: 2,
            max_len: 2,
            max_per_key: 2,
            ..VaultConfig::default()
        };
        let vault = ClauseVault::new(cfg);
        assert!(!vault.publish(1, &[lit(0), lit(1)], 5)); // LBD too high
        assert!(!vault.publish(1, &[lit(0), lit(1), lit(2)], 1)); // too long
        assert!(vault.publish(1, &[lit(0), lit(1)], 1));
        assert!(!vault.publish(1, &[lit(1), lit(0)], 1)); // duplicate mod order
        assert!(vault.publish(1, &[lit(2), lit(3)], 1));
        assert!(!vault.publish(1, &[lit(4), lit(5)], 1)); // shelf full
        assert_eq!(vault.stats().published, 2);
        assert_eq!(vault.stats().filtered, 4);
    }

    #[test]
    fn disabled_vault_is_inert() {
        let cfg = VaultConfig {
            enabled: false,
            ..VaultConfig::default()
        };
        let vault = ClauseVault::new(cfg);
        assert!(!vault.publish(1, &[lit(0), lit(1)], 1));
        assert!(vault.seed(&[1]).is_empty());
        assert_eq!(vault.stats(), VaultStats::default());
    }

    #[test]
    fn vaulted_exchange_tees_pure_exports_and_seeds_once() {
        let vault = ClauseVault::new(VaultConfig::default());
        // Query A publishes under fingerprint 42: one pure clause is teed,
        // the impure one is not.
        let mut a = VaultedExchange::new(NoExchange, vault.clone(), 42, vec![42]);
        a.export(&[lit(0), lit(1)], 2, true);
        a.export(&[lit(2), lit(3)], 2, false);
        assert_eq!(vault.stats().published, 1);
        // Query B's chain shares the prefix: its first fetch is seeded,
        // later fetches are not re-seeded.
        let mut b = VaultedExchange::new(NoExchange, vault.clone(), 99, vec![42, 99]);
        let mut got = Vec::new();
        b.fetch(&mut got);
        assert_eq!(got, vec![(vec![lit(0), lit(1)], 2, true)]);
        got.clear();
        b.fetch(&mut got);
        assert!(got.is_empty(), "seeding happens exactly once");
        // A suppressed wrapper never seeds but still publishes.
        let mut c = VaultedExchange::new(NoExchange, vault.clone(), 42, vec![42]);
        c.suppress_imports();
        let mut got = Vec::new();
        c.fetch(&mut got);
        assert!(got.is_empty());
        c.export(&[lit(4), lit(5)], 2, true);
        assert_eq!(vault.stats().published, 2);
    }
}
