//! The bounded learnt-clause exchange bus.
//!
//! Cube workers of one query share an [`ExchangeBus`]; each worker holds an
//! [`ExchangeEndpoint`], which implements the solver-side
//! [`ClauseExchange`] trait. Exports are admitted under an LBD/size filter
//! and a pool cap; fetches return every admitted clause the endpoint has
//! not seen yet, excluding its own exports.
//!
//! # Why sharing clauses across cubes is sound
//!
//! All workers attach to one compiled formula F. A worker's clause database
//! is F plus its blocking clauses, and every clause it learns is a
//! resolvent of database clauses — cube pins enter the search as
//! assumptions (decisions), never as axioms, so learnt clauses are implied
//! by F ∧ (that worker's blocking clauses). Blocking clauses exclude
//! exactly the observable classes the worker already enumerated, and
//! because cube pins are themselves *observed* bits, any model that remains
//! to be found in a different cube differs from every blocked class on at
//! least one pinned observed bit — it satisfies all of the peer's blocking
//! clauses, hence every clause the peer ever learns. Imports therefore
//! never exclude a model any worker still has to enumerate: the exchange
//! prunes search, and provably nothing else. (If an import does make a
//! worker's formula unsatisfiable, that cube genuinely had no remaining
//! models.)
//!
//! Lazily attached workers (`CompiledQuery::attach_lazy`) add one wrinkle:
//! a fetched clause may mention gate variables of a definitional cone the
//! importer has never activated. The solver treats such clauses as absent
//! — it silently drops them at import time rather than waking the cone —
//! which keeps the dormant-cone saving and stays sound by the same
//! argument: an import can only prune, so *not* installing one changes no
//! enumeration result.

use litsynth_sat::{ClauseExchange, Lit};
use std::sync::{Arc, Mutex, MutexGuard};

/// Locks ignoring poison: a worker that panicked mid-export must not take
/// the whole bus down with it — the pool isolates the panic and retries,
/// and the clause pool itself is always in a consistent state (pushes are
/// atomic).
fn lock_pool(m: &Mutex<Vec<PooledClause>>) -> MutexGuard<'_, Vec<PooledClause>> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Tuning knobs for the exchange bus.
#[derive(Clone, Copy, Debug)]
pub struct ExchangeConfig {
    /// Master switch; `false` turns every endpoint into a no-op.
    pub enabled: bool,
    /// Only clauses with LBD ≤ this are published.
    pub max_lbd: u32,
    /// Only clauses with at most this many literals are published.
    pub max_len: usize,
    /// Hard cap on clauses held by the bus; exports beyond it are dropped.
    pub max_pool: usize,
}

impl Default for ExchangeConfig {
    fn default() -> Self {
        ExchangeConfig {
            enabled: true,
            max_lbd: 6,
            max_len: 30,
            max_pool: 10_000,
        }
    }
}

/// Per-endpoint exchange counters.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct ExchangeStats {
    /// Clauses this endpoint published to the bus.
    pub exported: u64,
    /// Peer clauses this endpoint handed to its solver.
    pub imported: u64,
    /// Clauses this endpoint dropped (LBD/size filter or full pool).
    pub filtered: u64,
}

/// One clause on the bus: who published it, its literals, the LBD its
/// sender reported, and whether it is skeleton-pure (derived from
/// skeleton-tagged layers alone — see [`litsynth_sat::ClauseExchange`]).
/// The LBD travels with the clause so importing solvers file it in the
/// right retention tier before its first use, and purity travels so
/// importers keep propagating it and the cross-query vault can harvest
/// pure clauses downstream.
type PooledClause = (usize, Arc<[Lit]>, u32, bool);

/// The shared clause pool for one query's cube workers.
#[derive(Debug, Default)]
pub struct ExchangeBus {
    cfg: ExchangeConfig,
    pool: Mutex<Vec<PooledClause>>,
}

impl ExchangeBus {
    /// Creates a bus with the given configuration.
    pub fn new(cfg: ExchangeConfig) -> Arc<ExchangeBus> {
        Arc::new(ExchangeBus {
            cfg,
            pool: Mutex::new(Vec::new()),
        })
    }

    /// The endpoint for worker `worker` (its cube index). Endpoints start
    /// with an empty read cursor: the first fetch sees everything peers
    /// published so far.
    pub fn endpoint(self: &Arc<Self>, worker: usize) -> ExchangeEndpoint {
        ExchangeEndpoint {
            bus: Arc::clone(self),
            worker,
            cursor: 0,
            imports_enabled: true,
            stats: ExchangeStats::default(),
        }
    }

    /// Number of clauses currently pooled.
    pub fn pooled(&self) -> usize {
        lock_pool(&self.pool).len()
    }
}

/// A worker's handle on the bus; plugs into
/// [`litsynth_sat::Solver::solve_exchanging`].
#[derive(Debug)]
pub struct ExchangeEndpoint {
    bus: Arc<ExchangeBus>,
    worker: usize,
    cursor: usize,
    imports_enabled: bool,
    stats: ExchangeStats,
}

impl ExchangeEndpoint {
    /// The counters accumulated by this endpoint.
    pub fn stats(&self) -> ExchangeStats {
        self.stats
    }

    /// Stops this endpoint from importing peer clauses; exports still
    /// flow. The retry ladder uses this on a cube's last attempt, making
    /// the final try independent of peer timing while peers keep
    /// benefiting from its learnt clauses.
    pub fn disable_imports(&mut self) {
        self.imports_enabled = false;
    }
}

impl ClauseExchange for ExchangeEndpoint {
    fn export(&mut self, lits: &[Lit], lbd: u32, skeleton: bool) {
        let cfg = &self.bus.cfg;
        if !cfg.enabled {
            return;
        }
        if lbd > cfg.max_lbd || lits.len() > cfg.max_len {
            self.stats.filtered += 1;
            return;
        }
        let mut pool = lock_pool(&self.bus.pool);
        if pool.len() >= cfg.max_pool {
            self.stats.filtered += 1;
            return;
        }
        pool.push((self.worker, lits.into(), lbd, skeleton));
        self.stats.exported += 1;
    }

    fn fetch(&mut self, out: &mut Vec<(Vec<Lit>, u32, bool)>) {
        if !self.bus.cfg.enabled || !self.imports_enabled {
            return;
        }
        let pool = lock_pool(&self.bus.pool);
        for (owner, clause, lbd, pure) in &pool[self.cursor..] {
            if *owner != self.worker {
                out.push((clause.to_vec(), *lbd, *pure));
                self.stats.imported += 1;
            }
        }
        self.cursor = pool.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use litsynth_sat::Var;

    fn lit(i: usize) -> Lit {
        Lit::pos(Var::from_index(i))
    }

    #[test]
    fn no_self_import_and_cursor_advances() {
        let bus = ExchangeBus::new(ExchangeConfig::default());
        let mut a = bus.endpoint(0);
        let mut b = bus.endpoint(1);
        a.export(&[lit(0), lit(1)], 2, true);
        b.export(&[lit(2), lit(3)], 2, false);
        let mut got = Vec::new();
        a.fetch(&mut got);
        assert_eq!(got, vec![(vec![lit(2), lit(3)], 2, false)]);
        got.clear();
        a.fetch(&mut got);
        assert!(got.is_empty(), "cursor must advance past seen clauses");
        got.clear();
        b.fetch(&mut got);
        assert_eq!(
            got,
            vec![(vec![lit(0), lit(1)], 2, true)],
            "LBD and purity travel with the clause"
        );
        assert_eq!(a.stats().exported, 1);
        assert_eq!(a.stats().imported, 1);
        assert_eq!(b.stats().imported, 1);
    }

    #[test]
    fn lbd_and_size_filters_count_drops() {
        let cfg = ExchangeConfig {
            max_lbd: 2,
            max_len: 3,
            ..ExchangeConfig::default()
        };
        let bus = ExchangeBus::new(cfg);
        let mut a = bus.endpoint(0);
        a.export(&[lit(0), lit(1)], 5, false); // LBD too high
        a.export(&[lit(0), lit(1), lit(2), lit(3)], 1, false); // too long
        a.export(&[lit(0), lit(1)], 2, false); // admitted
        assert_eq!(a.stats().exported, 1);
        assert_eq!(a.stats().filtered, 2);
        assert_eq!(bus.pooled(), 1);
    }

    #[test]
    fn pool_cap_bounds_memory() {
        let cfg = ExchangeConfig {
            max_pool: 2,
            ..ExchangeConfig::default()
        };
        let bus = ExchangeBus::new(cfg);
        let mut a = bus.endpoint(0);
        for i in 0..5 {
            a.export(&[lit(i), lit(i + 1)], 1, false);
        }
        assert_eq!(bus.pooled(), 2);
        assert_eq!(a.stats().exported, 2);
        assert_eq!(a.stats().filtered, 3);
    }

    #[test]
    fn disabled_imports_still_export() {
        let bus = ExchangeBus::new(ExchangeConfig::default());
        let mut a = bus.endpoint(0);
        let mut b = bus.endpoint(1);
        b.disable_imports();
        a.export(&[lit(0), lit(1)], 1, false);
        b.export(&[lit(2), lit(3)], 1, false);
        let mut got = Vec::new();
        b.fetch(&mut got);
        assert!(got.is_empty(), "imports disabled");
        assert_eq!(b.stats().imported, 0);
        got.clear();
        a.fetch(&mut got);
        assert_eq!(
            got,
            vec![(vec![lit(2), lit(3)], 1, false)],
            "exports still flow"
        );
    }

    #[test]
    fn disabled_bus_is_a_no_op() {
        let cfg = ExchangeConfig {
            enabled: false,
            ..ExchangeConfig::default()
        };
        let bus = ExchangeBus::new(cfg);
        let mut a = bus.endpoint(0);
        let mut b = bus.endpoint(1);
        a.export(&[lit(0), lit(1)], 1, false);
        let mut got = Vec::new();
        b.fetch(&mut got);
        assert!(got.is_empty());
        assert_eq!(a.stats(), ExchangeStats::default());
    }
}
