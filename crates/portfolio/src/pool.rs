//! A minimal scoped-thread worker pool with deterministic result order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolves a thread-count setting (`0` = all available cores).
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

/// Runs `f` over every item on up to `threads` worker threads and returns
/// the results **in item order** — never in completion order. This is the
/// determinism backbone of the whole parallel stack: callers merge results
/// positionally and get byte-identical output at any thread count.
///
/// `f` receives `(index, item)`. Work is claimed dynamically from a shared
/// counter, so uneven item costs still balance.
pub fn run_ordered<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = resolve_threads(threads).min(items.len()).max(1);
    if threads == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(i, &items[i]);
                // Lock ignoring poison: a panic in `f` on a sibling thread
                // must not discard this worker's finished results.
                *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("every item ran to completion")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 4, 7] {
            let out = run_ordered(&items, threads, |i, &x| {
                assert_eq!(i, x);
                x * x
            });
            assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<usize> = run_ordered(&[] as &[usize], 4, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn zero_threads_means_all_cores() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }
}
