//! # litsynth-portfolio
//!
//! Solver orchestration for parallel suite synthesis: compile-once CNF
//! sharing, a bounded learnt-clause exchange bus, and adaptive cube
//! selection.
//!
//! The synthesis engine partitions each (axiom, bound) enumeration into
//! `2^b` cubes by pinning observed selector bits, and fans the cubes over a
//! worker pool. Before this crate, every worker re-ran the same Tseitin
//! transform and solved cold. The portfolio fixes all three costs:
//!
//! * **Compile once** — [`CompiledQuery`] translates the query circuit to
//!   an immutable shared clause arena exactly once; workers attach in
//!   O(vars + clauses) via [`CompiledQuery::attach`] and share the arena by
//!   reference ([`litsynth_relalg::CompiledCircuit`] /
//!   [`litsynth_sat::Solver::attach_shared`] underneath).
//! * **Exchange learnt clauses** — cube workers publish learnt clauses
//!   under an LBD/size filter to an [`ExchangeBus`] and import peers'
//!   clauses at restart boundaries. Sharing across cubes is sound because
//!   pins are assumptions and blocking clauses from one cube are satisfied
//!   by every model remaining in the others (see [`exchange`] for the full
//!   argument) — so the exchange prunes search but can never change the
//!   enumerated model set, keeping suites byte-identical to the sequential
//!   path. On lazily attached workers the import path is cone-aware:
//!   clauses over still-dormant cones shelve inside the receiving solver
//!   and replay on activation, so laziness never forfeits bus or
//!   [`vault`] pruning.
//! * **Pick cubes adaptively** — a short probing run samples VSIDS
//!   activity and [`cube::rank_pins`] splits on the bits the solver
//!   actually branches on, instead of the first `b` slots.
//!
//! The deterministic scoped-thread pool the callers fan out on lives in
//! [`pool`]; it returns results in item order so merged output is
//! byte-identical at any thread count. [`resilient`] wraps that pool in a
//! supervisor: each attempt runs under `catch_unwind`, panicked or
//! interrupted items are retried with exponential backoff (fresh solver
//! per attempt, imports off on the last), and items that still fail come
//! back as [`TaskReport::degraded`] instead of poisoning the pool.

pub mod cube;
pub mod exchange;
pub mod pool;
pub mod query;
pub mod resilient;
pub mod unit;
pub mod vault;

pub use exchange::{ExchangeBus, ExchangeConfig, ExchangeEndpoint, ExchangeStats};
pub use pool::{resolve_threads, run_ordered};
pub use query::{CompiledQuery, CubeConfig};
pub use resilient::{run_resilient, Attempt, RetryConfig, TaskReport};
pub use unit::{StealQueue, StealStats, WorkUnit};
pub use vault::{ClauseVault, VaultConfig, VaultStats, VaultedExchange};
