//! Adaptive cube selection.
//!
//! Cube splitting partitions one enumeration into `2^b` disjoint subqueries
//! by pinning `b` observed bits to every boolean pattern. *Which* bits are
//! pinned decides how balanced the split is: pinning bits the search never
//! branches on produces one giant cube and `2^b − 1` trivial ones. Instead
//! of the fixed slot-0 rule (first `b` selector bits in slot order), the
//! portfolio runs a short conflict-bounded probing solve on the compiled
//! query and ranks the candidate bits by the VSIDS activity the probe left
//! behind — the variables the solver actually fought over are the ones
//! worth splitting on.
//!
//! Selection is a pure function of the compiled query: the probe is
//! deterministic, ties break by candidate order, and the ranking is shared
//! by all workers — so suites stay byte-identical to the sequential path at
//! every setting.

use litsynth_relalg::{Bit, Circuit, CompiledCircuit, Finder};
use std::collections::HashSet;

/// Ranks `candidates` as cube-pin bits for the query `asserts` over the
/// compiled circuit, best pin first.
///
/// Constant bits and candidates sharing a CNF variable with an earlier one
/// are dropped (pinning them would not split, or would split unevenly and
/// unsoundly). With `probe_conflicts == 0` the surviving candidates keep
/// their given order — the classic slot-0 rule; otherwise a probing solve
/// ranks them by VSIDS activity (descending, ties by candidate order).
pub fn rank_pins(
    c: &Circuit,
    compiled: &CompiledCircuit,
    asserts: &[Bit],
    candidates: &[Bit],
    probe_conflicts: u64,
) -> Vec<Bit> {
    let mut f = Finder::attach(compiled);
    let mut seen_vars: HashSet<usize> = HashSet::new();
    let mut uniq: Vec<Bit> = Vec::with_capacity(candidates.len());
    for &b in candidates {
        if b == Circuit::TRUE || b == Circuit::FALSE {
            continue;
        }
        let var = f.lit_of(c, b).var().index();
        if seen_vars.insert(var) {
            uniq.push(b);
        }
    }
    if probe_conflicts == 0 || uniq.len() <= 1 {
        return uniq;
    }
    // Focus the probe on this query's cone. On a sweep-shared layer chain
    // the compiled formula also carries other bounds' and axioms' layers;
    // an unwarmed probe would burn its conflict budget deciding those dead
    // variables in index order. Warming is a pure function of the query,
    // so the ranking stays deterministic.
    f.warm(c, asserts.iter().chain(&uniq).copied());
    let _ = f.probe(c, asserts, probe_conflicts);
    let mut scored: Vec<(usize, Bit, f64)> = uniq
        .into_iter()
        .enumerate()
        .map(|(i, b)| {
            let a = f.activity_of(c, b);
            (i, b, a)
        })
        .collect();
    scored.sort_by(|x, y| {
        y.2.partial_cmp(&x.2)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(x.0.cmp(&y.0))
    });
    scored.into_iter().map(|(_, b, _)| b).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_and_duplicate_vars_are_dropped() {
        let mut c = Circuit::new();
        let x = c.input("x");
        let y = c.input("y");
        let candidates = [Circuit::TRUE, x, x.not(), y, Circuit::FALSE, x];
        let compiled = CompiledCircuit::compile(&c, [x, y]);
        let pins = rank_pins(&c, &compiled, &[], &candidates, 0);
        assert_eq!(pins, vec![x, y]);
    }

    #[test]
    fn ranking_is_deterministic() {
        let mut c = Circuit::new();
        let xs: Vec<Bit> = (0..6).map(|i| c.input(format!("x{i}"))).collect();
        // A lopsided formula: conflicts concentrate on x0..x2.
        let a = c.xor(xs[0], xs[1]);
        let b = c.xor(xs[1], xs[2]);
        let g = c.and(a, b);
        let roots: Vec<Bit> = [g].into_iter().chain(xs.iter().copied()).collect();
        let compiled = CompiledCircuit::compile(&c, roots);
        let r1 = rank_pins(&c, &compiled, &[g], &xs, 100);
        let r2 = rank_pins(&c, &compiled, &[g], &xs, 100);
        assert_eq!(r1, r2);
        assert_eq!(r1.len(), xs.len(), "ranking permutes, never drops");
        let mut sorted = r1.clone();
        sorted.sort();
        let mut all = xs.clone();
        all.sort();
        assert_eq!(sorted, all);
    }
}
