//! A query compiled once and shared by all of its cube workers.

use crate::cube::rank_pins;
use litsynth_relalg::{Bit, Circuit, CompiledCircuit, Finder};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How cube pins are chosen for a [`CompiledQuery`].
#[derive(Clone, Copy, Debug)]
pub struct CubeConfig {
    /// `true`: rank pin candidates by probing-run VSIDS activity.
    /// `false`: keep the classic slot-0 order.
    pub adaptive: bool,
    /// Conflict budget for the probing run (ignored when not adaptive).
    pub probe_conflicts: u64,
}

impl Default for CubeConfig {
    fn default() -> Self {
        CubeConfig {
            adaptive: true,
            probe_conflicts: 500,
        }
    }
}

/// One relational query, Tseitin-compiled exactly once, plus the ranked
/// cube-pin bits every worker splits on.
///
/// `CompiledQuery` is `Sync`: workers share it behind an `Arc` (typically
/// through a `OnceLock` so whichever worker arrives first pays the
/// compilation) and each calls [`CompiledQuery::attach`] for a private
/// solver over the shared clause arena.
#[derive(Debug)]
pub struct CompiledQuery {
    circuit: Arc<Circuit>,
    compiled: Arc<CompiledCircuit>,
    pins: Vec<Bit>,
    probe: Duration,
}

impl CompiledQuery {
    /// Compiles the query once and selects its cube pins.
    ///
    /// `asserts` are the bits workers will assume, `observables` the bits
    /// blocking clauses range over, and `candidates` the pinnable bits
    /// (must be observed, or cubes would not partition the class space).
    /// All three are compiled as roots so attached workers never extend
    /// the CNF beyond their private blocking clauses.
    pub fn build(
        circuit: Circuit,
        asserts: &[Bit],
        observables: &[Bit],
        candidates: &[Bit],
        cube: &CubeConfig,
    ) -> CompiledQuery {
        let roots: Vec<Bit> = asserts
            .iter()
            .chain(observables)
            .chain(candidates)
            .copied()
            .collect();
        let compiled = Arc::new(CompiledCircuit::compile(&circuit, roots));
        CompiledQuery::from_compiled(Arc::new(circuit), compiled, asserts, candidates, cube)
    }

    /// Builds a query around an existing compilation — the incremental
    /// path: `compiled` is typically a link of a sweep-shared layer chain
    /// ([`litsynth_relalg::CompiledCircuit::extend`]), `Arc`-shared across
    /// every query that runs over the same formula (queries then differ
    /// only in their assumption literals), and the circuit arena is shared
    /// by `Arc` across every query of the sweep.
    ///
    /// `compiled`'s roots must cover `asserts`, the observables, and
    /// `candidates`, exactly as [`CompiledQuery::build`] would compile
    /// them; only pin ranking (the probing run) happens here.
    pub fn from_compiled(
        circuit: Arc<Circuit>,
        compiled: Arc<CompiledCircuit>,
        asserts: &[Bit],
        candidates: &[Bit],
        cube: &CubeConfig,
    ) -> CompiledQuery {
        let probe_conflicts = if cube.adaptive {
            cube.probe_conflicts
        } else {
            0
        };
        let probe_start = Instant::now();
        let pins = rank_pins(&circuit, &compiled, asserts, candidates, probe_conflicts);
        CompiledQuery {
            circuit,
            compiled,
            pins,
            probe: probe_start.elapsed(),
        }
    }

    /// The circuit the query was built over.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The shared compilation.
    pub fn compiled(&self) -> &CompiledCircuit {
        &self.compiled
    }

    /// A fresh private finder over the shared clause arena.
    pub fn attach(&self) -> Finder {
        Finder::attach(&self.compiled)
    }

    /// Like [`CompiledQuery::attach`], but definitional layers of the
    /// shared arena start dormant and are watcher-installed only when the
    /// worker's assumptions or blocking clauses first reference them
    /// ([`Finder::attach_lazy`]). On a sweep-shared chain carrying one
    /// definitional layer per axiom this spares each worker the
    /// propagation tax of every *other* query's Tseitin cones while
    /// enumerating exactly the same instance set. Exchange and vault
    /// imports that touch a still-dormant cone are shelved and replayed
    /// on activation ([`Finder::set_shelving`]), and branching can be
    /// scoped to the declared cone via the two-level decision domain
    /// ([`Finder::set_domain_enabled`]).
    pub fn attach_lazy(&self) -> Finder {
        Finder::attach_lazy(&self.compiled)
    }

    /// Number of distinct pinnable bits available for cube splitting.
    pub fn num_pinnable(&self) -> usize {
        self.pins.len()
    }

    /// Wall-clock time the pin-selection probe took.
    pub fn probe_time(&self) -> Duration {
        self.probe
    }

    /// The pin assertions for cube `cube` of `2^cube_bits`: the top
    /// `cube_bits` ranked pins, each with the polarity encoded by the
    /// matching bit of `cube`.
    ///
    /// # Panics
    ///
    /// Panics if `cube_bits` exceeds [`CompiledQuery::num_pinnable`] —
    /// callers clamp first.
    pub fn cube_pins(&self, cube: usize, cube_bits: usize) -> Vec<Bit> {
        assert!(cube_bits <= self.pins.len(), "cube_bits not clamped");
        (0..cube_bits)
            .map(|j| {
                let b = self.pins[j];
                if cube >> j & 1 == 1 {
                    b
                } else {
                    b.not()
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exchange::{ExchangeBus, ExchangeConfig};
    use litsynth_sat::NoExchange;

    fn build_query() -> (CompiledQuery, Vec<Bit>, Bit) {
        let mut c = Circuit::new();
        let xs: Vec<Bit> = (0..5).map(|i| c.input(format!("x{i}"))).collect();
        let a = c.and(xs[2], xs[3]);
        let b = c.or(xs[0], xs[1]);
        let root = c.or(a, b);
        let q = CompiledQuery::build(c, &[root], &xs.clone(), &xs.clone(), &CubeConfig::default());
        (q, xs, root)
    }

    /// Enumerates one cube, returning its observable classes.
    fn run_cube(
        q: &CompiledQuery,
        xs: &[Bit],
        root: Bit,
        cube: usize,
        cube_bits: usize,
        exchange: &mut dyn litsynth_sat::ClauseExchange,
    ) -> Vec<Vec<bool>> {
        let mut f = q.attach();
        let mut asserts = vec![root];
        asserts.extend(q.cube_pins(cube, cube_bits));
        let mut classes = Vec::new();
        while let Some(inst) = f.next_instance_exchanging(q.circuit(), &asserts, exchange) {
            classes.push(inst.eval_many(q.circuit(), xs));
            f.block(q.circuit(), &inst, xs);
            assert!(classes.len() <= 32);
        }
        classes
    }

    #[test]
    fn cubes_partition_and_exchange_preserves_the_class_set() {
        let (q, xs, root) = build_query();
        // Sequential reference: one worker, no cubes, no exchange.
        let mut reference = run_cube(&q, &xs, root, 0, 0, &mut NoExchange);
        reference.sort();
        assert_eq!(reference.len(), 26);
        for cube_bits in [1usize, 2] {
            for exchange_on in [false, true] {
                let bus = ExchangeBus::new(ExchangeConfig {
                    enabled: exchange_on,
                    ..ExchangeConfig::default()
                });
                let mut all = Vec::new();
                for cube in 0..(1 << cube_bits) {
                    let mut ep = bus.endpoint(cube);
                    all.extend(run_cube(&q, &xs, root, cube, cube_bits, &mut ep));
                }
                all.sort();
                assert_eq!(
                    all, reference,
                    "cube_bits={cube_bits} exchange={exchange_on}"
                );
            }
        }
    }

    #[test]
    fn adaptive_and_slot_pins_select_from_the_same_candidates() {
        let (q, xs, _) = build_query();
        assert_eq!(q.num_pinnable(), xs.len());
        let mut ranked: Vec<Bit> = (0..xs.len()).map(|j| q.pins[j]).collect();
        ranked.sort();
        let mut given = xs.clone();
        given.sort();
        assert_eq!(ranked, given, "adaptive ranking permutes the candidates");
    }

    #[test]
    fn compiled_query_is_sync() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<CompiledQuery>();
    }
}
