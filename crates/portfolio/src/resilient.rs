//! Panic isolation and retry-with-backoff for pool workers.
//!
//! [`run_resilient`] is [`run_ordered`](crate::pool::run_ordered) with a
//! supervisor around each item: the work function runs under
//! `catch_unwind`, a panicked or interrupted attempt is retried with
//! exponential backoff, and after the attempt budget is spent the item is
//! reported [`TaskReport::degraded`] instead of poisoning the pool or
//! aborting the run. The caller decides what an attempt means — typically
//! a fresh solver per attempt, with exchange imports disabled on the last
//! one so the final try is maximally independent of peer timing (on a
//! lazily attached solver that also stops *new* clauses reaching the
//! import shelf; clauses shelved by earlier attempts are part of the
//! solver's database like any already-imported clause and replay as
//! usual — replays only prune, so they cannot wedge the final try).

use crate::pool::run_ordered;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// Retry policy for [`run_resilient`].
#[derive(Clone, Copy, Debug)]
pub struct RetryConfig {
    /// Total attempts per item, including the first (minimum 1).
    pub max_attempts: usize,
    /// Backoff before retry `k` is `backoff_base_ms << (k-1)` milliseconds.
    pub backoff_base_ms: u64,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            max_attempts: 3,
            backoff_base_ms: 10,
        }
    }
}

/// What one attempt at one item produced.
#[derive(Clone, Debug)]
pub enum Attempt<R> {
    /// The attempt completed; no retry needed.
    Done(R),
    /// The attempt was interrupted (budget, deadline, injected fault, …).
    Interrupted {
        /// Human-readable reason, recorded in [`TaskReport::failures`].
        reason: String,
        /// Best-effort partial result, used if no later attempt completes.
        partial: Option<R>,
        /// `false` suppresses further attempts (e.g. cooperative
        /// cancellation: retrying a cancelled task is pointless).
        retry: bool,
    },
}

/// The supervised outcome of one item.
#[derive(Clone, Debug)]
pub struct TaskReport<R> {
    /// The completed result, or the last partial result, or `None` when
    /// every attempt panicked without producing anything.
    pub result: Option<R>,
    /// `true` when no attempt completed — `result` (if any) is partial.
    pub degraded: bool,
    /// Attempts actually made (1 when the first try completed).
    pub attempts: usize,
    /// One reason per failed attempt, in order.
    pub failures: Vec<String>,
}

impl<R> TaskReport<R> {
    /// Retries that happened beyond the first attempt.
    pub fn retries(&self) -> u64 {
        (self.attempts.saturating_sub(1)) as u64
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

/// Runs `f` over every item on up to `threads` workers (results in item
/// order, like [`run_ordered`](crate::pool::run_ordered)), isolating each
/// attempt behind `catch_unwind` and retrying per `retry`.
///
/// `f` receives `(index, item, attempt)` with `attempt` counting from 0;
/// it must treat each attempt as a fresh start (new solver state), because
/// a panic can leave anything the previous attempt touched behind.
pub fn run_resilient<T, R, F>(
    items: &[T],
    threads: usize,
    retry: &RetryConfig,
    f: F,
) -> Vec<TaskReport<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T, usize) -> Attempt<R> + Sync,
{
    let max_attempts = retry.max_attempts.max(1);
    run_ordered(items, threads, |i, item| {
        let mut failures = Vec::new();
        let mut partial: Option<R> = None;
        for attempt in 0..max_attempts {
            if attempt > 0 && retry.backoff_base_ms > 0 {
                let shift = (attempt - 1).min(16) as u32;
                std::thread::sleep(Duration::from_millis(retry.backoff_base_ms << shift));
            }
            match catch_unwind(AssertUnwindSafe(|| f(i, item, attempt))) {
                Ok(Attempt::Done(r)) => {
                    return TaskReport {
                        result: Some(r),
                        degraded: false,
                        attempts: attempt + 1,
                        failures,
                    };
                }
                Ok(Attempt::Interrupted {
                    reason,
                    partial: p,
                    retry: retry_again,
                }) => {
                    failures.push(reason);
                    if p.is_some() {
                        partial = p;
                    }
                    if !retry_again {
                        return TaskReport {
                            result: partial,
                            degraded: true,
                            attempts: attempt + 1,
                            failures,
                        };
                    }
                }
                Err(payload) => {
                    failures.push(panic_message(payload));
                }
            }
        }
        TaskReport {
            result: partial,
            degraded: true,
            attempts: max_attempts,
            failures,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn first_attempt_success_is_clean() {
        let reports = run_resilient(&[1, 2, 3], 2, &RetryConfig::default(), |_, &x, _| {
            Attempt::Done(x * 10)
        });
        let results: Vec<i32> = reports.iter().map(|r| r.result.unwrap()).collect();
        assert_eq!(results, vec![10, 20, 30]);
        assert!(reports.iter().all(|r| !r.degraded && r.attempts == 1));
        assert!(reports.iter().all(|r| r.failures.is_empty()));
    }

    #[test]
    fn panicking_attempt_is_retried_and_succeeds() {
        let tries = AtomicUsize::new(0);
        let retry = RetryConfig {
            max_attempts: 3,
            backoff_base_ms: 0,
        };
        let reports = run_resilient(&[()], 1, &retry, |_, _, attempt| {
            tries.fetch_add(1, Ordering::Relaxed);
            if attempt == 0 {
                panic!("injected test panic");
            }
            Attempt::Done(42)
        });
        assert_eq!(tries.load(Ordering::Relaxed), 2);
        assert_eq!(reports[0].result, Some(42));
        assert!(!reports[0].degraded);
        assert_eq!(reports[0].attempts, 2);
        assert_eq!(reports[0].failures.len(), 1);
        assert!(reports[0].failures[0].contains("injected test panic"));
    }

    #[test]
    fn exhausted_attempts_degrade_with_last_partial() {
        let retry = RetryConfig {
            max_attempts: 3,
            backoff_base_ms: 0,
        };
        let reports = run_resilient(&[()], 1, &retry, |_, _, attempt| Attempt::Interrupted {
            reason: format!("attempt {attempt} interrupted"),
            partial: Some(attempt),
            retry: true,
        });
        assert!(reports[0].degraded);
        assert_eq!(reports[0].result, Some(2), "last attempt's partial wins");
        assert_eq!(reports[0].attempts, 3);
        assert_eq!(reports[0].retries(), 2);
        assert_eq!(reports[0].failures.len(), 3);
    }

    #[test]
    fn all_panics_degrade_with_no_result() {
        let retry = RetryConfig {
            max_attempts: 2,
            backoff_base_ms: 0,
        };
        let reports: Vec<TaskReport<i32>> =
            run_resilient(&[()], 1, &retry, |_, _, _| -> Attempt<i32> {
                panic!("always");
            });
        assert!(reports[0].degraded);
        assert_eq!(reports[0].result, None);
        assert_eq!(reports[0].failures.len(), 2);
    }

    #[test]
    fn no_retry_flag_stops_immediately() {
        let tries = AtomicUsize::new(0);
        let retry = RetryConfig {
            max_attempts: 5,
            backoff_base_ms: 0,
        };
        let reports: Vec<TaskReport<i32>> = run_resilient(&[()], 1, &retry, |_, _, _| {
            tries.fetch_add(1, Ordering::Relaxed);
            Attempt::Interrupted {
                reason: "cancelled".to_string(),
                partial: None,
                retry: false,
            }
        });
        assert_eq!(tries.load(Ordering::Relaxed), 1);
        assert!(reports[0].degraded);
        assert_eq!(reports[0].attempts, 1);
    }

    #[test]
    fn one_poisoned_item_does_not_poison_the_pool() {
        // 8 items on 4 threads, one item always panics: the other 7 must
        // come back clean and in order.
        let retry = RetryConfig {
            max_attempts: 2,
            backoff_base_ms: 0,
        };
        let items: Vec<usize> = (0..8).collect();
        let reports = run_resilient(&items, 4, &retry, |_, &x, _| {
            if x == 3 {
                panic!("item 3 is cursed");
            }
            Attempt::Done(x)
        });
        for (i, r) in reports.iter().enumerate() {
            if i == 3 {
                assert!(r.degraded);
                assert_eq!(r.result, None);
            } else {
                assert_eq!(r.result, Some(i));
                assert!(!r.degraded);
            }
        }
    }
}
