//! Work units and the work-stealing claim queue of the shard layer.
//!
//! A [`WorkUnit`] names one (axiom, bound) query of a sweep: its journal
//! key, its config fingerprint (the network-visible cache key — see
//! `litsynth_core::journal::config_fingerprint`), and its position in the
//! sweep's deterministic merge order. Units carry no work themselves; the
//! serving layer pairs each unit with the state needed to run it and
//! merges results by `seq`, never by completion order, which is what keeps
//! sharded suites byte-identical to a direct sweep.
//!
//! [`StealQueue`] is the claim structure shards pull from: one deque per
//! shard, local pops from the front, steals from the *back* of the longest
//! sibling queue (the classic work-stealing shape — thieves take the items
//! the owner would reach last). Because every unit is claimed exactly once
//! and the merge is order-indexed, stealing affects only which shard does
//! the work, never the served bytes.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One claimable (axiom, bound) unit of a sweep.
#[derive(Clone, Debug)]
pub struct WorkUnit {
    /// The query's journal/fault-plan key, e.g. `tso/sc_per_loc/3`.
    pub key: Arc<str>,
    /// The query's config fingerprint — two units with equal keys and
    /// fingerprints provably produce the same canonical suite.
    pub fingerprint: u64,
    /// Position in the sweep's deterministic merge order (bound-ascending,
    /// axiom order within a bound).
    pub seq: usize,
}

/// Counters for one [`StealQueue`], all monotone.
#[derive(Debug, Default)]
pub struct StealStats {
    /// Items pushed, over all shards.
    pub pushed: AtomicU64,
    /// Claims served from the claimant's own deque.
    pub claimed_local: AtomicU64,
    /// Claims served by stealing from a sibling's deque.
    pub stolen: AtomicU64,
}

impl StealStats {
    /// `(pushed, claimed_local, stolen)` snapshot.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.pushed.load(Ordering::Relaxed),
            self.claimed_local.load(Ordering::Relaxed),
            self.stolen.load(Ordering::Relaxed),
        )
    }
}

/// A per-shard deque set with work stealing. Push distributes explicitly
/// (the caller picks the home shard, typically round-robin by `seq`);
/// [`StealQueue::claim`] serves the claimant's own queue first and steals
/// from the longest sibling queue when it is empty. Every pushed item is
/// claimed exactly once.
#[derive(Debug)]
pub struct StealQueue<T> {
    shards: Vec<Mutex<VecDeque<T>>>,
    stats: StealStats,
}

impl<T> StealQueue<T> {
    /// A queue set for `shards` shards (minimum 1).
    pub fn new(shards: usize) -> StealQueue<T> {
        StealQueue {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            stats: StealStats::default(),
        }
    }

    /// Number of shard deques.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    fn deque(&self, shard: usize) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.shards[shard % self.shards.len()]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueues `item` on `shard`'s deque (wrapped modulo the shard count).
    pub fn push(&self, shard: usize, item: T) {
        self.deque(shard).push_back(item);
        self.stats.pushed.fetch_add(1, Ordering::Relaxed);
    }

    /// Claims the next item for `shard`: its own deque front first, else
    /// the back of the longest sibling deque. Returns the item and whether
    /// it was stolen; `None` means every deque is (momentarily) empty.
    pub fn claim(&self, shard: usize) -> Option<(T, bool)> {
        if let Some(item) = self.deque(shard).pop_front() {
            self.stats.claimed_local.fetch_add(1, Ordering::Relaxed);
            return Some((item, false));
        }
        // Steal from the currently longest sibling. Length is sampled
        // without holding every lock at once (no lock-order cycles); a
        // stale sample only means a suboptimal victim, never a lost item.
        let me = shard % self.shards.len();
        let victim = (0..self.shards.len())
            .filter(|&s| s != me)
            .map(|s| (self.deque(s).len(), s))
            .max()
            .filter(|&(len, _)| len > 0)
            .map(|(_, s)| s)?;
        let item = self.deque(victim).pop_back()?;
        self.stats.stolen.fetch_add(1, Ordering::Relaxed);
        Some((item, true))
    }

    /// Total items currently queued, over all shards.
    pub fn len(&self) -> usize {
        (0..self.shards.len()).map(|s| self.deque(s).len()).sum()
    }

    /// `true` when every deque is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The queue's counters.
    pub fn stats(&self) -> &StealStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn local_claims_drain_in_push_order() {
        let q: StealQueue<usize> = StealQueue::new(2);
        for i in 0..4 {
            q.push(0, i);
        }
        let got: Vec<usize> = std::iter::from_fn(|| q.claim(0).map(|(i, _)| i)).collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
        let (pushed, local, stolen) = q.stats().snapshot();
        assert_eq!((pushed, local, stolen), (4, 4, 0));
    }

    #[test]
    fn empty_shard_steals_from_the_longest_sibling() {
        let q: StealQueue<usize> = StealQueue::new(3);
        for i in 0..6 {
            q.push(1, i); // all work lands on shard 1
        }
        let (item, stolen) = q.claim(0).expect("steal succeeds");
        assert!(stolen);
        assert_eq!(item, 5, "thieves take from the back");
        let (item, stolen) = q.claim(1).expect("owner claims");
        assert!(!stolen);
        assert_eq!(item, 0, "owner takes from the front");
        assert!(q.stats().snapshot().2 >= 1);
    }

    #[test]
    fn concurrent_claims_deliver_every_item_exactly_once() {
        let q: Arc<StealQueue<usize>> = Arc::new(StealQueue::new(4));
        let total = 400usize;
        for i in 0..total {
            q.push(i % 2, i); // skewed: only shards 0 and 1 are fed
        }
        let claimed: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|scope| {
            for shard in 0..4 {
                let q = q.clone();
                let claimed = claimed.clone();
                scope.spawn(move || {
                    while let Some((item, _)) = q.claim(shard) {
                        claimed.lock().unwrap().push(item);
                    }
                });
            }
        });
        let got = claimed.lock().unwrap();
        assert_eq!(got.len(), total, "every unit claimed exactly once");
        let distinct: BTreeSet<usize> = got.iter().copied().collect();
        assert_eq!(distinct.len(), total, "no unit claimed twice");
        let (pushed, local, stolen) = q.stats().snapshot();
        assert_eq!(pushed, total as u64);
        assert_eq!(local + stolen, total as u64);
        assert!(stolen > 0, "starved shards must steal");
        assert!(q.is_empty());
    }
}
