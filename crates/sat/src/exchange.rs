//! Learnt-clause exchange between cooperating solvers.
//!
//! A portfolio of solvers working on disjoint parts of one search space
//! (e.g. the cube workers of a partitioned enumeration) can share what they
//! learn: every learnt clause is a resolvent of database clauses, so it is
//! implied by the formula the solvers have in common and pruning with it
//! can never change which models exist — only how fast they are found.
//!
//! The solver side of the protocol is this trait. At every restart boundary
//! (and at the end of each solve) the solver *exports* the clauses it learnt
//! since the last exchange point and *fetches* whatever its peers published
//! in the meantime; fetched clauses enter the database as learnt imports,
//! eligible for the usual database reduction. A lazily attached receiver
//! ([`crate::Solver::attach_shared_lazy`]) additionally *shelves* a
//! fetched clause that mentions a still-dormant definitional cone and
//! replays it the moment that cone activates — never activating a cone
//! for an import, and never discarding one either
//! ([`crate::Solver::set_shelving`]).
//!
//! Every exported clause carries a *skeleton-purity* flag: `true` iff the
//! solver derived it exclusively from clauses of skeleton-tagged shared
//! layers (see [`crate::SharedCnf`]). Skeleton-pure clauses are implied by
//! the shared structural skeleton alone — not by any axiom-specific layer,
//! blocking clause, or peer import of unknown provenance — so they remain
//! valid for *any* query whose formula contains the identical skeleton
//! prefix. The flag travels with the clause through [`ClauseExchange::fetch`]
//! so a receiving solver can keep propagating purity through its own
//! derivations.
//!
//! # Soundness contract for implementors
//!
//! Every clause returned by [`ClauseExchange::fetch`] must be satisfied by
//! every assignment the receiving solver is still expected to find, and a
//! clause handed over with `skeleton == true` must be implied by the
//! receiver's skeleton layers alone. For the synthesis portfolio this holds
//! because cube workers share one compiled formula, cubes are pinned on
//! *observed* bits, and blocking clauses from one cube are automatically
//! satisfied inside every other cube — see `crates/portfolio` for the full
//! argument; the cross-query clause vault additionally guards skeleton
//! imports behind a layer-chain fingerprint match.

use crate::types::Lit;

/// One endpoint of a clause-exchange channel.
pub trait ClauseExchange {
    /// Offers a clause learnt since the last exchange point, with its LBD
    /// (number of distinct decision levels among its literals — lower is
    /// better) and its skeleton-purity flag. The endpoint decides whether
    /// to publish it.
    fn export(&mut self, lits: &[Lit], lbd: u32, skeleton: bool);

    /// Appends peer clauses not yet seen by this endpoint to `out`, each
    /// with the LBD its sender reported and its skeleton-purity flag. The
    /// receiver treats the LBD as an upper bound — it recomputes a tighter
    /// one when the clause participates in conflict analysis — but the
    /// sender-side value is what keeps tiered retention from misfiling an
    /// import before its first use.
    fn fetch(&mut self, out: &mut Vec<(Vec<Lit>, u32, bool)>);
}

/// The no-op exchange: plain solving without a portfolio.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoExchange;

impl ClauseExchange for NoExchange {
    fn export(&mut self, _lits: &[Lit], _lbd: u32, _skeleton: bool) {}
    fn fetch(&mut self, _out: &mut Vec<(Vec<Lit>, u32, bool)>) {}
}
