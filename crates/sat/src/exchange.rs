//! Learnt-clause exchange between cooperating solvers.
//!
//! A portfolio of solvers working on disjoint parts of one search space
//! (e.g. the cube workers of a partitioned enumeration) can share what they
//! learn: every learnt clause is a resolvent of database clauses, so it is
//! implied by the formula the solvers have in common and pruning with it
//! can never change which models exist — only how fast they are found.
//!
//! The solver side of the protocol is this trait. At every restart boundary
//! (and at the end of each solve) the solver *exports* the clauses it learnt
//! since the last exchange point and *fetches* whatever its peers published
//! in the meantime; fetched clauses enter the database as learnt imports,
//! eligible for the usual database reduction.
//!
//! # Soundness contract for implementors
//!
//! Every clause returned by [`ClauseExchange::fetch`] must be satisfied by
//! every assignment the receiving solver is still expected to find. For the
//! synthesis portfolio this holds because cube workers share one compiled
//! formula, cubes are pinned on *observed* bits, and blocking clauses from
//! one cube are automatically satisfied inside every other cube — see
//! `crates/portfolio` for the full argument.

use crate::types::Lit;

/// One endpoint of a clause-exchange channel.
pub trait ClauseExchange {
    /// Offers a clause learnt since the last exchange point, with its LBD
    /// (number of distinct decision levels among its literals — lower is
    /// better). The endpoint decides whether to publish it.
    fn export(&mut self, lits: &[Lit], lbd: u32);

    /// Appends peer clauses not yet seen by this endpoint to `out`.
    fn fetch(&mut self, out: &mut Vec<Vec<Lit>>);
}

/// The no-op exchange: plain solving without a portfolio.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoExchange;

impl ClauseExchange for NoExchange {
    fn export(&mut self, _lits: &[Lit], _lbd: u32) {}
    fn fetch(&mut self, _out: &mut Vec<Vec<Lit>>) {}
}
