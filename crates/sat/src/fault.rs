//! Deterministic fault injection for resilience testing.
//!
//! A [`FaultPlan`] names exact coordinates — (query, cube, attempt,
//! restart) — at which the solver or the portfolio pool should misbehave:
//! panic, return an injected interrupt, or sleep to simulate a slow query.
//! Because the coordinates are deterministic (they follow the solver's own
//! deterministic restart schedule), every recovery path can be exercised
//! reproducibly in tests instead of waiting for a real crash.
//!
//! Plans are normally installed through the `LITSYNTH_FAULT_PLAN`
//! environment variable. The format is a `;`-separated list of sites:
//!
//! ```text
//! <query>@<cube>@<attempt>@<restart>@<action>
//! ```
//!
//! where `query` is the journal-style query key (e.g. `tso/sc_per_loc/2`),
//! `cube`/`attempt`/`restart` are integers or `*` (any), and `action` is
//! `panic`, `interrupt`, or `slow:<ms>`. Example:
//!
//! ```text
//! LITSYNTH_FAULT_PLAN='tso/sc_per_loc/2@*@0@0@panic;tso/causality/2@1@*@3@slow:50'
//! ```
//!
//! injects one panic into every cube's first attempt on the
//! `tso/sc_per_loc/2` query (the retry then succeeds), and a 50 ms stall
//! at restart 3 of cube 1 on `tso/causality/2`, on every attempt.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// What an armed fault site does when hit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultAction {
    /// Panic in the worker (exercises `catch_unwind` + retry).
    Panic,
    /// Force the solve to return an injected interrupt.
    Interrupt,
    /// Sleep this long, then continue normally (simulates a slow query).
    Slow(Duration),
}

/// One armed coordinate in a [`FaultPlan`].
#[derive(Clone, Debug)]
pub struct FaultSite {
    /// Query key to match, or `*` for any (journal-style, e.g.
    /// `tso/sc_per_loc/2`).
    pub query: String,
    /// Cube index to match (`None` = any).
    pub cube: Option<usize>,
    /// Retry attempt to match (`None` = any; `0` is the first try).
    pub attempt: Option<usize>,
    /// Restart boundary to match (`None` = any; `0` fires before the first
    /// search iteration).
    pub restart: Option<u64>,
    /// What to do when the coordinates match.
    pub action: FaultAction,
}

impl FaultSite {
    fn matches(&self, query: &str, cube: usize, attempt: usize, restart: u64) -> bool {
        (self.query == "*" || self.query == query)
            && self.cube.is_none_or(|c| c == cube)
            && self.attempt.is_none_or(|a| a == attempt)
            && self.restart.is_none_or(|r| r == restart)
    }
}

/// A set of armed fault sites plus a counter of injections actually fired.
#[derive(Debug, Default)]
pub struct FaultPlan {
    sites: Vec<FaultSite>,
    hits: AtomicU64,
}

/// Error describing why a fault-plan string failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlanError {
    /// The site that failed to parse (after `;`-splitting).
    pub site: String,
    /// What was wrong with it.
    pub message: String,
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad fault site {:?}: {}", self.site, self.message)
    }
}

impl std::error::Error for FaultPlanError {}

fn parse_coord<T: std::str::FromStr>(
    field: &str,
    what: &str,
    site: &str,
) -> Result<Option<T>, FaultPlanError> {
    if field == "*" {
        return Ok(None);
    }
    field.parse::<T>().map(Some).map_err(|_| FaultPlanError {
        site: site.to_string(),
        message: format!("{what} must be an integer or '*', got {field:?}"),
    })
}

impl FaultPlan {
    /// Parses the `LITSYNTH_FAULT_PLAN` syntax documented at module level.
    pub fn parse(text: &str) -> Result<FaultPlan, FaultPlanError> {
        let mut sites = Vec::new();
        for raw in text.split(';') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            let fields: Vec<&str> = raw.split('@').collect();
            if fields.len() != 5 {
                return Err(FaultPlanError {
                    site: raw.to_string(),
                    message: format!(
                        "expected 5 '@'-separated fields (query@cube@attempt@restart@action), got {}",
                        fields.len()
                    ),
                });
            }
            let action = match fields[4] {
                "panic" => FaultAction::Panic,
                "interrupt" => FaultAction::Interrupt,
                a => match a.strip_prefix("slow:") {
                    Some(ms) => {
                        let ms: u64 = ms.parse().map_err(|_| FaultPlanError {
                            site: raw.to_string(),
                            message: format!("slow action needs integer milliseconds, got {ms:?}"),
                        })?;
                        FaultAction::Slow(Duration::from_millis(ms))
                    }
                    None => {
                        return Err(FaultPlanError {
                            site: raw.to_string(),
                            message: format!(
                                "unknown action {a:?} (expected panic, interrupt, or slow:<ms>)"
                            ),
                        })
                    }
                },
            };
            sites.push(FaultSite {
                query: fields[0].to_string(),
                cube: parse_coord(fields[1], "cube", raw)?,
                attempt: parse_coord(fields[2], "attempt", raw)?,
                restart: parse_coord(fields[3], "restart", raw)?,
                action,
            });
        }
        Ok(FaultPlan {
            sites,
            hits: AtomicU64::new(0),
        })
    }

    /// The process-wide plan from `LITSYNTH_FAULT_PLAN`, read once.
    /// `None` when the variable is unset or empty; a malformed plan aborts
    /// loudly rather than silently running fault-free.
    pub fn global() -> Option<Arc<FaultPlan>> {
        static GLOBAL: OnceLock<Option<Arc<FaultPlan>>> = OnceLock::new();
        GLOBAL
            .get_or_init(|| {
                let text = std::env::var("LITSYNTH_FAULT_PLAN").ok()?;
                if text.trim().is_empty() {
                    return None;
                }
                match FaultPlan::parse(&text) {
                    Ok(plan) => Some(Arc::new(plan)),
                    Err(e) => panic!("LITSYNTH_FAULT_PLAN: {e}"),
                }
            })
            .clone()
    }

    /// `true` if the plan has no armed sites.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// How many injections have fired so far, process-wide for this plan.
    pub fn injections(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// The action armed at these coordinates, if any, counting the hit.
    pub fn action_at(
        &self,
        query: &str,
        cube: usize,
        attempt: usize,
        restart: u64,
    ) -> Option<FaultAction> {
        let action = self
            .sites
            .iter()
            .find(|s| s.matches(query, cube, attempt, restart))
            .map(|s| s.action)?;
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(action)
    }
}

/// Per-solve fault coordinates: a plan plus the (query, cube, attempt) the
/// current solve runs under. The solver supplies the restart number.
#[derive(Clone, Debug)]
pub struct FaultCtx {
    /// The armed plan.
    pub plan: Arc<FaultPlan>,
    /// Journal-style query key (e.g. `tso/sc_per_loc/2`).
    pub query: Arc<str>,
    /// Cube index within the query.
    pub cube: usize,
    /// Retry attempt (`0` is the first try).
    pub attempt: usize,
}

impl FaultCtx {
    /// The action armed at this solve's coordinates for `restart`, if any.
    pub fn action_at(&self, restart: u64) -> Option<FaultAction> {
        self.plan
            .action_at(&self.query, self.cube, self.attempt, restart)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_wildcards_and_actions() {
        let plan =
            FaultPlan::parse("tso/sc_per_loc/2@*@0@0@panic; q@1@*@3@slow:50 ;*@*@*@*@interrupt")
                .expect("plan parses");
        assert_eq!(plan.sites.len(), 3);
        assert_eq!(plan.sites[0].cube, None);
        assert_eq!(plan.sites[0].attempt, Some(0));
        assert_eq!(plan.sites[0].action, FaultAction::Panic);
        assert_eq!(plan.sites[1].restart, Some(3));
        assert_eq!(
            plan.sites[1].action,
            FaultAction::Slow(Duration::from_millis(50))
        );
        assert_eq!(plan.sites[2].query, "*");
        assert_eq!(plan.sites[2].action, FaultAction::Interrupt);
    }

    #[test]
    fn empty_plan_is_empty() {
        let plan = FaultPlan::parse("  ").expect("empty plan parses");
        assert!(plan.is_empty());
        assert_eq!(plan.action_at("anything", 0, 0, 0), None);
    }

    #[test]
    fn rejects_malformed_sites() {
        assert!(FaultPlan::parse("too@few@fields").is_err());
        assert!(FaultPlan::parse("q@x@0@0@panic").is_err());
        assert!(FaultPlan::parse("q@0@0@0@explode").is_err());
        assert!(FaultPlan::parse("q@0@0@0@slow:abc").is_err());
    }

    #[test]
    fn matching_respects_coordinates_and_counts_hits() {
        let plan = FaultPlan::parse("q/a/2@1@0@5@panic").expect("plan parses");
        assert_eq!(plan.action_at("q/a/2", 1, 0, 5), Some(FaultAction::Panic));
        assert_eq!(plan.action_at("q/a/2", 1, 0, 4), None);
        assert_eq!(plan.action_at("q/a/2", 1, 1, 5), None);
        assert_eq!(plan.action_at("q/a/2", 2, 0, 5), None);
        assert_eq!(plan.action_at("q/b/2", 1, 0, 5), None);
        assert_eq!(plan.injections(), 1);
    }

    #[test]
    fn ctx_supplies_fixed_coordinates() {
        let plan = Arc::new(FaultPlan::parse("q@0@*@2@interrupt").expect("plan parses"));
        let ctx = FaultCtx {
            plan: plan.clone(),
            query: Arc::from("q"),
            cube: 0,
            attempt: 7,
        };
        assert_eq!(ctx.action_at(1), None);
        assert_eq!(ctx.action_at(2), Some(FaultAction::Interrupt));
        assert_eq!(plan.injections(), 1);
    }
}
