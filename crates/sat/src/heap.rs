//! Indexed binary max-heap ordered by variable activity (VSIDS).
//!
//! The heap stores variable indices and supports `decrease`/`increase` key
//! updates in `O(log n)` via a position index, which a plain
//! `std::collections::BinaryHeap` cannot do.

/// A binary max-heap over `usize` keys with an external score array.
#[derive(Debug, Default, Clone)]
pub(crate) struct ActivityHeap {
    heap: Vec<usize>,
    /// `pos[k]` is the index of key `k` in `heap`, or `usize::MAX` if absent.
    pos: Vec<usize>,
}

const ABSENT: usize = usize::MAX;

impl ActivityHeap {
    #[cfg(test)]
    pub(crate) fn new() -> Self {
        ActivityHeap::default()
    }

    /// Grows the position index to accommodate keys `< n`.
    pub(crate) fn reserve_keys(&mut self, n: usize) {
        if self.pos.len() < n {
            self.pos.resize(n, ABSENT);
        }
    }

    pub(crate) fn contains(&self, key: usize) -> bool {
        self.pos.get(key).copied().unwrap_or(ABSENT) != ABSENT
    }

    /// Inserts `key`; no-op if already present.
    pub(crate) fn insert(&mut self, key: usize, score: &[f64]) {
        self.reserve_keys(key + 1);
        if self.contains(key) {
            return;
        }
        self.pos[key] = self.heap.len();
        self.heap.push(key);
        self.sift_up(self.heap.len() - 1, score);
    }

    /// Removes and returns the key with the highest score.
    pub(crate) fn pop_max(&mut self, score: &[f64]) -> Option<usize> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty");
        self.pos[top] = ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last] = 0;
            self.sift_down(0, score);
        }
        Some(top)
    }

    /// Restores heap order after `key`'s score increased.
    pub(crate) fn increased(&mut self, key: usize, score: &[f64]) {
        if let Some(&p) = self.pos.get(key) {
            if p != ABSENT {
                self.sift_up(p, score);
            }
        }
    }

    /// Rebuilds the heap after all scores were rescaled uniformly.
    /// Uniform rescaling preserves order, so this is a no-op; provided for
    /// symmetry with solvers that use non-uniform decay.
    pub(crate) fn rescaled(&mut self) {}

    fn sift_up(&mut self, mut i: usize, score: &[f64]) {
        let key = self.heap[i];
        while i > 0 {
            let parent = (i - 1) / 2;
            if score[self.heap[parent]] >= score[key] {
                break;
            }
            self.heap[i] = self.heap[parent];
            self.pos[self.heap[i]] = i;
            i = parent;
        }
        self.heap[i] = key;
        self.pos[key] = i;
    }

    fn sift_down(&mut self, mut i: usize, score: &[f64]) {
        let key = self.heap[i];
        let n = self.heap.len();
        loop {
            let left = 2 * i + 1;
            if left >= n {
                break;
            }
            let right = left + 1;
            let child = if right < n && score[self.heap[right]] > score[self.heap[left]] {
                right
            } else {
                left
            };
            if score[self.heap[child]] <= score[key] {
                break;
            }
            self.heap[i] = self.heap[child];
            self.pos[self.heap[i]] = i;
            i = child;
        }
        self.heap[i] = key;
        self.pos[key] = i;
    }

    #[cfg(test)]
    fn check_invariants(&self, score: &[f64]) {
        for (i, &k) in self.heap.iter().enumerate() {
            assert_eq!(self.pos[k], i);
            if i > 0 {
                assert!(score[self.heap[(i - 1) / 2]] >= score[k]);
            }
        }
    }
}

/// The *local* level of a two-level decision domain (gipsat-style): a
/// generation-stamped membership mark over the variables plus a private
/// activity heap holding the marked-and-unassigned ones.
///
/// The solver rebuilds the mark once per query (at
/// [`declare_roots`](crate::Solver::declare_roots), O(cone)) and then
/// enables/disables it per solve in O(1) — disabling is a flag flip in the
/// solver, re-enabling reuses the surviving heap, and replacing the domain
/// is a generation bump that invalidates every old stamp at once without
/// clearing the array. While enabled, branching pops the local heap first
/// and falls back to the global VSIDS heap only when no marked variable is
/// left unassigned, so the restriction can never make a query *less*
/// complete — it only reorders decisions (see DESIGN §3b).
#[derive(Debug, Default, Clone)]
pub(crate) struct DecisionDomain {
    /// `stamp[v] == gen` ⇔ `v` is in the current local domain.
    stamp: Vec<u32>,
    gen: u32,
    /// Members of the current generation (fixed at rebuild time).
    members: usize,
    /// Marked variables currently eligible for a local decision.
    heap: ActivityHeap,
}

impl DecisionDomain {
    /// Discards the current domain: bumps the generation (constant time —
    /// old stamps become stale rather than being cleared) and empties the
    /// local heap. On the (astronomically rare) generation wrap the stamp
    /// array is cleared outright, so a stamp from 2³² resets ago can never
    /// alias the fresh generation.
    pub(crate) fn reset(&mut self) {
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            self.stamp.fill(0);
            self.gen = 1;
        }
        self.members = 0;
        self.heap = ActivityHeap::default();
    }

    /// Grows the stamp array to accommodate keys `< n`. New keys carry
    /// stamp 0, which `reset` guarantees is never a live generation.
    pub(crate) fn reserve_keys(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
    }

    /// Marks `key` as a member of the current domain. Returns `true` if it
    /// was not already marked this generation.
    pub(crate) fn add(&mut self, key: usize) -> bool {
        self.reserve_keys(key + 1);
        if self.stamp[key] == self.gen {
            return false;
        }
        self.stamp[key] = self.gen;
        self.members += 1;
        true
    }

    /// `true` iff `key` is marked in the current domain. An empty domain
    /// (never built, or reset and not repopulated) contains nothing — the
    /// guard also keeps the default stamp value from matching the default
    /// generation before the first `reset`.
    pub(crate) fn contains(&self, key: usize) -> bool {
        self.members != 0 && self.stamp.get(key).copied() == Some(self.gen)
    }

    /// Number of marked variables this generation.
    pub(crate) fn len(&self) -> usize {
        self.members
    }

    /// Makes `key` eligible for a local decision if (and only if) it is a
    /// member; no-op otherwise, so callers can offer every unassigned
    /// variable without checking membership first.
    pub(crate) fn enqueue(&mut self, key: usize, score: &[f64]) {
        if self.contains(key) {
            self.heap.insert(key, score);
        }
    }

    /// Pops the highest-activity member still queued locally, or `None`
    /// when the local level is exhausted (global fallback).
    pub(crate) fn pop(&mut self, score: &[f64]) -> Option<usize> {
        self.heap.pop_max(score)
    }

    /// Restores local-heap order after `key`'s score increased (no-op for
    /// non-members and members not currently queued).
    pub(crate) fn increased(&mut self, key: usize, score: &[f64]) {
        self.heap.increased(key, score);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pop_order_is_descending_by_score() {
        let score = vec![0.5, 3.0, 1.0, 2.0, 0.0];
        let mut h = ActivityHeap::new();
        for k in 0..score.len() {
            h.insert(k, &score);
            h.check_invariants(&score);
        }
        let mut out = Vec::new();
        while let Some(k) = h.pop_max(&score) {
            out.push(k);
        }
        assert_eq!(out, vec![1, 3, 2, 0, 4]);
    }

    #[test]
    fn reinsert_after_pop() {
        let score = vec![1.0, 2.0];
        let mut h = ActivityHeap::new();
        h.insert(0, &score);
        h.insert(1, &score);
        assert_eq!(h.pop_max(&score), Some(1));
        assert!(!h.contains(1));
        h.insert(1, &score);
        assert!(h.contains(1));
        assert_eq!(h.pop_max(&score), Some(1));
    }

    #[test]
    fn duplicate_insert_ignored() {
        let score = vec![1.0];
        let mut h = ActivityHeap::new();
        h.insert(0, &score);
        h.insert(0, &score);
        assert_eq!(h.pop_max(&score), Some(0));
        assert_eq!(h.pop_max(&score), None);
    }

    #[test]
    fn increased_restores_order() {
        let mut score = vec![1.0, 2.0, 3.0];
        let mut h = ActivityHeap::new();
        for k in 0..3 {
            h.insert(k, &score);
        }
        score[0] = 10.0;
        h.increased(0, &score);
        h.check_invariants(&score);
        assert_eq!(h.pop_max(&score), Some(0));
    }

    #[test]
    fn decision_domain_marks_and_pops_members_only() {
        let score = vec![1.0, 4.0, 2.0, 3.0];
        let mut d = DecisionDomain::default();
        // Untouched domain: nothing is a member, nothing enqueues.
        assert!(!d.contains(0));
        d.enqueue(0, &score);
        assert_eq!(d.pop(&score), None);
        d.reset();
        assert!(d.add(1));
        assert!(d.add(3));
        assert!(!d.add(3), "re-marking is idempotent");
        assert_eq!(d.len(), 2);
        assert!(d.contains(1) && d.contains(3));
        assert!(!d.contains(0) && !d.contains(2));
        for k in 0..4 {
            d.enqueue(k, &score); // non-members silently skipped
        }
        assert_eq!(d.pop(&score), Some(1));
        assert_eq!(d.pop(&score), Some(3));
        assert_eq!(d.pop(&score), None, "local level exhausted");
        // Members re-enter the local queue (backtracking), strangers don't.
        d.enqueue(3, &score);
        d.enqueue(2, &score);
        assert_eq!(d.pop(&score), Some(3));
        assert_eq!(d.pop(&score), None);
    }

    #[test]
    fn decision_domain_reset_invalidates_old_generation() {
        let score = vec![1.0, 2.0];
        let mut d = DecisionDomain::default();
        d.reset();
        d.add(0);
        d.enqueue(0, &score);
        d.reset();
        assert!(!d.contains(0), "stamps from the old generation are stale");
        assert_eq!(d.pop(&score), None, "the local heap empties on reset");
        d.add(1);
        assert!(d.contains(1) && !d.contains(0));
    }
}
