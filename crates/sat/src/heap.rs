//! Indexed binary max-heap ordered by variable activity (VSIDS).
//!
//! The heap stores variable indices and supports `decrease`/`increase` key
//! updates in `O(log n)` via a position index, which a plain
//! `std::collections::BinaryHeap` cannot do.

/// A binary max-heap over `usize` keys with an external score array.
#[derive(Debug, Default, Clone)]
pub(crate) struct ActivityHeap {
    heap: Vec<usize>,
    /// `pos[k]` is the index of key `k` in `heap`, or `usize::MAX` if absent.
    pos: Vec<usize>,
}

const ABSENT: usize = usize::MAX;

impl ActivityHeap {
    #[cfg(test)]
    pub(crate) fn new() -> Self {
        ActivityHeap::default()
    }

    /// Grows the position index to accommodate keys `< n`.
    pub(crate) fn reserve_keys(&mut self, n: usize) {
        if self.pos.len() < n {
            self.pos.resize(n, ABSENT);
        }
    }

    pub(crate) fn contains(&self, key: usize) -> bool {
        self.pos.get(key).copied().unwrap_or(ABSENT) != ABSENT
    }

    /// Inserts `key`; no-op if already present.
    pub(crate) fn insert(&mut self, key: usize, score: &[f64]) {
        self.reserve_keys(key + 1);
        if self.contains(key) {
            return;
        }
        self.pos[key] = self.heap.len();
        self.heap.push(key);
        self.sift_up(self.heap.len() - 1, score);
    }

    /// Removes and returns the key with the highest score.
    pub(crate) fn pop_max(&mut self, score: &[f64]) -> Option<usize> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty");
        self.pos[top] = ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last] = 0;
            self.sift_down(0, score);
        }
        Some(top)
    }

    /// Restores heap order after `key`'s score increased.
    pub(crate) fn increased(&mut self, key: usize, score: &[f64]) {
        if let Some(&p) = self.pos.get(key) {
            if p != ABSENT {
                self.sift_up(p, score);
            }
        }
    }

    /// Rebuilds the heap after all scores were rescaled uniformly.
    /// Uniform rescaling preserves order, so this is a no-op; provided for
    /// symmetry with solvers that use non-uniform decay.
    pub(crate) fn rescaled(&mut self) {}

    fn sift_up(&mut self, mut i: usize, score: &[f64]) {
        let key = self.heap[i];
        while i > 0 {
            let parent = (i - 1) / 2;
            if score[self.heap[parent]] >= score[key] {
                break;
            }
            self.heap[i] = self.heap[parent];
            self.pos[self.heap[i]] = i;
            i = parent;
        }
        self.heap[i] = key;
        self.pos[key] = i;
    }

    fn sift_down(&mut self, mut i: usize, score: &[f64]) {
        let key = self.heap[i];
        let n = self.heap.len();
        loop {
            let left = 2 * i + 1;
            if left >= n {
                break;
            }
            let right = left + 1;
            let child = if right < n && score[self.heap[right]] > score[self.heap[left]] {
                right
            } else {
                left
            };
            if score[self.heap[child]] <= score[key] {
                break;
            }
            self.heap[i] = self.heap[child];
            self.pos[self.heap[i]] = i;
            i = child;
        }
        self.heap[i] = key;
        self.pos[key] = i;
    }

    #[cfg(test)]
    fn check_invariants(&self, score: &[f64]) {
        for (i, &k) in self.heap.iter().enumerate() {
            assert_eq!(self.pos[k], i);
            if i > 0 {
                assert!(score[self.heap[(i - 1) / 2]] >= score[k]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pop_order_is_descending_by_score() {
        let score = vec![0.5, 3.0, 1.0, 2.0, 0.0];
        let mut h = ActivityHeap::new();
        for k in 0..score.len() {
            h.insert(k, &score);
            h.check_invariants(&score);
        }
        let mut out = Vec::new();
        while let Some(k) = h.pop_max(&score) {
            out.push(k);
        }
        assert_eq!(out, vec![1, 3, 2, 0, 4]);
    }

    #[test]
    fn reinsert_after_pop() {
        let score = vec![1.0, 2.0];
        let mut h = ActivityHeap::new();
        h.insert(0, &score);
        h.insert(1, &score);
        assert_eq!(h.pop_max(&score), Some(1));
        assert!(!h.contains(1));
        h.insert(1, &score);
        assert!(h.contains(1));
        assert_eq!(h.pop_max(&score), Some(1));
    }

    #[test]
    fn duplicate_insert_ignored() {
        let score = vec![1.0];
        let mut h = ActivityHeap::new();
        h.insert(0, &score);
        h.insert(0, &score);
        assert_eq!(h.pop_max(&score), Some(0));
        assert_eq!(h.pop_max(&score), None);
    }

    #[test]
    fn increased_restores_order() {
        let mut score = vec![1.0, 2.0, 3.0];
        let mut h = ActivityHeap::new();
        for k in 0..3 {
            h.insert(k, &score);
        }
        score[0] = 10.0;
        h.increased(0, &score);
        h.check_invariants(&score);
        assert_eq!(h.pop_max(&score), Some(0));
    }
}
