//! DIMACS CNF serialization, for debugging and interoperability.
//!
//! The synthesis pipeline never goes through files, but being able to dump
//! the exact CNF a query produced (and re-load it into any external solver)
//! is invaluable when debugging an encoding.

use crate::{Lit, Solver, Var};
use std::fmt::Write as _;

/// A DIMACS parse failure, carrying the 1-based line number and the
/// offending text so the error is actionable without re-opening the file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DimacsError {
    /// 1-based line number of the failure (0 for whole-file errors such as
    /// a missing header).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl DimacsError {
    fn at(line: usize, message: String) -> DimacsError {
        DimacsError { line, message }
    }
}

impl std::fmt::Display for DimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "dimacs: {}", self.message)
        } else {
            write!(f, "dimacs: line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for DimacsError {}

/// A plain CNF formula: a clause list over `num_vars` variables.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Cnf {
    /// Number of variables; variable indices in clauses are `0..num_vars`.
    pub num_vars: usize,
    /// Clauses as literal lists.
    pub clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Creates an empty formula.
    pub fn new() -> Cnf {
        Cnf::default()
    }

    /// Adds a clause, growing `num_vars` as needed.
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) {
        let c: Vec<Lit> = lits.into_iter().collect();
        for &l in &c {
            self.num_vars = self.num_vars.max(l.var().index() + 1);
        }
        self.clauses.push(c);
    }

    /// Renders in DIMACS format (1-based, negative = negated).
    pub fn to_dimacs(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "p cnf {} {}", self.num_vars, self.clauses.len());
        for c in &self.clauses {
            for &l in c {
                let n = l.var().index() as i64 + 1;
                let _ = write!(out, "{} ", if l.is_positive() { n } else { -n });
            }
            let _ = writeln!(out, "0");
        }
        out
    }

    /// Parses DIMACS text.
    ///
    /// # Errors
    ///
    /// Returns a [`DimacsError`] locating the first malformed token or a
    /// missing header.
    pub fn parse_dimacs(text: &str) -> Result<Cnf, DimacsError> {
        let mut cnf = Cnf::new();
        let mut declared_vars = 0usize;
        let mut current: Vec<Lit> = Vec::new();
        let mut saw_header = false;
        for (lineno, line) in text.lines().enumerate() {
            let lineno = lineno + 1;
            let line = line.trim();
            if line.is_empty() || line.starts_with('c') {
                continue;
            }
            if let Some(rest) = line.strip_prefix('p') {
                let parts: Vec<&str> = rest.split_whitespace().collect();
                if parts.len() != 3 || parts[0] != "cnf" {
                    return Err(DimacsError::at(
                        lineno,
                        format!("malformed problem line: {line:?}"),
                    ));
                }
                declared_vars = parts[1].parse().map_err(|e| {
                    DimacsError::at(lineno, format!("bad variable count {:?}: {e}", parts[1]))
                })?;
                saw_header = true;
                continue;
            }
            for tok in line.split_whitespace() {
                let n: i64 = tok
                    .parse()
                    .map_err(|e| DimacsError::at(lineno, format!("bad literal {tok:?}: {e}")))?;
                if n == 0 {
                    cnf.clauses.push(std::mem::take(&mut current));
                } else {
                    let v = Var::from_index((n.unsigned_abs() as usize) - 1);
                    current.push(Lit::new(v, n > 0));
                }
            }
        }
        if !saw_header {
            return Err(DimacsError::at(0, "missing 'p cnf' header".to_string()));
        }
        if !current.is_empty() {
            cnf.clauses.push(current);
        }
        cnf.num_vars = cnf.num_vars.max(declared_vars);
        for c in &cnf.clauses {
            for &l in c {
                cnf.num_vars = cnf.num_vars.max(l.var().index() + 1);
            }
        }
        Ok(cnf)
    }

    /// Loads this formula into a fresh [`Solver`].
    pub fn into_solver(&self) -> Solver {
        let mut s = Solver::new();
        for _ in 0..self.num_vars {
            s.new_var();
        }
        for c in &self.clauses {
            s.add_clause(c.iter().copied());
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut cnf = Cnf::new();
        let v0 = Var::from_index(0);
        let v1 = Var::from_index(1);
        let v2 = Var::from_index(2);
        cnf.add_clause([Lit::pos(v0), Lit::neg(v1)]);
        cnf.add_clause([Lit::pos(v2)]);
        let text = cnf.to_dimacs();
        let back = Cnf::parse_dimacs(&text).unwrap();
        assert_eq!(cnf, back);
    }

    #[test]
    fn parse_with_comments_and_blank_lines() {
        let text = "c a comment\n\np cnf 2 2\n1 -2 0\n2 0\n";
        let cnf = Cnf::parse_dimacs(text).unwrap();
        assert_eq!(cnf.num_vars, 2);
        assert_eq!(cnf.clauses.len(), 2);
        let mut s = cnf.into_solver();
        assert!(s.solve().is_sat());
    }

    #[test]
    fn missing_header_is_error() {
        let err = Cnf::parse_dimacs("1 2 0\n").unwrap_err();
        assert_eq!(err.line, 0);
        assert!(err.to_string().contains("missing 'p cnf' header"), "{err}");
    }

    #[test]
    fn bad_literal_is_error_with_line_number() {
        let err = Cnf::parse_dimacs("p cnf 1 1\nc fine\nxyz 0\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.to_string().contains("bad literal \"xyz\""), "{err}");
    }

    #[test]
    fn malformed_header_reports_its_line() {
        let err = Cnf::parse_dimacs("c intro\np cnf oops\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn solver_agrees_with_text() {
        let text = "p cnf 1 2\n1 0\n-1 0\n";
        let cnf = Cnf::parse_dimacs(text).unwrap();
        let mut s = cnf.into_solver();
        assert!(!s.solve().is_sat());
    }
}
