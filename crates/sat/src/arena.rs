//! Flat clause arena: the solver's local clause database as one `u32` slab.
//!
//! Every local clause — original or learnt — lives in a single `Vec<u32>`,
//! addressed by a `CRef` (the word offset of its header). The layout per
//! clause is three header words followed by the literal codes:
//!
//! ```text
//! word 0   size << 6 | flags        (LEARNT, IMPORTED, SKELETON, DELETED,
//!                                    RELOC, USED)
//! word 1   tier << 30 | lbd         (forwarding CRef while RELOC is set)
//! word 2   f32 activity bits
//! word 3.. literal codes (Lit::code), `size` of them
//! ```
//!
//! Compared to the previous `Vec<Clause>`-of-`Vec<Lit>` storage this buys
//! cache locality in the propagation hot loop (one pointer chase per clause
//! instead of two) and makes deletion cheap: freed blocks enter an
//! exact-size free list and are reused by later allocations, and once the
//! wasted-word ratio passes a threshold a relocation GC
//! ([`ClauseArena::reloc`]) compacts every live clause into a fresh slab.
//!
//! Invariants:
//!
//! * A `CRef` is always `< 1 << 31`: the solver reserves the high bit for
//!   references into the shared [`crate::SharedCnf`] arena.
//! * Freed blocks are never relocated — the GC walks only live roots
//!   (watchers, reasons, the solver's clause lists), so a block on the
//!   free list is unreachable by construction.
//! * [`ClauseArena::remove_lit`] shrinks a clause in place; the stranded
//!   tail word is counted as waste and reclaimed by the next GC (the
//!   relocation copies only the live `size` words).

use crate::types::Lit;
use std::collections::HashMap;

/// Words of metadata preceding a clause's literals.
const HEADER: usize = 3;
/// Bits of word 0 reserved for flags; the clause size uses the rest.
const SIZE_SHIFT: u32 = 6;

const LEARNT: u32 = 1;
const IMPORTED: u32 = 2;
const SKELETON: u32 = 4;
const DELETED: u32 = 8;
const RELOC: u32 = 16;
const USED: u32 = 32;

/// Tier of a learnt clause under tiered retention (stored in the top two
/// bits of header word 1): `CORE` clauses (LBD ≤ 2) are kept forever,
/// `MID` clauses (LBD ≤ 6) survive reductions but are demoted to `LOCAL`
/// when unused between two reductions, and `LOCAL` clauses are the
/// activity-sorted deletion pool.
pub(crate) const TIER_CORE: u32 = 0;
pub(crate) const TIER_MID: u32 = 1;
pub(crate) const TIER_LOCAL: u32 = 2;

const LBD_MASK: u32 = (1 << 30) - 1;

/// The flat clause slab plus its free list and waste accounting.
#[derive(Debug, Default)]
pub(crate) struct ClauseArena {
    data: Vec<u32>,
    /// Words belonging to no live clause: freed blocks and shrunk tails.
    wasted: usize,
    /// Total literals across live (allocated, non-freed) clauses.
    live_lits: usize,
    /// Freed blocks by exact total word size.
    free: HashMap<u32, Vec<u32>>,
}

impl ClauseArena {
    pub(crate) fn with_capacity(words: usize) -> ClauseArena {
        ClauseArena {
            data: Vec::with_capacity(words),
            ..ClauseArena::default()
        }
    }

    /// Allocates a clause, reusing an exact-size freed block when one is
    /// available. The caller sets LBD/tier/flags afterwards as needed.
    pub(crate) fn alloc(&mut self, lits: &[Lit], learnt: bool) -> u32 {
        debug_assert!(lits.len() >= 2, "unit clauses never enter the arena");
        let total = (HEADER + lits.len()) as u32;
        let cref = match self.free.get_mut(&total).and_then(Vec::pop) {
            Some(cref) => {
                self.wasted -= total as usize;
                cref
            }
            None => {
                let cref = self.data.len() as u32;
                self.data.resize(self.data.len() + total as usize, 0);
                cref
            }
        };
        debug_assert!(
            (cref as u64 + total as u64) < (1 << 31),
            "local clause arena overflow"
        );
        let base = cref as usize;
        self.data[base] = ((lits.len() as u32) << SIZE_SHIFT) | if learnt { LEARNT } else { 0 };
        self.data[base + 1] = 0;
        self.data[base + 2] = 0f32.to_bits();
        for (j, &l) in lits.iter().enumerate() {
            self.data[base + HEADER + j] = l.0;
        }
        self.live_lits += lits.len();
        cref
    }

    /// Returns a clause's block to the free list. The caller must have
    /// detached every watcher and reason referencing it first.
    pub(crate) fn free(&mut self, cref: u32) {
        let size = self.len(cref);
        let total = (HEADER + size) as u32;
        self.wasted += total as usize;
        self.live_lits -= size;
        // Poison the header so a stale reference trips debug assertions.
        self.data[cref as usize] = DELETED;
        self.free.entry(total).or_default().push(cref);
    }

    #[inline]
    pub(crate) fn len(&self, cref: u32) -> usize {
        (self.data[cref as usize] >> SIZE_SHIFT) as usize
    }

    #[inline]
    pub(crate) fn lit(&self, cref: u32, j: usize) -> Lit {
        debug_assert!(j < self.len(cref));
        Lit(self.data[cref as usize + HEADER + j])
    }

    #[inline]
    pub(crate) fn swap_lits(&mut self, cref: u32, i: usize, j: usize) {
        let base = cref as usize + HEADER;
        self.data.swap(base + i, base + j);
    }

    pub(crate) fn iter_lits(&self, cref: u32) -> impl Iterator<Item = Lit> + '_ {
        let base = cref as usize + HEADER;
        self.data[base..base + self.len(cref)]
            .iter()
            .map(|&w| Lit(w))
    }

    pub(crate) fn copy_lits(&self, cref: u32) -> Vec<Lit> {
        self.iter_lits(cref).collect()
    }

    /// Removes the literal at position `j` by swapping the tail literal in
    /// (clause order is irrelevant past the two watch positions). The tail
    /// word becomes waste until the next GC.
    pub(crate) fn remove_lit(&mut self, cref: u32, j: usize) {
        let size = self.len(cref);
        debug_assert!(size > 2 && j < size);
        self.swap_lits(cref, j, size - 1);
        let base = cref as usize;
        self.data[base] =
            (((size - 1) as u32) << SIZE_SHIFT) | (self.data[base] & ((1 << SIZE_SHIFT) - 1));
        self.wasted += 1;
        self.live_lits -= 1;
    }

    #[inline]
    fn flag(&self, cref: u32, f: u32) -> bool {
        self.data[cref as usize] & f != 0
    }

    #[inline]
    fn set_flag(&mut self, cref: u32, f: u32, on: bool) {
        if on {
            self.data[cref as usize] |= f;
        } else {
            self.data[cref as usize] &= !f;
        }
    }

    #[inline]
    pub(crate) fn is_learnt(&self, cref: u32) -> bool {
        self.flag(cref, LEARNT)
    }

    #[inline]
    pub(crate) fn is_imported(&self, cref: u32) -> bool {
        self.flag(cref, IMPORTED)
    }

    #[inline]
    pub(crate) fn set_imported(&mut self, cref: u32) {
        self.set_flag(cref, IMPORTED, true);
    }

    #[inline]
    pub(crate) fn is_skeleton(&self, cref: u32) -> bool {
        self.flag(cref, SKELETON)
    }

    #[inline]
    pub(crate) fn set_skeleton(&mut self, cref: u32, on: bool) {
        self.set_flag(cref, SKELETON, on);
    }

    /// The transient deletion mark used inside batch sweeps (reduce,
    /// simplify): set while the sweep filters its index lists, cleared by
    /// [`ClauseArena::free`]'s poisoning. Never observed by propagation.
    #[inline]
    pub(crate) fn is_deleted(&self, cref: u32) -> bool {
        self.flag(cref, DELETED)
    }

    #[inline]
    pub(crate) fn set_deleted(&mut self, cref: u32) {
        self.set_flag(cref, DELETED, true);
    }

    /// The glucose-style probation mark: set when the clause participates
    /// in conflict analysis, cleared at each reduction; a MID-tier clause
    /// without it is demoted.
    #[inline]
    pub(crate) fn is_used(&self, cref: u32) -> bool {
        self.flag(cref, USED)
    }

    #[inline]
    pub(crate) fn set_used(&mut self, cref: u32, on: bool) {
        self.set_flag(cref, USED, on);
    }

    #[inline]
    pub(crate) fn lbd(&self, cref: u32) -> u32 {
        self.data[cref as usize + 1] & LBD_MASK
    }

    #[inline]
    pub(crate) fn set_lbd(&mut self, cref: u32, lbd: u32) {
        let w = &mut self.data[cref as usize + 1];
        *w = (*w & !LBD_MASK) | lbd.min(LBD_MASK);
    }

    #[inline]
    pub(crate) fn tier(&self, cref: u32) -> u32 {
        self.data[cref as usize + 1] >> 30
    }

    #[inline]
    pub(crate) fn set_tier(&mut self, cref: u32, tier: u32) {
        let w = &mut self.data[cref as usize + 1];
        *w = (*w & LBD_MASK) | (tier << 30);
    }

    #[inline]
    pub(crate) fn activity(&self, cref: u32) -> f32 {
        f32::from_bits(self.data[cref as usize + 2])
    }

    #[inline]
    pub(crate) fn set_activity(&mut self, cref: u32, a: f32) {
        self.data[cref as usize + 2] = a.to_bits();
    }

    /// Relocates the clause at `cref` into `to`, returning its new CRef.
    /// Idempotent: the first call copies the live words and leaves a
    /// forwarding pointer behind (word 1, under the RELOC flag); later
    /// calls through other roots just follow it.
    pub(crate) fn reloc(&mut self, cref: u32, to: &mut ClauseArena) -> u32 {
        let base = cref as usize;
        let h = self.data[base];
        if h & RELOC != 0 {
            return self.data[base + 1];
        }
        let size = (h >> SIZE_SHIFT) as usize;
        let new = to.data.len() as u32;
        to.data
            .extend_from_slice(&self.data[base..base + HEADER + size]);
        to.live_lits += size;
        self.data[base] = h | RELOC;
        self.data[base + 1] = new;
        new
    }

    /// Whether a relocation GC is worth running: at least 20% of the slab
    /// is waste and the slab is big enough for the pass to matter.
    pub(crate) fn should_gc(&self) -> bool {
        self.data.len() >= 1024 && self.wasted * 5 >= self.data.len()
    }

    /// Slab size in words (live + waste).
    pub(crate) fn data_len(&self) -> usize {
        self.data.len()
    }

    /// Words belonging to no live clause (freed blocks + shrunk tails).
    pub(crate) fn wasted(&self) -> usize {
        self.wasted
    }

    /// Total literals across live clauses — the simplify cadence budget.
    pub(crate) fn live_lits(&self) -> usize {
        self.live_lits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(code: u32) -> Lit {
        Lit(code)
    }

    #[test]
    fn alloc_roundtrips_literals_and_flags() {
        let mut ca = ClauseArena::default();
        let ls: Vec<Lit> = (0..5).map(|i| lit(i * 2)).collect();
        let c = ca.alloc(&ls, true);
        assert_eq!(ca.len(c), 5);
        assert_eq!(ca.copy_lits(c), ls);
        assert!(ca.is_learnt(c));
        assert!(!ca.is_imported(c) && !ca.is_skeleton(c) && !ca.is_deleted(c));
        ca.set_imported(c);
        ca.set_skeleton(c, true);
        ca.set_lbd(c, 7);
        ca.set_tier(c, TIER_LOCAL);
        ca.set_activity(c, 2.5);
        assert!(ca.is_imported(c) && ca.is_skeleton(c));
        assert_eq!(ca.lbd(c), 7);
        assert_eq!(ca.tier(c), TIER_LOCAL);
        assert_eq!(ca.activity(c), 2.5);
        // Tier and LBD live in one word without clobbering each other.
        ca.set_lbd(c, 3);
        assert_eq!(ca.tier(c), TIER_LOCAL);
        ca.set_tier(c, TIER_CORE);
        assert_eq!(ca.lbd(c), 3);
    }

    #[test]
    fn free_list_reuses_exact_size_blocks() {
        let mut ca = ClauseArena::default();
        let a = ca.alloc(&[lit(0), lit(2), lit(4)], false);
        let b = ca.alloc(&[lit(1), lit(3)], false);
        let before = ca.data_len();
        ca.free(a);
        assert_eq!(ca.live_lits(), 2);
        // Same size: the freed block is reused, the slab does not grow.
        let c = ca.alloc(&[lit(6), lit(8), lit(10)], true);
        assert_eq!(c, a);
        assert_eq!(ca.data_len(), before);
        assert_eq!(ca.copy_lits(c), vec![lit(6), lit(8), lit(10)]);
        assert!(ca.is_learnt(c), "reused block takes the new clause's flags");
        assert_eq!(ca.lbd(c), 0);
        assert_eq!(ca.activity(c), 0.0);
        // Different size: no reuse, the slab grows.
        ca.free(b);
        let d = ca.alloc(&[lit(1), lit(3), lit(5), lit(7)], false);
        assert!(d as usize >= before);
    }

    #[test]
    fn remove_lit_shrinks_and_counts_waste() {
        let mut ca = ClauseArena::default();
        let c = ca.alloc(&[lit(0), lit(2), lit(4), lit(6)], true);
        ca.remove_lit(c, 2);
        assert_eq!(ca.len(c), 3);
        assert_eq!(ca.copy_lits(c), vec![lit(0), lit(2), lit(6)]);
        assert_eq!(ca.live_lits(), 3);
        ca.remove_lit(c, 0);
        assert_eq!(ca.copy_lits(c), vec![lit(6), lit(2)]);
    }

    #[test]
    fn reloc_is_idempotent_and_compacts() {
        let mut ca = ClauseArena::default();
        let a = ca.alloc(&[lit(0), lit(2), lit(4)], false);
        let b = ca.alloc(&[lit(1), lit(3)], true);
        ca.set_lbd(b, 2);
        ca.set_tier(b, TIER_MID);
        ca.set_activity(b, 1.5);
        ca.free(a);
        let mut to = ClauseArena::default();
        let nb = ca.reloc(b, &mut to);
        assert_eq!(ca.reloc(b, &mut to), nb, "second reloc follows the forward");
        assert_eq!(to.copy_lits(nb), vec![lit(1), lit(3)]);
        assert!(to.is_learnt(nb));
        assert_eq!(to.lbd(nb), 2);
        assert_eq!(to.tier(nb), TIER_MID);
        assert_eq!(to.activity(nb), 1.5);
        assert_eq!(to.live_lits(), 2);
        assert!(to.data_len() < ca.data_len(), "the freed block is dropped");
    }

    #[test]
    fn should_gc_tracks_waste_ratio() {
        let mut ca = ClauseArena::default();
        let mut crefs = Vec::new();
        for i in 0..200u32 {
            crefs.push(ca.alloc(&[lit(i * 2), lit(i * 2 + 1), lit((i * 2 + 2) % 400)], false));
        }
        assert!(!ca.should_gc());
        for &c in &crefs[..80] {
            ca.free(c);
        }
        assert!(ca.should_gc(), "40% waste on a big-enough slab");
    }

    /// Randomized alloc/free/shrink rounds cross-checked against a
    /// Vec-backed model of the same clause set.
    #[test]
    fn random_ops_match_vec_model() {
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let mut ca = ClauseArena::default();
        // (cref, model lits, learnt, lbd)
        let mut live: Vec<(u32, Vec<Lit>, bool, u32)> = Vec::new();
        for _ in 0..2000 {
            match next() % 4 {
                0 | 1 => {
                    let n = 2 + (next() % 6) as usize;
                    let ls: Vec<Lit> = (0..n).map(|_| lit(next() % 64)).collect();
                    let learnt = next() % 2 == 0;
                    let c = ca.alloc(&ls, learnt);
                    let lbd = next() % 10;
                    ca.set_lbd(c, lbd);
                    live.push((c, ls, learnt, lbd));
                }
                2 if !live.is_empty() => {
                    let i = (next() as usize) % live.len();
                    let (c, _, _, _) = live.swap_remove(i);
                    ca.free(c);
                }
                3 if !live.is_empty() => {
                    let i = (next() as usize) % live.len();
                    if live[i].1.len() > 2 {
                        let j = (next() as usize) % live[i].1.len();
                        ca.remove_lit(live[i].0, j);
                        let last = live[i].1.len() - 1;
                        live[i].1.swap(j, last);
                        live[i].1.pop();
                    }
                }
                _ => {}
            }
            // Occasionally compact and remap the model's crefs.
            if ca.should_gc() {
                let mut to = ClauseArena::default();
                for e in &mut live {
                    e.0 = ca.reloc(e.0, &mut to);
                }
                ca = to;
            }
        }
        let expect_lits: usize = live.iter().map(|e| e.1.len()).sum();
        assert_eq!(ca.live_lits(), expect_lits);
        for (c, ls, learnt, lbd) in live {
            assert_eq!(ca.copy_lits(c), ls);
            assert_eq!(ca.is_learnt(c), learnt);
            assert_eq!(ca.lbd(c), lbd);
        }
    }
}
