//! Core value types: variables and literals.

use std::fmt;
use std::ops::Not;

/// A propositional variable, identified by a dense index starting at 0.
///
/// Variables are created by [`crate::Solver::new_var`]; indices are assigned
/// sequentially.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Constructs a variable from its raw index.
    #[inline]
    pub fn from_index(index: usize) -> Var {
        Var(index as u32)
    }

    /// The dense index of this variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable together with a polarity.
///
/// Encoded MiniSAT-style as `2 * var + sign` where `sign == 1` means the
/// negated literal. This makes literal negation a single XOR and allows
/// literals to directly index watcher lists.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// The positive literal of `v`.
    #[inline]
    pub fn pos(v: Var) -> Lit {
        Lit(v.0 << 1)
    }

    /// The negative literal of `v`.
    #[inline]
    pub fn neg(v: Var) -> Lit {
        Lit((v.0 << 1) | 1)
    }

    /// Constructs a literal with an explicit polarity; `positive == true`
    /// yields the positive literal.
    #[inline]
    pub fn new(v: Var, positive: bool) -> Lit {
        if positive {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        }
    }

    /// The underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// `true` for a positive literal.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// The raw code (`2*var + sign`), usable as a dense array index.
    #[inline]
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Inverse of [`Lit::code`].
    #[inline]
    pub fn from_code(code: usize) -> Lit {
        Lit(code as u32)
    }
}

impl Not for Lit {
    type Output = Lit;
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "{}", self.var())
        } else {
            write!(f, "¬{}", self.var())
        }
    }
}

/// Three-valued assignment used internally by the solver.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum LBool {
    True,
    False,
    Undef,
}

impl LBool {
    #[inline]
    pub(crate) fn from_bool(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }

    /// The value of a literal given the value of its variable.
    #[inline]
    pub(crate) fn under_sign(self, positive: bool) -> LBool {
        match (self, positive) {
            (LBool::Undef, _) => LBool::Undef,
            (v, true) => v,
            (LBool::True, false) => LBool::False,
            (LBool::False, false) => LBool::True,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding_roundtrip() {
        let v = Var::from_index(7);
        assert_eq!(Lit::pos(v).var(), v);
        assert_eq!(Lit::neg(v).var(), v);
        assert!(Lit::pos(v).is_positive());
        assert!(!Lit::neg(v).is_positive());
        assert_eq!(!Lit::pos(v), Lit::neg(v));
        assert_eq!(!!Lit::pos(v), Lit::pos(v));
        assert_eq!(Lit::from_code(Lit::neg(v).code()), Lit::neg(v));
    }

    #[test]
    fn lit_new_polarity() {
        let v = Var::from_index(3);
        assert_eq!(Lit::new(v, true), Lit::pos(v));
        assert_eq!(Lit::new(v, false), Lit::neg(v));
    }

    #[test]
    fn lbool_under_sign() {
        assert_eq!(LBool::True.under_sign(false), LBool::False);
        assert_eq!(LBool::False.under_sign(false), LBool::True);
        assert_eq!(LBool::Undef.under_sign(false), LBool::Undef);
        assert_eq!(LBool::True.under_sign(true), LBool::True);
    }

    #[test]
    fn display_forms() {
        let v = Var::from_index(2);
        assert_eq!(Lit::pos(v).to_string(), "x2");
        assert_eq!(Lit::neg(v).to_string(), "¬x2");
    }
}
